#!/bin/sh
# Sanitizer gate for the concurrent code paths. Builds the tree twice
# (ThreadSanitizer, then AddressSanitizer) into dedicated build
# directories and runs the suites that exercise real threads: the
# serving runtime (worker pool, dynamic batcher, bounded queue), the
# LoadGen (asynchronous completion / run teardown), the executors,
# the logging concurrency test, and the compute substrate (intra-op
# thread pool, scratch arena, parallel GEMM/conv kernels).
#
# Usage: scripts/check.sh [tsan|asan|all]   (default: all)
set -e
cd "$(dirname "$0")/.."

MODE="${1:-all}"
case "$MODE" in
    tsan|asan|all) ;;
    *) echo "usage: scripts/check.sh [tsan|asan|all]" >&2; exit 2 ;;
esac
GENERATOR=""
command -v ninja > /dev/null 2>&1 && GENERATOR="-G Ninja"

run_suite() {
    build_dir="$1"
    ctest --test-dir "$build_dir" --output-on-failure \
          -R 'BoundedQueue|DynamicBatcher|ThreadWorkerPool|EventWorkerPool|ServingSut|HarnessServing|ProfileBatchInference|LoadGen|Scenario|Server|Offline|RealExecutor|VirtualExecutor|Logging|ThreadPool|ScratchArena|GemmParallel|ConvParallel|GemmInt8'
}

if [ "$MODE" = "tsan" ] || [ "$MODE" = "all" ]; then
    echo "==> ThreadSanitizer build"
    cmake -B build-tsan $GENERATOR \
          -DCMAKE_BUILD_TYPE=RelWithDebInfo \
          -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer" \
          -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
    cmake --build build-tsan --target \
          test_serving test_loadgen test_sim test_common test_tensor \
          test_quant
    TSAN_OPTIONS="halt_on_error=1" run_suite build-tsan
fi

if [ "$MODE" = "asan" ] || [ "$MODE" = "all" ]; then
    echo "==> AddressSanitizer build"
    cmake -B build-asan $GENERATOR \
          -DCMAKE_BUILD_TYPE=RelWithDebInfo \
          -DCMAKE_CXX_FLAGS="-fsanitize=address -fno-omit-frame-pointer" \
          -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address"
    cmake --build build-asan --target \
          test_serving test_loadgen test_sim test_common test_tensor \
          test_quant
    run_suite build-asan
fi

echo "check.sh: OK ($MODE)"
