#!/bin/sh
# Sanitizer gate for the concurrent code paths. Builds the tree twice
# (ThreadSanitizer, then AddressSanitizer) into dedicated build
# directories and runs the suites that exercise real threads: the
# serving runtime (worker pool, dynamic batcher, bounded queue), the
# LoadGen (asynchronous completion / run teardown), the executors,
# the logging concurrency test, the compute substrate (intra-op
# thread pool, scratch arena, parallel GEMM/conv kernels), and the
# compiled execution runtime (concurrent ExecutionInstances sharing
# one CompiledModel, plan cache, graph passes, memory planner, and
# concurrent readers streaming the shared prepacked constant section),
# plus the NCHWc direct-convolution kernels and the layout-propagation
# pass that routes compiled convs onto them, the SLO autoscaler's
# elastic grow/shrink paths, the trace-driven arrival generators, the
# measurement audits (coordinated omission / warm-up), and the
# continuous batcher's decode loop (lock-free admission ring, threaded
# churn, lane routing) with the streaming TokenStream scenario.
#
# `scripts/check.sh tier1` is the fast feedback path instead: a plain
# build plus `ctest -L tier1`, skipping the expensive model and
# end-to-end suites.
#
# Usage: scripts/check.sh [tsan|asan|all|tier1]   (default: all)
set -e
cd "$(dirname "$0")/.."

MODE="${1:-all}"
case "$MODE" in
    tsan|asan|all|tier1) ;;
    *) echo "usage: scripts/check.sh [tsan|asan|all|tier1]" >&2; exit 2 ;;
esac
GENERATOR=""
command -v ninja > /dev/null 2>&1 && GENERATOR="-G Ninja"

run_suite() {
    build_dir="$1"
    ctest --test-dir "$build_dir" --output-on-failure \
          -R 'BoundedQueue|DynamicBatcher|ThreadWorkerPool|EventWorkerPool|ServingSut|HarnessServing|ProfileBatchInference|CircuitBreaker|AdmissionController|ResilientInference|CompletionTracker|FaultInjecting|LoadGen|Scenario|Server|Offline|RealExecutor|VirtualExecutor|Logging|ThreadPool|ScratchArena|GemmParallel|ConvParallel|GemmInt8|GemmPrepacked|Int8Prepacked|CompiledModel|ModelGraph|MemoryPlanner|ModelRegistry|DagPipeline|ServingPlatform|TenantSut|MultiTenantServing|MpscRing|ShardRouting|ShardedWorkerPool|ServingSutSharded|ShardedPlatform|ServingStats|BoundedQueuePopFor|ConvDirect|NchwcLayout|LayoutPropagation|Ewma|HysteresisLatch|ShardAutoscaler|ElasticShards|AutoscaledServingSut|TraceArrivals|BurstyArrivalProperties|MeasurementAudit|ParseRecordedTrace|ContinuousBatcher|DecoderEngine|DecoderModel|DecodeStatePool|TokenStream'
}

if [ "$MODE" = "tier1" ]; then
    echo "==> tier1 fast path"
    cmake -B build $GENERATOR
    cmake --build build -j
    ctest --test-dir build --output-on-failure -L tier1
    echo "check.sh: OK (tier1)"
    exit 0
fi

if [ "$MODE" = "tsan" ] || [ "$MODE" = "all" ]; then
    echo "==> ThreadSanitizer build"
    cmake -B build-tsan $GENERATOR \
          -DCMAKE_BUILD_TYPE=RelWithDebInfo \
          -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer" \
          -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
    cmake --build build-tsan --target \
          test_serving test_shard test_resilience test_tenancy test_loadgen test_audit test_sim test_common \
          test_tensor test_quant test_nn test_decode
    TSAN_OPTIONS="halt_on_error=1" run_suite build-tsan
fi

if [ "$MODE" = "asan" ] || [ "$MODE" = "all" ]; then
    echo "==> AddressSanitizer build"
    cmake -B build-asan $GENERATOR \
          -DCMAKE_BUILD_TYPE=RelWithDebInfo \
          -DCMAKE_CXX_FLAGS="-fsanitize=address -fno-omit-frame-pointer" \
          -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address"
    cmake --build build-asan --target \
          test_serving test_shard test_resilience test_tenancy test_loadgen test_audit test_sim test_common \
          test_tensor test_quant test_nn test_decode
    run_suite build-asan
fi

echo "check.sh: OK ($MODE)"
