#!/bin/sh
# Rebuild everything, run the full test suite, and regenerate every
# paper table/figure plus the ablations (EXPERIMENTS.md's evidence).
set -e
cd "$(dirname "$0")/.."
cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure
for b in build/bench/*; do
    [ -x "$b" ] && "$b"
done
