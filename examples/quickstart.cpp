/**
 * @file
 * Quickstart: benchmark a (simulated) inference system under two
 * LoadGen scenarios in a few dozen lines.
 *
 *   $ ./examples/quickstart
 *
 * Walks the core API: pick an executor, wrap your system as a
 * SystemUnderTest, describe your data as a QuerySampleLibrary,
 * configure TestSettings, and call LoadGen::startTest.
 */

#include <cstdio>

#include "loadgen/loadgen.h"
#include "sim/virtual_executor.h"
#include "sut/model_cost.h"
#include "sut/simulated_sut.h"

using namespace mlperf;

/** Your dataset adapter: here, a stub with 1,024 samples. */
class MyDataset : public loadgen::QuerySampleLibrary
{
  public:
    std::string name() const override { return "my-dataset"; }
    uint64_t totalSampleCount() const override { return 1024; }
    uint64_t performanceSampleCount() const override { return 256; }
    void loadSamplesToRam(
        const std::vector<loadgen::QuerySampleIndex> &) override
    {
    }
    void unloadSamplesFromRam(
        const std::vector<loadgen::QuerySampleIndex> &) override
    {
    }
};

int
main()
{
    // 1. An executor supplies time and events. VirtualExecutor runs
    //    whole benchmarks in milliseconds of host time; swap in
    //    sim::RealExecutor to measure a real system on the wall clock.
    sim::VirtualExecutor executor;

    // 2. The system under test. Here: a simulated edge GPU running a
    //    ResNet-50-class workload. Wrap your own engine by
    //    implementing loadgen::SystemUnderTest instead.
    sut::HardwareProfile profile;
    profile.systemName = "quickstart-edge-gpu";
    profile.peakMacsPerSec = 5e12;
    profile.batchOneEfficiency = 0.3;
    profile.maxBatch = 16;
    sut::SimulatedSut system(
        executor, profile,
        sut::modelCostFor(models::TaskType::ImageClassificationHeavy));

    MyDataset dataset;
    loadgen::LoadGen loadgen(executor);

    // 3. Single-stream: sequential queries, 90th-percentile latency.
    {
        loadgen::TestSettings settings =
            loadgen::TestSettings::forScenario(
                loadgen::Scenario::SingleStream);
        const auto result =
            loadgen.startTest(system, dataset, settings);
        std::printf("%s\n", result.summary().c_str());
    }

    // 4. Server: Poisson arrivals at a target QPS under a 15 ms QoS
    //    bound; the run is VALID only if the 99th-percentile latency
    //    holds and the duration/query floors are met.
    {
        loadgen::TestSettings settings =
            loadgen::TestSettings::forScenario(
                loadgen::Scenario::Server);
        settings.serverTargetQps = 200.0;
        settings.targetLatencyNs = 15 * sim::kNsPerMs;
        const auto result =
            loadgen.startTest(system, dataset, settings);
        std::printf("%s\n", result.summary().c_str());
    }
    return 0;
}
