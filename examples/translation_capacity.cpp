/**
 * @file
 * Capacity planning for an online translation service — the paper's
 * motivating server workload ("services such as online translation
 * from Baidu, Google, and Microsoft", Sec. III-C). Given candidate
 * hardware platforms, find the maximum GNMT queries-per-second each
 * sustains within the 250 ms / 97th-percentile QoS constraint, and
 * compute how many of each box a 50k-QPS service needs.
 *
 *   $ ./examples/translation_capacity
 */

#include <cmath>
#include <cstdio>

#include "harness/experiment.h"
#include "report/table.h"
#include "sut/system_zoo.h"

using namespace mlperf;

int
main()
{
    std::printf("=== Capacity planning: online translation at "
                "50,000 QPS under the Table III QoS ===\n\n");

    const double required_qps = 50000.0;
    const auto task = models::TaskType::MachineTranslation;

    harness::ExperimentOptions options;
    options.scale = 0.05;
    options.search.runsPerDecision = 2;

    const char *candidates[] = {"dc-cpu-a", "dc-cpu-c", "dc-gpu-a",
                                "dc-gpu-b", "dc-asic-a", "dc-asic-d"};

    report::Table table({"Platform", "Server QPS (valid)",
                         "p99 latency", "Boxes for 50k QPS"});
    for (const char *name : candidates) {
        for (const auto &profile : sut::systemZoo()) {
            if (profile.systemName != name)
                continue;
            const auto outcome =
                harness::runServer(profile, task, options);
            if (!outcome.valid || outcome.metric <= 0.0) {
                table.addRow({name, "cannot meet QoS", "-", "-"});
                continue;
            }
            const int boxes = static_cast<int>(
                std::ceil(required_qps / outcome.metric));
            table.addRow(
                {name, report::fmt(outcome.metric, 0),
                 report::fmt(
                     static_cast<double>(outcome.result.latency.p99) /
                         1e6,
                     1) + " ms",
                 std::to_string(boxes)});
        }
    }
    std::printf("%s", table.str().c_str());
    std::printf("\nNote how the ranking can differ from an offline-"
                "throughput ranking: the latency\nconstraint and "
                "GNMT's variable sentence lengths penalize deep-"
                "batching systems\n(the Figure 6 lesson applied to a "
                "procurement decision).\n");
    return 0;
}
