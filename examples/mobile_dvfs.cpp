/**
 * @file
 * Why MLPerf enforces a 60-second minimum run time (Sec. III-D): on
 * a smartphone with DVFS, a short benchmark measures the device's
 * cold, boosted-or-throttled transient rather than its equilibrium.
 * This example runs the single-stream scenario on a DVFS-heavy phone
 * profile with and without the duration floor and compares the
 * reported 90th-percentile latency.
 *
 *   $ ./examples/mobile_dvfs
 */

#include <cstdio>

#include "loadgen/loadgen.h"
#include "report/table.h"
#include "sim/virtual_executor.h"
#include "sut/model_cost.h"
#include "sut/simulated_sut.h"
#include "sut/system_zoo.h"

using namespace mlperf;

namespace {

class Qsl : public loadgen::QuerySampleLibrary
{
  public:
    std::string name() const override { return "mobile-qsl"; }
    uint64_t totalSampleCount() const override { return 1024; }
    uint64_t performanceSampleCount() const override { return 256; }
    void loadSamplesToRam(
        const std::vector<loadgen::QuerySampleIndex> &) override
    {
    }
    void unloadSamplesFromRam(
        const std::vector<loadgen::QuerySampleIndex> &) override
    {
    }
};

loadgen::TestResult
run(const sut::HardwareProfile &profile, uint64_t max_queries,
    uint64_t min_duration_s)
{
    sim::VirtualExecutor executor;
    sut::SimulatedSut system(
        executor, profile,
        sut::modelCostFor(models::TaskType::ImageClassificationLight));
    Qsl qsl;
    loadgen::TestSettings settings =
        loadgen::TestSettings::forScenario(
            loadgen::Scenario::SingleStream);
    settings.maxQueryCount = max_queries;
    settings.minDurationNs = min_duration_s * sim::kNsPerSec;
    loadgen::LoadGen loadgen(executor);
    return loadgen.startTest(system, qsl, settings);
}

} // namespace

int
main()
{
    std::printf("=== DVFS equilibrium and the 60-second minimum run "
                "time (MobileNet, single-stream) ===\n\n");

    // A phone whose DSP clocks take ~10 s to settle.
    const sut::HardwareProfile *phone = nullptr;
    for (const auto &p : sut::systemZoo()) {
        if (p.systemName == "phone-dsp-b")
            phone = &p;
    }

    report::Table table({"Run", "Queries", "Duration",
                         "p90 latency (ms)", "Valid"});
    const auto quick = run(*phone, 50, 0);  // "quick benchmark app"
    table.addRow({"50 queries, no floor",
                  std::to_string(quick.queryCount),
                  report::fmt(quick.durationNs / 1e9, 1) + " s",
                  report::fmt(quick.latency.p90 / 1e6, 2),
                  quick.valid ? "yes" : "no"});
    const auto full = run(*phone, 0, 60);  // MLPerf floors
    table.addRow({"MLPerf floors (>=1024 q, >=60 s)",
                  std::to_string(full.queryCount),
                  report::fmt(full.durationNs / 1e9, 1) + " s",
                  report::fmt(full.latency.p90 / 1e6, 2),
                  full.valid ? "yes" : "no"});
    std::printf("%s", table.str().c_str());

    const double ratio =
        static_cast<double>(quick.latency.p90) /
        static_cast<double>(full.latency.p90);
    std::printf("\nThe short run reports a p90 %.0f%% %s than "
                "equilibrium: it sampled only the cold\nDVFS "
                "transient. \"The minimum run time ensures we "
                "measure the equilibrium behavior of\npower-"
                "management systems\" (Sec. III-D).\n",
                100.0 * std::abs(ratio - 1.0),
                ratio > 1.0 ? "higher" : "lower");
    return 0;
}
