/**
 * @file
 * A complete closed-division submission flow against a REAL model:
 * the proxy ResNet-50 classifier runs under the LoadGen in accuracy
 * mode (checked by the accuracy script against the Table I quality
 * target), then in performance mode on the wall clock, and finally
 * through the Sec. V-B audit suite — the full life of an MLPerf
 * submission in one executable.
 *
 *   $ ./examples/submission_flow
 */

#include <cstdio>

#include "audit/audit.h"
#include "harness/accuracy_script.h"
#include "loadgen/loadgen.h"
#include "metrics/accuracy.h"
#include "models/classifier.h"
#include "models/model_info.h"
#include "sim/real_executor.h"
#include "sut/nn_sut.h"

using namespace mlperf;

int
main()
{
    std::printf("=== MLPerf-style submission flow: "
                "resnet50-v1.5-proxy, single-stream ===\n\n");

    // ---- Submitter side: dataset, model, SUT.
    data::ClassificationConfig config;
    config.samplesPerClass = 5;  // 200-image validation set: quick
    data::ClassificationDataset dataset(config);
    models::ImageClassifier model =
        models::ImageClassifier::resnet50Proxy(dataset);

    // INT8 deployment with the provided calibration set (Sec. IV-A).
    models::ImageClassifier deployed =
        models::ImageClassifier::resnet50Proxy(dataset);
    deployed.quantize(dataset);

    sut::ClassificationQsl qsl(dataset, 64);
    sut::ClassifierSut sut(deployed, qsl);

    // ---- Step 1: accuracy mode. The LoadGen sweeps the entire
    //      data set; the accuracy script scores the log.
    double int8_accuracy = 0.0;
    {
        sim::RealExecutor executor;
        loadgen::TestSettings settings =
            loadgen::TestSettings::forScenario(
                loadgen::Scenario::SingleStream);
        settings.mode = loadgen::TestMode::AccuracyOnly;
        loadgen::LoadGen loadgen(executor);
        const auto result = loadgen.startTest(sut, qsl, settings);
        int8_accuracy = harness::classificationTop1(
            result.accuracyLog, dataset);
    }
    const double fp32_accuracy =
        model.evaluateAccuracy(dataset, dataset.size());
    const auto &info =
        models::modelInfo(models::TaskType::ImageClassificationHeavy);
    const bool quality_ok = metrics::meetsTarget(
        int8_accuracy, fp32_accuracy, info.relativeQualityTarget);
    std::printf("Accuracy run: INT8 Top-1 %.4f vs FP32 %.4f "
                "(target %.0f%% of FP32): %s\n\n",
                int8_accuracy, fp32_accuracy,
                100.0 * info.relativeQualityTarget,
                quality_ok ? "MEETS TARGET" : "FAILS TARGET");

    // ---- Step 2: performance mode on the wall clock.
    {
        sim::RealExecutor executor;
        loadgen::TestSettings settings =
            loadgen::TestSettings::forScenario(
                loadgen::Scenario::SingleStream);
        // Shortened for an example; a submission run uses the full
        // 1,024-query / 60 s floors.
        settings.maxQueryCount = 200;
        loadgen::LoadGen loadgen(executor);
        const auto result = loadgen.startTest(sut, qsl, settings);
        std::printf("%s\n", result.summary().c_str());
    }

    // ---- Step 3: the result-review audits (Sec. V-B).
    audit::Runner runner =
        [&](const loadgen::TestSettings &settings) {
            sim::RealExecutor executor;
            sut::ClassificationQsl audit_qsl(dataset, 64);
            sut::ClassifierSut audit_sut(deployed, audit_qsl);
            loadgen::LoadGen loadgen(executor);
            return loadgen.startTest(audit_sut, audit_qsl, settings);
        };
    loadgen::TestSettings audit_settings =
        loadgen::TestSettings::forScenario(
            loadgen::Scenario::SingleStream);
    audit_settings.maxQueryCount = 120;
    const auto verdict =
        audit::runAllAudits(runner, audit_settings);
    std::printf("Audit suite: %s\n  %s\n",
                verdict.pass ? "CLEARED" : "REJECTED",
                verdict.detail.c_str());
    return verdict.pass && quality_ok ? 0 : 1;
}
