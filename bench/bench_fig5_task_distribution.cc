/**
 * @file
 * Regenerates Figure 5: distribution of closed-division results
 * across the five models. The paper's shape: a fairly uniform pie
 * with ResNet-50 v1.5 the largest slice (32.5%) at just under 3x
 * GNMT, the smallest (11.4%).
 */

#include <cstdio>
#include <map>

#include "common/population.h"
#include "report/table.h"

using namespace mlperf;

int
main()
{
    std::printf("%s", report::banner(
        "Figure 5: results from the closed division, by model "
        "(simulated population)").c_str());

    const auto population = bench::submissionPopulation();
    std::map<models::TaskType, int> counts;
    for (const auto &submission : population)
        counts[submission.task]++;

    const int total = static_cast<int>(population.size());
    int max_count = 0;
    for (const auto &[task, n] : counts)
        max_count = std::max(max_count, n);

    report::Table table({"Model", "Results", "Share", ""});
    for (models::TaskType task : models::allTasks()) {
        const int n = counts[task];
        table.addRow({models::taskModelName(task), std::to_string(n),
                      report::fmt(100.0 * n / total, 1) + "%",
                      report::bar(n, max_count, 32)});
    }
    table.addRule();
    table.addRow({"TOTAL", std::to_string(total), "100%", ""});
    std::printf("%s", table.str().c_str());

    int min_count = total;
    for (const auto &[task, n] : counts)
        min_count = std::min(min_count, n);
    std::printf("\nSpread max/min = %.2fx (paper: ResNet-50 \"just "
                "under three times as popular as GNMT\").\n",
                static_cast<double>(max_count) / min_count);
    return 0;
}
