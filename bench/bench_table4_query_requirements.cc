/**
 * @file
 * Regenerates Table IV from Equations 1 and 2: query counts required
 * for statistically confident tail-latency bounds. This is an exact
 * reproduction — the computed rows must equal the paper's.
 */

#include <cstdio>

#include "common/string_util.h"
#include "report/table.h"
#include "stats/sample_size.h"

using namespace mlperf;

int
main()
{
    std::printf("%s", report::banner(
        "Table IV: query requirements for statistical confidence "
        "(Eq. 1-2)").c_str());

    report::Table table({"Tail-latency percentile",
                         "Confidence interval", "Error margin",
                         "Inferences", "Rounded inferences"});
    for (double tail : {0.90, 0.95, 0.99}) {
        const auto req = stats::queryRequirement(tail);
        table.addRow({
            report::fmt(100.0 * tail, 0) + "%",
            "99%",
            report::fmt(100.0 * req.margin, 2) + "%",
            withThousands(req.exactQueries),
            strprintf("%llu x 2^13 = %s",
                      static_cast<unsigned long long>(
                          req.multipleOf8k),
                      withThousands(req.roundedQueries).c_str()),
        });
    }
    std::printf("%s", table.str().c_str());

    std::printf("\nPaper values: 23,886 -> 24,576; 50,425 -> 57,344; "
                "262,742 -> 270,336.\n");
    std::printf("Translation tasks use the 97th percentile: %s -> %s "
                "(Sec. III-D's \"90K queries\").\n",
                withThousands(
                    stats::queryRequirement(0.97).exactQueries)
                    .c_str(),
                withThousands(
                    stats::queryRequirement(0.97).roundedQueries)
                    .c_str());
    return 0;
}
