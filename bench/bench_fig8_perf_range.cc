/**
 * @file
 * Regenerates Figure 8: relative performance per model and scenario,
 * normalized to the slowest system for that combination. The paper's
 * headline shape: roughly four orders of magnitude between the
 * smallest and largest systems, with the widest spreads in popular
 * single-stream/offline combinations and much less variation for
 * GNMT server.
 */

#include <cstdio>
#include <map>

#include "common/population.h"
#include "harness/experiment.h"
#include "report/table.h"

using namespace mlperf;
using loadgen::Scenario;
using models::TaskType;

namespace {

/** Higher-is-better performance for cross-system comparison. */
double
comparablePerformance(const harness::ScenarioOutcome &outcome)
{
    if (!outcome.valid || outcome.metric <= 0.0)
        return 0.0;
    if (outcome.scenario == Scenario::SingleStream) {
        // Lower latency is better: invert to samples/second.
        return 1e9 / outcome.metric;
    }
    return outcome.metric;
}

} // namespace

int
main()
{
    std::printf("%s", report::banner(
        "Figure 8: relative performance per model and scenario "
        "(normalized to the slowest system)").c_str());

    harness::ExperimentOptions options;
    options.scale = 0.04;
    options.search.runsPerDecision = 2;
    options.search.iterations = 8;

    // Run every submission in the population.
    using Key = std::pair<TaskType, Scenario>;
    std::map<Key, std::vector<double>> perf;
    const auto population = bench::submissionPopulation();
    for (const auto &submission : population) {
        const auto outcome = harness::runScenario(
            submission.profile, submission.task, submission.scenario,
            options);
        const double value = comparablePerformance(outcome);
        if (value > 0.0)
            perf[{submission.task, submission.scenario}].push_back(
                value);
    }

    report::Table table({"Model (scenario)", "Systems",
                         "Max/min ratio", "Relative range (log)"});
    double global_max_ratio = 0.0;
    for (TaskType task : models::allTasks()) {
        for (Scenario scenario :
             {Scenario::SingleStream, Scenario::MultiStream,
              Scenario::Server, Scenario::Offline}) {
            const auto it = perf.find({task, scenario});
            std::string label =
                models::taskModelName(task) + " (" +
                loadgen::scenarioName(scenario).substr(0, 2) + ")";
            if (it == perf.end() || it->second.empty()) {
                table.addRow({label, "0", "-", "(no submissions)"});
                continue;
            }
            double lo = it->second[0], hi = it->second[0];
            for (double v : it->second) {
                lo = std::min(lo, v);
                hi = std::max(hi, v);
            }
            const double ratio = hi / lo;
            global_max_ratio = std::max(global_max_ratio, ratio);
            table.addRow({label,
                          std::to_string(it->second.size()),
                          report::fmtCompact(ratio),
                          report::logBar(ratio, 3e4, 40)});
        }
    }
    std::printf("%s", table.str().c_str());
    std::printf("\nLargest spread across any model/scenario: %.0fx "
                "(paper: \"a four-orders-of-magnitude performance "
                "variation\",\nwith 100x+ spreads in MobileNet SS / "
                "ResNet SS / SSD-MobileNet O, and much less for GNMT "
                "S).\n",
                global_max_ratio);
    return 0;
}
