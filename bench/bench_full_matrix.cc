/**
 * @file
 * A complete closed-division submission: all 20 task x scenario
 * combinations (paper Sec. VII-A: "we implemented 4 versions of each
 * benchmark, 20 in total") measured on one data-center system, with
 * each scenario's headline metric and validity.
 */

#include <cstdio>

#include "harness/experiment.h"
#include "report/table.h"
#include "sut/system_zoo.h"

using namespace mlperf;
using loadgen::Scenario;

int
main()
{
    std::printf("%s", report::banner(
        "Full submission matrix: 5 tasks x 4 scenarios on dc-gpu-b"
        ).c_str());

    const sut::HardwareProfile *profile = nullptr;
    for (const auto &p : sut::systemZoo()) {
        if (p.systemName == "dc-gpu-b")
            profile = &p;
    }

    harness::ExperimentOptions options;
    options.scale = 0.04;
    options.search.runsPerDecision = 2;
    options.search.iterations = 8;

    report::Table table({"Benchmark", "Single-stream p90",
                         "Multistream N", "Server QPS",
                         "Offline samples/s"});
    for (const auto &info : models::referenceModels()) {
        const auto ss =
            harness::runSingleStream(*profile, info.task, options);
        const auto ms =
            harness::runMultiStream(*profile, info.task, options);
        const auto server =
            harness::runServer(*profile, info.task, options);
        const auto offline =
            harness::runOffline(*profile, info.task, options);
        auto cell = [](const harness::ScenarioOutcome &o,
                       const std::string &value) {
            return o.valid ? value : value + " (INVALID)";
        };
        table.addRow({
            info.modelName,
            cell(ss, report::fmt(ss.metric / 1e6, 3) + " ms"),
            cell(ms, report::fmt(ms.metric, 0)),
            cell(server, report::fmt(server.metric, 0)),
            cell(offline, report::fmtCompact(offline.metric)),
        });
    }
    std::printf("%s", table.str().c_str());
    std::printf("\nEach cell is a full LoadGen run (server/multi-"
                "stream cells are searches over repeated\nruns). "
                "Submissions may cover any subset (Sec. V-A); this "
                "matrix is the complete set.\n");
    return 0;
}
