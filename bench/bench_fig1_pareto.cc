/**
 * @file
 * Regenerates Figure 1: the accuracy-vs-complexity Pareto frontier of
 * image classifiers. The paper's figure (from Bianco et al.) shows a
 * ~50x GOPs range with Top-1 from 55% to 83% and no single optimal
 * model; here a width/depth/architecture family of proxy classifiers
 * is measured on the synthetic ImageNet.
 */

#include <cstdio>

#include "models/classifier.h"
#include "report/table.h"

using namespace mlperf;

int
main()
{
    std::printf("%s", report::banner(
        "Figure 1: accuracy vs. computational complexity for "
        "classifier variants").c_str());

    data::ClassificationDataset dataset;
    struct Variant
    {
        const char *name;
        models::ClassifierArch arch;
    };
    std::vector<Variant> variants;
    auto make = [](const char *name, int64_t width, int64_t blocks,
                   bool depthwise) {
        models::ClassifierArch arch;
        arch.name = name;
        arch.stemWidth = width;
        arch.blocks = blocks;
        arch.depthwise = depthwise;
        arch.weightSeed = depthwise ? 0x2222 : 0x5E5E50;
        return Variant{name, arch};
    };
    variants.push_back(make("tiny-dw-0.25x", 4, 2, true));
    variants.push_back(make("small-dw-0.5x", 8, 4, true));
    variants.push_back(make("mobilenet-1.0x", 16, 4, true));
    variants.push_back(make("mobilenet-2.0x", 32, 4, true));
    variants.push_back(make("resnet-0.25x", 4, 4, false));
    variants.push_back(make("resnet-0.5x", 8, 4, false));
    variants.push_back(make("resnet-1.0x", 16, 4, false));
    variants.push_back(make("resnet-deep", 16, 6, false));
    variants.push_back(make("resnet-2.0x", 32, 4, false));

    struct Point
    {
        std::string name;
        double mops;
        double accuracy;
        uint64_t params;
    };
    std::vector<Point> points;
    for (const auto &variant : variants) {
        models::ImageClassifier model(variant.arch, dataset);
        points.push_back(
            {variant.name,
             static_cast<double>(model.flopsPerInput()) / 1e6,
             model.evaluateAccuracy(dataset, 400),
             model.paramCount()});
    }

    double max_acc = 0.0;
    for (const auto &p : points)
        max_acc = std::max(max_acc, p.accuracy);

    report::Table table({"Model", "MOPs/input", "Params",
                         "Top-1 accuracy", "", "Pareto-optimal"});
    for (const auto &p : points) {
        // Pareto-optimal: no variant is both cheaper and better.
        bool dominated = false;
        for (const auto &q : points) {
            if (q.mops < p.mops && q.accuracy > p.accuracy) {
                dominated = true;
                break;
            }
        }
        table.addRow({p.name, report::fmt(p.mops, 2),
                      report::fmtCompact(
                          static_cast<double>(p.params)),
                      report::fmt(100 * p.accuracy, 1) + "%",
                      report::bar(p.accuracy, max_acc, 30),
                      dominated ? "" : "yes"});
    }
    std::printf("%s", table.str().c_str());

    double min_mops = 1e300, max_mops = 0, min_acc = 1.0;
    for (const auto &p : points) {
        min_mops = std::min(min_mops, p.mops);
        max_mops = std::max(max_mops, p.mops);
        min_acc = std::min(min_acc, p.accuracy);
    }
    std::printf("\nComplexity range %.0fx; accuracy range %.1f%% .. "
                "%.1f%%. The paper's Figure 1 shape:\n"
                "a broad Pareto frontier (50x GOPs range) with no "
                "single optimal model.\n",
                max_mops / min_mops, 100 * min_acc, 100 * max_acc);
    return 0;
}
