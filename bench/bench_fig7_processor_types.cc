/**
 * @file
 * Regenerates Figure 7: number of closed-division results per
 * processor architecture, stacked by model. The paper's point: the
 * method evaluates every kind of processor — CPUs, GPUs, DSPs,
 * FPGAs, and ASICs all appear.
 */

#include <cstdio>
#include <map>

#include "common/population.h"
#include "report/table.h"

using namespace mlperf;
using sut::ProcessorType;

int
main()
{
    std::printf("%s", report::banner(
        "Figure 7: results per processor type (simulated "
        "population)").c_str());

    const auto population = bench::submissionPopulation();
    std::map<ProcessorType, std::map<models::TaskType, int>> counts;
    std::map<ProcessorType, int> totals;
    for (const auto &submission : population) {
        counts[submission.profile.processor][submission.task]++;
        totals[submission.profile.processor]++;
    }

    int max_total = 0;
    for (const auto &[proc, n] : totals)
        max_total = std::max(max_total, n);

    const ProcessorType order[] = {ProcessorType::DSP,
                                   ProcessorType::FPGA,
                                   ProcessorType::CPU,
                                   ProcessorType::ASIC,
                                   ProcessorType::GPU};
    report::Table table({"Processor", "MobileNet", "ResNet-50",
                         "SSD-MNv1", "SSD-R34", "GNMT", "Total", ""});
    for (ProcessorType proc : order) {
        auto &c = counts[proc];
        table.addRow({
            sut::processorName(proc),
            std::to_string(
                c[models::TaskType::ImageClassificationLight]),
            std::to_string(
                c[models::TaskType::ImageClassificationHeavy]),
            std::to_string(c[models::TaskType::ObjectDetectionLight]),
            std::to_string(c[models::TaskType::ObjectDetectionHeavy]),
            std::to_string(c[models::TaskType::MachineTranslation]),
            std::to_string(totals[proc]),
            report::bar(totals[proc], max_total, 30),
        });
    }
    std::printf("%s", table.str().c_str());
    std::printf("\nAll five processor families submit results: the "
                "benchmark method is architecture-neutral.\n");
    return 0;
}
