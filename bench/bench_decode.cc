/**
 * @file
 * Continuous vs. static batching for the autoregressive streaming
 * decoder.
 *
 * A statically batched decode pays two taxes the paper's fixed-batch
 * throughput numbers hide: finished slots burn equal-FLOPs padding at
 * the speed of the batch's longest member, and arrivals wait for the
 * whole batch to drain. Continuous (in-flight) batching re-forms the
 * batch every round, so sustained tokens/sec tracks the mean output
 * length instead of the batch max. This bench sweeps output-length
 * variance (low: 12-16-word sources; high: 4-48) and drives the same
 * DecoderEngine through both modes, gating on:
 *
 *  - continuous >= 1.5x static sustained tokens/sec at high variance
 *  - continuous TTFT p99 no worse than static
 *  - zero sequences shed, every sequence completed, in both modes
 *  - streamed output bit-identical to the eager reference decode
 *    regardless of batch composition
 *  - zero steady-state heap allocations in the decode path (measured
 *    with a binary-wide operator-new counter around a direct engine
 *    drive; result() string building is the documented per-sequence
 *    exception and is excluded by not calling it)
 *  - zero instrumented-lock acquisitions inside pump() rounds
 */

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <new>
#include <string>
#include <vector>

#include "common/bench_json.h"
#include "data/translation.h"
#include "models/stream_decoder.h"
#include "report/table.h"
#include "serving/continuous_batcher.h"
#include "sim/real_executor.h"
#include "stats/percentile.h"
#include "sut/decode_adapters.h"
#include "sut/nn_sut.h"

// Binary-wide heap-allocation counter (the bench_microkernels idiom):
// the steady-state decode path's headline claim is zero.
static std::atomic<long> g_heap_allocs{0};

void *
operator new(std::size_t size)
{
    g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

using namespace mlperf;

namespace {

constexpr size_t kSlots = 8;
constexpr uint64_t kSequences = 384;
constexpr int kReps = 5;  //!< paired reps: wall-clock noise control

/** Records per-sequence TTFT (issue to first token) and responses. */
class StreamProbe : public loadgen::ResponseDelegate
{
  public:
    explicit StreamProbe(sim::Executor &executor) : executor_(executor)
    {
    }

    void
    markIssued(uint64_t count)
    {
        issuedAt_.assign(count, executor_.now());
    }

    void
    querySampleFirstToken(loadgen::ResponseId id) override
    {
        ttfts_[id] = executor_.now() - issuedAt_[id];
    }

    void
    querySamplesComplete(
        const std::vector<loadgen::QuerySampleResponse> &responses)
        override
    {
        for (const auto &r : responses)
            data_[r.id] = r.data;
    }

    std::vector<uint64_t>
    ttftSamples() const
    {
        std::vector<uint64_t> out;
        out.reserve(ttfts_.size());
        for (const auto &entry : ttfts_)
            out.push_back(entry.second);
        return out;
    }

    std::map<loadgen::ResponseId, std::string> data_;

  private:
    sim::Executor &executor_;
    std::vector<sim::Tick> issuedAt_;
    std::map<loadgen::ResponseId, uint64_t> ttfts_;
};

struct ModeResult
{
    double tokensPerSec = 0.0;
    uint64_t ttftP99 = 0;
    uint64_t completed = 0;
    uint64_t shed = 0;
    uint64_t padSteps = 0;
    double slotUtilization = 0.0;
    uint64_t fastPathLocks = 0;
    uint64_t poolGrowths = 0;
    uint64_t mismatches = 0;  //!< responses != eager reference
};

std::vector<loadgen::QuerySample>
makeSamples(uint64_t count, uint64_t dataset_size)
{
    std::vector<loadgen::QuerySample> samples;
    samples.reserve(count);
    for (uint64_t i = 0; i < count; ++i)
        samples.push_back({i, i % dataset_size});
    return samples;
}

ModeResult
runModeOnce(const data::TranslationDataset &dataset,
            const nn::DecoderModel &model, serving::BatchingMode mode)
{
    sut::TranslationQsl qsl(dataset);
    std::vector<loadgen::QuerySampleIndex> all;
    for (int64_t i = 0; i < dataset.size(); ++i)
        all.push_back(static_cast<uint64_t>(i));
    qsl.loadSamplesToRam(all);

    sim::RealExecutor ex;
    sut::DecoderEngine engine(model, qsl, kSlots);
    serving::ContinuousBatcherOptions opts;
    opts.mode = mode;
    opts.startThread = false;  // direct drive: measure compute, not parking
    serving::ContinuousBatcher batcher(engine, ex, opts);
    StreamProbe probe(ex);

    const auto samples =
        makeSamples(kSequences, static_cast<uint64_t>(dataset.size()));
    probe.markIssued(kSequences);
    const sim::Tick t0 = ex.now();
    batcher.issueQuery(samples, probe);
    while (!batcher.idle())
        batcher.pump();
    const sim::Tick t1 = ex.now();

    const serving::BatcherCounters c = batcher.counters();
    ModeResult r;
    r.completed = c.completed;
    r.shed = c.shed;
    r.padSteps = c.padSteps;
    r.fastPathLocks = c.fastPathLockAcquisitions;
    r.poolGrowths = engine.poolGrowths();
    r.tokensPerSec = static_cast<double>(c.tokens) *
                     static_cast<double>(sim::kNsPerSec) /
                     static_cast<double>(t1 - t0);
    r.slotUtilization =
        c.decodeRounds > 0
            ? static_cast<double>(c.tokens) /
                  (static_cast<double>(c.decodeRounds) * kSlots)
            : 0.0;
    r.ttftP99 = stats::LatencySummary::from(probe.ttftSamples()).p99;
    for (const auto &entry : probe.data_) {
        const auto index =
            entry.first % static_cast<uint64_t>(dataset.size());
        const std::string expected = sut::encodeTokens(
            model.referenceDecode(
                dataset.source(static_cast<int64_t>(index))));
        if (entry.second != expected)
            ++r.mismatches;
    }
    return r;
}

/**
 * Merge one repetition into the reported result: best on the timing
 * metrics (one descheduled rep must not flip the gate), worst on the
 * correctness counters (one bad rep must still fail).
 */
void
mergeRep(ModeResult &acc, const ModeResult &r)
{
    acc.tokensPerSec = std::max(acc.tokensPerSec, r.tokensPerSec);
    acc.ttftP99 = std::min(acc.ttftP99, r.ttftP99);
    acc.completed = std::min(acc.completed, r.completed);
    acc.shed = std::max(acc.shed, r.shed);
    acc.padSteps = std::max(acc.padSteps, r.padSteps);
    acc.slotUtilization =
        std::max(acc.slotUtilization, r.slotUtilization);
    acc.fastPathLocks = std::max(acc.fastPathLocks, r.fastPathLocks);
    acc.poolGrowths = std::max(acc.poolGrowths, r.poolGrowths);
    acc.mismatches = std::max(acc.mismatches, r.mismatches);
}

struct AxisRun
{
    ModeResult st, ct;
    double speedup = 0.0;  //!< median of paired per-rep ratios
};

/**
 * Paired repetitions: each rep runs static then continuous back to
 * back and contributes one speedup ratio, so slow machine phases hit
 * both sides of the ratio; the gate uses the median ratio.
 */
AxisRun
runAxis(const data::TranslationDataset &dataset,
        const nn::DecoderModel &model)
{
    AxisRun out;
    std::vector<double> ratios;
    for (int rep = 0; rep < kReps; ++rep) {
        const ModeResult st =
            runModeOnce(dataset, model, serving::BatchingMode::Static);
        const ModeResult ct = runModeOnce(
            dataset, model, serving::BatchingMode::Continuous);
        if (st.tokensPerSec > 0)
            ratios.push_back(ct.tokensPerSec / st.tokensPerSec);
        if (rep == 0) {
            out.st = st;
            out.ct = ct;
        } else {
            mergeRep(out.st, st);
            mergeRep(out.ct, ct);
        }
    }
    std::sort(ratios.begin(), ratios.end());
    if (!ratios.empty())
        out.speedup = ratios[ratios.size() / 2];
    return out;
}

/**
 * Steady-state allocation count per churned sequence, driving the
 * engine directly (prefill/step/release; no result() strings). The
 * first pass through every slot warms the pool; the measured window
 * must allocate nothing.
 */
long
steadyStateAllocs(const data::TranslationDataset &dataset,
                  const nn::DecoderModel &model)
{
    sut::TranslationQsl qsl(dataset);
    std::vector<loadgen::QuerySampleIndex> all;
    for (int64_t i = 0; i < dataset.size(); ++i)
        all.push_back(static_cast<uint64_t>(i));
    qsl.loadSamplesToRam(all);

    sut::DecoderEngine engine(model, qsl, kSlots);
    const uint64_t n = static_cast<uint64_t>(dataset.size());
    uint64_t next = 0;

    bool occupied[kSlots] = {};  // outside churn: not a decode cost
    auto churn = [&](uint64_t sequences) {
        for (bool &o : occupied)
            o = false;
        uint64_t started = 0, finished = 0;
        while (finished < sequences) {
            for (size_t s = 0; s < kSlots && started < sequences; ++s) {
                if (!occupied[s]) {
                    engine.prefill(s, next++ % n);
                    occupied[s] = true;
                    ++started;
                }
            }
            for (size_t s = 0; s < kSlots; ++s) {
                if (!occupied[s])
                    continue;
                if (engine.step(s).finished) {
                    engine.release(s);
                    occupied[s] = false;
                    ++finished;
                }
            }
        }
    };

    churn(2 * kSlots);  // warmup: every slot exercised past capacity
    const long before = g_heap_allocs.load(std::memory_order_relaxed);
    churn(64);
    return g_heap_allocs.load(std::memory_order_relaxed) - before;
}

data::TranslationConfig
axisConfig(int64_t min_len, int64_t max_len)
{
    data::TranslationConfig config;
    config.sampleCount = 128;
    config.minLength = min_len;
    config.maxLength = max_len;
    // A wide output projection makes the decode step dominate the
    // (mode-independent) prefill encoder pass, so the measured ratio
    // reflects the batching policy rather than shared overhead.
    config.vocabSize = 2048;
    return config;
}

} // namespace

int
main()
{
    std::printf("%s", report::banner(
        "Continuous vs. static batching, autoregressive streaming "
        "decoder (8 slots)").c_str());

    struct Axis
    {
        const char *name;
        int64_t minLen, maxLen;
    };
    const Axis axes[] = {{"low_variance", 12, 16},
                         {"high_variance", 2, 64}};

    int failures = 0;
    bench::JsonWriter json;
    json.beginObject()
        .field("benchmark", "decode_batching")
        .field("slots", static_cast<uint64_t>(kSlots))
        .field("sequences", kSequences);
    json.beginArray("axes");

    report::Table table({"Axis", "Mode", "Tokens/s", "TTFT p99 (us)",
                         "Pad steps", "Slot util"});
    double high_variance_speedup = 0.0;
    for (const Axis &axis : axes) {
        const data::TranslationConfig config =
            axisConfig(axis.minLen, axis.maxLen);
        const data::TranslationDataset dataset(config);
        // Sharpen the positional query so attention stays locked to
        // slot t and EOS fires at the source's EOS slot: output
        // length tracks source length, making the sweep's length
        // variance the real experimental axis (with the default gain,
        // attention spill ends most long sentences early and both
        // modes mostly measure the shared prefill pass).
        models::TranslatorArch arch;
        arch.queryGain = 16.0;
        const nn::DecoderModel model =
            models::makeStreamDecoder(dataset, arch);

        const AxisRun run = runAxis(dataset, model);
        const ModeResult &st = run.st;
        const ModeResult &ct = run.ct;
        const long allocs = steadyStateAllocs(dataset, model);
        const double speedup = run.speedup;
        if (axis.maxLen > 16)
            high_variance_speedup = speedup;

        for (const ModeResult *r : {&st, &ct}) {
            const bool is_static = r == &st;
            table.addRow(
                {axis.name,
                 serving::batchingModeName(
                     is_static ? serving::BatchingMode::Static
                               : serving::BatchingMode::Continuous),
                 report::fmt(r->tokensPerSec, 0),
                 report::fmt(static_cast<double>(r->ttftP99) / 1000.0,
                             0),
                 report::fmt(static_cast<double>(r->padSteps), 0),
                 report::fmt(r->slotUtilization, 2)});
        }

        // ---- Invariants (both modes).
        for (const ModeResult *r : {&st, &ct}) {
            if (r->completed != kSequences || r->shed != 0) {
                std::printf("FAIL [%s]: dropped sequences "
                            "(completed %llu, shed %llu)\n",
                            axis.name,
                            static_cast<unsigned long long>(
                                r->completed),
                            static_cast<unsigned long long>(r->shed));
                ++failures;
            }
            if (r->mismatches != 0) {
                std::printf("FAIL [%s]: %llu responses diverged from "
                            "the eager reference\n",
                            axis.name,
                            static_cast<unsigned long long>(
                                r->mismatches));
                ++failures;
            }
            if (r->fastPathLocks != 0) {
                std::printf("FAIL [%s]: %llu instrumented lock "
                            "acquisitions on the decode fast path\n",
                            axis.name,
                            static_cast<unsigned long long>(
                                r->fastPathLocks));
                ++failures;
            }
            if (r->poolGrowths != 0) {
                std::printf("FAIL [%s]: decode-state pool grew %llu "
                            "times in steady state\n",
                            axis.name,
                            static_cast<unsigned long long>(
                                r->poolGrowths));
                ++failures;
            }
        }
        if (allocs != 0) {
            std::printf("FAIL [%s]: %ld heap allocations in the "
                        "steady-state decode window\n",
                        axis.name, allocs);
            ++failures;
        }
        // "No worse" with a 10% noise allowance: at low variance the
        // modes are legitimately near-equal (little padding to save),
        // so a strict comparison would gate on scheduler jitter.
        if (static_cast<double>(ct.ttftP99) >
            1.10 * static_cast<double>(st.ttftP99)) {
            std::printf("FAIL [%s]: continuous TTFT p99 (%llu ns) "
                        "worse than static (%llu ns)\n",
                        axis.name,
                        static_cast<unsigned long long>(ct.ttftP99),
                        static_cast<unsigned long long>(st.ttftP99));
            ++failures;
        }

        json.beginObject()
            .field("axis", axis.name)
            .field("min_source_len", static_cast<int>(axis.minLen))
            .field("max_source_len", static_cast<int>(axis.maxLen))
            .field("static_tokens_per_sec", st.tokensPerSec, 1)
            .field("continuous_tokens_per_sec", ct.tokensPerSec, 1)
            .field("speedup_vs_static", speedup)
            .field("static_ttft_p99_ns", st.ttftP99)
            .field("continuous_ttft_p99_ns", ct.ttftP99)
            .field("static_pad_steps", st.padSteps)
            .field("continuous_pad_steps", ct.padSteps)
            .field("static_slot_utilization", st.slotUtilization)
            .field("continuous_slot_utilization", ct.slotUtilization)
            .field("dropped",
                   st.shed + ct.shed +
                       (kSequences - st.completed) +
                       (kSequences - ct.completed))
            .field("steady_state_allocs",
                   static_cast<uint64_t>(allocs < 0 ? 0 : allocs))
            .field("fast_path_locks",
                   st.fastPathLocks + ct.fastPathLocks)
            .field("bit_identical",
                   st.mismatches == 0 && ct.mismatches == 0)
            .endObject();
    }
    json.endArray();

    std::printf("%s", table.str().c_str());
    std::printf("\nHigh-variance speedup (continuous / static): "
                "%.2fx (gate: >= 1.50x)\n",
                high_variance_speedup);
    if (high_variance_speedup < 1.5) {
        std::printf("FAIL: continuous batching must sustain >= 1.5x "
                    "static tokens/sec at high length variance\n");
        ++failures;
    }
    json.field("high_variance_speedup", high_variance_speedup)
        .field("pass", failures == 0)
        .endObject();
    if (!bench::writeBenchJson(json.str(), "BENCH_decode.json"))
        std::printf("WARN: could not write bench JSON\n");

    std::printf("\nStatic batching pays the batch max: finished "
                "slots pad until the longest member\ndrains, and "
                "joiners wait out the drain. Continuous batching "
                "refills slots the round\nafter EOS, so throughput "
                "tracks the mean output length — the gap is the "
                "length\nvariance, which is why the high-variance "
                "axis is the gated one.\n");
    return failures == 0 ? 0 : 1;
}
