/**
 * @file
 * Regenerates Table I: ML tasks, reference models, data sets, and
 * quality targets — with the paper's reference figures side by side
 * with this repository's proxy models and their measured FP32
 * quality.
 */

#include <cstdio>

#include "models/classifier.h"
#include "models/model_info.h"
#include "models/detector.h"
#include "models/translator.h"
#include "report/table.h"

using namespace mlperf;

int
main()
{
    std::printf("%s", report::banner(
        "Table I: ML tasks in MLPerf Inference v0.5 "
        "(paper reference vs. proxy)").c_str());

    data::ClassificationDataset imagenet;
    data::DetectionDataset coco;
    data::TranslationDataset wmt;

    const auto resnet = models::ImageClassifier::resnet50Proxy(imagenet);
    const auto mobilenet =
        models::ImageClassifier::mobilenetProxy(imagenet);
    const auto ssd_heavy =
        models::ObjectDetector::ssdResnet34Proxy(coco);
    const auto ssd_light =
        models::ObjectDetector::ssdMobilenetProxy(coco);
    const auto gnmt = models::Translator::gnmtProxy(wmt);

    report::Table table({"Area", "Task", "Reference model",
                         "Data set", "Paper params",
                         "Paper GOPs", "Proxy params", "Proxy MOPs",
                         "FP32 quality (proxy)", "Quality target"});

    auto add = [&](models::TaskType task, uint64_t proxy_params,
                   uint64_t proxy_flops, double measured,
                   const std::string &measured_label) {
        const auto &info = models::modelInfo(task);
        table.addRow({
            models::taskArea(task),
            models::taskModelName(task),
            info.modelName,
            info.proxyDataset,
            report::fmt(info.paperParamsMillions, 1) + "M",
            info.paperGopsPerInput > 0
                ? report::fmt(info.paperGopsPerInput, 2)
                : "-",
            report::fmtCompact(static_cast<double>(proxy_params)),
            report::fmt(static_cast<double>(proxy_flops) / 1e6, 1),
            measured_label + " " + report::fmt(measured, 3),
            report::fmt(100.0 * info.relativeQualityTarget, 0) +
                "% of FP32",
        });
    };

    const int64_t eval = 400;
    add(models::TaskType::ImageClassificationHeavy,
        resnet.paramCount(), resnet.flopsPerInput(),
        resnet.evaluateAccuracy(imagenet, eval), "Top-1");
    add(models::TaskType::ImageClassificationLight,
        mobilenet.paramCount(), mobilenet.flopsPerInput(),
        mobilenet.evaluateAccuracy(imagenet, eval), "Top-1");
    add(models::TaskType::ObjectDetectionHeavy,
        ssd_heavy.paramCount(), ssd_heavy.flopsPerInput(),
        ssd_heavy.evaluateMap(coco, 120), "mAP");
    add(models::TaskType::ObjectDetectionLight,
        ssd_light.paramCount(), ssd_light.flopsPerInput(),
        ssd_light.evaluateMap(coco, 120), "mAP");
    add(models::TaskType::MachineTranslation, gnmt.paramCount(),
        gnmt.flopsPerSentence(10), gnmt.evaluateBleu(wmt, 120),
        "SacreBLEU");

    std::printf("%s", table.str().c_str());
    std::printf("\nPaper Table I quality references: ResNet-50 "
                "76.456%% Top-1, MobileNet 71.676%% Top-1,\n"
                "SSD-R34 0.20 mAP, SSD-MNv1 0.22 mAP, GNMT 23.9 "
                "SacreBLEU (absolute values differ on the\n"
                "synthetic datasets; the quality-target machinery is "
                "relative to FP32, as in the paper).\n");
    return 0;
}
