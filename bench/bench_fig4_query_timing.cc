/**
 * @file
 * Regenerates Figure 4: timing and number of queries from the
 * LoadGen under each scenario, by recording real query timelines and
 * printing the first several issue times per scenario.
 */

#include <cstdio>

#include "loadgen/loadgen.h"
#include "report/table.h"
#include "sim/virtual_executor.h"
#include "sut/model_cost.h"
#include "sut/simulated_sut.h"
#include "sut/system_zoo.h"

using namespace mlperf;
using loadgen::Scenario;
using loadgen::TestSettings;

namespace {

loadgen::TestResult
runScenarioTrace(Scenario scenario)
{
    sim::VirtualExecutor executor;
    const auto &profile = sut::systemZoo()[20];  // a dc-class system
    sut::SimulatedSut system(
        executor, profile,
        sut::modelCostFor(models::TaskType::ImageClassificationHeavy));

    class Qsl : public loadgen::QuerySampleLibrary
    {
      public:
        std::string name() const override { return "trace-qsl"; }
        uint64_t totalSampleCount() const override { return 1024; }
        uint64_t performanceSampleCount() const override
        {
            return 256;
        }
        void loadSamplesToRam(
            const std::vector<loadgen::QuerySampleIndex> &) override
        {
        }
        void unloadSamplesFromRam(
            const std::vector<loadgen::QuerySampleIndex> &) override
        {
        }
    } qsl;

    TestSettings settings = TestSettings::forScenario(scenario);
    settings.recordTimeline = true;
    settings.maxQueryCount = 12;
    settings.serverTargetQps = 150.0;
    settings.multiStreamSamplesPerQuery = 4;
    settings.offlineSampleCount = 24576;
    loadgen::LoadGen lg(executor);
    return lg.startTest(system, qsl, settings);
}

} // namespace

int
main()
{
    std::printf("%s", report::banner(
        "Figure 4: timing and number of queries from the LoadGen"
        ).c_str());

    for (Scenario scenario :
         {Scenario::SingleStream, Scenario::MultiStream,
          Scenario::Server, Scenario::Offline}) {
        const auto result = runScenarioTrace(scenario);
        std::printf("\n--- %s (samples/query = %lu) ---\n",
                    loadgen::scenarioName(scenario).c_str(),
                    static_cast<unsigned long>(
                        result.samplesPerQuery));
        report::Table table({"Query", "Scheduled (ms)", "Issued (ms)",
                             "Completed (ms)", "Gap to prev issue"});
        const size_t n = std::min<size_t>(result.timeline.size(), 8);
        for (size_t i = 0; i < n; ++i) {
            const auto &q = result.timeline[i];
            const double gap =
                i ? static_cast<double>(
                        q.issued - result.timeline[i - 1].issued) /
                        1e6
                  : 0.0;
            table.addRow({std::to_string(i),
                          report::fmt(q.scheduled / 1e6, 3),
                          report::fmt(q.issued / 1e6, 3),
                          report::fmt(q.completed / 1e6, 3),
                          i ? report::fmt(gap, 3) + " ms" : "-"});
        }
        std::printf("%s", table.str().c_str());
        switch (scenario) {
          case Scenario::SingleStream:
            std::printf("(next query issues when the previous "
                        "completes: gaps track processing time)\n");
            break;
          case Scenario::MultiStream:
            std::printf("(fixed arrival interval; t constant per "
                        "benchmark)\n");
            break;
          case Scenario::Server:
            std::printf("(Poisson arrivals: t0, t1, t2 ... ~ "
                        "Exp(lambda); gaps vary)\n");
            break;
          case Scenario::Offline:
            std::printf("(a single query carrying every sample at "
                        "t=0)\n");
            break;
          case Scenario::TokenStream:
            std::printf("(Poisson arrivals; per-query latency is the "
                        "time to first streamed token)\n");
            break;
        }
    }
    return 0;
}
