/**
 * @file
 * Ablation: untimed vs. timed preprocessing (paper Sec. IV-A adopts
 * untimed preprocessing because "there is no vendor- or application-
 * neutral preprocessing"; Sec. I lists "timing preprocessing" as a
 * roadmap item). Two systems with identical inference speed but
 * different input pipelines swap single-stream rankings once
 * preprocessing is timed — the neutrality problem in one table.
 */

#include <cstdio>

#include "loadgen/loadgen.h"
#include "report/table.h"
#include "sim/virtual_executor.h"
#include "sut/model_cost.h"
#include "sut/simulated_sut.h"

using namespace mlperf;
using sim::kNsPerMs;

namespace {

class Qsl : public loadgen::QuerySampleLibrary
{
  public:
    std::string name() const override { return "prep-qsl"; }
    uint64_t totalSampleCount() const override { return 1024; }
    uint64_t performanceSampleCount() const override { return 256; }
    void loadSamplesToRam(
        const std::vector<loadgen::QuerySampleIndex> &) override
    {
    }
    void unloadSamplesFromRam(
        const std::vector<loadgen::QuerySampleIndex> &) override
    {
    }
};

double
singleStreamP90Ms(double peak_macs, sim::Tick preprocess_ns)
{
    sim::VirtualExecutor ex;
    sut::HardwareProfile profile;
    profile.systemName = "prep";
    profile.peakMacsPerSec = peak_macs;
    profile.batchOneEfficiency = 0.5;
    profile.jitterFraction = 0.02;
    sut::SchedulerOptions sched;
    sched.timedPreprocessNsPerSample = preprocess_ns;
    sut::SimulatedSut system(
        ex, profile,
        sut::modelCostFor(models::TaskType::ImageClassificationLight),
        sched);
    Qsl qsl;
    loadgen::TestSettings settings =
        loadgen::TestSettings::forScenario(
            loadgen::Scenario::SingleStream);
    settings.maxQueryCount = 2000;
    loadgen::LoadGen lg(ex);
    return lg.startTest(system, qsl, settings).latency.p90 / 1e6;
}

} // namespace

int
main()
{
    std::printf("%s", report::banner(
        "Ablation: untimed vs. timed preprocessing (MobileNet "
        "single-stream)").c_str());

    // System A: faster inference, but a JPEG-from-network pipeline
    // costing 2 ms/sample. System B: slower inference, integrated
    // camera delivering ideal-format frames (0.2 ms).
    struct Candidate
    {
        const char *name;
        double peakMacs;
        sim::Tick preprocessNs;
    };
    const Candidate a{"system-A (fast chip, JPEG decode)", 4e11,
                      3 * kNsPerMs};
    const Candidate b{"system-B (slower chip, camera pipe)", 2.5e11,
                      kNsPerMs / 5};

    report::Table table({"System", "p90, preprocessing UNTIMED (ms)",
                         "p90, preprocessing TIMED (ms)"});
    const Candidate candidates[] = {a, b};
    double untimed_p90[2], timed_p90[2];
    for (int i = 0; i < 2; ++i) {
        const Candidate &c = candidates[i];
        untimed_p90[i] = singleStreamP90Ms(c.peakMacs, 0);
        timed_p90[i] =
            singleStreamP90Ms(c.peakMacs, c.preprocessNs);
        table.addRow({c.name, report::fmt(untimed_p90[i], 2),
                      report::fmt(timed_p90[i], 2)});
    }
    const double a_untimed = untimed_p90[0], b_untimed = untimed_p90[1];
    const double a_timed = timed_p90[0], b_timed = timed_p90[1];
    std::printf("%s", table.str().c_str());
    std::printf("\nUntimed winner: %s; timed winner: %s.\n"
                "Timing preprocessing changes the ranking in favour "
                "of integrated pipelines — which is\nvendor-specific "
                "hardware/software co-design, not the neutral "
                "inference comparison the\nclosed division wants. "
                "Hence v0.5 keeps preprocessing untimed.\n",
                a_untimed < b_untimed ? "A" : "B",
                a_timed < b_timed ? "A" : "B");
    return 0;
}
