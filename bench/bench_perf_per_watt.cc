/**
 * @file
 * Power/efficiency view of the population (paper Sec. I: systems
 * "span at least three orders of magnitude in power consumption and
 * five orders of magnitude in performance"). Measures offline
 * ResNet-50 throughput and average power (idle + dynamic energy /
 * run time) for every zoo system and reports samples/s/W.
 */

#include <cstdio>

#include "harness/experiment.h"
#include "loadgen/loadgen.h"
#include "report/table.h"
#include "sim/virtual_executor.h"
#include "sut/simulated_sut.h"
#include "sut/system_zoo.h"

using namespace mlperf;

namespace {

class Qsl : public loadgen::QuerySampleLibrary
{
  public:
    std::string name() const override { return "pw-qsl"; }
    uint64_t totalSampleCount() const override { return 1024; }
    uint64_t performanceSampleCount() const override { return 256; }
    void loadSamplesToRam(
        const std::vector<loadgen::QuerySampleIndex> &) override
    {
    }
    void unloadSamplesFromRam(
        const std::vector<loadgen::QuerySampleIndex> &) override
    {
    }
};

} // namespace

int
main()
{
    std::printf("%s", report::banner(
        "Performance and power across the population (offline "
        "ResNet-50)").c_str());

    const auto task = models::TaskType::ImageClassificationHeavy;

    struct Row
    {
        std::string name;
        double qps;
        double watts;
    };
    std::vector<Row> rows;
    for (const auto &profile : sut::systemZoo()) {
        sim::VirtualExecutor ex;
        sut::SimulatedSut system(ex, profile,
                                 sut::modelCostFor(task));
        Qsl qsl;
        loadgen::TestSettings settings =
            loadgen::TestSettings::forScenario(
                loadgen::Scenario::Offline);
        loadgen::LoadGen lg(ex);
        const auto result = lg.startTest(system, qsl, settings);
        const double seconds =
            static_cast<double>(result.durationNs) / 1e9;
        const double watts =
            profile.idleWatts +
            (seconds > 0 ? system.dynamicEnergyJoules() / seconds
                         : 0.0);
        rows.push_back({profile.systemName, result.completedQps,
                        watts});
    }

    double min_qps = 1e300, max_qps = 0, min_w = 1e300, max_w = 0;
    for (const auto &row : rows) {
        min_qps = std::min(min_qps, row.qps);
        max_qps = std::max(max_qps, row.qps);
        min_w = std::min(min_w, row.watts);
        max_w = std::max(max_w, row.watts);
    }

    report::Table table({"System", "Offline samples/s", "Avg power",
                         "Samples/s/W", "Perf (log scale)"});
    for (const auto &row : rows) {
        table.addRow({row.name, report::fmtCompact(row.qps),
                      report::fmt(row.watts, 2) + " W",
                      report::fmt(row.qps / row.watts, 2),
                      report::logBar(row.qps / min_qps,
                                     max_qps / min_qps, 36)});
    }
    std::printf("%s", table.str().c_str());
    std::printf("\nPerformance range %.0fx; power range %.0fx "
                "(paper: five and three orders of magnitude).\n",
                max_qps / min_qps, max_w / min_w);
    return 0;
}
