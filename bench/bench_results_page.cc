/**
 * @file
 * Renders an MLPerf-style results page (paper Sec. V-A/V-C) for a
 * slice of the simulated closed-division population — measured
 * results, system descriptions, categories, and no summary score —
 * plus two open-division entries with documented deviations.
 */

#include <cstdio>

#include "common/population.h"
#include "harness/experiment.h"
#include "report/submission.h"

using namespace mlperf;

int
main()
{
    harness::ExperimentOptions options;
    options.scale = 0.04;
    options.search.runsPerDecision = 2;
    options.search.iterations = 8;

    std::vector<report::SubmissionResult> results;
    int taken = 0;
    for (const auto &submission : bench::submissionPopulation()) {
        // A representative page: every 8th population entry.
        if (taken++ % 8 != 0)
            continue;
        const auto outcome = harness::runScenario(
            submission.profile, submission.task, submission.scenario,
            options);
        report::SubmissionResult r;
        r.system = {
            submission.profile.systemName,
            "simulated",
            sut::processorName(submission.profile.processor),
            submission.profile.acceleratorCount,
            submission.profile.framework,
            sut::categoryName(submission.profile.category),
        };
        r.division = report::Division::Closed;
        r.benchmark = models::taskModelName(submission.task);
        r.scenario = loadgen::scenarioName(submission.scenario);
        r.metric = outcome.metric;
        r.metricLabel = outcome.result.scenarioMetricLabel();
        r.valid = outcome.valid;
        results.push_back(std::move(r));
    }

    // Two open-division entries (Sec. VI-E highlights).
    report::SubmissionResult open_a;
    open_a.system = {"dc-gpu-a", "simulated", "GPU", 1, "TensorRT",
                     "available"};
    open_a.division = report::Division::Open;
    open_a.benchmark = "ResNet-50 v1.5";
    open_a.scenario = "Offline";
    open_a.metric = 9000.0;
    open_a.metricLabel = "Samples per second";
    open_a.valid = true;
    open_a.openDeviations = "4-bit quantization";
    results.push_back(open_a);

    report::SubmissionResult open_b = open_a;
    open_b.system.systemName = "phone-npu-a";
    open_b.system.processor = "ASIC";
    open_b.system.framework = "Synapse";
    open_b.scenario = "MultiStream";
    open_b.metric = 24;
    open_b.metricLabel = "Samples per query";
    open_b.openDeviations =
        "two accelerators used concurrently; tighter latency bound";
    results.push_back(open_b);

    std::printf("%s", report::renderResultsPage(results).c_str());
    return 0;
}
