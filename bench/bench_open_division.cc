/**
 * @file
 * Open-division exploration (paper Sec. V-A and VI-E): the open
 * division "allows arbitrary ... models" with documented deviations.
 * This bench contrasts a closed-division entry (the reference
 * ResNet-50 proxy, 99% quality target) with open-division entries
 * that trade quality for speed — a slimmer backbone and 4-bit
 * quantization (the paper saw "4-bit quantization to boost
 * performance" among open submissions).
 */

#include <cstdio>

#include "models/classifier.h"
#include "models/model_info.h"
#include "report/table.h"

using namespace mlperf;

int
main()
{
    std::printf("%s", report::banner(
        "Open division: documented deviations from the closed "
        "reference").c_str());

    data::ClassificationDataset dataset;
    const int64_t eval = 600;

    struct Entry
    {
        std::string name;
        std::string deviations;
        double accuracy;
        uint64_t mops;
    };
    std::vector<Entry> entries;

    {
        models::ImageClassifier closed =
            models::ImageClassifier::resnet50Proxy(dataset);
        entries.push_back({"CLOSED: resnet50-proxy FP32", "none",
                           closed.evaluateAccuracy(dataset, eval),
                           closed.flopsPerInput() / 1000000});
    }
    {
        models::ImageClassifier int8 =
            models::ImageClassifier::resnet50Proxy(dataset);
        int8.quantize(dataset);
        entries.push_back(
            {"CLOSED: resnet50-proxy INT8",
             "approved numerics + calibration",
             int8.evaluateAccuracy(dataset, eval),
             int8.flopsPerInput() / 1000000});
    }
    {
        // OPEN: different architecture for the same task.
        models::ClassifierArch arch;
        arch.name = "open-slim-resnet";
        arch.stemWidth = 8;
        arch.blocks = 4;
        arch.weightSeed = 0x5E5E50;
        models::ImageClassifier slim(arch, dataset);
        entries.push_back(
            {"OPEN: slim-resnet-0.5x FP32",
             "model changed (0.5x width)",
             slim.evaluateAccuracy(dataset, eval),
             slim.flopsPerInput() / 1000000});
    }
    {
        // OPEN: aggressive numerics on the reference model.
        models::ImageClassifier int4 =
            models::ImageClassifier::resnet50Proxy(dataset);
        quant::QuantizeOptions o;
        o.bits = 4;
        int4.quantize(dataset, o);
        entries.push_back({"OPEN: resnet50-proxy INT4",
                           "4-bit weights/activations",
                           int4.evaluateAccuracy(dataset, eval),
                           int4.flopsPerInput() / 1000000});
    }

    const double closed_fp32 = entries[0].accuracy;
    report::Table table({"Entry", "Deviations", "Top-1",
                         "Rel. to closed FP32", "MOPs",
                         "Closed-division eligible"});
    for (const auto &entry : entries) {
        const bool eligible =
            entry.deviations == "none" ||
            entry.deviations == "approved numerics + calibration";
        const bool meets_quality =
            entry.accuracy >= 0.99 * closed_fp32;
        table.addRow({entry.name, entry.deviations,
                      report::fmt(entry.accuracy, 3),
                      report::fmt(100 * entry.accuracy / closed_fp32,
                                  1) + "%",
                      std::to_string(entry.mops),
                      eligible && meets_quality ? "yes" : "no"});
    }
    std::printf("%s", table.str().c_str());
    std::printf("\nOpen entries are \"directly comparable neither "
                "with each other nor with closed\nsubmissions\" "
                "(Sec. V-A) — each documents its deviations, as "
                "above. The slim model\nbuys ~4x fewer ops at a "
                "quality level a closed entry could never report.\n");
    return 0;
}
