/**
 * @file
 * Regenerates Table II: the four scenarios, their query-generation
 * patterns, and metrics — printed from the LoadGen's own scenario
 * defaults so the table reflects the implementation, not prose.
 */

#include <cstdio>

#include "loadgen/test_settings.h"
#include "report/table.h"
#include "stats/sample_size.h"

using namespace mlperf;
using loadgen::Scenario;
using loadgen::TestSettings;

int
main()
{
    std::printf("%s", report::banner(
        "Table II: scenario description and metrics").c_str());

    report::Table table({"Scenario", "Query generation", "Metric",
                         "Samples/query", "Min queries",
                         "Tail pct", "Examples"});

    const auto ss = TestSettings::forScenario(Scenario::SingleStream);
    table.addRow({"Single-stream (SS)", "sequential",
                  "90th-percentile latency", "1",
                  std::to_string(ss.minQueryCount),
                  report::fmt(ss.tailPercentile, 2),
                  "typing autocomplete, real-time AR"});

    const auto ms = TestSettings::forScenario(Scenario::MultiStream);
    table.addRow({"Multistream (MS)",
                  "arrival interval with dropping",
                  "number of streams s.t. latency bound", "N",
                  std::to_string(ms.minQueryCount),
                  report::fmt(ms.tailPercentile, 2),
                  "multicamera driver assistance"});

    const auto server = TestSettings::forScenario(Scenario::Server);
    table.addRow({"Server (S)", "Poisson distribution",
                  "queries per second s.t. latency bound", "1",
                  std::to_string(server.minQueryCount),
                  report::fmt(server.tailPercentile, 2),
                  "translation website"});

    const auto off = TestSettings::forScenario(Scenario::Offline);
    table.addRow({"Offline (O)", "batch", "throughput",
                  "at least " +
                      std::to_string(off.offlineSampleCount),
                  std::to_string(off.minQueryCount), "-",
                  "photo categorization"});

    std::printf("%s", table.str().c_str());
    std::printf("\nAll scenarios also enforce a %lu-second minimum "
                "run time (Sec. III-D).\n",
                static_cast<unsigned long>(
                    ss.minDurationNs / sim::kNsPerSec));
    return 0;
}
