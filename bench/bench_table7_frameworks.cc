/**
 * @file
 * Regenerates Table VII: framework versus hardware architecture — the
 * X-matrix of which software stacks ran on which processor types in
 * the (simulated) submission pool.
 */

#include <cstdio>
#include <map>
#include <set>

#include "report/table.h"
#include "sut/system_zoo.h"

using namespace mlperf;
using sut::ProcessorType;

int
main()
{
    std::printf("%s", report::banner(
        "Table VII: framework vs. hardware architecture").c_str());

    const ProcessorType processors[] = {
        ProcessorType::ASIC, ProcessorType::CPU, ProcessorType::DSP,
        ProcessorType::FPGA, ProcessorType::GPU};

    std::map<std::string, std::set<ProcessorType>> matrix;
    for (const auto &[framework, processor] :
         sut::frameworkProcessorMatrix()) {
        matrix[framework].insert(processor);
    }

    report::Table table(
        {"Framework", "ASIC", "CPU", "DSP", "FPGA", "GPU"});
    int cpu_frameworks = 0;
    for (const auto &[framework, procs] : matrix) {
        std::vector<std::string> row = {framework};
        for (ProcessorType p : processors)
            row.push_back(procs.count(p) ? "X" : "");
        if (procs.count(ProcessorType::CPU))
            ++cpu_frameworks;
        table.addRow(std::move(row));
    }
    std::printf("%s", table.str().c_str());
    std::printf("\nPaper observations to match: CPUs have the most "
                "framework diversity (%d here) and\n"
                "TensorFlow spans the most architectures (%zu "
                "processor types here).\n",
                cpu_frameworks, matrix["TensorFlow"].size());
    return 0;
}
