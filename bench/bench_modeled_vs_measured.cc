/**
 * @file
 * Regenerates the Sec. VII-D analysis (performance: modeled vs.
 * measured): SSD-ResNet-34 requires 175x the operations of
 * SSD-MobileNet-v1 per image, but measured throughput is only
 * 50-60x lower — network structure, not just operation count,
 * determines performance.
 */

#include <cstdio>

#include "common/bench_json.h"
#include "harness/experiment.h"
#include "report/table.h"
#include "sut/system_zoo.h"

using namespace mlperf;
using models::TaskType;

int
main()
{
    std::printf("%s", report::banner(
        "Sec. VII-D: modeled (op-count) vs. measured performance, "
        "SSD heavy vs. light").c_str());

    const auto &heavy_info =
        models::modelInfo(TaskType::ObjectDetectionHeavy);
    const auto &light_info =
        models::modelInfo(TaskType::ObjectDetectionLight);
    const double ops_ratio =
        heavy_info.paperGopsPerInput / light_info.paperGopsPerInput;

    harness::ExperimentOptions options;
    options.scale = 0.1;

    // Systems that run both SSD models in the population (offline
    // and server, as in the paper's ten-system comparison).
    const char *system_names[] = {"dc-gpu-a", "dc-gpu-b", "dc-gpu-c",
                                  "dc-gpu-d", "dc-asic-a",
                                  "dc-asic-b", "edge-gpu-a",
                                  "edge-gpu-b", "desktop-gpu-a",
                                  "dc-asic-d"};

    report::Table table({"System", "Offline ratio (light/heavy)",
                         "Ops ratio / measured"});
    bench::JsonWriter json;
    json.beginObject()
        .field("benchmark", "modeled_vs_measured")
        .field("ops_ratio", ops_ratio, 1);
    json.beginArray("systems");
    double sum_ratio = 0.0;
    int count = 0;
    for (const char *name : system_names) {
        for (const auto &profile : sut::systemZoo()) {
            if (profile.systemName != name)
                continue;
            const auto heavy = harness::runOffline(
                profile, TaskType::ObjectDetectionHeavy, options);
            const auto light = harness::runOffline(
                profile, TaskType::ObjectDetectionLight, options);
            if (heavy.metric <= 0.0)
                continue;
            const double measured = light.metric / heavy.metric;
            sum_ratio += measured;
            ++count;
            table.addRow({name, report::fmt(measured, 1) + "x",
                          report::fmt(ops_ratio / measured, 2) + "x"});
            json.beginObject()
                .field("system", name)
                .field("measured_ratio", measured)
                .field("structure_effect", ops_ratio / measured)
                .endObject();
        }
    }
    std::printf("%s", table.str().c_str());

    const double mean_measured = sum_ratio / count;
    json.endArray()
        .field("mean_measured_ratio", mean_measured)
        .field("mean_structure_effect", ops_ratio / mean_measured)
        .endObject();
    bench::writeBenchJson(json.str(), nullptr);
    std::printf("\nOperation-count ratio (Table I): %.0fx\n",
                ops_ratio);
    std::printf("Mean measured throughput ratio:    %.0fx\n",
                mean_measured);
    std::printf("Structure effect (ops / measured): %.1fx\n",
                ops_ratio / mean_measured);
    std::printf("\nPaper: \"the former requires 175x more operations "
                "per image, but the actual throughput\nis only "
                "50-60x less. This consistent 3x difference ... "
                "shows how network structure can\naffect "
                "performance.\"\n");
    return 0;
}
