/**
 * @file
 * Regenerates Figure 6: server-scenario throughput normalized to
 * offline throughput for eleven systems (A..K) across the five
 * models. Paper shapes to reproduce: every ratio <= 1; NMT loses
 * 39-55%; ResNet-50 loses 3-35% (avg ~20%); MobileNet loses <10% on
 * average; some systems (the paper's system B) lose ~50% on every
 * model.
 */

#include <cstdio>
#include <map>

#include "harness/experiment.h"
#include "report/table.h"
#include "sut/system_zoo.h"

using namespace mlperf;
using models::TaskType;

int
main()
{
    std::printf("%s", report::banner(
        "Figure 6: server-to-offline throughput ratio, 11 systems x "
        "5 models").c_str());

    harness::ExperimentOptions options;
    options.scale = 0.05;
    options.search.runsPerDecision = 2;
    options.search.iterations = 10;

    const auto systems = sut::figureSixSystems();
    const std::vector<TaskType> tasks = models::allTasks();

    report::Table table({"System", "Name", "MobileNet", "ResNet-50",
                         "SSD-MNv1", "SSD-R34", "NMT"});
    std::map<TaskType, std::vector<double>> ratios;

    const TaskType column_order[] = {
        TaskType::ImageClassificationLight,
        TaskType::ImageClassificationHeavy,
        TaskType::ObjectDetectionLight,
        TaskType::ObjectDetectionHeavy,
        TaskType::MachineTranslation,
    };

    char label = 'A';
    for (const auto &profile : systems) {
        std::vector<std::string> row = {std::string(1, label++),
                                        profile.systemName};
        for (TaskType task : column_order) {
            const auto offline =
                harness::runOffline(profile, task, options);
            const auto server =
                harness::runServer(profile, task, options);
            if (!server.valid || offline.metric <= 0.0) {
                row.push_back("-");
                continue;
            }
            const double ratio = server.metric / offline.metric;
            ratios[task].push_back(ratio);
            row.push_back(report::fmt(ratio, 2));
        }
        table.addRow(std::move(row));
    }
    std::printf("%s", table.str().c_str());

    std::printf("\nPer-model ratio summary (1.00 = no loss under the "
                "latency constraint):\n");
    report::Table summary({"Model", "Min", "Mean", "Max",
                           "Mean throughput loss"});
    for (TaskType task : column_order) {
        const auto &r = ratios[task];
        if (r.empty())
            continue;
        double lo = r[0], hi = r[0], sum = 0.0;
        for (double v : r) {
            lo = std::min(lo, v);
            hi = std::max(hi, v);
            sum += v;
        }
        const double mean = sum / static_cast<double>(r.size());
        summary.addRow({models::taskModelName(task),
                        report::fmt(lo, 2), report::fmt(mean, 2),
                        report::fmt(hi, 2),
                        report::fmt(100.0 * (1.0 - mean), 1) + "%"});
    }
    std::printf("%s", summary.str().c_str());
    std::printf("\nPaper shapes: all ratios <= ~1; NMT throughput "
                "reduction 39-55%%; ResNet-50 3-35%%\n"
                "(avg ~20%%); MobileNet under 10%% on average; "
                "latency-unconstrained comparisons\n"
                "extrapolate poorly to latency-constrained "
                "scenarios.\n");
    return 0;
}
