/**
 * @file
 * Ablation: dynamic batching in the server scenario. Sec. VI-B
 * attributes throughput-degradation differences to "a hardware
 * architecture optimized for low batch size or more-effective
 * dynamic batching in the inference engine" — this bench sweeps the
 * SUT's batching window and cap on a deep-batching GPU profile and
 * reports the achieved server metric.
 */

#include <cstdio>

#include "common/bench_json.h"
#include "harness/experiment.h"
#include "report/table.h"
#include "sut/system_zoo.h"

using namespace mlperf;

int
main()
{
    std::printf("%s", report::banner(
        "Ablation: dynamic batching vs. the server-scenario metric "
        "(dc-gpu-a, ResNet-50)").c_str());

    const sut::HardwareProfile *profile = nullptr;
    for (const auto &p : sut::systemZoo()) {
        if (p.systemName == "dc-gpu-a")
            profile = &p;
    }
    const auto task = models::TaskType::ImageClassificationHeavy;

    harness::ExperimentOptions base;
    base.scale = 0.1;
    base.search.runsPerDecision = 3;

    const auto offline = harness::runOffline(*profile, task, base);
    std::printf("Offline throughput (upper bound): %.0f samples/s\n\n",
                offline.metric);

    report::Table table({"Batch window", "Server QPS",
                         "Fraction of offline", ""});
    bench::JsonWriter json;
    json.beginObject()
        .field("benchmark", "ablation_batching")
        .field("system", "dc-gpu-a")
        .field("offline_samples_per_sec", offline.metric, 1);
    json.beginArray("sweep");
    for (double window_ms : {0.0, 0.5, 1.0, 2.0, 4.0, 8.0}) {
        harness::ExperimentOptions options = base;
        options.serverBatchWindowNs = static_cast<sim::Tick>(
            window_ms * static_cast<double>(sim::kNsPerMs));
        const auto server = harness::runServer(*profile, task, options);
        const double frac =
            offline.metric > 0 ? server.metric / offline.metric : 0;
        table.addRow({report::fmt(window_ms, 1) + " ms",
                      report::fmt(server.metric, 0),
                      report::fmt(frac, 2),
                      report::bar(frac, 1.0, 30)});
        json.beginObject()
            .field("window_ms", window_ms, 1)
            .field("server_qps", server.metric, 1)
            .field("fraction_of_offline", frac)
            .endObject();
    }
    json.endArray().endObject();
    bench::writeBenchJson(json.str(), nullptr);
    std::printf("%s", table.str().c_str());
    std::printf("\nNo batching (window 0) leaves the wide MAC array "
                "underutilized at batch ~1; widening\nthe window "
                "recovers throughput until the added queueing delay "
                "eats the latency budget —\nthe dynamic-batching "
                "tension behind Figure 6's per-system differences.\n");
    return 0;
}
