/**
 * @file
 * Regenerates the Sec. III-B / IV-A quantization study: per model,
 * FP32 quality vs. INT8 under different flows (calibrated
 * per-channel, per-tensor weights, no calibration, INT4), checked
 * against the Table I quality targets. Reproduces the paper's
 * narrative: ~1% loss is easy for ResNet-class models, while
 * MobileNet without quantization-friendly weights loses unacceptable
 * accuracy — the reason its window was widened to 2% and retrained
 * weights were provided.
 */

#include <cstdio>

#include "metrics/accuracy.h"
#include "models/classifier.h"
#include "models/detector.h"
#include "models/translator.h"
#include "report/table.h"

using namespace mlperf;

namespace {

std::string
verdict(double measured, double fp32, double target)
{
    return metrics::meetsTarget(measured, fp32, target)
               ? report::fmt(measured, 3) + "  (meets)"
               : report::fmt(measured, 3) + "  (FAILS)";
}

} // namespace

int
main()
{
    std::printf("%s", report::banner(
        "Sec. III-B: quantization flows vs. quality targets").c_str());

    data::ClassificationDataset imagenet;
    data::DetectionDataset coco;
    data::TranslationDataset wmt;
    const int64_t eval = 600;

    // ---------------------------------------------------- classifiers
    {
        report::Table table({"Model / flow", "Quality (Top-1)",
                             "Relative to FP32", "Target"});

        auto evaluate = [&](const char *label,
                            models::ImageClassifier model,
                            double fp32, double target) {
            const double acc =
                model.evaluateAccuracy(imagenet, eval);
            table.addRow({label, verdict(acc, fp32, target),
                          report::fmt(100.0 * acc / fp32, 1) + "%",
                          report::fmt(100.0 * target, 0) + "%"});
        };

        auto resnet = models::ImageClassifier::resnet50Proxy(imagenet);
        const double resnet_fp32 =
            resnet.evaluateAccuracy(imagenet, eval);
        table.addRow({"ResNet-50 proxy FP32",
                      report::fmt(resnet_fp32, 3), "100.0%", "-"});
        {
            auto int8 =
                models::ImageClassifier::resnet50Proxy(imagenet);
            int8.quantize(imagenet);
            evaluate("  INT8 calibrated", std::move(int8),
                     resnet_fp32, 0.99);
        }
        {
            auto int4 =
                models::ImageClassifier::resnet50Proxy(imagenet);
            quant::QuantizeOptions o;
            o.bits = 4;
            int4.quantize(imagenet, o);
            evaluate("  INT4 calibrated", std::move(int4),
                     resnet_fp32, 0.99);
        }
        {
            auto blind =
                models::ImageClassifier::resnet50Proxy(imagenet);
            quant::QuantizeOptions o;
            o.calibrate = false;
            o.nominalRange = 64.0f;
            // A blind flow has no calibration data and no layer
            // sensitivity information either.
            o.keepLastLayerFp32 = false;
            blind.quantize(imagenet, o);
            evaluate("  INT8 uncalibrated", std::move(blind),
                     resnet_fp32, 0.99);
        }
        table.addRule();

        auto mobilenet =
            models::ImageClassifier::mobilenetProxy(imagenet);
        const double mobilenet_fp32 =
            mobilenet.evaluateAccuracy(imagenet, eval);
        table.addRow({"MobileNet proxy FP32 (quant-friendly weights)",
                      report::fmt(mobilenet_fp32, 3), "100.0%", "-"});
        {
            auto int8 =
                models::ImageClassifier::mobilenetProxy(imagenet);
            int8.quantize(imagenet);
            evaluate("  INT8 calibrated", std::move(int8),
                     mobilenet_fp32, 0.98);
        }
        table.addRule();

        auto naive =
            models::ImageClassifier::mobilenetProxyNaive(imagenet);
        const double naive_fp32 =
            naive.evaluateAccuracy(imagenet, eval);
        table.addRow({"MobileNet proxy FP32 (naive weights)",
                      report::fmt(naive_fp32, 3), "100.0%", "-"});
        {
            auto pt =
                models::ImageClassifier::mobilenetProxyNaive(imagenet);
            quant::QuantizeOptions o;
            o.perChannelWeights = false;
            pt.quantize(imagenet, o);
            evaluate("  INT8 per-tensor weights", std::move(pt),
                     naive_fp32, 0.98);
        }
        {
            auto pc =
                models::ImageClassifier::mobilenetProxyNaive(imagenet);
            pc.quantize(imagenet);
            evaluate("  INT8 per-channel weights", std::move(pc),
                     naive_fp32, 0.98);
        }
        std::printf("%s\n", table.str().c_str());
    }

    // ------------------------------------------------------ detectors
    {
        report::Table table(
            {"Model / flow", "Quality (mAP)", "Relative", "Target"});
        auto heavy = models::ObjectDetector::ssdResnet34Proxy(coco);
        const double heavy_fp32 = heavy.evaluateMap(coco, 200);
        table.addRow({"SSD-ResNet-34 proxy FP32",
                      report::fmt(heavy_fp32, 3), "100.0%", "-"});
        auto heavy_int8 =
            models::ObjectDetector::ssdResnet34Proxy(coco);
        heavy_int8.quantize(coco);
        const double heavy_q = heavy_int8.evaluateMap(coco, 200);
        table.addRow({"  INT8 calibrated",
                      verdict(heavy_q, heavy_fp32, 0.99),
                      report::fmt(100.0 * heavy_q / heavy_fp32, 1) +
                          "%",
                      "99%"});
        std::printf("%s\n", table.str().c_str());
    }

    // ----------------------------------------------------- translator
    {
        report::Table table({"Model / flow", "Quality (BLEU)",
                             "Relative", "Target"});
        auto gnmt = models::Translator::gnmtProxy(wmt);
        const double fp32 = gnmt.evaluateBleu(wmt, 300);
        table.addRow({"GNMT proxy FP32", report::fmt(fp32, 2),
                      "100.0%", "-"});
        auto int8 = models::Translator::gnmtProxy(wmt);
        int8.quantize(wmt);
        const double q = int8.evaluateBleu(wmt, 300);
        table.addRow({"  INT8 projection",
                      verdict(q, fp32, 0.99),
                      report::fmt(100.0 * q / fp32, 1) + "%", "99%"});
        std::printf("%s\n", table.str().c_str());
    }

    std::printf("Paper narrative reproduced: the ~1%% relative "
                "target is \"easily achievable without\nretraining\" "
                "for ResNet-class models; MobileNet's naive weights "
                "lose unacceptable\naccuracy under the early "
                "per-tensor flow, so MLPerf shipped "
                "quantization-friendly\nweights and a 2%% window; "
                "calibration (the provided data set) is what makes "
                "INT8 work.\n");
    return 0;
}
