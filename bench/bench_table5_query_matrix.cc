/**
 * @file
 * Regenerates Table V: number of queries and samples per query for
 * each task and scenario, derived from the same machinery the
 * LoadGen uses at run time (settingsForTask).
 */

#include <cstdio>

#include "common/string_util.h"
#include "harness/experiment.h"
#include "report/table.h"

using namespace mlperf;

int
main()
{
    std::printf("%s", report::banner(
        "Table V: number of queries / samples per query per task "
        "and scenario").c_str());

    harness::ExperimentOptions options;  // full-scale settings
    report::Table table({"Model", "Single-stream", "Multistream",
                         "Server", "Offline"});
    for (const auto &info : models::referenceModels()) {
        const auto ss = harness::settingsForTask(
            info.task, loadgen::Scenario::SingleStream, options);
        const auto ms = harness::settingsForTask(
            info.task, loadgen::Scenario::MultiStream, options);
        const auto server = harness::settingsForTask(
            info.task, loadgen::Scenario::Server, options);
        const auto off = harness::settingsForTask(
            info.task, loadgen::Scenario::Offline, options);
        table.addRow({
            info.modelName,
            withThousands(ss.minQueryCount) + " / 1",
            withThousands(ms.minQueryCount) + " / N",
            withThousands(server.minQueryCount) + " / 1",
            withThousands(off.minQueryCount) + " / " +
                withThousands(off.offlineSampleCount),
        });
    }
    std::printf("%s", table.str().c_str());
    std::printf("\nPaper row check: vision tasks 1K/270K/270K/24K, "
                "translation 1K/90K/90K/24K.\n");
    return 0;
}
