/**
 * @file
 * Multitenancy extension (paper Sec. IV-B: "a multitenancy mode where
 * the SUT must continuously serve multiple models while maintaining
 * QoS constraints"): ResNet-50 and GNMT share one data-center system.
 * Reports each tenant's standalone server capacity, then the
 * capacity/latency the pair sustains together.
 */

#include <cstdio>

#include "harness/experiment.h"
#include "loadgen/loadgen.h"
#include "report/table.h"
#include "sim/virtual_executor.h"
#include "sut/multi_model_sut.h"
#include "sut/system_zoo.h"

using namespace mlperf;
using sim::kNsPerMs;

namespace {

class Qsl : public loadgen::QuerySampleLibrary
{
  public:
    std::string name() const override { return "mt-qsl"; }
    uint64_t totalSampleCount() const override { return 1024; }
    uint64_t performanceSampleCount() const override { return 256; }
    void loadSamplesToRam(
        const std::vector<loadgen::QuerySampleIndex> &) override
    {
    }
    void unloadSamplesFromRam(
        const std::vector<loadgen::QuerySampleIndex> &) override
    {
    }
};

} // namespace

int
main()
{
    std::printf("%s", report::banner(
        "Multitenancy: ResNet-50 + GNMT sharing one system "
        "(dc-asic-a)").c_str());

    const sut::HardwareProfile *profile = nullptr;
    for (const auto &p : sut::systemZoo()) {
        if (p.systemName == "dc-asic-a")
            profile = &p;
    }

    harness::ExperimentOptions options;
    options.scale = 0.05;
    options.search.runsPerDecision = 2;

    const auto resnet_solo = harness::runServer(
        *profile, models::TaskType::ImageClassificationHeavy, options);
    const auto gnmt_solo = harness::runServer(
        *profile, models::TaskType::MachineTranslation, options);
    std::printf("Standalone server capacity: ResNet %.0f qps, "
                "GNMT %.0f qps\n\n",
                resnet_solo.metric, gnmt_solo.metric);

    // Co-located run: give each tenant half its standalone load, then
    // 80%, and report validity (can the pair keep both QoS bounds?).
    report::Table table({"Load (of standalone)", "ResNet qps",
                         "ResNet p99 (ms)", "ResNet valid",
                         "GNMT qps", "GNMT p99 (ms)", "GNMT valid"});
    for (double fraction : {0.4, 0.5, 0.6, 0.8}) {
        sim::VirtualExecutor ex;
        sut::MultiModelSut shared(
            ex, *profile,
            {sut::modelCostFor(
                 models::TaskType::ImageClassificationHeavy),
             sut::modelCostFor(
                 models::TaskType::MachineTranslation)});
        Qsl qsl_a, qsl_b;
        auto settings_a = harness::settingsForTask(
            models::TaskType::ImageClassificationHeavy,
            loadgen::Scenario::Server, options);
        settings_a.serverTargetQps = fraction * resnet_solo.metric;
        auto settings_b = harness::settingsForTask(
            models::TaskType::MachineTranslation,
            loadgen::Scenario::Server, options);
        settings_b.serverTargetQps = fraction * gnmt_solo.metric;

        loadgen::LoadGen lg(ex);
        const auto results = lg.startMultiTenantTest(
            {{&shared.tenantSut(0), &qsl_a, settings_a},
             {&shared.tenantSut(1), &qsl_b, settings_b}});
        table.addRow({
            report::fmt(100 * fraction, 0) + "%",
            report::fmt(settings_a.serverTargetQps, 0),
            report::fmt(results[0].latency.p99 / 1e6, 1),
            results[0].valid ? "VALID" : "INVALID",
            report::fmt(settings_b.serverTargetQps, 0),
            report::fmt(results[1].latency.p99 / 1e6, 1),
            results[1].valid ? "VALID" : "INVALID",
        });
    }
    std::printf("%s", table.str().c_str());
    std::printf("\nSharing is not free: the tenants cannot each keep "
                "~their full standalone load —\ncontention shows up "
                "in the tails first, which is why the extension "
                "demands QoS be\nmaintained per tenant.\n");
    return 0;
}
