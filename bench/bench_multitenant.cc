/**
 * @file
 * Multitenancy extension (paper Sec. IV-B: "a multitenancy mode where
 * the SUT must continuously serve multiple models while maintaining
 * QoS constraints"), served for real through the multi-tenant
 * platform: one ModelRegistry holding four hot models, one shared
 * worker pool, per-tenant admission budgets and SLO classes.
 *
 * Four studies:
 *  1. Contention: tenant B (ResNet, Standard SLO) keeps its solo p99
 *     while tenant A (GNMT) bursts to 4x its load — because A's
 *     per-tenant budget sheds A's overflow at A's front door. The
 *     shared-budget ablation (no per-tenant admission) shows the
 *     alternative: A's burst queues freely and B's tail degrades.
 *  2. DAG pipelines: a preprocess -> model -> postprocess chain and a
 *     fan-out/join graph produce bit-identical outputs to running the
 *     stages by hand.
 *  3. Zero-alloc steady state: registry acquire + compiled-plan
 *     execution performs no heap allocation per query once warm.
 *  4. Registry churn: the counters after publish/swap/evict traffic.
 */

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "common/bench_json.h"
#include "data/classification.h"
#include "harness/experiment.h"
#include "models/classifier.h"
#include "nn/plan.h"
#include "common/string_util.h"
#include "report/serving_report.h"
#include "report/table.h"
#include "serving/tenancy/dag.h"
#include "serving/tenancy/model_registry.h"
#include "sut/serving_adapters.h"
#include "sut/system_zoo.h"

// Binary-wide allocation counter (same idiom as bench_microkernels):
// the zero-alloc study must observe every operator-new on the
// steady-state query path.
static std::atomic<long> g_heap_allocs{0};

void *
operator new(std::size_t size)
{
    g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

using namespace mlperf;

namespace {

/**
 * Rates sized against dc-asic-a's ~115k qps pooled capacity (4 event
 * workers, batch 16): steady-state demand is ~32% utilization, and
 * the aggressor's 4x burst alone exceeds pool capacity — without its
 * admission budget it fills the shared queue for everyone.
 */
constexpr double kVictimQps = 3000.0;
constexpr double kAggressorBaseQps = 30000.0;
constexpr double kBackgroundQps = 1000.0;
constexpr double kQuantizedQps = 2000.0;
constexpr double kBurstFactor = 4.0;

harness::TenantSpec
victimSpec()
{
    harness::TenantSpec spec;
    spec.policy.name = "tenantB-resnet";
    spec.policy.slo = serving::SloClass::Standard;
    spec.policy.sloDefaults = false;
    spec.policy.admission = {64, 0};
    spec.policy.queryDeadlineNs = 0;
    spec.task = models::TaskType::ImageClassificationHeavy;
    spec.qps = kVictimQps;
    return spec;
}

harness::TenantSpec
aggressorSpec(double burst)
{
    harness::TenantSpec spec;
    spec.policy.name = "tenantA-gnmt";
    spec.policy.slo = serving::SloClass::Interactive;
    spec.policy.sloDefaults = false;
    // The isolation mechanism: at most 3 batches of GNMT may occupy
    // the shared pool, no matter how hard this tenant bursts.
    spec.policy.admission = {48, 0};
    spec.policy.queryDeadlineNs = 0;
    spec.task = models::TaskType::MachineTranslation;
    spec.qps = kAggressorBaseQps * burst;
    return spec;
}

harness::TenantSpec
backgroundSpec()
{
    harness::TenantSpec spec;
    spec.policy.name = "tenantC-ssd";
    spec.policy.slo = serving::SloClass::Batch;
    spec.policy.sloDefaults = false;
    spec.policy.admission = {32, 0};
    spec.policy.queryDeadlineNs = 0;
    spec.task = models::TaskType::ObjectDetectionLight;
    spec.qps = kBackgroundQps;
    return spec;
}

/** Int8-variant tenant: same task, scaled cost, own registry entry. */
harness::TenantSpec
quantizedSpec()
{
    harness::TenantSpec spec;
    spec.policy.name = "tenantD-resnet-int8";
    spec.policy.slo = serving::SloClass::Interactive;
    spec.policy.sloDefaults = false;
    spec.policy.admission = {32, 0};
    spec.policy.queryDeadlineNs = 0;
    spec.task = models::TaskType::ImageClassificationHeavy;
    spec.qps = kQuantizedQps;
    spec.costScale = 0.4;
    return spec;
}

/** Strip per-tenant budgets: the shared free-for-all ablation. */
std::vector<harness::TenantSpec>
withoutBudgets(std::vector<harness::TenantSpec> specs)
{
    for (auto &spec : specs)
        spec.policy.admission = {};
    return specs;
}

const harness::TenantOutcome &
tenantNamed(const harness::MultiTenantOutcome &out,
            const std::string &name)
{
    for (const auto &tenant : out.tenants) {
        if (tenant.name == name)
            return tenant;
    }
    std::fprintf(stderr, "FATAL: tenant '%s' missing from outcome\n",
                 name.c_str());
    std::exit(1);
}

double
p99Ms(const harness::TenantOutcome &tenant)
{
    return tenant.outcome.result.latency.p99 / 1e6;
}

bool
bitIdentical(const tensor::Tensor &a, const tensor::Tensor &b)
{
    return a.numel() == b.numel() &&
           std::memcmp(a.data(), b.data(),
                       static_cast<size_t>(a.numel()) *
                           sizeof(float)) == 0;
}

} // namespace

int
main()
{
    std::printf("%s",
                report::banner("Multi-tenant platform: 4 hot models, "
                               "per-tenant budgets vs shared (dc-asic-a)")
                    .c_str());

    const sut::HardwareProfile *profile = nullptr;
    for (const auto &p : sut::systemZoo()) {
        if (p.systemName == "dc-asic-a")
            profile = &p;
    }
    if (profile == nullptr) {
        // A renamed zoo entry must fail the bench, not segfault it.
        std::fprintf(stderr,
                     "FATAL: system 'dc-asic-a' is missing from the "
                     "system zoo\n");
        return 1;
    }

    harness::ExperimentOptions options;
    options.scale = 0.02;

    serving::PlatformOptions popts;
    popts.workers = 4;
    popts.maxBatch = 16;
    popts.queueCapacityBatches = 64;

    // ------------------------------------------------ contention study
    const std::vector<harness::TenantSpec> steady = {
        victimSpec(), aggressorSpec(1.0), backgroundSpec(),
        quantizedSpec()};
    const std::vector<harness::TenantSpec> burst = {
        victimSpec(), aggressorSpec(kBurstFactor), backgroundSpec(),
        quantizedSpec()};

    const auto solo = harness::runMultiTenantServing(
        *profile, {victimSpec()}, options, popts);
    const auto budgets_1x =
        harness::runMultiTenantServing(*profile, steady, options, popts);
    const auto budgets_4x =
        harness::runMultiTenantServing(*profile, burst, options, popts);
    const auto shared_4x = harness::runMultiTenantServing(
        *profile, withoutBudgets(burst), options, popts);

    const double solo_p99 = p99Ms(tenantNamed(solo, "tenantB-resnet"));
    const double b_1x = p99Ms(tenantNamed(budgets_1x, "tenantB-resnet"));
    const double b_4x = p99Ms(tenantNamed(budgets_4x, "tenantB-resnet"));
    const double s_4x = p99Ms(tenantNamed(shared_4x, "tenantB-resnet"));

    report::Table table({"Run", "Tenant A load", "Budgets",
                         "B p99 (ms)", "vs solo", "A shed rate"});
    auto row = [&](const char *label, const char *load,
                   const char *budgeted,
                   const harness::MultiTenantOutcome &out, double p99) {
        const double a_shed =
            out.tenants.size() > 1
                ? tenantNamed(out, "tenantA-gnmt").stats.shedRate()
                : 0.0;
        table.addRow({label, load, budgeted, report::fmt(p99, 3),
                      report::fmt(100.0 * (p99 / solo_p99 - 1.0), 1) +
                          "%",
                      report::fmt(100.0 * a_shed, 1) + "%"});
    };
    row("B solo", "-", "-", solo, solo_p99);
    row("steady", "1x", "per-tenant", budgets_1x, b_1x);
    row("burst", "4x", "per-tenant", budgets_4x, b_4x);
    row("burst", "4x", "shared", shared_4x, s_4x);
    std::printf("%s", table.str().c_str());

    const bool isolated = b_4x <= solo_p99 * 1.25;
    std::printf(
        "\nIsolation %s: under a %gx burst from tenant A, per-tenant "
        "budgets keep tenant B's\np99 at %.3f ms (solo %.3f ms, "
        "%+.1f%%); the shared free-for-all lets it reach %.3f ms\n"
        "(%+.1f%%) because A's overflow queues in front of everyone.\n",
        isolated ? "holds" : "FAILED", kBurstFactor, b_4x, solo_p99,
        100.0 * (b_4x / solo_p99 - 1.0), s_4x,
        100.0 * (s_4x / solo_p99 - 1.0));

    std::vector<report::TenantReportRow> rows;
    for (const auto &tenant : budgets_4x.tenants) {
        report::TenantReportRow r;
        r.name = tenant.name;
        r.slo = serving::sloClassName(tenant.slo);
        r.model = tenant.model;
        r.stats = tenant.stats;
        r.p99Ms = p99Ms(tenant);
        r.valid = tenant.outcome.valid;
        rows.push_back(r);
    }
    std::printf("\n%s",
                report::renderMultiTenantSummary(
                    rows, budgets_4x.platform, budgets_4x.registry,
                    budgets_4x.elapsedNs)
                    .c_str());

    // ------------------------------------------------- DAG bit-exactness
    data::ClassificationConfig dconfig;
    dconfig.samplesPerClass = 2;
    const data::ClassificationDataset dataset(dconfig);
    models::ImageClassifier classifier =
        models::ImageClassifier::mobilenetProxy(dataset);
    sut::ClassificationQsl qsl(dataset, 8);
    qsl.loadSamplesToRam({0, 1, 2, 3});

    serving::ModelRegistry registry;
    sut::publishClassifierModel(registry, "mobilenet", "fp32",
                                classifier, qsl);

    const auto preprocess =
        [](const std::vector<const tensor::Tensor *> &in,
           const serving::DagContext &) {
            tensor::Tensor out = *in[0];
            for (int64_t i = 0; i < out.numel(); ++i)
                out.data()[i] = out.data()[i] * 0.5f + 0.1f;
            return out;
        };
    const auto postprocess =
        [](const std::vector<const tensor::Tensor *> &in,
           const serving::DagContext &) {
            tensor::Tensor out = *in[0];
            for (int64_t i = 0; i < out.numel(); ++i)
                out.data()[i] = out.data()[i] * 2.0f - 1.0f;
            return out;
        };

    serving::DagBuilder chain("pre-model-post");
    const int c_in = chain.input();
    const int c_pre = chain.stage("preprocess", preprocess, {c_in}, 0.2);
    const int c_model = chain.stage(
        "model", serving::registryModelStage(registry, "mobilenet"),
        {c_pre}, 1.0);
    chain.stage("postprocess", postprocess, {c_model}, 0.1);
    const serving::DagPipeline pipeline = chain.build();

    const tensor::Tensor image = dataset.image(0);
    const tensor::Tensor dag_out = pipeline.run(image);

    const serving::ModelHandle handle = registry.acquire("mobilenet");
    const tensor::Tensor m_pre = preprocess({&image}, {});
    const tensor::Tensor m_model = handle->forward(m_pre);
    const tensor::Tensor m_out = postprocess({&m_model}, {});
    const bool chain_exact = bitIdentical(dag_out, m_out);

    // Fan-out across two stages sharing one upstream, joined by sum.
    serving::DagBuilder fan("fanout-join");
    const int f_in = fan.input();
    const int f_pre = fan.stage("preprocess", preprocess, {f_in}, 0.2);
    const int f_a = fan.stage(
        "model-a", serving::registryModelStage(registry, "mobilenet"),
        {f_pre}, 1.0);
    const int f_b = fan.stage("identity", postprocess, {f_pre}, 0.2);
    fan.stage("join",
              [](const std::vector<const tensor::Tensor *> &in,
                 const serving::DagContext &) {
                  tensor::Tensor out = *in[0];
                  const int64_t n =
                      std::min(out.numel(), in[1]->numel());
                  for (int64_t i = 0; i < n; ++i)
                      out.data()[i] += in[1]->data()[i];
                  return out;
              },
              {f_a, f_b}, 0.1);
    const serving::DagPipeline fan_pipeline = fan.build();
    const tensor::Tensor fan_out = fan_pipeline.run(image);

    tensor::Tensor m_join = handle->forward(m_pre);
    const tensor::Tensor m_ident = postprocess({&m_pre}, {});
    const int64_t join_n = std::min(m_join.numel(), m_ident.numel());
    for (int64_t i = 0; i < join_n; ++i)
        m_join.data()[i] += m_ident.data()[i];
    const bool fan_exact = bitIdentical(fan_out, m_join);

    std::printf("\nDAG pipelines: chain %s, fan-out/join %s "
                "(bit-identical to running the stages by hand)\n",
                chain_exact ? "EXACT" : "MISMATCH",
                fan_exact ? "EXACT" : "MISMATCH");

    // -------------------------------------------- zero-alloc steady state
    const nn::CompiledModel &compiled = classifier.compiled();
    nn::ExecutionInstance &instance = nn::ExecutionInstance::thread();
    const tensor::Tensor &sample = qsl.sample(1);
    auto serve_once = [&]() {
        const serving::ModelHandle h = registry.acquire("mobilenet");
        float *staged = instance.stageInput(compiled, 1);
        for (int64_t i = 0; i < sample.numel(); ++i)
            staged[i] = sample.data()[i];
        instance.run(compiled, 1);
        (void)h;
    };
    for (int i = 0; i < 4; ++i)
        serve_once();  // warm-up: plan cache + arena growth
    const long before = g_heap_allocs.load(std::memory_order_relaxed);
    constexpr int kSteadyQueries = 64;
    for (int i = 0; i < kSteadyQueries; ++i)
        serve_once();
    const long steady_allocs =
        g_heap_allocs.load(std::memory_order_relaxed) - before;
    std::printf("Steady-state serving (registry acquire + compiled "
                "plan): %ld allocs across %d queries\n",
                steady_allocs, kSteadyQueries);

    const serving::RegistrySnapshot reg = registry.snapshot();

    // ------------------------------------------------------------- JSON
    std::string json = "{\"bench\":\"multitenant\",";
    json += strprintf(
        "\"tenants\":%zu,\"burst_factor\":%.1f,\"hot_models\":%lld,"
        "\"registry_constant_bytes\":%lld,"
        "\"solo_p99_ms\":%.4f,\"budgets_1x_p99_ms\":%.4f,"
        "\"budgets_4x_p99_ms\":%.4f,\"shared_4x_p99_ms\":%.4f,"
        "\"isolation_holds\":%s,"
        "\"aggressor_shed_rate_4x\":%.4f,"
        "\"dag_chain_bitexact\":%s,\"dag_fanout_bitexact\":%s,"
        "\"steady_state_allocs\":%ld,\"steady_state_queries\":%d,",
        steady.size(), kBurstFactor,
        static_cast<long long>(budgets_4x.registry.hotModels),
        static_cast<long long>(reg.constantBytes), solo_p99, b_1x,
        b_4x, s_4x, isolated ? "true" : "false",
        tenantNamed(budgets_4x, "tenantA-gnmt").stats.shedRate(),
        chain_exact ? "true" : "false", fan_exact ? "true" : "false",
        steady_allocs, kSteadyQueries);
    json += "\"tenants_4x\":[";
    for (size_t i = 0; i < rows.size(); ++i) {
        if (i)
            json += ",";
        json += report::tenantSnapshotJson(rows[i],
                                           budgets_4x.elapsedNs);
    }
    json += "]}";
    std::printf("\nJSON: %s\n", json.c_str());

    // MLPERF_BENCH_JSON=<path> writes the machine-readable results
    // for the BENCH_* tracking scripts.
    mlperf::bench::writeBenchJson(json, nullptr);

    return (profile && chain_exact && fan_exact && steady_allocs == 0 &&
            isolated)
               ? 0
               : 1;
}
