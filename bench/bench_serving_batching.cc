/**
 * @file
 * Ablation: the concurrent serving runtime vs. the inline SUT on the
 * real classifier, under the wall-clock executor. The inline
 * ClassifierSut runs inference synchronously inside issueQuery, so
 * the LoadGen's issue thread serializes every sample; ServingSut
 * moves compute onto a worker pool behind a dynamic batcher. The
 * sweep varies worker count and batch cap at a fixed Poisson load
 * and reports achieved throughput and p99 latency, plus the serving
 * runtime's own queue/batch statistics as JSON for downstream
 * plotting.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "loadgen/loadgen.h"
#include "report/serving_report.h"
#include "report/table.h"
#include "serving/chaos.h"
#include "serving/serving_sut.h"
#include "sim/real_executor.h"
#include "sut/nn_sut.h"
#include "sut/serving_adapters.h"

using namespace mlperf;

namespace {

constexpr uint64_t kQueryCount = 128;

loadgen::TestSettings
serverSettings(double qps)
{
    loadgen::TestSettings settings =
        loadgen::TestSettings::forScenario(loadgen::Scenario::Server);
    settings.serverTargetQps = qps;
    settings.maxQueryCount = kQueryCount;
    // The ablation compares p99 directly; keep the pass/fail bound
    // out of the way so overloaded configs still report numbers.
    settings.targetLatencyNs = sim::kNsPerSec;
    return settings;
}

/** Wall-clock seconds per sample of the inline classifier. */
double
measureSampleSeconds(serving::BatchInference &inference,
                     sut::ClassificationQsl &qsl)
{
    std::vector<loadgen::QuerySampleIndex> indices;
    std::vector<loadgen::QuerySample> samples;
    for (uint64_t i = 0; i < 16; ++i) {
        indices.push_back(i);
        samples.push_back({i, i});
    }
    qsl.loadSamplesToRam(indices);
    inference.runBatch(samples);  // warm caches before timing
    const auto start = std::chrono::steady_clock::now();
    inference.runBatch(samples);
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    qsl.unloadSamplesFromRam(indices);
    return elapsed.count() / static_cast<double>(samples.size());
}

struct RunNumbers
{
    double achievedQps = 0.0;
    double p99Ms = 0.0;
    bool valid = false;
};

RunNumbers
numbersFrom(const loadgen::TestResult &result)
{
    RunNumbers n;
    n.achievedQps = result.completedQps;
    n.p99Ms = static_cast<double>(result.latency.p99) /
              static_cast<double>(sim::kNsPerMs);
    n.valid = result.valid;
    return n;
}

} // namespace

int
main()
{
    std::printf("%s", report::banner(
        "Serving runtime vs. inline SUT: worker pool + dynamic "
        "batcher ablation (real classifier)").c_str());

    data::ClassificationConfig cfg;
    cfg.samplesPerClass = 2;  // 80 samples keeps model setup fast
    data::ClassificationDataset dataset(cfg);
    models::ImageClassifier model =
        models::ImageClassifier::resnet50Proxy(dataset);
    sut::ClassificationQsl qsl(dataset, 64);
    sut::ClassifierBatchInference inference(model, qsl);

    // Fix the offered load at ~1.5x one inline worker's capacity:
    // the inline SUT saturates while a multi-worker pool keeps up.
    const double sample_s = measureSampleSeconds(inference, qsl);
    const double qps = 1.5 / sample_s;
    std::printf("Measured inline cost: %.2f ms/sample -> offered "
                "load %.0f qps, %llu queries per run\n\n",
                sample_s * 1e3, qps,
                static_cast<unsigned long long>(kQueryCount));

    std::string json = "{\"benchmark\":\"serving_batching\",";
    json += strprintf("\"offered_qps\":%.2f,", qps);

    // Baseline: synchronous inference inside issueQuery.
    {
        sim::RealExecutor executor;
        sut::ClassifierSut inline_sut(model, qsl);
        loadgen::LoadGen lg(executor);
        const loadgen::TestResult result =
            lg.startTest(inline_sut, qsl, serverSettings(qps));
        const RunNumbers n = numbersFrom(result);
        std::printf("Inline ClassifierSut:  %7.1f qps achieved, "
                    "p99 %7.2f ms\n\n", n.achievedQps, n.p99Ms);
        json += strprintf(
            "\"inline\":{\"achieved_qps\":%.2f,\"p99_ms\":%.3f,"
            "\"valid\":%s},\"serving\":[",
            n.achievedQps, n.p99Ms, n.valid ? "true" : "false");
    }

    report::Table table({"Workers", "Max batch", "Achieved QPS",
                         "p99 (ms)", "Avg batch", "Shed"});
    bool first = true;
    for (int64_t workers : {1, 2, 4}) {
        for (int64_t max_batch : {1, 4, 8}) {
            sim::RealExecutor executor;
            serving::ServingOptions options;
            options.workers = workers;
            options.maxBatch = max_batch;
            options.batchTimeoutNs = 2 * sim::kNsPerMs;
            serving::ServingSut sut(executor, inference, options);
            loadgen::LoadGen lg(executor);
            const loadgen::TestResult result =
                lg.startTest(sut, qsl, serverSettings(qps));
            sut.shutdown();

            const RunNumbers n = numbersFrom(result);
            const serving::StatsSnapshot stats = sut.stats();
            table.addRow({withThousands(workers),
                          withThousands(max_batch),
                          report::fmt(n.achievedQps, 1),
                          report::fmt(n.p99Ms, 2),
                          report::fmt(stats.averageBatchSize(), 2),
                          withThousands(stats.samplesShed)});
            if (!first)
                json += ",";
            first = false;
            json += strprintf(
                "{\"workers\":%lld,\"max_batch\":%lld,"
                "\"achieved_qps\":%.2f,\"p99_ms\":%.3f,\"valid\":%s,"
                "\"stats\":",
                static_cast<long long>(workers),
                static_cast<long long>(max_batch), n.achievedQps,
                n.p99Ms, n.valid ? "true" : "false");
            json += report::servingSnapshotJson(stats,
                                                result.durationNs);
            json += "}";
        }
    }
    json += "]";

    // Chaos scenario: the best sweep config re-run with 1% injected
    // latency spikes, fronted by the resilience layer (per-query
    // deadline + one retry). Tail latency and shed-rate under a known
    // fault rate are the numbers a resilient config is judged on.
    {
        serving::ChaosOptions chaos_options;
        chaos_options.latencySpikeProb = 0.01;
        chaos_options.latencySpikeNs = 20 * sim::kNsPerMs;
        serving::FaultInjectingInference chaotic(inference,
                                                 chaos_options);
        sim::RealExecutor executor;
        serving::ServingOptions options;
        options.workers = 4;
        options.maxBatch = 8;
        options.batchTimeoutNs = 2 * sim::kNsPerMs;
        options.queryDeadlineNs = 500 * sim::kNsPerMs;
        options.retry.maxAttempts = 2;
        serving::ServingSut sut(executor, chaotic, options);
        loadgen::LoadGen lg(executor);
        const loadgen::TestResult result =
            lg.startTest(sut, qsl, serverSettings(qps));
        sut.shutdown();

        const RunNumbers n = numbersFrom(result);
        const serving::StatsSnapshot stats = sut.stats();
        const serving::ChaosCounters chaos = chaotic.counters();
        std::printf("\nChaos (1%% latency spikes, 4 workers x batch "
                    "8): %7.1f qps achieved, p99 %7.2f ms,\n"
                    "  shed-rate %.2f%%, %llu spike(s) injected, "
                    "%llu sample(s) timed out\n",
                    n.achievedQps, n.p99Ms, 100.0 * stats.shedRate(),
                    static_cast<unsigned long long>(
                        chaos.latencySpikes),
                    static_cast<unsigned long long>(
                        stats.timeoutSamples));
        json += strprintf(
            ",\"chaos\":{\"latency_spike_prob\":%.3f,"
            "\"spike_ms\":%.1f,\"achieved_qps\":%.2f,"
            "\"p99_ms\":%.3f,\"shed_rate\":%.5f,"
            "\"spikes_injected\":%llu,\"valid\":%s,\"stats\":",
            chaos_options.latencySpikeProb,
            static_cast<double>(chaos_options.latencySpikeNs) /
                static_cast<double>(sim::kNsPerMs),
            n.achievedQps, n.p99Ms, stats.shedRate(),
            static_cast<unsigned long long>(chaos.latencySpikes),
            n.valid ? "true" : "false");
        json += report::servingSnapshotJson(stats, result.durationNs);
        json += "}";
    }
    json += "}";

    std::printf("%s", table.str().c_str());
    std::printf("\nAt 1.5x single-worker load the inline SUT is "
                "queue-bound: every sample waits on the\nissue "
                "thread. Adding workers restores throughput; raising "
                "the batch cap trades queue\ndelay for batch "
                "efficiency, the Sec. VI-B dynamic-batching "
                "tension.\n\nJSON: %s\n", json.c_str());

    // Mirror bench_microkernels: MLPERF_BENCH_JSON=<path> writes the
    // machine-readable results for the BENCH_* tracking scripts.
    if (const char *path = std::getenv("MLPERF_BENCH_JSON")) {
        if (std::FILE *f = std::fopen(path, "w")) {
            std::fprintf(f, "%s\n", json.c_str());
            std::fclose(f);
        }
    }
    return 0;
}
