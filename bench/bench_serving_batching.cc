/**
 * @file
 * Ablation: the concurrent serving runtime vs. the inline SUT on the
 * real classifier, under the wall-clock executor. The inline
 * ClassifierSut runs inference synchronously inside issueQuery, so
 * the LoadGen's issue thread serializes every sample; ServingSut
 * moves compute onto a worker pool behind a dynamic batcher. The
 * sweep varies worker count and batch cap at a fixed Poisson load
 * and reports achieved throughput and p99 latency, plus the serving
 * runtime's own queue/batch statistics as JSON for downstream
 * plotting.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/bench_json.h"
#include "common/string_util.h"
#include "loadgen/loadgen.h"
#include "report/serving_report.h"
#include "report/table.h"
#include "serving/chaos.h"
#include "serving/serving_sut.h"
#include "sim/real_executor.h"
#include "sut/nn_sut.h"
#include "sut/serving_adapters.h"

using namespace mlperf;

namespace {

constexpr uint64_t kQueryCount = 128;

loadgen::TestSettings
serverSettings(double qps)
{
    loadgen::TestSettings settings =
        loadgen::TestSettings::forScenario(loadgen::Scenario::Server);
    settings.serverTargetQps = qps;
    settings.maxQueryCount = kQueryCount;
    // The ablation compares p99 directly; keep the pass/fail bound
    // out of the way so overloaded configs still report numbers.
    settings.targetLatencyNs = sim::kNsPerSec;
    return settings;
}

/** Wall-clock seconds per sample of the inline classifier. */
double
measureSampleSeconds(serving::BatchInference &inference,
                     sut::ClassificationQsl &qsl)
{
    std::vector<loadgen::QuerySampleIndex> indices;
    std::vector<loadgen::QuerySample> samples;
    for (uint64_t i = 0; i < 16; ++i) {
        indices.push_back(i);
        samples.push_back({i, i});
    }
    qsl.loadSamplesToRam(indices);
    inference.runBatch(samples);  // warm caches before timing
    const auto start = std::chrono::steady_clock::now();
    inference.runBatch(samples);
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    qsl.unloadSamplesFromRam(indices);
    return elapsed.count() / static_cast<double>(samples.size());
}

struct RunNumbers
{
    double achievedQps = 0.0;
    double p99Ms = 0.0;
    bool valid = false;
};

RunNumbers
numbersFrom(const loadgen::TestResult &result)
{
    RunNumbers n;
    n.achievedQps = result.completedQps;
    n.p99Ms = static_cast<double>(result.latency.p99) /
              static_cast<double>(sim::kNsPerMs);
    n.valid = result.valid;
    return n;
}

} // namespace

int
main()
{
    std::printf("%s", report::banner(
        "Serving runtime vs. inline SUT: worker pool + dynamic "
        "batcher ablation (real classifier)").c_str());

    data::ClassificationConfig cfg;
    cfg.samplesPerClass = 2;  // 80 samples keeps model setup fast
    data::ClassificationDataset dataset(cfg);
    models::ImageClassifier model =
        models::ImageClassifier::resnet50Proxy(dataset);
    sut::ClassificationQsl qsl(dataset, 64);
    sut::ClassifierBatchInference inference(model, qsl);

    // Fix the offered load at ~1.5x one inline worker's capacity:
    // the inline SUT saturates while a multi-worker pool keeps up.
    const double sample_s = measureSampleSeconds(inference, qsl);
    const double qps = 1.5 / sample_s;
    std::printf("Measured inline cost: %.2f ms/sample -> offered "
                "load %.0f qps, %llu queries per run\n\n",
                sample_s * 1e3, qps,
                static_cast<unsigned long long>(kQueryCount));

    std::string json = "{\"benchmark\":\"serving_batching\",";
    json += strprintf("\"offered_qps\":%.2f,", qps);

    // Baseline: synchronous inference inside issueQuery.
    {
        sim::RealExecutor executor;
        sut::ClassifierSut inline_sut(model, qsl);
        loadgen::LoadGen lg(executor);
        const loadgen::TestResult result =
            lg.startTest(inline_sut, qsl, serverSettings(qps));
        const RunNumbers n = numbersFrom(result);
        std::printf("Inline ClassifierSut:  %7.1f qps achieved, "
                    "p99 %7.2f ms\n\n", n.achievedQps, n.p99Ms);
        json += strprintf(
            "\"inline\":{\"achieved_qps\":%.2f,\"p99_ms\":%.3f,"
            "\"valid\":%s},\"serving\":[",
            n.achievedQps, n.p99Ms, n.valid ? "true" : "false");
    }

    report::Table table({"Workers", "Max batch", "Achieved QPS",
                         "p99 (ms)", "Avg batch", "Shed"});
    bool first = true;
    for (int64_t workers : {1, 2, 4}) {
        for (int64_t max_batch : {1, 4, 8}) {
            sim::RealExecutor executor;
            serving::ServingOptions options;
            options.workers = workers;
            options.maxBatch = max_batch;
            options.batchTimeoutNs = 2 * sim::kNsPerMs;
            serving::ServingSut sut(executor, inference, options);
            loadgen::LoadGen lg(executor);
            const loadgen::TestResult result =
                lg.startTest(sut, qsl, serverSettings(qps));
            sut.shutdown();

            const RunNumbers n = numbersFrom(result);
            const serving::StatsSnapshot stats = sut.stats();
            table.addRow({withThousands(workers),
                          withThousands(max_batch),
                          report::fmt(n.achievedQps, 1),
                          report::fmt(n.p99Ms, 2),
                          report::fmt(stats.averageBatchSize(), 2),
                          withThousands(stats.samplesShed)});
            if (!first)
                json += ",";
            first = false;
            json += strprintf(
                "{\"workers\":%lld,\"max_batch\":%lld,"
                "\"achieved_qps\":%.2f,\"p99_ms\":%.3f,\"valid\":%s,"
                "\"stats\":",
                static_cast<long long>(workers),
                static_cast<long long>(max_batch), n.achievedQps,
                n.p99Ms, n.valid ? "true" : "false");
            json += report::servingSnapshotJson(stats,
                                                result.durationNs);
            json += "}";
        }
    }
    json += "]";

    // Chaos scenario: the best sweep config re-run with 1% injected
    // latency spikes, fronted by the resilience layer (per-query
    // deadline + one retry). Tail latency and shed-rate under a known
    // fault rate are the numbers a resilient config is judged on.
    {
        serving::ChaosOptions chaos_options;
        chaos_options.latencySpikeProb = 0.01;
        chaos_options.latencySpikeNs = 20 * sim::kNsPerMs;
        serving::FaultInjectingInference chaotic(inference,
                                                 chaos_options);
        sim::RealExecutor executor;
        serving::ServingOptions options;
        options.workers = 4;
        options.maxBatch = 8;
        options.batchTimeoutNs = 2 * sim::kNsPerMs;
        options.queryDeadlineNs = 500 * sim::kNsPerMs;
        options.retry.maxAttempts = 2;
        serving::ServingSut sut(executor, chaotic, options);
        loadgen::LoadGen lg(executor);
        const loadgen::TestResult result =
            lg.startTest(sut, qsl, serverSettings(qps));
        sut.shutdown();

        const RunNumbers n = numbersFrom(result);
        const serving::StatsSnapshot stats = sut.stats();
        const serving::ChaosCounters chaos = chaotic.counters();
        std::printf("\nChaos (1%% latency spikes, 4 workers x batch "
                    "8): %7.1f qps achieved, p99 %7.2f ms,\n"
                    "  shed-rate %.2f%%, %llu spike(s) injected, "
                    "%llu sample(s) timed out\n",
                    n.achievedQps, n.p99Ms, 100.0 * stats.shedRate(),
                    static_cast<unsigned long long>(
                        chaos.latencySpikes),
                    static_cast<unsigned long long>(
                        stats.timeoutSamples));
        json += strprintf(
            ",\"chaos\":{\"latency_spike_prob\":%.3f,"
            "\"spike_ms\":%.1f,\"achieved_qps\":%.2f,"
            "\"p99_ms\":%.3f,\"shed_rate\":%.5f,"
            "\"spikes_injected\":%llu,\"valid\":%s,\"stats\":",
            chaos_options.latencySpikeProb,
            static_cast<double>(chaos_options.latencySpikeNs) /
                static_cast<double>(sim::kNsPerMs),
            n.achievedQps, n.p99Ms, stats.shedRate(),
            static_cast<unsigned long long>(chaos.latencySpikes),
            n.valid ? "true" : "false");
        json += report::servingSnapshotJson(stats, result.durationNs);
        json += "}";
    }

    // Shard sweep: the sharded runtime (per-shard batcher/queue/
    // workers + lock-free completion rings) against the single-shard
    // baseline, on a synthetic busy-wait inference so the axis
    // measures pure scheduler behaviour, not model compute. Two runs
    // per shard count: a saturation run (offered load far above
    // capacity; achieved qps = drain rate) and a fixed-load run at
    // half the single-shard saturation rate for tail latency.
    // Scaling efficiency is reported against the single-shard
    // baseline and is honest about the host: on a single-CPU
    // container the busy-wait workers serialize, so efficiency ~1/N
    // is the expected reading there, while the lock counters prove
    // the coordination costs sharding is designed to remove.
    {
        constexpr sim::Tick kSpinNsPerSample = 100 * 1000;  // 100 us
        constexpr uint64_t kShardQueries = 256;
        constexpr int64_t kTotalWorkers = 4;
        sut::SyntheticBatchInference synthetic(kSpinNsPerSample);

        // Busy-wait workers measure scheduler behaviour only when
        // each shard's workers can actually run in parallel. Cap the
        // sweep at the host's CPU count and record it in the JSON so
        // a sub-1.0 scaling reading on a small container is
        // attributable to oversubscription, not a sharding
        // regression.
        const int64_t cpus = static_cast<int64_t>(
            std::max(1u, std::thread::hardware_concurrency()));
        std::vector<int64_t> shard_counts{1};
        for (int64_t candidate : {int64_t{2}, int64_t{4}}) {
            if (candidate <= cpus)
                shard_counts.push_back(candidate);
        }

        const double capacityQps =
            static_cast<double>(kTotalWorkers) *
            (static_cast<double>(sim::kNsPerSec) /
             static_cast<double>(kSpinNsPerSample));

        report::Table shard_table(
            {"Shards", "Saturated QPS", "Scaling", "p99 (ms) @ half",
             "Steals", "Ring fallbacks", "Fast-path locks"});
        json += strprintf(",\"cpus\":%lld,\"shard_sweep\":[",
                          static_cast<long long>(cpus));
        double shard1Qps = 0.0;
        bool first_shard = true;
        for (int64_t shards : shard_counts) {
            const auto run = [&](double target_qps) {
                sim::RealExecutor executor;
                serving::ServingOptions options;
                options.workers = kTotalWorkers;
                options.shards = shards;
                options.maxBatch = 1;      // per-sample: scheduler load
                options.batchTimeoutNs = 0;
                options.queueCapacityBatches = 0;  // measure drain rate
                serving::ServingSut sut(executor, synthetic, options);
                loadgen::LoadGen lg(executor);
                loadgen::TestSettings settings =
                    serverSettings(target_qps);
                settings.maxQueryCount = kShardQueries;
                const loadgen::TestResult result =
                    lg.startTest(sut, qsl, settings);
                sut.shutdown();
                struct
                {
                    RunNumbers n;
                    uint64_t steals = 0;
                    uint64_t ringFallbacks = 0;
                    uint64_t fastPathLocks = 0;
                } out;
                out.n = numbersFrom(result);
                if (serving::ShardedWorkerPool *pool =
                        sut.shardedPool()) {
                    out.steals = pool->steals();
                    out.ringFallbacks = pool->ringFallbacks();
                    out.fastPathLocks =
                        pool->fastPathLockAcquisitions();
                }
                return out;
            };

            // Saturation: offer 2x theoretical capacity.
            const auto saturated = run(2.0 * capacityQps);
            if (shards == 1)
                shard1Qps = saturated.n.achievedQps;
            const double scaling =
                shard1Qps > 0.0 ? saturated.n.achievedQps / shard1Qps
                                : 0.0;
            // Tail latency at a load every config can carry.
            const auto half = run(0.5 * shard1Qps);

            shard_table.addRow(
                {withThousands(shards),
                 report::fmt(saturated.n.achievedQps, 1),
                 report::fmt(scaling, 2), report::fmt(half.n.p99Ms, 2),
                 withThousands(saturated.steals + half.steals),
                 withThousands(saturated.ringFallbacks +
                               half.ringFallbacks),
                 withThousands(saturated.fastPathLocks +
                               half.fastPathLocks)});
            if (!first_shard)
                json += ",";
            first_shard = false;
            json += strprintf(
                "{\"shards\":%lld,\"workers\":%lld,"
                "\"oversubscribed\":%s,"
                "\"saturated_qps\":%.2f,\"scaling_vs_1\":%.3f,"
                "\"p99_ms_at_half_load\":%.3f,\"steals\":%llu,"
                "\"ring_fallbacks\":%llu,\"fast_path_locks\":%llu}",
                static_cast<long long>(shards),
                static_cast<long long>(kTotalWorkers),
                kTotalWorkers > cpus ? "true" : "false",
                saturated.n.achievedQps, scaling, half.n.p99Ms,
                static_cast<unsigned long long>(saturated.steals +
                                                half.steals),
                static_cast<unsigned long long>(
                    saturated.ringFallbacks + half.ringFallbacks),
                static_cast<unsigned long long>(
                    saturated.fastPathLocks + half.fastPathLocks));
        }
        json += "]";
        std::printf("\nShard sweep (synthetic %.0f us/sample, %lld "
                    "workers total, %lld cpu(s), saturation + "
                    "half-load runs):\n%s",
                    static_cast<double>(kSpinNsPerSample) / 1000.0,
                    static_cast<long long>(kTotalWorkers),
                    static_cast<long long>(cpus),
                    shard_table.str().c_str());
        if (kTotalWorkers > cpus) {
            std::printf("  NOTE: %lld busy-wait workers on %lld "
                        "cpu(s) — scaling below 1.0 here reads as "
                        "oversubscription, not a sharding "
                        "regression.\n",
                        static_cast<long long>(kTotalWorkers),
                        static_cast<long long>(cpus));
        }
    }
    json += "}";

    std::printf("%s", table.str().c_str());
    std::printf("\nAt 1.5x single-worker load the inline SUT is "
                "queue-bound: every sample waits on the\nissue "
                "thread. Adding workers restores throughput; raising "
                "the batch cap trades queue\ndelay for batch "
                "efficiency, the Sec. VI-B dynamic-batching "
                "tension.\n\nJSON: %s\n", json.c_str());

    // MLPERF_BENCH_JSON=<path> overrides the committed default so
    // the BENCH_* tracking scripts get machine-readable results.
    mlperf::bench::writeBenchJson(json, "BENCH_serving.json");
    return 0;
}
