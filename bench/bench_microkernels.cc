/**
 * @file
 * DeepBench-style microbenchmarks (google-benchmark) of the compute
 * kernels underlying the proxy models: FP32 GEMM (packed/parallel vs
 * the seed's tiled kernel vs naive), im2col convolution with
 * batch-dim threading, depthwise convolution, INT8 GEMM, and the
 * LSTM cell — "kernel-level operations ... important for performance
 * in production models" (Sec. VIII's discussion of DeepBench).
 *
 * Every kernel benchmark reports a GFLOPS counter so the kernel-perf
 * trajectory is comparable across PRs. The prepacked-constant
 * benchmarks additionally report pack_fraction (share of a repacking
 * GEMM call spent packing B) and saved_ns_per_call (per-query ns won
 * by compile-time packing / epilogue fusion). Set
 * MLPERF_BENCH_JSON=<path> (or pass --benchmark_out=... yourself) to
 * additionally emit the full google-benchmark JSON for the BENCH_*
 * tracking harness.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "common/bench_json.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "nn/init.h"
#include "nn/layers.h"
#include "nn/plan.h"
#include "nn/rnn.h"
#include "nn/sequential.h"
#include "quant/quant.h"
#include "tensor/conv.h"
#include "tensor/gemm.h"

// Binary-wide heap-allocation counter so the model-forward benchmarks
// can report allocations-per-query — the compiled plan path's headline
// claim is zero in steady state, the eager path allocates every
// intermediate activation.
static std::atomic<long> g_heap_allocs{0};

void *
operator new(std::size_t size)
{
    g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

using namespace mlperf;
using tensor::Conv2dParams;
using tensor::Shape;
using tensor::Tensor;

namespace {

Tensor
randomTensor(Shape shape, uint64_t seed)
{
    Tensor t(std::move(shape));
    Rng rng(seed);
    for (int64_t i = 0; i < t.numel(); ++i)
        t[i] = static_cast<float>(rng.nextGaussian());
    return t;
}

/** items_processed plus a GFLOPS rate counter. */
void
setFlops(benchmark::State &state, int64_t flops_per_iter)
{
    state.SetItemsProcessed(state.iterations() * flops_per_iter);
    state.counters["GFLOPS"] = benchmark::Counter(
        static_cast<double>(state.iterations()) *
            static_cast<double>(flops_per_iter) * 1e-9,
        benchmark::Counter::kIsRate);
}

/**
 * The seed repository's GEMM (cache-blocked loops, no packing, no
 * threading), kept verbatim as the baseline the packed kernel's
 * speedup is measured against.
 */
void
gemmSeedTiled(const float *a, const float *b, float *c,
              int64_t m, int64_t n, int64_t k)
{
    constexpr int64_t kTileM = 64, kTileN = 64, kTileK = 64;
    std::memset(c, 0, static_cast<size_t>(m * n) * sizeof(float));
    for (int64_t i0 = 0; i0 < m; i0 += kTileM) {
        const int64_t i_end = std::min(i0 + kTileM, m);
        for (int64_t k0 = 0; k0 < k; k0 += kTileK) {
            const int64_t k_end = std::min(k0 + kTileK, k);
            for (int64_t j0 = 0; j0 < n; j0 += kTileN) {
                const int64_t j_end = std::min(j0 + kTileN, n);
                for (int64_t i = i0; i < i_end; ++i) {
                    for (int64_t kk = k0; kk < k_end; ++kk) {
                        const float a_ik = a[i * k + kk];
                        const float *b_row = b + kk * n;
                        float *c_row = c + i * n;
                        for (int64_t j = j0; j < j_end; ++j)
                            c_row[j] += a_ik * b_row[j];
                    }
                }
            }
        }
    }
}

void
BM_GemmFp32(benchmark::State &state)
{
    const int64_t n = state.range(0);
    ThreadPool::setGlobalThreads(
        static_cast<int>(state.range(1)));
    Tensor a = randomTensor(Shape{n, n}, 1);
    Tensor b = randomTensor(Shape{n, n}, 2);
    Tensor c(Shape{n, n});
    for (auto _ : state) {
        tensor::gemm(a.data(), b.data(), c.data(), n, n, n);
        benchmark::DoNotOptimize(c.data());
    }
    setFlops(state, 2 * n * n * n);
}
BENCHMARK(BM_GemmFp32)
    ->ArgsProduct({{64, 128, 256, 512}, {1}})
    ->ArgsProduct({{512}, {2, 4}})
    ->ArgNames({"n", "threads"});

void
BM_GemmSeedTiled(benchmark::State &state)
{
    const int64_t n = state.range(0);
    Tensor a = randomTensor(Shape{n, n}, 1);
    Tensor b = randomTensor(Shape{n, n}, 2);
    Tensor c(Shape{n, n});
    for (auto _ : state) {
        gemmSeedTiled(a.data(), b.data(), c.data(), n, n, n);
        benchmark::DoNotOptimize(c.data());
    }
    setFlops(state, 2 * n * n * n);
}
BENCHMARK(BM_GemmSeedTiled)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void
BM_GemmNaive(benchmark::State &state)
{
    const int64_t n = state.range(0);
    Tensor a = randomTensor(Shape{n, n}, 1);
    Tensor b = randomTensor(Shape{n, n}, 2);
    Tensor c(Shape{n, n});
    for (auto _ : state) {
        tensor::gemmNaive(a.data(), b.data(), c.data(), n, n, n);
        benchmark::DoNotOptimize(c.data());
    }
    setFlops(state, 2 * n * n * n);
}
BENCHMARK(BM_GemmNaive)->Arg(64)->Arg(128)->Arg(256);

/** Median-free ns/call of @p fn over @p reps calls (after 1 warmup). */
template <typename Fn>
double
timeNsPerCall(int reps, Fn &&fn)
{
    fn();
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < reps; ++i)
        fn();
    const auto stop = std::chrono::steady_clock::now();
    return static_cast<double>(
               std::chrono::duration_cast<std::chrono::nanoseconds>(
                   stop - start)
                   .count()) /
           reps;
}

void
BM_GemmPrepackedFp32(benchmark::State &state)
{
    // Steady-state serving shape: B (the weights) was packed once at
    // compile time; only A streams per call. Compared inline against
    // gemm(), which repacks B every call, to report how much of each
    // query the pack step was costing.
    const int64_t n = state.range(0);
    ThreadPool::setGlobalThreads(1);
    Tensor a = randomTensor(Shape{n, n}, 1);
    Tensor b = randomTensor(Shape{n, n}, 2);
    const tensor::PackedMatrix packed =
        tensor::packMatrixB(b.data(), n, n, /*b_trans=*/false);
    Tensor c(Shape{n, n});
    for (auto _ : state) {
        tensor::gemmPrepacked(a.data(), packed, c.data(), n, n, n);
        benchmark::DoNotOptimize(c.data());
    }
    const int reps = 10;
    const double repack_ns = timeNsPerCall(reps, [&] {
        tensor::gemm(a.data(), b.data(), c.data(), n, n, n);
    });
    const double prepacked_ns = timeNsPerCall(reps, [&] {
        tensor::gemmPrepacked(a.data(), packed, c.data(), n, n, n);
    });
    const double saved = repack_ns - prepacked_ns;
    state.counters["pack_fraction"] = benchmark::Counter(
        repack_ns > 0.0 ? std::max(0.0, saved / repack_ns) : 0.0);
    state.counters["saved_ns_per_call"] = benchmark::Counter(saved);
    setFlops(state, 2 * n * n * n);
}
BENCHMARK(BM_GemmPrepackedFp32)->Arg(128)->Arg(256)->Arg(512);

void
BM_GemmEpilogueFused(benchmark::State &state)
{
    // Bias+ReLU folded into the micro-kernel tail while the C tile is
    // hot, vs the same prepacked GEMM followed by a separate
    // elementwise pass that re-streams C through memory.
    const int64_t n = state.range(0);
    ThreadPool::setGlobalThreads(1);
    Tensor a = randomTensor(Shape{n, n}, 1);
    Tensor b = randomTensor(Shape{n, n}, 2);
    Tensor bias = randomTensor(Shape{n}, 3);
    const tensor::PackedMatrix packed =
        tensor::packMatrixB(b.data(), n, n, /*b_trans=*/false);
    Tensor c(Shape{n, n});
    tensor::GemmEpilogue ep;
    ep.bias = bias.data();
    ep.relu = true;
    for (auto _ : state) {
        tensor::gemmPrepacked(a.data(), packed, c.data(), n, n, n, ep);
        benchmark::DoNotOptimize(c.data());
    }
    const auto separate = [&] {
        tensor::gemmPrepacked(a.data(), packed, c.data(), n, n, n);
        float *cd = c.data();
        const float *bd = bias.data();
        for (int64_t i = 0; i < n; ++i) {
            float *row = cd + i * n;
            for (int64_t j = 0; j < n; ++j) {
                const float v = row[j] + bd[j];
                row[j] = v < 0.0f ? 0.0f : v;
            }
        }
    };
    const int reps = 10;
    const double separate_ns = timeNsPerCall(reps, separate);
    const double fused_ns = timeNsPerCall(reps, [&] {
        tensor::gemmPrepacked(a.data(), packed, c.data(), n, n, n, ep);
    });
    state.counters["saved_ns_per_call"] =
        benchmark::Counter(separate_ns - fused_ns);
    setFlops(state, 2 * n * n * n);
}
BENCHMARK(BM_GemmEpilogueFused)->Arg(128)->Arg(256)->Arg(512);

void
BM_DenseForward(benchmark::State &state)
{
    const int64_t batch = state.range(0);
    const int64_t dim = state.range(1);
    Tensor w = randomTensor(Shape{dim, dim}, 1);
    Tensor x = randomTensor(Shape{batch, dim}, 2);
    Tensor y(Shape{batch, dim});
    ThreadPool::setGlobalThreads(1);
    for (auto _ : state) {
        tensor::denseForward(w.data(), nullptr, x.data(), y.data(),
                             batch, dim, dim);
        benchmark::DoNotOptimize(y.data());
    }
    setFlops(state, 2 * batch * dim * dim);
}
BENCHMARK(BM_DenseForward)
    ->Args({1, 512})
    ->Args({16, 512})
    ->Args({64, 512})
    ->ArgNames({"batch", "dim"});

void
BM_GemmInt8(benchmark::State &state)
{
    const int64_t n = state.range(0);
    ThreadPool::setGlobalThreads(1);
    std::vector<int8_t> a(n * n), b(n * n);
    std::vector<int32_t> c(n * n);
    Rng rng(3);
    for (auto &v : a)
        v = static_cast<int8_t>(rng.nextInRange(-127, 127));
    for (auto &v : b)
        v = static_cast<int8_t>(rng.nextInRange(-127, 127));
    for (auto _ : state) {
        quant::gemmInt8(a.data(), b.data(), c.data(), n, n, n);
        benchmark::DoNotOptimize(c.data());
    }
    setFlops(state, 2 * n * n * n);
}
BENCHMARK(BM_GemmInt8)->Arg(64)->Arg(128)->Arg(256);

void
BM_GemmInt8Naive(benchmark::State &state)
{
    const int64_t n = state.range(0);
    std::vector<int8_t> a(n * n), b(n * n);
    std::vector<int32_t> c(n * n);
    Rng rng(3);
    for (auto &v : a)
        v = static_cast<int8_t>(rng.nextInRange(-127, 127));
    for (auto &v : b)
        v = static_cast<int8_t>(rng.nextInRange(-127, 127));
    for (auto _ : state) {
        quant::gemmInt8Naive(a.data(), b.data(), c.data(), n, n, n);
        benchmark::DoNotOptimize(c.data());
    }
    setFlops(state, 2 * n * n * n);
}
BENCHMARK(BM_GemmInt8Naive)->Arg(64)->Arg(128)->Arg(256);

void
BM_GemmInt8Prepacked(benchmark::State &state)
{
    // Prepacked int8 weights + fused requantize epilogue (the
    // quantized layers' steady-state path), compared inline against
    // gemmInt8 (which packs per call) plus a separate requant pass.
    const int64_t n = state.range(0);
    ThreadPool::setGlobalThreads(1);
    std::vector<int8_t> a(n * n), b(n * n);
    Rng rng(3);
    for (auto &v : a)
        v = static_cast<int8_t>(rng.nextInRange(-127, 127));
    for (auto &v : b)
        v = static_cast<int8_t>(rng.nextInRange(-127, 127));
    std::vector<float> scale(n, 0.05f), bias(n, 0.1f), c(n * n);
    std::vector<int32_t> corr(n, 3), acc(n * n);
    const quant::PackedInt8 packed =
        quant::packInt8A(a.data(), n, n);
    quant::QuantEpilogue ep;
    ep.scale = scale.data();
    ep.corr = corr.data();
    ep.bias = bias.data();
    ep.perRow = true;
    ep.relu = true;
    for (auto _ : state) {
        quant::gemmInt8PrepackedA(packed, b.data(), c.data(), n, n, n,
                                  ep);
        benchmark::DoNotOptimize(c.data());
    }
    const auto separate = [&] {
        quant::gemmInt8(a.data(), b.data(), acc.data(), n, n, n);
        for (int64_t i = 0; i < n; ++i) {
            for (int64_t j = 0; j < n; ++j) {
                float v = scale[i] *
                              static_cast<float>(acc[i * n + j] -
                                                 corr[i]) +
                          bias[i];
                c[i * n + j] = v < 0.0f ? 0.0f : v;
            }
        }
    };
    const int reps = 10;
    const double separate_ns = timeNsPerCall(reps, separate);
    const double prepacked_ns = timeNsPerCall(reps, [&] {
        quant::gemmInt8PrepackedA(packed, b.data(), c.data(), n, n, n,
                                  ep);
    });
    const double saved = separate_ns - prepacked_ns;
    state.counters["pack_fraction"] = benchmark::Counter(
        separate_ns > 0.0 ? std::max(0.0, saved / separate_ns) : 0.0);
    state.counters["saved_ns_per_call"] = benchmark::Counter(saved);
    setFlops(state, 2 * n * n * n);
}
BENCHMARK(BM_GemmInt8Prepacked)->Arg(64)->Arg(128)->Arg(256);

void
BM_Conv2d(benchmark::State &state)
{
    const int64_t channels = state.range(0);
    ThreadPool::setGlobalThreads(1);
    Tensor input = randomTensor(Shape{1, channels, 32, 32}, 4);
    Tensor weight =
        randomTensor(Shape{channels, channels, 3, 3}, 5);
    Conv2dParams p;
    for (auto _ : state) {
        Tensor out = tensor::conv2d(input, weight, nullptr, p);
        benchmark::DoNotOptimize(out.data());
    }
    setFlops(state, 2 * channels * channels * 9 * 32 * 32);
}
BENCHMARK(BM_Conv2d)->Arg(8)->Arg(16)->Arg(32);

void
BM_Conv2dBatched(benchmark::State &state)
{
    // Batch-dim scaling of the conv path: fixed batch of 8 images,
    // sweeping the intra-op thread count. Near-linear scaling up to
    // the core count is the acceptance target.
    const int64_t batch = 8;
    const int64_t channels = 16;
    ThreadPool::setGlobalThreads(
        static_cast<int>(state.range(0)));
    Tensor input = randomTensor(Shape{batch, channels, 32, 32}, 6);
    Tensor weight =
        randomTensor(Shape{channels, channels, 3, 3}, 7);
    Conv2dParams p;
    for (auto _ : state) {
        Tensor out = tensor::conv2d(input, weight, nullptr, p);
        benchmark::DoNotOptimize(out.data());
    }
    setFlops(state, 2 * batch * channels * channels * 9 * 32 * 32);
}
BENCHMARK(BM_Conv2dBatched)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->ArgName("threads");

void
BM_DepthwiseConv2d(benchmark::State &state)
{
    const int64_t channels = state.range(0);
    ThreadPool::setGlobalThreads(1);
    Tensor input = randomTensor(Shape{1, channels, 32, 32}, 6);
    Tensor weight = randomTensor(Shape{channels, 1, 3, 3}, 7);
    Conv2dParams p;
    for (auto _ : state) {
        Tensor out =
            tensor::depthwiseConv2d(input, weight, nullptr, p);
        benchmark::DoNotOptimize(out.data());
    }
    setFlops(state, 2 * channels * 9 * 32 * 32);
}
BENCHMARK(BM_DepthwiseConv2d)->Arg(16)->Arg(64);

void
BM_LstmCellStep(benchmark::State &state)
{
    const int64_t hidden = state.range(0);
    Rng rng(8);
    nn::LSTMCell cell(
        nn::heNormal(Shape{4 * hidden, hidden}, hidden, rng),
        nn::heNormal(Shape{4 * hidden, hidden}, hidden, rng),
        nn::zeroBias(4 * hidden));
    auto cell_state = cell.initialState(1);
    Tensor x = randomTensor(Shape{1, hidden}, 9);
    for (auto _ : state) {
        cell.step(x, cell_state);
        benchmark::DoNotOptimize(cell_state.h.data());
    }
    setFlops(state, static_cast<int64_t>(cell.flopsPerStep()));
}
BENCHMARK(BM_LstmCellStep)->Arg(32)->Arg(128);

/** Small ResNet-class model for the eager-vs-compiled comparison. */
nn::Sequential
makeResnetish()
{
    using nn::Conv2dLayer;
    auto conv = [](int64_t in_c, int64_t out_c, int64_t k,
                   int64_t stride, bool relu, uint64_t seed) {
        Rng rng(seed);
        Conv2dParams p{k, k, stride, stride, k / 2, k / 2};
        return std::make_unique<Conv2dLayer>(
            nn::heNormal(Shape{out_c, in_c, k, k}, in_c * k * k, rng),
            nn::zeroBias(out_c), p, relu);
    };
    nn::Sequential model("bench-resnetish");
    model.add(conv(3, 16, 3, 1, true, 1));
    model.add(std::make_unique<nn::ResidualBlock>(
        conv(16, 32, 3, 2, true, 2), conv(32, 32, 3, 1, false, 3),
        conv(16, 32, 1, 2, false, 4)));
    model.add(std::make_unique<nn::ResidualBlock>(
        conv(32, 32, 3, 1, true, 5), conv(32, 32, 3, 1, false, 6),
        nullptr));
    model.add(std::make_unique<nn::GlobalAvgPoolLayer>());
    model.add(std::make_unique<nn::FlattenLayer>());
    Rng rng(7);
    model.add(std::make_unique<nn::DenseLayer>(
        nn::heNormal(Shape{10, 32}, 32, rng), nn::zeroBias(10)));
    return model;
}

constexpr int64_t kModelC = 3, kModelH = 32, kModelW = 32;

void
BM_ModelForwardEager(benchmark::State &state)
{
    const int64_t batch = state.range(0);
    ThreadPool::setGlobalThreads(1);
    const nn::Sequential model = makeResnetish();
    const Tensor input = randomTensor(
        Shape{batch, kModelC, kModelH, kModelW}, 20);
    long allocs = 0;
    for (auto _ : state) {
        const long before =
            g_heap_allocs.load(std::memory_order_relaxed);
        Tensor out = model.forward(input);
        benchmark::DoNotOptimize(out.data());
        allocs += g_heap_allocs.load(std::memory_order_relaxed) -
                  before;
    }
    state.counters["allocs_per_query"] = benchmark::Counter(
        static_cast<double>(allocs) /
        static_cast<double>(state.iterations()));
    setFlops(state,
             static_cast<int64_t>(model.flops(input.shape())));
}
BENCHMARK(BM_ModelForwardEager)->Arg(1)->Arg(8)->ArgName("batch");

/**
 * A dense-heavy MLP (all GEMMs clear the packed-kernel threshold at
 * batch 1): the counterpart model for the prepack A/B comparison,
 * since conv-heavy and dense-heavy models stress different operand
 * sides of the prepacked GEMM.
 */
nn::Sequential
makeMlp()
{
    nn::Sequential model("bench-mlp");
    auto dense = [](int64_t in, int64_t out, bool relu,
                    uint64_t seed) {
        Rng rng(seed);
        return std::make_unique<nn::DenseLayer>(
            nn::heNormal(Shape{out, in}, in, rng), nn::zeroBias(out),
            relu);
    };
    model.add(dense(kModelC * kModelH * kModelW, 512, true, 30));
    model.add(dense(512, 512, true, 31));
    model.add(dense(512, 256, true, 32));
    model.add(dense(256, 10, false, 33));
    return model;
}

/**
 * Shared body for the compiled-model benches: runs @p model with the
 * constant section on or off (state.range(1)), reporting per-query
 * allocations, arena/constant footprints, and GFLOPS. The prepack=0
 * rows are the A/B baseline the prepack=1 per-query ns delta is read
 * against.
 */
void
benchCompiledForward(benchmark::State &state,
                     const nn::Sequential &model, Shape sample_shape,
                     const Tensor &input,
                     bool propagate_layout = true)
{
    const int64_t batch = state.range(0);
    ThreadPool::setGlobalThreads(1);
    nn::CompileOptions options;
    options.prepackConstants = state.range(1) != 0;
    options.propagateLayout = propagate_layout;
    const nn::CompiledModel compiled(model, std::move(sample_shape),
                                     options);
    nn::ExecutionInstance &instance = nn::ExecutionInstance::thread();
    // Warm up: builds the plan, grows the arena and kernel scratch.
    for (int i = 0; i < 2; ++i) {
        float *staged = instance.stageInput(compiled, batch);
        std::memcpy(staged, input.data(),
                    static_cast<size_t>(input.numel()) * sizeof(float));
        instance.run(compiled, batch);
    }
    long allocs = 0;
    for (auto _ : state) {
        const long before =
            g_heap_allocs.load(std::memory_order_relaxed);
        float *staged = instance.stageInput(compiled, batch);
        std::memcpy(staged, input.data(),
                    static_cast<size_t>(input.numel()) * sizeof(float));
        const float *out = instance.run(compiled, batch);
        benchmark::DoNotOptimize(out);
        allocs += g_heap_allocs.load(std::memory_order_relaxed) -
                  before;
    }
    const nn::Plan &plan = compiled.planFor(batch);
    int64_t nchwc_steps = 0;
    for (const nn::PlanStep &step : plan.steps)
        nchwc_steps += step.outLayout == nn::Layout::NCHWc ? 1 : 0;
    state.counters["nchwc_steps"] =
        benchmark::Counter(static_cast<double>(nchwc_steps));
    state.counters["allocs_per_query"] = benchmark::Counter(
        static_cast<double>(allocs) /
        static_cast<double>(state.iterations()));
    state.counters["plan_kb"] = benchmark::Counter(
        static_cast<double>(plan.arenaFloats) * 4.0 / 1024.0);
    state.counters["naive_kb"] = benchmark::Counter(
        static_cast<double>(plan.naiveFloats) * 4.0 / 1024.0);
    state.counters["const_kb"] = benchmark::Counter(
        static_cast<double>(plan.constantBytes) / 1024.0);
    setFlops(state,
             static_cast<int64_t>(model.flops(input.shape())));
}

void
BM_ModelForwardCompiled(benchmark::State &state)
{
    // The layout axis is the direct-conv A/B: layout=0 pins the
    // im2col reference plan, layout=1 is the NCHWc direct path the
    // compiler now picks by default.
    const int64_t batch = state.range(0);
    const nn::Sequential model = makeResnetish();
    const Tensor input = randomTensor(
        Shape{batch, kModelC, kModelH, kModelW}, 20);
    benchCompiledForward(state, model,
                         Shape{kModelC, kModelH, kModelW}, input,
                         state.range(2) != 0);
}
BENCHMARK(BM_ModelForwardCompiled)
    ->ArgsProduct({{1, 8}, {1}, {0, 1}})
    ->ArgsProduct({{1, 8}, {0}, {0}})
    ->ArgNames({"batch", "prepack", "layout"});

void
BM_MlpForwardCompiled(benchmark::State &state)
{
    const int64_t batch = state.range(0);
    const nn::Sequential model = makeMlp();
    const Tensor input = randomTensor(
        Shape{batch, kModelC * kModelH * kModelW}, 21);
    benchCompiledForward(state, model,
                         Shape{kModelC * kModelH * kModelW}, input);
}
BENCHMARK(BM_MlpForwardCompiled)
    ->ArgsProduct({{1, 8}, {0, 1}})
    ->ArgNames({"batch", "prepack"});

/**
 * Hard acceptance gate, run from main() before any benchmark: the
 * default (NCHWc direct-conv) plan for the conv-heavy proxy must
 * contain tiled steps, plan a strictly smaller arena than the im2col
 * reference plan — the planner now charges im2col patch scratch to
 * the arena, direct conv needs none — and keep the steady-state
 * query path allocation-free. Aborting here keeps the BENCH_*
 * tracking from ever recording numbers off a silently degraded
 * configuration.
 */
void
verifyDirectConvPlan()
{
    if (const char *force = std::getenv("MLPERF_FORCE_IM2COL")) {
        if (force[0] != '\0' && std::strcmp(force, "0") != 0) {
            std::printf("direct-conv plan check skipped: "
                        "MLPERF_FORCE_IM2COL pins the im2col "
                        "reference path\n");
            return;
        }
    }
    ThreadPool::setGlobalThreads(1);
    const nn::Sequential model = makeResnetish();
    const Shape sample{kModelC, kModelH, kModelW};
    const nn::CompiledModel tiled(model, sample);
    nn::CompileOptions reference_options;
    reference_options.propagateLayout = false;
    const nn::CompiledModel im2col(model, sample, reference_options);

    for (int64_t batch : {int64_t{1}, int64_t{8}}) {
        const nn::Plan &fast = tiled.planFor(batch);
        const nn::Plan &slow = im2col.planFor(batch);
        int64_t tiled_steps = 0;
        for (const nn::PlanStep &step : fast.steps)
            tiled_steps += step.outLayout == nn::Layout::NCHWc;
        if (tiled_steps == 0) {
            std::fprintf(stderr,
                         "FATAL: layout propagation tiled no steps "
                         "at batch %lld\n%s",
                         static_cast<long long>(batch),
                         nn::planDebugDump(fast).c_str());
            std::abort();
        }
        if (fast.arenaFloats >= slow.arenaFloats) {
            std::fprintf(
                stderr,
                "FATAL: direct-conv arena (%lld KB) did not beat "
                "im2col arena (%lld KB) at batch %lld\n-- direct "
                "plan --\n%s-- im2col plan --\n%s",
                static_cast<long long>(fast.arenaFloats * 4 / 1024),
                static_cast<long long>(slow.arenaFloats * 4 / 1024),
                static_cast<long long>(batch),
                nn::planDebugDump(fast).c_str(),
                nn::planDebugDump(slow).c_str());
            std::abort();
        }
        std::printf("direct-conv plan check: batch %lld arena %lld "
                    "KB vs im2col %lld KB (%lld tiled step(s))\n",
                    static_cast<long long>(batch),
                    static_cast<long long>(fast.arenaFloats * 4 /
                                           1024),
                    static_cast<long long>(slow.arenaFloats * 4 /
                                           1024),
                    static_cast<long long>(tiled_steps));
    }

    // Steady state must stay allocation-free with the direct kernels
    // drawing their scratch from the plan arena.
    nn::ExecutionInstance &instance = nn::ExecutionInstance::thread();
    const Tensor input =
        randomTensor(Shape{8, kModelC, kModelH, kModelW}, 40);
    const auto query = [&] {
        float *staged = instance.stageInput(tiled, 8);
        std::memcpy(staged, input.data(),
                    static_cast<size_t>(input.numel()) *
                        sizeof(float));
        benchmark::DoNotOptimize(instance.run(tiled, 8));
    };
    for (int i = 0; i < 3; ++i)
        query();
    const long before = g_heap_allocs.load(std::memory_order_relaxed);
    query();
    const long delta =
        g_heap_allocs.load(std::memory_order_relaxed) - before;
    if (delta != 0) {
        std::fprintf(stderr,
                     "FATAL: direct-conv steady-state query made "
                     "%ld heap allocation(s)\n",
                     delta);
        std::abort();
    }
}

void
BM_QuantizeBuffer(benchmark::State &state)
{
    const int64_t n = 1 << 16;
    Tensor src = randomTensor(Shape{n}, 10);
    std::vector<int8_t> dst(n);
    const quant::QuantParams p =
        quant::chooseQuantParams(-4.0f, 4.0f, 8, false);
    for (auto _ : state) {
        quant::quantizeBuffer(src.data(), dst.data(), n, p);
        benchmark::DoNotOptimize(dst.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_QuantizeBuffer);

} // namespace

/**
 * Custom main: MLPERF_BENCH_JSON=<path> appends the --benchmark_out
 * flags so CI / the BENCH_* tracking scripts get machine-readable
 * results without changing how the binary is invoked.
 */
int
main(int argc, char **argv)
{
    std::vector<char *> args(argv, argv + argc);
    std::string out_flag, fmt_flag;
    if (const char *path = mlperf::bench::benchJsonPath(nullptr)) {
        out_flag = std::string("--benchmark_out=") + path;
        fmt_flag = "--benchmark_out_format=json";
        args.push_back(out_flag.data());
        args.push_back(fmt_flag.data());
    }
    int n = static_cast<int>(args.size());
    benchmark::Initialize(&n, args.data());
    if (benchmark::ReportUnrecognizedArguments(n, args.data()))
        return 1;
    verifyDirectConvPlan();
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
