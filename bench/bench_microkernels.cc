/**
 * @file
 * DeepBench-style microbenchmarks (google-benchmark) of the compute
 * kernels underlying the proxy models: FP32 GEMM, im2col
 * convolution, depthwise convolution, INT8 GEMM, and the LSTM cell —
 * "kernel-level operations ... important for performance in
 * production models" (Sec. VIII's discussion of DeepBench).
 */

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "nn/init.h"
#include "nn/rnn.h"
#include "quant/quant.h"
#include "tensor/conv.h"
#include "tensor/gemm.h"

using namespace mlperf;
using tensor::Conv2dParams;
using tensor::Shape;
using tensor::Tensor;

namespace {

Tensor
randomTensor(Shape shape, uint64_t seed)
{
    Tensor t(std::move(shape));
    Rng rng(seed);
    for (int64_t i = 0; i < t.numel(); ++i)
        t[i] = static_cast<float>(rng.nextGaussian());
    return t;
}

void
BM_GemmFp32(benchmark::State &state)
{
    const int64_t n = state.range(0);
    Tensor a = randomTensor(Shape{n, n}, 1);
    Tensor b = randomTensor(Shape{n, n}, 2);
    Tensor c(Shape{n, n});
    for (auto _ : state) {
        tensor::gemm(a.data(), b.data(), c.data(), n, n, n);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmFp32)->Arg(64)->Arg(128)->Arg(256);

void
BM_GemmInt8(benchmark::State &state)
{
    const int64_t n = state.range(0);
    std::vector<int8_t> a(n * n), b(n * n);
    std::vector<int32_t> c(n * n);
    Rng rng(3);
    for (auto &v : a)
        v = static_cast<int8_t>(rng.nextInRange(-127, 127));
    for (auto &v : b)
        v = static_cast<int8_t>(rng.nextInRange(-127, 127));
    for (auto _ : state) {
        quant::gemmInt8(a.data(), b.data(), c.data(), n, n, n);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmInt8)->Arg(64)->Arg(128)->Arg(256);

void
BM_Conv2d(benchmark::State &state)
{
    const int64_t channels = state.range(0);
    Tensor input = randomTensor(Shape{1, channels, 32, 32}, 4);
    Tensor weight =
        randomTensor(Shape{channels, channels, 3, 3}, 5);
    Conv2dParams p;
    for (auto _ : state) {
        Tensor out = tensor::conv2d(input, weight, nullptr, p);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * 2 * channels *
                            channels * 9 * 32 * 32);
}
BENCHMARK(BM_Conv2d)->Arg(8)->Arg(16)->Arg(32);

void
BM_DepthwiseConv2d(benchmark::State &state)
{
    const int64_t channels = state.range(0);
    Tensor input = randomTensor(Shape{1, channels, 32, 32}, 6);
    Tensor weight = randomTensor(Shape{channels, 1, 3, 3}, 7);
    Conv2dParams p;
    for (auto _ : state) {
        Tensor out =
            tensor::depthwiseConv2d(input, weight, nullptr, p);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * 2 * channels * 9 *
                            32 * 32);
}
BENCHMARK(BM_DepthwiseConv2d)->Arg(16)->Arg(64);

void
BM_LstmCellStep(benchmark::State &state)
{
    const int64_t hidden = state.range(0);
    Rng rng(8);
    nn::LSTMCell cell(
        nn::heNormal(Shape{4 * hidden, hidden}, hidden, rng),
        nn::heNormal(Shape{4 * hidden, hidden}, hidden, rng),
        nn::zeroBias(4 * hidden));
    auto cell_state = cell.initialState(1);
    Tensor x = randomTensor(Shape{1, hidden}, 9);
    for (auto _ : state) {
        cell.step(x, cell_state);
        benchmark::DoNotOptimize(cell_state.h.data());
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(cell.flopsPerStep()));
}
BENCHMARK(BM_LstmCellStep)->Arg(32)->Arg(128);

void
BM_QuantizeBuffer(benchmark::State &state)
{
    const int64_t n = 1 << 16;
    Tensor src = randomTensor(Shape{n}, 10);
    std::vector<int8_t> dst(n);
    const quant::QuantParams p =
        quant::chooseQuantParams(-4.0f, 4.0f, 8, false);
    for (auto _ : state) {
        quant::quantizeBuffer(src.data(), dst.data(), n, p);
        benchmark::DoNotOptimize(dst.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_QuantizeBuffer);

} // namespace

BENCHMARK_MAIN();
