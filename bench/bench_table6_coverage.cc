/**
 * @file
 * Regenerates Table VI: coverage of models and scenarios — submission
 * counts per (model, scenario) over the simulated population. The
 * paper's shape to match: offline most popular, multistream least,
 * GNMT with zero multistream submissions, ResNet-50 the most popular
 * model at just under 3x the least popular (GNMT).
 */

#include <cstdio>
#include <map>

#include "common/population.h"
#include "report/table.h"

using namespace mlperf;
using loadgen::Scenario;
using models::TaskType;

int
main()
{
    std::printf("%s", report::banner(
        "Table VI: high coverage of models and scenarios "
        "(simulated population)").c_str());

    const auto population = bench::submissionPopulation();
    std::map<TaskType, std::map<Scenario, int>> counts;
    std::map<Scenario, int> totals;
    for (const auto &submission : population) {
        counts[submission.task][submission.scenario]++;
        totals[submission.scenario]++;
    }

    const Scenario scenarios[] = {Scenario::SingleStream,
                                  Scenario::MultiStream,
                                  Scenario::Server,
                                  Scenario::Offline};
    report::Table table({"Model", "Single-stream", "Multistream",
                         "Server", "Offline", "Total"});
    for (TaskType task : models::allTasks()) {
        std::vector<std::string> row = {models::taskModelName(task)};
        int task_total = 0;
        for (Scenario scenario : scenarios) {
            const int n = counts[task][scenario];
            task_total += n;
            row.push_back(std::to_string(n));
        }
        row.push_back(std::to_string(task_total));
        table.addRow(std::move(row));
    }
    table.addRule();
    std::vector<std::string> total_row = {"TOTAL"};
    int grand = 0;
    for (Scenario scenario : scenarios) {
        total_row.push_back(std::to_string(totals[scenario]));
        grand += totals[scenario];
    }
    total_row.push_back(std::to_string(grand));
    table.addRow(std::move(total_row));

    std::printf("%s", table.str().c_str());
    std::printf("\nPaper shape: totals SS 51 / MS 15 / S 33 / O 67; "
                "GNMT has zero MS submissions;\n"
                "ResNet-50 v1.5 is the most popular model.\n");
    return 0;
}
