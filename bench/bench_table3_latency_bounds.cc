/**
 * @file
 * Regenerates Table III: multistream arrival times and server QoS
 * constraints per task, from the model registry.
 */

#include <cstdio>

#include "models/model_info.h"
#include "report/table.h"

using namespace mlperf;

int
main()
{
    std::printf("%s", report::banner(
        "Table III: latency constraints in the multistream and "
        "server scenarios").c_str());

    report::Table table({"Task", "Multistream arrival time",
                         "Server QoS constraint",
                         "Over-latency allowance"});
    for (const auto &info : models::referenceModels()) {
        table.addRow({
            info.modelName,
            report::fmt(info.multistreamArrivalMs, 0) + " ms",
            report::fmt(info.serverQosMs, 0) + " ms",
            info.task == models::TaskType::MachineTranslation
                ? "3%"
                : "1%",
        });
    }
    std::printf("%s", table.str().c_str());
    return 0;
}
