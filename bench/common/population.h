/**
 * @file
 * The simulated submission population behind the paper's evaluation
 * figures (Sec. VI): which system submitted which task in which
 * scenario. Deterministically derived from the system zoo with
 * tier-specific interest rules that reproduce the qualitative shape
 * of Table VI (offline most popular, multistream least, GNMT with no
 * multistream submissions, ResNet-50 the most-submitted model).
 */

#ifndef MLPERF_BENCH_COMMON_POPULATION_H
#define MLPERF_BENCH_COMMON_POPULATION_H

#include <vector>

#include "loadgen/types.h"
#include "models/model_info.h"
#include "sut/hardware_profile.h"

namespace mlperf {
namespace bench {

struct Submission
{
    sut::HardwareProfile profile;
    models::TaskType task;
    loadgen::Scenario scenario;
};

/** The full closed-division submission list. */
std::vector<Submission> submissionPopulation();

} // namespace bench
} // namespace mlperf

#endif // MLPERF_BENCH_COMMON_POPULATION_H
