/**
 * @file
 * Shared MLPERF_BENCH_JSON plumbing for the bench binaries.
 *
 * Every bench that tracks machine-readable results used to hand-roll
 * the same dozen lines: read MLPERF_BENCH_JSON from the environment,
 * fall back to a committed BENCH_*.json default, fopen/fprintf/fclose.
 * One copy lives here instead. Header-only so benches that do not
 * link bench_common (e.g. the google-benchmark microkernels) can use
 * it too. JsonWriter replaces the other hand-rolled half: string
 * concatenation with manual comma bookkeeping.
 */

#ifndef MLPERF_BENCH_COMMON_BENCH_JSON_H
#define MLPERF_BENCH_COMMON_BENCH_JSON_H

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace mlperf {
namespace bench {

/**
 * Where this bench's JSON should go: $MLPERF_BENCH_JSON when set,
 * else @p default_path (pass nullptr for "env only" benches — the
 * result is then nullptr when the variable is unset).
 */
inline const char *
benchJsonPath(const char *default_path)
{
    if (const char *path = std::getenv("MLPERF_BENCH_JSON"))
        return path;
    return default_path;
}

/**
 * Write @p json (plus a trailing newline) to benchJsonPath(). A null
 * resolved path is a silent no-op; an unwritable one returns false so
 * CI can notice. Defaulted paths are the committed BENCH_*.json files
 * — a plain run refreshes the tracked numbers.
 */
inline bool
writeBenchJson(const std::string &json, const char *default_path)
{
    const char *path = benchJsonPath(default_path);
    if (path == nullptr)
        return true;
    std::FILE *f = std::fopen(path, "w");
    if (f == nullptr)
        return false;
    std::fprintf(f, "%s\n", json.c_str());
    std::fclose(f);
    return true;
}

/**
 * Append-only JSON builder with automatic comma placement. Benches
 * emit flat objects and arrays of objects; this covers exactly that —
 * no escaping beyond quotes (bench keys and values are ASCII
 * identifiers and numbers), no reordering, output in insertion order.
 *
 *   JsonWriter w;
 *   w.beginObject().field("benchmark", "decode");
 *   w.beginArray("sweep");
 *   w.beginObject().field("qps", 120.0).endObject();
 *   w.endArray().endObject();
 *   writeBenchJson(w.str(), nullptr);
 */
class JsonWriter
{
  public:
    JsonWriter &
    beginObject(const char *key = nullptr)
    {
        open(key, '{');
        return *this;
    }

    JsonWriter &
    endObject()
    {
        close('}');
        return *this;
    }

    JsonWriter &
    beginArray(const char *key = nullptr)
    {
        open(key, '[');
        return *this;
    }

    JsonWriter &
    endArray()
    {
        close(']');
        return *this;
    }

    JsonWriter &
    field(const char *key, const char *value)
    {
        prefix(key);
        out_ += '"';
        out_ += value;
        out_ += '"';
        return *this;
    }

    JsonWriter &
    field(const char *key, const std::string &value)
    {
        return field(key, value.c_str());
    }

    JsonWriter &
    field(const char *key, bool value)
    {
        prefix(key);
        out_ += value ? "true" : "false";
        return *this;
    }

    JsonWriter &
    field(const char *key, uint64_t value)
    {
        prefix(key);
        char buf[32];
        std::snprintf(buf, sizeof buf, "%llu",
                      static_cast<unsigned long long>(value));
        out_ += buf;
        return *this;
    }

    JsonWriter &
    field(const char *key, int value)
    {
        prefix(key);
        char buf[32];
        std::snprintf(buf, sizeof buf, "%d", value);
        out_ += buf;
        return *this;
    }

    /** Doubles print with a fixed @p precision (default %.4f). */
    JsonWriter &
    field(const char *key, double value, int precision = 4)
    {
        prefix(key);
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.*f", precision, value);
        out_ += buf;
        return *this;
    }

    const std::string &str() const { return out_; }

  private:
    void
    prefix(const char *key)
    {
        if (!first_.empty()) {
            if (!first_.back())
                out_ += ',';
            first_.back() = false;
        }
        if (key != nullptr) {
            out_ += '"';
            out_ += key;
            out_ += "\":";
        }
    }

    void
    open(const char *key, char bracket)
    {
        prefix(key);
        out_ += bracket;
        first_.push_back(true);
    }

    void
    close(char bracket)
    {
        out_ += bracket;
        first_.pop_back();
    }

    std::string out_;
    std::vector<bool> first_;  //!< per open scope: no member emitted yet
};

} // namespace bench
} // namespace mlperf

#endif // MLPERF_BENCH_COMMON_BENCH_JSON_H
