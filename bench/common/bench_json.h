/**
 * @file
 * Shared MLPERF_BENCH_JSON plumbing for the bench binaries.
 *
 * Every bench that tracks machine-readable results used to hand-roll
 * the same dozen lines: read MLPERF_BENCH_JSON from the environment,
 * fall back to a committed BENCH_*.json default, fopen/fprintf/fclose.
 * One copy lives here instead. Header-only so benches that do not
 * link bench_common (e.g. the google-benchmark microkernels) can use
 * it too.
 */

#ifndef MLPERF_BENCH_COMMON_BENCH_JSON_H
#define MLPERF_BENCH_COMMON_BENCH_JSON_H

#include <cstdio>
#include <cstdlib>
#include <string>

namespace mlperf {
namespace bench {

/**
 * Where this bench's JSON should go: $MLPERF_BENCH_JSON when set,
 * else @p default_path (pass nullptr for "env only" benches — the
 * result is then nullptr when the variable is unset).
 */
inline const char *
benchJsonPath(const char *default_path)
{
    if (const char *path = std::getenv("MLPERF_BENCH_JSON"))
        return path;
    return default_path;
}

/**
 * Write @p json (plus a trailing newline) to benchJsonPath(). A null
 * resolved path is a silent no-op; an unwritable one returns false so
 * CI can notice. Defaulted paths are the committed BENCH_*.json files
 * — a plain run refreshes the tracked numbers.
 */
inline bool
writeBenchJson(const std::string &json, const char *default_path)
{
    const char *path = benchJsonPath(default_path);
    if (path == nullptr)
        return true;
    std::FILE *f = std::fopen(path, "w");
    if (f == nullptr)
        return false;
    std::fprintf(f, "%s\n", json.c_str());
    std::fclose(f);
    return true;
}

} // namespace bench
} // namespace mlperf

#endif // MLPERF_BENCH_COMMON_BENCH_JSON_H
