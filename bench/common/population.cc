#include "common/population.h"

#include <algorithm>
#include <string>

#include "common/rng.h"
#include "sut/system_zoo.h"

namespace mlperf {
namespace bench {

namespace {

using loadgen::Scenario;
using models::TaskType;

bool
startsWith(const std::string &name, const std::string &prefix)
{
    return name.rfind(prefix, 0) == 0;
}

/** Tier-specific interests: tasks and scenarios a system submits. */
struct Interest
{
    std::vector<TaskType> tasks;
    std::vector<Scenario> scenarios;
    double keepProbability;  //!< per (task, scenario) entry
};

Interest
interestFor(const sut::HardwareProfile &profile)
{
    const std::string &name = profile.systemName;
    if (startsWith(name, "iot") || startsWith(name, "embedded")) {
        return {{TaskType::ImageClassificationLight,
                 TaskType::ObjectDetectionLight},
                {Scenario::SingleStream, Scenario::Offline},
                0.75};
    }
    if (startsWith(name, "phone")) {
        return {{TaskType::ImageClassificationLight,
                 TaskType::ImageClassificationHeavy,
                 TaskType::ObjectDetectionLight},
                {Scenario::SingleStream, Scenario::Offline},
                0.70};
    }
    if (startsWith(name, "edge")) {
        return {{TaskType::ImageClassificationLight,
                 TaskType::ImageClassificationHeavy,
                 TaskType::ObjectDetectionLight,
                 TaskType::ObjectDetectionHeavy},
                {Scenario::SingleStream, Scenario::MultiStream,
                 Scenario::Offline},
                0.55};
    }
    if (startsWith(name, "desktop")) {
        return {{TaskType::ImageClassificationHeavy,
                 TaskType::ImageClassificationLight,
                 TaskType::ObjectDetectionHeavy},
                {Scenario::SingleStream, Scenario::Server,
                 Scenario::Offline},
                0.55};
    }
    if (startsWith(name, "dc-cpu")) {
        return {{TaskType::ImageClassificationHeavy,
                 TaskType::ImageClassificationLight,
                 TaskType::MachineTranslation},
                {Scenario::SingleStream, Scenario::Server,
                 Scenario::Offline},
                0.65};
    }
    if (startsWith(name, "dc-gpu")) {
        return {{TaskType::ImageClassificationHeavy,
                 TaskType::ImageClassificationLight,
                 TaskType::ObjectDetectionHeavy,
                 TaskType::ObjectDetectionLight,
                 TaskType::MachineTranslation},
                {Scenario::Server, Scenario::Offline,
                 Scenario::SingleStream},
                0.60};
    }
    if (startsWith(name, "dc-asic")) {
        return {{TaskType::ImageClassificationHeavy,
                 TaskType::ObjectDetectionHeavy,
                 TaskType::MachineTranslation},
                {Scenario::Server, Scenario::Offline},
                0.80};
    }
    if (startsWith(name, "dc-fpga")) {
        return {{TaskType::ImageClassificationHeavy,
                 TaskType::ObjectDetectionLight},
                {Scenario::SingleStream, Scenario::MultiStream,
                 Scenario::Offline},
                0.60};
    }
    // RDO and anything else: a single headline result.
    return {{TaskType::ImageClassificationHeavy},
            {Scenario::SingleStream, Scenario::Offline},
            0.80};
}

} // namespace

std::vector<Submission>
submissionPopulation()
{
    std::vector<Submission> population;
    Rng rng(0x5B1155);  // fixed: the population is part of the study
    for (const auto &profile : sut::systemZoo()) {
        const Interest interest = interestFor(profile);
        for (TaskType task : interest.tasks) {
            for (Scenario scenario : interest.scenarios) {
                // Rule: GNMT's constant arrival interval is
                // unrealistic (Sec. VI-B) -> no MS submissions.
                if (task == TaskType::MachineTranslation &&
                    scenario == Scenario::MultiStream) {
                    continue;
                }
                // Model-popularity skew: ResNet-50 is the industry's
                // default performance-claim network (most submitted);
                // MobileNet trails slightly.
                double keep = interest.keepProbability;
                if (task == TaskType::ImageClassificationHeavy)
                    keep = std::min(1.0, keep * 1.3);
                else if (task == TaskType::ImageClassificationLight)
                    keep *= 0.85;
                if (rng.nextDouble() > keep)
                    continue;
                population.push_back({profile, task, scenario});
            }
        }
    }
    return population;
}

} // namespace bench
} // namespace mlperf
