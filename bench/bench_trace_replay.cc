/**
 * @file
 * Trace-driven load with SLO autoscaling, plus the coordinated-
 * omission audit demonstrated on a deliberately closed-loop harness.
 *
 * Three studies:
 *  1. Diurnal trace, fixed vs autoscaled: the same seeded diurnal
 *     arrival schedule (rate swinging +/-90% around the mean) is
 *     served by a fixed single-shard runtime and by the SLO
 *     autoscaler (1..4 shards). The fixed config violates the p99
 *     target at the crest of the wave; the autoscaler grows shards
 *     into the crest and holds it, then drains them in the trough.
 *  2. Session-burst trace: the same comparison under heavy-tailed
 *     (Pareto-sized) session bursts instead of a smooth ramp.
 *     Both studies run under ~1% injected chaos (latency spikes,
 *     transient faults, dropped completions, wedged workers) and
 *     assert the runtime contract: zero dropped queries and zero
 *     fast-path lock acquisitions even while shards grow and shrink.
 *  3. Coordinated-omission audit: TEST06 flags a closed-loop harness
 *     (inference blocking the issue thread) whose issue timestamps
 *     drift under backpressure, and passes the open-loop serving
 *     runtime on the same offered load.
 *
 * Inference cost is a per-sample sleep, so capacity genuinely scales
 * with worker count on any host (a busy-wait would not, on a
 * single-core CI box).
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "audit/measurement_audit.h"
#include "common/bench_json.h"
#include "common/string_util.h"
#include "loadgen/loadgen.h"
#include "report/serving_report.h"
#include "report/table.h"
#include "serving/chaos.h"
#include "serving/serving_sut.h"
#include "sim/real_executor.h"

using namespace mlperf;

namespace {

// ---- Load shape. One worker at kPerSampleNs serves ~200 qps; the
// diurnal crest (mean * (1 + amplitude)) deliberately exceeds one
// shard's capacity while staying under four shards' worth.
constexpr sim::Tick kPerSampleNs = 5 * sim::kNsPerMs;
constexpr double kMeanQps = 120.0;
constexpr double kDiurnalAmplitude = 0.9;
constexpr sim::Tick kDiurnalPeriodNs = 3 * sim::kNsPerSec;
constexpr uint64_t kQueryCount = 600;
constexpr sim::Tick kSloTargetNs = 60 * sim::kNsPerMs;

/** Sleeps kPerSampleNs per sample: a serial accelerator slice. */
class SleepingBatchInference : public serving::BatchInference
{
  public:
    std::string name() const override { return "sleeper"; }

    std::vector<loadgen::QuerySampleResponse>
    runBatch(const std::vector<loadgen::QuerySample> &samples) override
    {
        std::this_thread::sleep_for(std::chrono::nanoseconds(
            kPerSampleNs * samples.size()));
        std::vector<loadgen::QuerySampleResponse> responses;
        responses.reserve(samples.size());
        for (const auto &sample : samples)
            responses.push_back({sample.id, "ok",
                                 loadgen::ResponseStatus::Ok});
        return responses;
    }
};

/**
 * The omission demo's anti-pattern: inference runs synchronously
 * inside issueQuery, so the LoadGen's issue thread (and with it every
 * later scheduled arrival) stalls whenever the SUT is slow — the
 * classic closed-loop harness bug TEST06 exists to catch.
 */
class BlockingInlineSut : public loadgen::SystemUnderTest
{
  public:
    std::string name() const override { return "blocking-inline"; }

    void
    issueQuery(const std::vector<loadgen::QuerySample> &samples,
               loadgen::ResponseDelegate &delegate) override
    {
        std::this_thread::sleep_for(std::chrono::nanoseconds(
            kPerSampleNs * samples.size()));
        std::vector<loadgen::QuerySampleResponse> responses;
        for (const auto &sample : samples)
            responses.push_back({sample.id, "ok",
                                 loadgen::ResponseStatus::Ok});
        delegate.querySamplesComplete(responses);
    }

    void flushQueries() override {}
};

loadgen::TestSettings
traceSettings(loadgen::ArrivalPattern pattern)
{
    loadgen::TestSettings settings =
        loadgen::TestSettings::forScenario(loadgen::Scenario::Server);
    settings.serverTargetQps = kMeanQps;
    settings.serverTrace.pattern = pattern;
    settings.serverTrace.diurnalAmplitude = kDiurnalAmplitude;
    settings.serverTrace.diurnalPeriodNs = kDiurnalPeriodNs;
    settings.serverTrace.sessionMeanSize = 8.0;
    settings.serverTrace.sessionParetoAlpha = 1.5;
    settings.serverTrace.sessionGapNs = 2 * sim::kNsPerMs;
    settings.maxQueryCount = kQueryCount;
    settings.targetLatencyNs = kSloTargetNs;
    settings.recordTimeline = true;
    return settings;
}

serving::ChaosOptions
chaosMix()
{
    // ~1% of batches see some fault; every kind is represented.
    serving::ChaosOptions chaos;
    chaos.latencySpikeProb = 0.005;
    chaos.latencySpikeNs = 20 * sim::kNsPerMs;
    chaos.transientFaultProb = 0.004;
    chaos.dropCompletionProb = 0.003;
    chaos.wedgeProb = 0.002;
    chaos.wedgeNs = 50 * sim::kNsPerMs;
    return chaos;
}

loadgen::QuerySampleLibrary &qsl();

struct RunOutcome
{
    loadgen::TestResult result;
    serving::StatsSnapshot stats;
    uint64_t fastPathLocks = 0;
    bool contractHeld = false;  //!< no drops, no fast-path locks
};

/**
 * One serving run over @p settings under chaos. @p autoscaled picks
 * between the fixed single-shard runtime (1 worker = the same
 * capacity one shard has) and the 1..4-shard autoscaler.
 */
RunOutcome
runServing(const loadgen::TestSettings &settings, bool autoscaled)
{
    SleepingBatchInference sleeper;
    serving::FaultInjectingInference chaotic(sleeper, chaosMix());

    serving::ServingOptions options;
    options.maxBatch = 4;
    options.batchTimeoutNs = sim::kNsPerMs;
    options.mode = serving::WorkerMode::Threads;
    options.queryDeadlineNs = 250 * sim::kNsPerMs;
    options.retry.maxAttempts = 2;
    if (autoscaled) {
        options.workers = 4;  // 1 per shard at the 4-shard ceiling
        options.shards = 1;   // start at the trough's footprint
        options.autoscale.enabled = true;
        options.autoscale.minShards = 1;
        options.autoscale.maxShards = 4;
        // Scale out on a tighter internal target than the external
        // SLO so shards are up before the budget is actually spent,
        // and react fast: a diurnal crest ramps in ~750 ms.
        options.autoscale.sloTargetNs = kSloTargetNs / 2;
        options.autoscale.intervalNs = 10 * sim::kNsPerMs;
        options.autoscale.ewmaAlpha = 0.5;
        options.autoscale.growThreshold = 0.02;
        options.autoscale.shrinkThreshold = 0.005;
        options.autoscale.shrinkHoldIntervals = 20;
    } else {
        options.workers = 1;
        options.shards = 1;
    }

    sim::RealExecutor executor;
    serving::ServingSut sut(executor, chaotic, options);
    loadgen::LoadGen lg(executor);

    RunOutcome out;
    out.result = lg.startTest(sut, qsl(), settings);
    sut.shutdown();
    out.stats = sut.stats();
    if (sut.shardedPool() != nullptr)
        out.fastPathLocks = sut.shardedPool()->fastPathLockAcquisitions();
    out.contractHeld =
        out.result.droppedQueries == 0 && out.fastPathLocks == 0;
    return out;
}

loadgen::QuerySampleLibrary &
qsl()
{
    class SyntheticQsl : public loadgen::QuerySampleLibrary
    {
      public:
        std::string name() const override { return "synthetic-qsl"; }
        uint64_t totalSampleCount() const override { return 4096; }
        uint64_t
        performanceSampleCount() const override
        {
            return 1024;
        }
        void
        loadSamplesToRam(
            const std::vector<loadgen::QuerySampleIndex> &) override
        {
        }
        void
        unloadSamplesFromRam(
            const std::vector<loadgen::QuerySampleIndex> &) override
        {
        }
    };
    static SyntheticQsl instance;
    return instance;
}

double
ms(uint64_t ns)
{
    return static_cast<double>(ns) /
           static_cast<double>(sim::kNsPerMs);
}

std::string
outcomeJson(const char *key, const RunOutcome &out)
{
    std::string json = strprintf(
        "\"%s\":{\"p99_ms\":%.3f,\"corrected_p99_ms\":%.3f,"
        "\"valid\":%s,\"over_latency_fraction\":%.4f,"
        "\"slo_violation_rate\":%.4f,\"shed_rate\":%.4f,"
        "\"scale_ups\":%llu,\"scale_downs\":%llu,"
        "\"active_shards\":%lld,\"dropped_queries\":%llu,"
        "\"fast_path_locks\":%llu,\"contract_held\":%s,"
        "\"stats\":",
        key, ms(out.result.latency.p99),
        ms(out.result.correctedTailLatencyNs),
        out.result.valid ? "true" : "false",
        out.result.overLatencyFraction,
        out.stats.sloViolationRate(), out.stats.shedRate(),
        static_cast<unsigned long long>(out.stats.scaleUps),
        static_cast<unsigned long long>(out.stats.scaleDowns),
        static_cast<long long>(out.stats.activeShards),
        static_cast<unsigned long long>(out.result.droppedQueries),
        static_cast<unsigned long long>(out.fastPathLocks),
        out.contractHeld ? "true" : "false");
    json += report::servingSnapshotJson(out.stats,
                                        out.result.durationNs,
                                        &out.result);
    json += "}";
    return json;
}

} // namespace

int
main()
{
    std::printf("%s",
                report::banner("Trace-driven load: diurnal + session "
                               "bursts, fixed vs SLO-autoscaled "
                               "shards, ~1% chaos")
                    .c_str());

    bool all_contracts_held = true;
    std::string json = strprintf(
        "{\"benchmark\":\"trace_replay\",\"mean_qps\":%.1f,"
        "\"per_sample_ms\":%.1f,\"slo_target_ms\":%.1f,",
        kMeanQps, ms(kPerSampleNs), ms(kSloTargetNs));

    report::Table table({"Trace", "Config", "p99 (ms)",
                         "corrected p99 (ms)", "SLO viol.", "Shed",
                         "Ups", "Downs", "Valid"});
    const struct
    {
        const char *name;
        loadgen::ArrivalPattern pattern;
    } traces[] = {
        {"diurnal", loadgen::ArrivalPattern::Diurnal},
        {"sessions", loadgen::ArrivalPattern::SessionBurst},
    };
    bool first_trace = true;
    for (const auto &trace : traces) {
        const loadgen::TestSettings settings =
            traceSettings(trace.pattern);
        const RunOutcome fixed = runServing(settings, false);
        const RunOutcome scaled = runServing(settings, true);
        all_contracts_held = all_contracts_held &&
                             fixed.contractHeld && scaled.contractHeld;

        for (const auto *run : {&fixed, &scaled}) {
            table.addRow(
                {trace.name, run == &fixed ? "fixed-1" : "auto-1..4",
                 report::fmt(ms(run->result.latency.p99), 2),
                 report::fmt(ms(run->result.correctedTailLatencyNs),
                             2),
                 strprintf("%.2f%%",
                           100.0 * run->stats.sloViolationRate()),
                 strprintf("%.2f%%", 100.0 * run->stats.shedRate()),
                 withThousands(run->stats.scaleUps),
                 withThousands(run->stats.scaleDowns),
                 run->result.valid ? "yes" : "NO"});
        }
        json += strprintf("%s\"%s\":{", first_trace ? "" : ",",
                          trace.name);
        json += outcomeJson("fixed", fixed) + ",";
        json += outcomeJson("autoscaled", scaled) + "}";
        first_trace = false;
    }
    std::printf("%s", table.str().c_str());

    // ---------------------------------- coordinated-omission audit
    // The same offered load (Poisson at 1.5x one worker's capacity),
    // once through the closed-loop inline SUT and once through the
    // open-loop serving runtime. TEST06 must flag the former (issue
    // timestamps drift behind schedule; the issued-referenced tail
    // hides the queueing) and clear the latter.
    loadgen::TestSettings audit_settings =
        loadgen::TestSettings::forScenario(loadgen::Scenario::Server);
    audit_settings.serverTargetQps = 300.0;
    audit_settings.maxQueryCount = 200;
    audit_settings.targetLatencyNs = sim::kNsPerSec;

    const audit::AuditVerdict closed_verdict =
        audit::coordinatedOmissionTest(
            [](const loadgen::TestSettings &settings) {
                sim::RealExecutor executor;
                BlockingInlineSut sut;
                loadgen::LoadGen lg(executor);
                return lg.startTest(sut, qsl(), settings);
            },
            audit_settings);
    const audit::AuditVerdict open_verdict =
        audit::coordinatedOmissionTest(
            [](const loadgen::TestSettings &settings) {
                SleepingBatchInference sleeper;
                sim::RealExecutor executor;
                serving::ServingOptions options;
                options.workers = 4;
                options.maxBatch = 4;
                options.batchTimeoutNs = sim::kNsPerMs;
                options.mode = serving::WorkerMode::Threads;
                serving::ServingSut sut(executor, sleeper, options);
                loadgen::LoadGen lg(executor);
                auto result = lg.startTest(sut, qsl(), settings);
                sut.shutdown();
                return result;
            },
            audit_settings);

    std::printf("\nCoordinated-omission audit (TEST06)\n"
                "  closed-loop inline SUT: %s (want FLAG) — %s\n"
                "  open-loop serving SUT : %s (want PASS) — %s\n",
                closed_verdict.pass ? "PASS" : "FLAGGED",
                closed_verdict.detail.c_str(),
                open_verdict.pass ? "PASS" : "FLAGGED",
                open_verdict.detail.c_str());

    const bool audit_discriminates =
        !closed_verdict.pass && open_verdict.pass;
    json += strprintf(
        ",\"omission_audit\":{\"closed_loop_flagged\":%s,"
        "\"open_loop_passed\":%s,\"discriminates\":%s}",
        closed_verdict.pass ? "false" : "true",
        open_verdict.pass ? "true" : "false",
        audit_discriminates ? "true" : "false");
    json += strprintf(",\"contracts_held\":%s}",
                      all_contracts_held ? "true" : "false");

    std::printf(
        "\nRuntime contract under scaling + chaos: %s (zero dropped "
        "queries, zero fast-path lock acquisitions)\n",
        all_contracts_held ? "HELD" : "VIOLATED");

    bench::writeBenchJson(json, "BENCH_trace.json");
    return (all_contracts_held && audit_discriminates) ? 0 : 1;
}
