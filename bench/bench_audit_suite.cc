/**
 * @file
 * Exercises the Sec. V-B result-review suite: runs TEST01/TEST04/
 * TEST05 against an honest submission, a caching submission, and a
 * seed-specialized submission, and prints the verdicts — the
 * machinery that let "only about three engineers ... comb through
 * the submissions" and reject ~40 of ~180 closed-division results.
 */

#include <cstdio>
#include <set>

#include "audit/audit.h"
#include "loadgen/loadgen.h"
#include "report/table.h"
#include "sim/virtual_executor.h"

using namespace mlperf;
using sim::kNsPerMs;

namespace {

class BenchQsl : public loadgen::QuerySampleLibrary
{
  public:
    std::string name() const override { return "audit-bench-qsl"; }
    uint64_t totalSampleCount() const override { return 256; }
    uint64_t performanceSampleCount() const override { return 128; }
    void loadSamplesToRam(
        const std::vector<loadgen::QuerySampleIndex> &) override
    {
    }
    void unloadSamplesFromRam(
        const std::vector<loadgen::QuerySampleIndex> &) override
    {
    }
};

enum class Behaviour { Honest, Caching, SeedTuned, Inconsistent };

class BenchSut : public loadgen::SystemUnderTest
{
  public:
    BenchSut(sim::Executor &executor, Behaviour behaviour,
             bool official_seed)
        : executor_(executor), behaviour_(behaviour),
          officialSeed_(official_seed)
    {
    }

    std::string name() const override { return "bench-sut"; }

    void
    issueQuery(const std::vector<loadgen::QuerySample> &samples,
               loadgen::ResponseDelegate &delegate) override
    {
        for (const auto &sample : samples) {
            sim::Tick latency = 4 * kNsPerMs;
            if (behaviour_ == Behaviour::Caching &&
                !seen_.insert(sample.index).second) {
                latency = 1000;  // cache hit
            }
            if (behaviour_ == Behaviour::SeedTuned && officialSeed_)
                latency = 2 * kNsPerMs;  // fast path for the seed
            std::string data = "r" + std::to_string(sample.index);
            if (behaviour_ == Behaviour::Inconsistent)
                data += "?" + std::to_string(counter_++ % 7);
            loadgen::QuerySampleResponse response{sample.id, data};
            executor_.scheduleAfter(latency, [&delegate, response] {
                delegate.querySamplesComplete({response});
            });
        }
    }

    void flushQueries() override {}

  private:
    sim::Executor &executor_;
    Behaviour behaviour_;
    bool officialSeed_;
    std::set<loadgen::QuerySampleIndex> seen_;
    uint64_t counter_ = 0;
};

audit::Runner
makeRunner(Behaviour behaviour)
{
    return [behaviour](const loadgen::TestSettings &settings) {
        sim::VirtualExecutor executor;
        BenchSut sut(executor, behaviour,
                     settings.sampleIndexSeed == 0xA5A5);
        BenchQsl qsl;
        loadgen::LoadGen lg(executor);
        return lg.startTest(sut, qsl, settings);
    };
}

} // namespace

int
main()
{
    std::printf("%s", report::banner(
        "Sec. V-B: result-review validation suite").c_str());

    loadgen::TestSettings settings =
        loadgen::TestSettings::forScenario(
            loadgen::Scenario::SingleStream);
    settings.maxQueryCount = 500;

    struct Case
    {
        const char *label;
        Behaviour behaviour;
    };
    const Case cases[] = {
        {"honest submission", Behaviour::Honest},
        {"query-caching submission", Behaviour::Caching},
        {"seed-tuned submission", Behaviour::SeedTuned},
        {"inconsistent-results submission", Behaviour::Inconsistent},
    };

    report::Table table({"Submission", "TEST01 accuracy",
                         "TEST04 caching", "TEST05 alt-seed",
                         "Overall"});
    for (const auto &c : cases) {
        const auto runner = makeRunner(c.behaviour);
        const auto t01 =
            audit::accuracyVerificationTest(runner, settings);
        const auto t04 = audit::cachingDetectionTest(runner, settings);
        const auto t05 = audit::alternateSeedTest(runner, settings);
        const bool all = t01.pass && t04.pass && t05.pass;
        table.addRow({c.label, t01.pass ? "PASS" : "FAIL",
                      t04.pass ? "PASS" : "FAIL",
                      t05.pass ? "PASS" : "FAIL",
                      all ? "CLEARED" : "REJECTED"});
    }
    std::printf("%s", table.str().c_str());
    std::printf("\nPaper: 595 of 600+ submissions cleared; ~40 "
                "closed-division issues found, largely\n"
                "automatically, by these checkers.\n");
    return 0;
}
