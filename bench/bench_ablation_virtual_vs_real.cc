/**
 * @file
 * Ablation: the same LoadGen scenario logic driven by the virtual
 * (discrete-event) executor and by the wall-clock executor, against
 * the same SUT behaviour. Validates the central substitution of this
 * reproduction: identical scenario semantics, orders-of-magnitude
 * host-time savings.
 */

#include <chrono>
#include <cstdio>
#include <thread>

#include "loadgen/loadgen.h"
#include "report/table.h"
#include "sim/real_executor.h"
#include "sim/virtual_executor.h"

using namespace mlperf;
using sim::kNsPerMs;

namespace {

class Qsl : public loadgen::QuerySampleLibrary
{
  public:
    std::string name() const override { return "ablation-qsl"; }
    uint64_t totalSampleCount() const override { return 256; }
    uint64_t performanceSampleCount() const override { return 128; }
    void loadSamplesToRam(
        const std::vector<loadgen::QuerySampleIndex> &) override
    {
    }
    void unloadSamplesFromRam(
        const std::vector<loadgen::QuerySampleIndex> &) override
    {
    }
};

/** Fixed-latency SUT usable under either executor. */
class FixedLatencySut : public loadgen::SystemUnderTest
{
  public:
    FixedLatencySut(sim::Executor &executor, sim::Tick latency)
        : executor_(executor), latency_(latency)
    {
    }

    std::string name() const override { return "fixed-latency-sut"; }

    void
    issueQuery(const std::vector<loadgen::QuerySample> &samples,
               loadgen::ResponseDelegate &delegate) override
    {
        std::vector<loadgen::QuerySampleResponse> responses;
        for (const auto &s : samples)
            responses.push_back({s.id, ""});
        executor_.scheduleAfter(latency_, [&delegate, responses] {
            delegate.querySamplesComplete(responses);
        });
    }

    void flushQueries() override {}

  private:
    sim::Executor &executor_;
    sim::Tick latency_;
};

struct Measurement
{
    loadgen::TestResult result;
    double hostSeconds;
};

template <typename Executor>
Measurement
run(const loadgen::TestSettings &settings, sim::Tick latency)
{
    Executor executor;
    FixedLatencySut sut(executor, latency);
    Qsl qsl;
    loadgen::LoadGen lg(executor);
    const auto t0 = std::chrono::steady_clock::now();
    loadgen::TestResult result = lg.startTest(sut, qsl, settings);
    const auto t1 = std::chrono::steady_clock::now();
    return {std::move(result),
            std::chrono::duration<double>(t1 - t0).count()};
}

} // namespace

int
main()
{
    std::printf("%s", report::banner(
        "Ablation: virtual-time vs. wall-clock execution of the same "
        "scenario").c_str());

    loadgen::TestSettings settings =
        loadgen::TestSettings::forScenario(
            loadgen::Scenario::SingleStream);
    settings.maxQueryCount = 200;
    const sim::Tick latency = 10 * kNsPerMs;

    const Measurement virt =
        run<sim::VirtualExecutor>(settings, latency);
    const Measurement real = run<sim::RealExecutor>(settings, latency);

    report::Table table({"Executor", "Queries", "p90 latency (ms)",
                         "Virtual duration (s)", "Host time (s)"});
    table.addRow({"VirtualExecutor",
                  std::to_string(virt.result.queryCount),
                  report::fmt(virt.result.latency.p90 / 1e6, 3),
                  report::fmt(virt.result.durationNs / 1e9, 3),
                  report::fmt(virt.hostSeconds, 4)});
    table.addRow({"RealExecutor",
                  std::to_string(real.result.queryCount),
                  report::fmt(real.result.latency.p90 / 1e6, 3),
                  report::fmt(real.result.durationNs / 1e9, 3),
                  report::fmt(real.hostSeconds, 4)});
    std::printf("%s", table.str().c_str());

    const double p90_delta =
        std::abs(static_cast<double>(virt.result.latency.p90) -
                 static_cast<double>(real.result.latency.p90)) /
        static_cast<double>(virt.result.latency.p90);
    std::printf("\np90 agreement: %.2f%% apart; host-time speedup of "
                "virtual execution: %.0fx.\n"
                "Same scenario logic, same validity rules — the "
                "population studies use virtual time\nwhile real-SUT "
                "measurements use wall-clock time.\n",
                100.0 * p90_delta,
                real.hostSeconds / virt.hostSeconds);
    return 0;
}
