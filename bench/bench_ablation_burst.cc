/**
 * @file
 * Burst-mode ablation ("new scenarios (e.g., 'burst' mode)",
 * Sec. I): the server metric of one system under increasingly bursty
 * arrivals at the same mean rate. Shows why a Poisson-validated
 * capacity figure overstates what a system survives under real
 * traffic bursts.
 */

#include <cstdio>

#include "common/bench_json.h"
#include "harness/experiment.h"
#include "loadgen/loadgen.h"
#include "report/table.h"
#include "sim/virtual_executor.h"
#include "sut/simulated_sut.h"
#include "sut/system_zoo.h"

using namespace mlperf;

namespace {

class Qsl : public loadgen::QuerySampleLibrary
{
  public:
    std::string name() const override { return "burst-qsl"; }
    uint64_t totalSampleCount() const override { return 1024; }
    uint64_t performanceSampleCount() const override { return 256; }
    void loadSamplesToRam(
        const std::vector<loadgen::QuerySampleIndex> &) override
    {
    }
    void unloadSamplesFromRam(
        const std::vector<loadgen::QuerySampleIndex> &) override
    {
    }
};

} // namespace

int
main()
{
    std::printf("%s", report::banner(
        "Ablation: burst-mode arrivals vs. the server metric "
        "(dc-cpu-a, ResNet-50)").c_str());

    const sut::HardwareProfile *profile = nullptr;
    for (const auto &p : sut::systemZoo()) {
        if (p.systemName == "dc-cpu-a")
            profile = &p;
    }
    const auto task = models::TaskType::ImageClassificationHeavy;

    harness::ExperimentOptions options;
    options.scale = 0.05;
    options.search.runsPerDecision = 2;
    const auto poisson_capacity =
        harness::runServer(*profile, task, options);
    // Operate at 90% of the searched capacity: comfortably valid
    // under Poisson arrivals, so any failure below is the bursts'.
    const double load = 0.9 * poisson_capacity.metric;
    std::printf("Poisson-validated capacity: %.0f qps; operating "
                "point: %.0f qps\n\n",
                poisson_capacity.metric, load);

    report::Table table({"Burst factor", "Over-latency fraction",
                         "Valid at 90% of Poisson capacity?"});
    bench::JsonWriter json;
    json.beginObject()
        .field("benchmark", "ablation_burst")
        .field("system", "dc-cpu-a")
        .field("poisson_capacity_qps", poisson_capacity.metric, 1)
        .field("operating_qps", load, 1);
    json.beginArray("sweep");
    for (double factor : {1.0, 1.5, 2.0, 2.5, 3.0}) {
        sim::VirtualExecutor ex;
        sut::SchedulerOptions sched;
        sched.batchWindowNs = options.serverBatchWindowNs;
        sut::SimulatedSut system(ex, *profile,
                                 sut::modelCostFor(task), sched);
        Qsl qsl;
        auto settings = harness::settingsForTask(
            task, loadgen::Scenario::Server, options);
        settings.serverTargetQps = load;
        settings.serverBurstFactor = factor;
        loadgen::LoadGen lg(ex);
        const auto result = lg.startTest(system, qsl, settings);
        table.addRow({report::fmt(factor, 1),
                      report::fmt(result.overLatencyFraction, 4),
                      result.valid ? "VALID" : "INVALID"});
        json.beginObject()
            .field("burst_factor", factor, 1)
            .field("over_latency_fraction",
                   result.overLatencyFraction)
            .field("valid", result.valid)
            .endObject();
    }
    json.endArray().endObject();
    bench::writeBenchJson(json.str(), nullptr);
    std::printf("%s", table.str().c_str());
    std::printf("\nThe same mean load that passes under Poisson "
                "arrivals fails under bursts: the QoS\ntail breaks "
                "as soon as burst-period demand exceeds capacity — "
                "the motivation for the\nburst-mode scenario on the "
                "paper's roadmap.\n");
    return 0;
}
