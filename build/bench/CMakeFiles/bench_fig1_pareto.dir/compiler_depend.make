# Empty compiler generated dependencies file for bench_fig1_pareto.
# This may be replaced when dependencies are built.
