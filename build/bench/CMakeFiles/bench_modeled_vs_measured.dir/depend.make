# Empty dependencies file for bench_modeled_vs_measured.
# This may be replaced when dependencies are built.
