file(REMOVE_RECURSE
  "CMakeFiles/bench_modeled_vs_measured.dir/bench_modeled_vs_measured.cc.o"
  "CMakeFiles/bench_modeled_vs_measured.dir/bench_modeled_vs_measured.cc.o.d"
  "bench_modeled_vs_measured"
  "bench_modeled_vs_measured.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_modeled_vs_measured.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
