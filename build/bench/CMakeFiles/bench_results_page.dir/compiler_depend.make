# Empty compiler generated dependencies file for bench_results_page.
# This may be replaced when dependencies are built.
