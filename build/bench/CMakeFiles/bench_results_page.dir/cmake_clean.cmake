file(REMOVE_RECURSE
  "CMakeFiles/bench_results_page.dir/bench_results_page.cc.o"
  "CMakeFiles/bench_results_page.dir/bench_results_page.cc.o.d"
  "bench_results_page"
  "bench_results_page.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_results_page.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
