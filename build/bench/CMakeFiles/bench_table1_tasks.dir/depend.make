# Empty dependencies file for bench_table1_tasks.
# This may be replaced when dependencies are built.
