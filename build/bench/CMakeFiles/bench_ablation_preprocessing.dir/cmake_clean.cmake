file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_preprocessing.dir/bench_ablation_preprocessing.cc.o"
  "CMakeFiles/bench_ablation_preprocessing.dir/bench_ablation_preprocessing.cc.o.d"
  "bench_ablation_preprocessing"
  "bench_ablation_preprocessing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_preprocessing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
