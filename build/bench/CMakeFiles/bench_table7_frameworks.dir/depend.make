# Empty dependencies file for bench_table7_frameworks.
# This may be replaced when dependencies are built.
