# Empty dependencies file for bench_quantization_accuracy.
# This may be replaced when dependencies are built.
