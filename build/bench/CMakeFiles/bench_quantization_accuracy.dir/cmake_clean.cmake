file(REMOVE_RECURSE
  "CMakeFiles/bench_quantization_accuracy.dir/bench_quantization_accuracy.cc.o"
  "CMakeFiles/bench_quantization_accuracy.dir/bench_quantization_accuracy.cc.o.d"
  "bench_quantization_accuracy"
  "bench_quantization_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_quantization_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
