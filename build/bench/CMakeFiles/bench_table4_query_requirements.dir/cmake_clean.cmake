file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_query_requirements.dir/bench_table4_query_requirements.cc.o"
  "CMakeFiles/bench_table4_query_requirements.dir/bench_table4_query_requirements.cc.o.d"
  "bench_table4_query_requirements"
  "bench_table4_query_requirements.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_query_requirements.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
