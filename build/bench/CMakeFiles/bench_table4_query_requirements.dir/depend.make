# Empty dependencies file for bench_table4_query_requirements.
# This may be replaced when dependencies are built.
