file(REMOVE_RECURSE
  "CMakeFiles/bench_full_matrix.dir/bench_full_matrix.cc.o"
  "CMakeFiles/bench_full_matrix.dir/bench_full_matrix.cc.o.d"
  "bench_full_matrix"
  "bench_full_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_full_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
