# Empty dependencies file for bench_full_matrix.
# This may be replaced when dependencies are built.
