file(REMOVE_RECURSE
  "CMakeFiles/bench_audit_suite.dir/bench_audit_suite.cc.o"
  "CMakeFiles/bench_audit_suite.dir/bench_audit_suite.cc.o.d"
  "bench_audit_suite"
  "bench_audit_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_audit_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
