# Empty dependencies file for bench_audit_suite.
# This may be replaced when dependencies are built.
