# Empty dependencies file for bench_fig7_processor_types.
# This may be replaced when dependencies are built.
