file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_processor_types.dir/bench_fig7_processor_types.cc.o"
  "CMakeFiles/bench_fig7_processor_types.dir/bench_fig7_processor_types.cc.o.d"
  "bench_fig7_processor_types"
  "bench_fig7_processor_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_processor_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
