file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_perf_range.dir/bench_fig8_perf_range.cc.o"
  "CMakeFiles/bench_fig8_perf_range.dir/bench_fig8_perf_range.cc.o.d"
  "bench_fig8_perf_range"
  "bench_fig8_perf_range.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_perf_range.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
