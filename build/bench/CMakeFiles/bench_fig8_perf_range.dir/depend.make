# Empty dependencies file for bench_fig8_perf_range.
# This may be replaced when dependencies are built.
