# Empty dependencies file for bench_open_division.
# This may be replaced when dependencies are built.
