file(REMOVE_RECURSE
  "CMakeFiles/bench_open_division.dir/bench_open_division.cc.o"
  "CMakeFiles/bench_open_division.dir/bench_open_division.cc.o.d"
  "bench_open_division"
  "bench_open_division.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_open_division.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
