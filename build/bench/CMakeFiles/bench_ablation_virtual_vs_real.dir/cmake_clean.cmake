file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_virtual_vs_real.dir/bench_ablation_virtual_vs_real.cc.o"
  "CMakeFiles/bench_ablation_virtual_vs_real.dir/bench_ablation_virtual_vs_real.cc.o.d"
  "bench_ablation_virtual_vs_real"
  "bench_ablation_virtual_vs_real.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_virtual_vs_real.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
