# Empty compiler generated dependencies file for bench_ablation_virtual_vs_real.
# This may be replaced when dependencies are built.
