file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_query_matrix.dir/bench_table5_query_matrix.cc.o"
  "CMakeFiles/bench_table5_query_matrix.dir/bench_table5_query_matrix.cc.o.d"
  "bench_table5_query_matrix"
  "bench_table5_query_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_query_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
