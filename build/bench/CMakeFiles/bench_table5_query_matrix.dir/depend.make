# Empty dependencies file for bench_table5_query_matrix.
# This may be replaced when dependencies are built.
