# Empty compiler generated dependencies file for bench_fig4_query_timing.
# This may be replaced when dependencies are built.
