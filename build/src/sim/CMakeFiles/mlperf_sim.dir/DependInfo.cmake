
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/executor.cc" "src/sim/CMakeFiles/mlperf_sim.dir/executor.cc.o" "gcc" "src/sim/CMakeFiles/mlperf_sim.dir/executor.cc.o.d"
  "/root/repo/src/sim/real_executor.cc" "src/sim/CMakeFiles/mlperf_sim.dir/real_executor.cc.o" "gcc" "src/sim/CMakeFiles/mlperf_sim.dir/real_executor.cc.o.d"
  "/root/repo/src/sim/virtual_executor.cc" "src/sim/CMakeFiles/mlperf_sim.dir/virtual_executor.cc.o" "gcc" "src/sim/CMakeFiles/mlperf_sim.dir/virtual_executor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mlperf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
