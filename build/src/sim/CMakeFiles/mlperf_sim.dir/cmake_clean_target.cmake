file(REMOVE_RECURSE
  "libmlperf_sim.a"
)
