# Empty dependencies file for mlperf_sim.
# This may be replaced when dependencies are built.
