file(REMOVE_RECURSE
  "CMakeFiles/mlperf_sim.dir/executor.cc.o"
  "CMakeFiles/mlperf_sim.dir/executor.cc.o.d"
  "CMakeFiles/mlperf_sim.dir/real_executor.cc.o"
  "CMakeFiles/mlperf_sim.dir/real_executor.cc.o.d"
  "CMakeFiles/mlperf_sim.dir/virtual_executor.cc.o"
  "CMakeFiles/mlperf_sim.dir/virtual_executor.cc.o.d"
  "libmlperf_sim.a"
  "libmlperf_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlperf_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
