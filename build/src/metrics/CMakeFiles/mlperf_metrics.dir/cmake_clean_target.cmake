file(REMOVE_RECURSE
  "libmlperf_metrics.a"
)
