file(REMOVE_RECURSE
  "CMakeFiles/mlperf_metrics.dir/accuracy.cc.o"
  "CMakeFiles/mlperf_metrics.dir/accuracy.cc.o.d"
  "CMakeFiles/mlperf_metrics.dir/bleu.cc.o"
  "CMakeFiles/mlperf_metrics.dir/bleu.cc.o.d"
  "CMakeFiles/mlperf_metrics.dir/map.cc.o"
  "CMakeFiles/mlperf_metrics.dir/map.cc.o.d"
  "libmlperf_metrics.a"
  "libmlperf_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlperf_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
