
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/accuracy.cc" "src/metrics/CMakeFiles/mlperf_metrics.dir/accuracy.cc.o" "gcc" "src/metrics/CMakeFiles/mlperf_metrics.dir/accuracy.cc.o.d"
  "/root/repo/src/metrics/bleu.cc" "src/metrics/CMakeFiles/mlperf_metrics.dir/bleu.cc.o" "gcc" "src/metrics/CMakeFiles/mlperf_metrics.dir/bleu.cc.o.d"
  "/root/repo/src/metrics/map.cc" "src/metrics/CMakeFiles/mlperf_metrics.dir/map.cc.o" "gcc" "src/metrics/CMakeFiles/mlperf_metrics.dir/map.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/mlperf_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/mlperf_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mlperf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
