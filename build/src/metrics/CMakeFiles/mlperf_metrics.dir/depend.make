# Empty dependencies file for mlperf_metrics.
# This may be replaced when dependencies are built.
