file(REMOVE_RECURSE
  "libmlperf_models.a"
)
