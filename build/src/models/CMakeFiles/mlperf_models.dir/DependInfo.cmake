
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/classifier.cc" "src/models/CMakeFiles/mlperf_models.dir/classifier.cc.o" "gcc" "src/models/CMakeFiles/mlperf_models.dir/classifier.cc.o.d"
  "/root/repo/src/models/detector.cc" "src/models/CMakeFiles/mlperf_models.dir/detector.cc.o" "gcc" "src/models/CMakeFiles/mlperf_models.dir/detector.cc.o.d"
  "/root/repo/src/models/model_info.cc" "src/models/CMakeFiles/mlperf_models.dir/model_info.cc.o" "gcc" "src/models/CMakeFiles/mlperf_models.dir/model_info.cc.o.d"
  "/root/repo/src/models/translator.cc" "src/models/CMakeFiles/mlperf_models.dir/translator.cc.o" "gcc" "src/models/CMakeFiles/mlperf_models.dir/translator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/mlperf_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/mlperf_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/mlperf_data.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/mlperf_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/mlperf_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mlperf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
