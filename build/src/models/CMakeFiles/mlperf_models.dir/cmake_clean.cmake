file(REMOVE_RECURSE
  "CMakeFiles/mlperf_models.dir/classifier.cc.o"
  "CMakeFiles/mlperf_models.dir/classifier.cc.o.d"
  "CMakeFiles/mlperf_models.dir/detector.cc.o"
  "CMakeFiles/mlperf_models.dir/detector.cc.o.d"
  "CMakeFiles/mlperf_models.dir/model_info.cc.o"
  "CMakeFiles/mlperf_models.dir/model_info.cc.o.d"
  "CMakeFiles/mlperf_models.dir/translator.cc.o"
  "CMakeFiles/mlperf_models.dir/translator.cc.o.d"
  "libmlperf_models.a"
  "libmlperf_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlperf_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
