# Empty compiler generated dependencies file for mlperf_models.
# This may be replaced when dependencies are built.
