file(REMOVE_RECURSE
  "libmlperf_quant.a"
)
