
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/quant/calibration.cc" "src/quant/CMakeFiles/mlperf_quant.dir/calibration.cc.o" "gcc" "src/quant/CMakeFiles/mlperf_quant.dir/calibration.cc.o.d"
  "/root/repo/src/quant/quant.cc" "src/quant/CMakeFiles/mlperf_quant.dir/quant.cc.o" "gcc" "src/quant/CMakeFiles/mlperf_quant.dir/quant.cc.o.d"
  "/root/repo/src/quant/quantize_model.cc" "src/quant/CMakeFiles/mlperf_quant.dir/quantize_model.cc.o" "gcc" "src/quant/CMakeFiles/mlperf_quant.dir/quantize_model.cc.o.d"
  "/root/repo/src/quant/quantized_layers.cc" "src/quant/CMakeFiles/mlperf_quant.dir/quantized_layers.cc.o" "gcc" "src/quant/CMakeFiles/mlperf_quant.dir/quantized_layers.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/mlperf_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/mlperf_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mlperf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
