# Empty compiler generated dependencies file for mlperf_quant.
# This may be replaced when dependencies are built.
