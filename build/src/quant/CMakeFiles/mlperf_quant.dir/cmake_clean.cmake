file(REMOVE_RECURSE
  "CMakeFiles/mlperf_quant.dir/calibration.cc.o"
  "CMakeFiles/mlperf_quant.dir/calibration.cc.o.d"
  "CMakeFiles/mlperf_quant.dir/quant.cc.o"
  "CMakeFiles/mlperf_quant.dir/quant.cc.o.d"
  "CMakeFiles/mlperf_quant.dir/quantize_model.cc.o"
  "CMakeFiles/mlperf_quant.dir/quantize_model.cc.o.d"
  "CMakeFiles/mlperf_quant.dir/quantized_layers.cc.o"
  "CMakeFiles/mlperf_quant.dir/quantized_layers.cc.o.d"
  "libmlperf_quant.a"
  "libmlperf_quant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlperf_quant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
