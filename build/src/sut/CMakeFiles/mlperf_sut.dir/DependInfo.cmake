
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sut/hardware_profile.cc" "src/sut/CMakeFiles/mlperf_sut.dir/hardware_profile.cc.o" "gcc" "src/sut/CMakeFiles/mlperf_sut.dir/hardware_profile.cc.o.d"
  "/root/repo/src/sut/model_cost.cc" "src/sut/CMakeFiles/mlperf_sut.dir/model_cost.cc.o" "gcc" "src/sut/CMakeFiles/mlperf_sut.dir/model_cost.cc.o.d"
  "/root/repo/src/sut/multi_model_sut.cc" "src/sut/CMakeFiles/mlperf_sut.dir/multi_model_sut.cc.o" "gcc" "src/sut/CMakeFiles/mlperf_sut.dir/multi_model_sut.cc.o.d"
  "/root/repo/src/sut/nn_sut.cc" "src/sut/CMakeFiles/mlperf_sut.dir/nn_sut.cc.o" "gcc" "src/sut/CMakeFiles/mlperf_sut.dir/nn_sut.cc.o.d"
  "/root/repo/src/sut/simulated_sut.cc" "src/sut/CMakeFiles/mlperf_sut.dir/simulated_sut.cc.o" "gcc" "src/sut/CMakeFiles/mlperf_sut.dir/simulated_sut.cc.o.d"
  "/root/repo/src/sut/system_zoo.cc" "src/sut/CMakeFiles/mlperf_sut.dir/system_zoo.cc.o" "gcc" "src/sut/CMakeFiles/mlperf_sut.dir/system_zoo.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/loadgen/CMakeFiles/mlperf_loadgen.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/mlperf_models.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/mlperf_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mlperf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/mlperf_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/mlperf_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/mlperf_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/mlperf_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/mlperf_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mlperf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
