# Empty compiler generated dependencies file for mlperf_sut.
# This may be replaced when dependencies are built.
