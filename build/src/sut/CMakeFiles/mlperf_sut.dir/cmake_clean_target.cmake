file(REMOVE_RECURSE
  "libmlperf_sut.a"
)
