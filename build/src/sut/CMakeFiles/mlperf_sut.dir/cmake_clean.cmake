file(REMOVE_RECURSE
  "CMakeFiles/mlperf_sut.dir/hardware_profile.cc.o"
  "CMakeFiles/mlperf_sut.dir/hardware_profile.cc.o.d"
  "CMakeFiles/mlperf_sut.dir/model_cost.cc.o"
  "CMakeFiles/mlperf_sut.dir/model_cost.cc.o.d"
  "CMakeFiles/mlperf_sut.dir/multi_model_sut.cc.o"
  "CMakeFiles/mlperf_sut.dir/multi_model_sut.cc.o.d"
  "CMakeFiles/mlperf_sut.dir/nn_sut.cc.o"
  "CMakeFiles/mlperf_sut.dir/nn_sut.cc.o.d"
  "CMakeFiles/mlperf_sut.dir/simulated_sut.cc.o"
  "CMakeFiles/mlperf_sut.dir/simulated_sut.cc.o.d"
  "CMakeFiles/mlperf_sut.dir/system_zoo.cc.o"
  "CMakeFiles/mlperf_sut.dir/system_zoo.cc.o.d"
  "libmlperf_sut.a"
  "libmlperf_sut.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlperf_sut.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
