# Empty dependencies file for mlperf_nn.
# This may be replaced when dependencies are built.
