file(REMOVE_RECURSE
  "CMakeFiles/mlperf_nn.dir/activations.cc.o"
  "CMakeFiles/mlperf_nn.dir/activations.cc.o.d"
  "CMakeFiles/mlperf_nn.dir/init.cc.o"
  "CMakeFiles/mlperf_nn.dir/init.cc.o.d"
  "CMakeFiles/mlperf_nn.dir/layers.cc.o"
  "CMakeFiles/mlperf_nn.dir/layers.cc.o.d"
  "CMakeFiles/mlperf_nn.dir/rnn.cc.o"
  "CMakeFiles/mlperf_nn.dir/rnn.cc.o.d"
  "CMakeFiles/mlperf_nn.dir/sequential.cc.o"
  "CMakeFiles/mlperf_nn.dir/sequential.cc.o.d"
  "libmlperf_nn.a"
  "libmlperf_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlperf_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
