file(REMOVE_RECURSE
  "libmlperf_nn.a"
)
