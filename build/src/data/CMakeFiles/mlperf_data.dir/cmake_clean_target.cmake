file(REMOVE_RECURSE
  "libmlperf_data.a"
)
