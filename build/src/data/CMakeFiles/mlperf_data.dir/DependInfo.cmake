
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/classification.cc" "src/data/CMakeFiles/mlperf_data.dir/classification.cc.o" "gcc" "src/data/CMakeFiles/mlperf_data.dir/classification.cc.o.d"
  "/root/repo/src/data/detection.cc" "src/data/CMakeFiles/mlperf_data.dir/detection.cc.o" "gcc" "src/data/CMakeFiles/mlperf_data.dir/detection.cc.o.d"
  "/root/repo/src/data/synth.cc" "src/data/CMakeFiles/mlperf_data.dir/synth.cc.o" "gcc" "src/data/CMakeFiles/mlperf_data.dir/synth.cc.o.d"
  "/root/repo/src/data/translation.cc" "src/data/CMakeFiles/mlperf_data.dir/translation.cc.o" "gcc" "src/data/CMakeFiles/mlperf_data.dir/translation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/mlperf_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mlperf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
