file(REMOVE_RECURSE
  "CMakeFiles/mlperf_data.dir/classification.cc.o"
  "CMakeFiles/mlperf_data.dir/classification.cc.o.d"
  "CMakeFiles/mlperf_data.dir/detection.cc.o"
  "CMakeFiles/mlperf_data.dir/detection.cc.o.d"
  "CMakeFiles/mlperf_data.dir/synth.cc.o"
  "CMakeFiles/mlperf_data.dir/synth.cc.o.d"
  "CMakeFiles/mlperf_data.dir/translation.cc.o"
  "CMakeFiles/mlperf_data.dir/translation.cc.o.d"
  "libmlperf_data.a"
  "libmlperf_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlperf_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
