# Empty compiler generated dependencies file for mlperf_data.
# This may be replaced when dependencies are built.
