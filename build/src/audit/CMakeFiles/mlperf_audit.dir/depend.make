# Empty dependencies file for mlperf_audit.
# This may be replaced when dependencies are built.
