file(REMOVE_RECURSE
  "libmlperf_audit.a"
)
