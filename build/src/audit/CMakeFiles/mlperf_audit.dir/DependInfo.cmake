
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/audit/audit.cc" "src/audit/CMakeFiles/mlperf_audit.dir/audit.cc.o" "gcc" "src/audit/CMakeFiles/mlperf_audit.dir/audit.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/loadgen/CMakeFiles/mlperf_loadgen.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/mlperf_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mlperf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mlperf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
