file(REMOVE_RECURSE
  "CMakeFiles/mlperf_audit.dir/audit.cc.o"
  "CMakeFiles/mlperf_audit.dir/audit.cc.o.d"
  "libmlperf_audit.a"
  "libmlperf_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlperf_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
