file(REMOVE_RECURSE
  "CMakeFiles/mlperf_report.dir/submission.cc.o"
  "CMakeFiles/mlperf_report.dir/submission.cc.o.d"
  "CMakeFiles/mlperf_report.dir/table.cc.o"
  "CMakeFiles/mlperf_report.dir/table.cc.o.d"
  "libmlperf_report.a"
  "libmlperf_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlperf_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
