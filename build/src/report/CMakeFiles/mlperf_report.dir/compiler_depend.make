# Empty compiler generated dependencies file for mlperf_report.
# This may be replaced when dependencies are built.
