file(REMOVE_RECURSE
  "libmlperf_report.a"
)
