file(REMOVE_RECURSE
  "CMakeFiles/mlperf_tensor.dir/conv.cc.o"
  "CMakeFiles/mlperf_tensor.dir/conv.cc.o.d"
  "CMakeFiles/mlperf_tensor.dir/gemm.cc.o"
  "CMakeFiles/mlperf_tensor.dir/gemm.cc.o.d"
  "CMakeFiles/mlperf_tensor.dir/tensor.cc.o"
  "CMakeFiles/mlperf_tensor.dir/tensor.cc.o.d"
  "libmlperf_tensor.a"
  "libmlperf_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlperf_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
