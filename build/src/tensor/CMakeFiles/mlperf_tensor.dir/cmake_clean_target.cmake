file(REMOVE_RECURSE
  "libmlperf_tensor.a"
)
