# Empty dependencies file for mlperf_tensor.
# This may be replaced when dependencies are built.
