
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/loadgen/loadgen.cc" "src/loadgen/CMakeFiles/mlperf_loadgen.dir/loadgen.cc.o" "gcc" "src/loadgen/CMakeFiles/mlperf_loadgen.dir/loadgen.cc.o.d"
  "/root/repo/src/loadgen/results.cc" "src/loadgen/CMakeFiles/mlperf_loadgen.dir/results.cc.o" "gcc" "src/loadgen/CMakeFiles/mlperf_loadgen.dir/results.cc.o.d"
  "/root/repo/src/loadgen/schedule.cc" "src/loadgen/CMakeFiles/mlperf_loadgen.dir/schedule.cc.o" "gcc" "src/loadgen/CMakeFiles/mlperf_loadgen.dir/schedule.cc.o.d"
  "/root/repo/src/loadgen/test_settings.cc" "src/loadgen/CMakeFiles/mlperf_loadgen.dir/test_settings.cc.o" "gcc" "src/loadgen/CMakeFiles/mlperf_loadgen.dir/test_settings.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mlperf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/mlperf_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mlperf_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
