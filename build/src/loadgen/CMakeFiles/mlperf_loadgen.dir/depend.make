# Empty dependencies file for mlperf_loadgen.
# This may be replaced when dependencies are built.
