file(REMOVE_RECURSE
  "libmlperf_loadgen.a"
)
