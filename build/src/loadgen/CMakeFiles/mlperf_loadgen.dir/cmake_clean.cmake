file(REMOVE_RECURSE
  "CMakeFiles/mlperf_loadgen.dir/loadgen.cc.o"
  "CMakeFiles/mlperf_loadgen.dir/loadgen.cc.o.d"
  "CMakeFiles/mlperf_loadgen.dir/results.cc.o"
  "CMakeFiles/mlperf_loadgen.dir/results.cc.o.d"
  "CMakeFiles/mlperf_loadgen.dir/schedule.cc.o"
  "CMakeFiles/mlperf_loadgen.dir/schedule.cc.o.d"
  "CMakeFiles/mlperf_loadgen.dir/test_settings.cc.o"
  "CMakeFiles/mlperf_loadgen.dir/test_settings.cc.o.d"
  "libmlperf_loadgen.a"
  "libmlperf_loadgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlperf_loadgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
