file(REMOVE_RECURSE
  "libmlperf_harness.a"
)
