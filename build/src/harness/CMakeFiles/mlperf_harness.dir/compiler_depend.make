# Empty compiler generated dependencies file for mlperf_harness.
# This may be replaced when dependencies are built.
