file(REMOVE_RECURSE
  "CMakeFiles/mlperf_harness.dir/accuracy_script.cc.o"
  "CMakeFiles/mlperf_harness.dir/accuracy_script.cc.o.d"
  "CMakeFiles/mlperf_harness.dir/experiment.cc.o"
  "CMakeFiles/mlperf_harness.dir/experiment.cc.o.d"
  "CMakeFiles/mlperf_harness.dir/search.cc.o"
  "CMakeFiles/mlperf_harness.dir/search.cc.o.d"
  "libmlperf_harness.a"
  "libmlperf_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlperf_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
