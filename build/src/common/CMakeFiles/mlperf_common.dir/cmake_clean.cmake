file(REMOVE_RECURSE
  "CMakeFiles/mlperf_common.dir/logging.cc.o"
  "CMakeFiles/mlperf_common.dir/logging.cc.o.d"
  "CMakeFiles/mlperf_common.dir/rng.cc.o"
  "CMakeFiles/mlperf_common.dir/rng.cc.o.d"
  "CMakeFiles/mlperf_common.dir/string_util.cc.o"
  "CMakeFiles/mlperf_common.dir/string_util.cc.o.d"
  "libmlperf_common.a"
  "libmlperf_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlperf_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
