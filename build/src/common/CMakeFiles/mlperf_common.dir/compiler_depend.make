# Empty compiler generated dependencies file for mlperf_common.
# This may be replaced when dependencies are built.
