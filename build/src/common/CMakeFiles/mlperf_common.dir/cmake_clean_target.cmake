file(REMOVE_RECURSE
  "libmlperf_common.a"
)
