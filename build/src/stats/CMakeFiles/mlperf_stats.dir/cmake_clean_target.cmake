file(REMOVE_RECURSE
  "libmlperf_stats.a"
)
