
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/histogram.cc" "src/stats/CMakeFiles/mlperf_stats.dir/histogram.cc.o" "gcc" "src/stats/CMakeFiles/mlperf_stats.dir/histogram.cc.o.d"
  "/root/repo/src/stats/normal.cc" "src/stats/CMakeFiles/mlperf_stats.dir/normal.cc.o" "gcc" "src/stats/CMakeFiles/mlperf_stats.dir/normal.cc.o.d"
  "/root/repo/src/stats/percentile.cc" "src/stats/CMakeFiles/mlperf_stats.dir/percentile.cc.o" "gcc" "src/stats/CMakeFiles/mlperf_stats.dir/percentile.cc.o.d"
  "/root/repo/src/stats/sample_size.cc" "src/stats/CMakeFiles/mlperf_stats.dir/sample_size.cc.o" "gcc" "src/stats/CMakeFiles/mlperf_stats.dir/sample_size.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mlperf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
