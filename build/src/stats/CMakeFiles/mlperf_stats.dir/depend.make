# Empty dependencies file for mlperf_stats.
# This may be replaced when dependencies are built.
