file(REMOVE_RECURSE
  "CMakeFiles/mlperf_stats.dir/histogram.cc.o"
  "CMakeFiles/mlperf_stats.dir/histogram.cc.o.d"
  "CMakeFiles/mlperf_stats.dir/normal.cc.o"
  "CMakeFiles/mlperf_stats.dir/normal.cc.o.d"
  "CMakeFiles/mlperf_stats.dir/percentile.cc.o"
  "CMakeFiles/mlperf_stats.dir/percentile.cc.o.d"
  "CMakeFiles/mlperf_stats.dir/sample_size.cc.o"
  "CMakeFiles/mlperf_stats.dir/sample_size.cc.o.d"
  "libmlperf_stats.a"
  "libmlperf_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlperf_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
