# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_tensor[1]_include.cmake")
include("/root/repo/build/tests/test_nn[1]_include.cmake")
include("/root/repo/build/tests/test_quant[1]_include.cmake")
include("/root/repo/build/tests/test_data[1]_include.cmake")
include("/root/repo/build/tests/test_metrics[1]_include.cmake")
include("/root/repo/build/tests/test_models[1]_include.cmake")
include("/root/repo/build/tests/test_loadgen[1]_include.cmake")
include("/root/repo/build/tests/test_sut[1]_include.cmake")
include("/root/repo/build/tests/test_harness[1]_include.cmake")
include("/root/repo/build/tests/test_audit[1]_include.cmake")
include("/root/repo/build/tests/test_report[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
