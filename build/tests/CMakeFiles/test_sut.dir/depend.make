# Empty dependencies file for test_sut.
# This may be replaced when dependencies are built.
