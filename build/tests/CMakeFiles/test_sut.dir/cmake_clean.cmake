file(REMOVE_RECURSE
  "CMakeFiles/test_sut.dir/sut/nn_sut_test.cc.o"
  "CMakeFiles/test_sut.dir/sut/nn_sut_test.cc.o.d"
  "CMakeFiles/test_sut.dir/sut/simulated_sut_test.cc.o"
  "CMakeFiles/test_sut.dir/sut/simulated_sut_test.cc.o.d"
  "test_sut"
  "test_sut.pdb"
  "test_sut[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sut.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
