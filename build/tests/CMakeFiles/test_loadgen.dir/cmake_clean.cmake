file(REMOVE_RECURSE
  "CMakeFiles/test_loadgen.dir/loadgen/extensions_test.cc.o"
  "CMakeFiles/test_loadgen.dir/loadgen/extensions_test.cc.o.d"
  "CMakeFiles/test_loadgen.dir/loadgen/properties_test.cc.o"
  "CMakeFiles/test_loadgen.dir/loadgen/properties_test.cc.o.d"
  "CMakeFiles/test_loadgen.dir/loadgen/scenarios_test.cc.o"
  "CMakeFiles/test_loadgen.dir/loadgen/scenarios_test.cc.o.d"
  "CMakeFiles/test_loadgen.dir/loadgen/settings_test.cc.o"
  "CMakeFiles/test_loadgen.dir/loadgen/settings_test.cc.o.d"
  "test_loadgen"
  "test_loadgen.pdb"
  "test_loadgen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_loadgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
