file(REMOVE_RECURSE
  "CMakeFiles/test_quant.dir/quant/quant_test.cc.o"
  "CMakeFiles/test_quant.dir/quant/quant_test.cc.o.d"
  "CMakeFiles/test_quant.dir/quant/quantized_layers_test.cc.o"
  "CMakeFiles/test_quant.dir/quant/quantized_layers_test.cc.o.d"
  "test_quant"
  "test_quant.pdb"
  "test_quant[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_quant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
