file(REMOVE_RECURSE
  "CMakeFiles/test_nn.dir/nn/activations_test.cc.o"
  "CMakeFiles/test_nn.dir/nn/activations_test.cc.o.d"
  "CMakeFiles/test_nn.dir/nn/layers_test.cc.o"
  "CMakeFiles/test_nn.dir/nn/layers_test.cc.o.d"
  "CMakeFiles/test_nn.dir/nn/rnn_test.cc.o"
  "CMakeFiles/test_nn.dir/nn/rnn_test.cc.o.d"
  "test_nn"
  "test_nn.pdb"
  "test_nn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
