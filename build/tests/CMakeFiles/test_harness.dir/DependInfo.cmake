
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/harness/harness_test.cc" "tests/CMakeFiles/test_harness.dir/harness/harness_test.cc.o" "gcc" "tests/CMakeFiles/test_harness.dir/harness/harness_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/mlperf_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/sut/CMakeFiles/mlperf_sut.dir/DependInfo.cmake"
  "/root/repo/build/src/loadgen/CMakeFiles/mlperf_loadgen.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/mlperf_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mlperf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/mlperf_models.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/mlperf_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/mlperf_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/mlperf_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/mlperf_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/mlperf_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/mlperf_report.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mlperf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
