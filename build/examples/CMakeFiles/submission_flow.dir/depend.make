# Empty dependencies file for submission_flow.
# This may be replaced when dependencies are built.
