file(REMOVE_RECURSE
  "CMakeFiles/submission_flow.dir/submission_flow.cpp.o"
  "CMakeFiles/submission_flow.dir/submission_flow.cpp.o.d"
  "submission_flow"
  "submission_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/submission_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
