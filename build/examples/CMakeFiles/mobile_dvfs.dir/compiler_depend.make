# Empty compiler generated dependencies file for mobile_dvfs.
# This may be replaced when dependencies are built.
