file(REMOVE_RECURSE
  "CMakeFiles/mobile_dvfs.dir/mobile_dvfs.cpp.o"
  "CMakeFiles/mobile_dvfs.dir/mobile_dvfs.cpp.o.d"
  "mobile_dvfs"
  "mobile_dvfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobile_dvfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
