# Empty compiler generated dependencies file for translation_capacity.
# This may be replaced when dependencies are built.
