file(REMOVE_RECURSE
  "CMakeFiles/translation_capacity.dir/translation_capacity.cpp.o"
  "CMakeFiles/translation_capacity.dir/translation_capacity.cpp.o.d"
  "translation_capacity"
  "translation_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/translation_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
