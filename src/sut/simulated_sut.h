/**
 * @file
 * Event-driven simulated inference system.
 *
 * Models a submitter's SUT in virtual time: a dynamic batcher feeding
 * a pool of inference engines, with batch-dependent efficiency, DVFS
 * warm-up, and latency jitter from the HardwareProfile. Together with
 * VirtualExecutor this executes full-scale LoadGen runs (270,336
 * queries) in well under a second of host time.
 */

#ifndef MLPERF_SUT_SIMULATED_SUT_H
#define MLPERF_SUT_SIMULATED_SUT_H

#include <deque>
#include <string>
#include <vector>

#include "common/rng.h"
#include "loadgen/sut.h"
#include "sim/executor.h"
#include "sut/hardware_profile.h"
#include "sut/model_cost.h"

namespace mlperf {
namespace sut {

/** Submitter-tunable scheduling knobs (overrides profile defaults). */
struct SchedulerOptions
{
    /** Largest formed batch; 0 = use profile.maxBatch. */
    int64_t maxBatch = 0;
    /**
     * How long the batcher may hold samples to form a fuller batch.
     * 0 dispatches immediately (query-at-a-time). The batching
     * ablation bench sweeps this.
     */
    sim::Tick batchWindowNs = 0;
    /**
     * Per-sample preprocessing cost ADDED TO THE TIMED PATH. MLPerf
     * v0.5 keeps preprocessing untimed (Sec. IV-A: "there is no
     * vendor- or application-neutral preprocessing"), i.e. 0 here;
     * the paper's roadmap item "timing preprocessing" is explored by
     * setting this nonzero (see bench_ablation_preprocessing).
     */
    sim::Tick timedPreprocessNsPerSample = 0;
};

class SimulatedSut : public loadgen::SystemUnderTest
{
  public:
    SimulatedSut(sim::Executor &executor, HardwareProfile profile,
                 ModelCost cost, SchedulerOptions options = {},
                 uint64_t seed = 0xDEC0DE);

    std::string name() const override { return profile_.systemName; }
    void issueQuery(const std::vector<loadgen::QuerySample> &samples,
                    loadgen::ResponseDelegate &delegate) override;
    void flushQueries() override;

    // ---- Introspection for tests and benches.
    uint64_t batchesDispatched() const { return batchesDispatched_; }
    uint64_t samplesProcessed() const { return samplesProcessed_; }
    double
    averageBatchSize() const
    {
        return batchesDispatched_ == 0
                   ? 0.0
                   : static_cast<double>(samplesProcessed_) /
                         static_cast<double>(batchesDispatched_);
    }
    const HardwareProfile &profile() const { return profile_; }

    /**
     * Dynamic energy consumed so far (joules); add idleWatts x run
     * time for wall energy. Lets benches report performance/watt.
     */
    double dynamicEnergyJoules() const { return dynamicJoules_; }

    /**
     * Throughput (samples/s) the profile sustains at a given batch
     * size, ignoring jitter/DVFS — the analytical roofline used to
     * seed harness searches.
     */
    double steadyStateThroughput(int64_t batch) const;

  private:
    struct PendingSample
    {
        loadgen::ResponseId id;
        loadgen::ResponseDelegate *delegate;
        double macs;  //!< per-sample work, drawn at enqueue
    };

    double drawSampleMacs();

    int64_t effectiveMaxBatch() const;
    void flushBatcher();
    void dispatchReady();
    void startBatch(std::vector<PendingSample> batch);

    sim::Executor &executor_;
    HardwareProfile profile_;
    ModelCost cost_;
    SchedulerOptions options_;
    Rng rng_;

    std::deque<PendingSample> batcher_;     //!< awaiting batch formation
    bool batcherFlushScheduled_ = false;
    std::deque<std::vector<PendingSample>> ready_;  //!< formed batches
    int64_t busyEngines_ = 0;

    uint64_t batchesDispatched_ = 0;
    uint64_t samplesProcessed_ = 0;
    double dynamicJoules_ = 0.0;
};

} // namespace sut
} // namespace mlperf

#endif // MLPERF_SUT_SIMULATED_SUT_H
