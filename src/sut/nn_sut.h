/**
 * @file
 * SUT and QSL adapters that run the real NN proxy models under the
 * LoadGen — used with the wall-clock executor and for accuracy-mode
 * runs whose logs feed the accuracy script.
 *
 * Result serialization is part of the submission contract: the SUT
 * writes task-specific result strings into QuerySampleResponse::data,
 * and the accuracy script (src/harness/accuracy_script.h) decodes
 * them against the dataset ground truth.
 */

#ifndef MLPERF_SUT_NN_SUT_H
#define MLPERF_SUT_NN_SUT_H

#include <map>
#include <string>
#include <vector>

#include "loadgen/qsl.h"
#include "loadgen/sut.h"
#include "models/classifier.h"
#include "models/detector.h"
#include "models/translator.h"

namespace mlperf {
namespace sut {

// ------------------------------------------------------------- QSLs

/** QSL over the synthetic classification dataset. */
class ClassificationQsl : public loadgen::QuerySampleLibrary
{
  public:
    explicit ClassificationQsl(
        const data::ClassificationDataset &dataset,
        uint64_t performance_count = 256);

    std::string name() const override { return "synthetic-imagenet"; }
    uint64_t totalSampleCount() const override;
    uint64_t performanceSampleCount() const override;
    void loadSamplesToRam(
        const std::vector<loadgen::QuerySampleIndex> &idx) override;
    void unloadSamplesFromRam(
        const std::vector<loadgen::QuerySampleIndex> &idx) override;

    /** Staged sample access; asserts the sample is loaded. */
    const tensor::Tensor &
    sample(loadgen::QuerySampleIndex index) const;

  private:
    const data::ClassificationDataset &dataset_;
    uint64_t performanceCount_;
    std::map<loadgen::QuerySampleIndex, tensor::Tensor> staged_;
};

/** QSL over the synthetic detection dataset. */
class DetectionQsl : public loadgen::QuerySampleLibrary
{
  public:
    explicit DetectionQsl(const data::DetectionDataset &dataset,
                          uint64_t performance_count = 256);

    std::string name() const override { return "synthetic-coco"; }
    uint64_t totalSampleCount() const override;
    uint64_t performanceSampleCount() const override;
    void loadSamplesToRam(
        const std::vector<loadgen::QuerySampleIndex> &idx) override;
    void unloadSamplesFromRam(
        const std::vector<loadgen::QuerySampleIndex> &idx) override;

    const tensor::Tensor &
    sample(loadgen::QuerySampleIndex index) const;

  private:
    const data::DetectionDataset &dataset_;
    uint64_t performanceCount_;
    std::map<loadgen::QuerySampleIndex, tensor::Tensor> staged_;
};

/** QSL over the synthetic translation dataset. */
class TranslationQsl : public loadgen::QuerySampleLibrary
{
  public:
    explicit TranslationQsl(const data::TranslationDataset &dataset,
                            uint64_t performance_count = 256);

    std::string name() const override { return "synthetic-wmt"; }
    uint64_t totalSampleCount() const override;
    uint64_t performanceSampleCount() const override;
    void loadSamplesToRam(
        const std::vector<loadgen::QuerySampleIndex> &idx) override;
    void unloadSamplesFromRam(
        const std::vector<loadgen::QuerySampleIndex> &idx) override;

    const std::vector<int64_t> &
    sample(loadgen::QuerySampleIndex index) const;

  private:
    const data::TranslationDataset &dataset_;
    uint64_t performanceCount_;
    std::map<loadgen::QuerySampleIndex, std::vector<int64_t>> staged_;
};

// ------------------------------------------------- result encoding

/** Classification result <-> response data. */
std::string encodeClassification(int64_t predicted_class);
int64_t decodeClassification(const std::string &data);

/** Detection results <-> response data. */
std::string encodeDetections(
    const std::vector<metrics::Detection> &detections);
std::vector<metrics::Detection> decodeDetections(
    const std::string &data, int64_t image_id);

/** Translation result <-> response data. */
std::string encodeTokens(const std::vector<int64_t> &tokens);
std::vector<int64_t> decodeTokens(const std::string &data);

// -------------------------------------------------------------- SUTs

/** Runs the real classifier synchronously inside issueQuery. */
class ClassifierSut : public loadgen::SystemUnderTest
{
  public:
    ClassifierSut(const models::ImageClassifier &model,
                  const ClassificationQsl &qsl)
        : model_(model), qsl_(qsl)
    {
    }

    std::string name() const override { return model_.name(); }
    void issueQuery(const std::vector<loadgen::QuerySample> &samples,
                    loadgen::ResponseDelegate &delegate) override;
    void flushQueries() override {}

  private:
    const models::ImageClassifier &model_;
    const ClassificationQsl &qsl_;
};

/** Runs the real detector synchronously inside issueQuery. */
class DetectorSut : public loadgen::SystemUnderTest
{
  public:
    DetectorSut(const models::ObjectDetector &model,
                const DetectionQsl &qsl)
        : model_(model), qsl_(qsl)
    {
    }

    std::string name() const override { return model_.name(); }
    void issueQuery(const std::vector<loadgen::QuerySample> &samples,
                    loadgen::ResponseDelegate &delegate) override;
    void flushQueries() override {}

  private:
    const models::ObjectDetector &model_;
    const DetectionQsl &qsl_;
};

/** Runs the real translator synchronously inside issueQuery. */
class TranslatorSut : public loadgen::SystemUnderTest
{
  public:
    TranslatorSut(const models::Translator &model,
                  const TranslationQsl &qsl)
        : model_(model), qsl_(qsl)
    {
    }

    std::string name() const override { return model_.name(); }
    void issueQuery(const std::vector<loadgen::QuerySample> &samples,
                    loadgen::ResponseDelegate &delegate) override;
    void flushQueries() override {}

  private:
    const models::Translator &model_;
    const TranslationQsl &qsl_;
};

} // namespace sut
} // namespace mlperf

#endif // MLPERF_SUT_NN_SUT_H
