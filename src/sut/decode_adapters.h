/**
 * @file
 * Bridges the nn streaming decoder into the serving layer's
 * SequenceDecoder slots.
 *
 * The serving layer schedules opaque sequence slots; this adapter
 * binds each slot to a pooled nn::DecodeState and runs the real
 * DecoderModel compute (prefill encoder pass, per-token decode step,
 * equal-FLOPs pad step). One DecodeScratch serves the whole engine —
 * the batcher drives all slots from a single decode thread.
 *
 * Zero-alloc contract: after each slot has been exercised once,
 * prefill/step/padStep/release allocate nothing (pooled states,
 * preallocated scratch); DecodeStatePool::growths() exposes any
 * violation. result() builds the response string and is the one
 * deliberate exception — it runs once per sequence, not per token.
 */

#ifndef MLPERF_SUT_DECODE_ADAPTERS_H
#define MLPERF_SUT_DECODE_ADAPTERS_H

#include <vector>

#include "nn/decoder.h"
#include "serving/continuous_batcher.h"
#include "sut/nn_sut.h"

namespace mlperf {
namespace sut {

class DecoderEngine : public serving::SequenceDecoder
{
  public:
    /**
     * @param slots decode batch width; the pool is sized to it, so
     *        steady state never allocates states.
     */
    DecoderEngine(const nn::DecoderModel &model,
                  const TranslationQsl &qsl, size_t slots);

    // ---- serving::SequenceDecoder
    size_t slotCount() const override { return states_.size(); }
    void prefill(size_t slot,
                 loadgen::QuerySampleIndex index) override;
    serving::StepOutcome step(size_t slot) override;
    void padStep(size_t slot) override;
    std::string result(size_t slot) const override;
    uint64_t tokenCount(size_t slot) const override;
    void release(size_t slot) override;

    /** Pool growths past capacity — 0 proves zero-alloc steady state. */
    uint64_t poolGrowths() const { return pool_.growths(); }

  private:
    const nn::DecoderModel &model_;
    const TranslationQsl &qsl_;
    nn::DecodeStatePool pool_;
    nn::DecodeScratch scratch_;
    std::vector<nn::DecodeState *> states_;  //!< slot -> state (or null)
};

} // namespace sut
} // namespace mlperf

#endif // MLPERF_SUT_DECODE_ADAPTERS_H
