#include "sut/nn_sut.h"

#include <algorithm>
#include <cassert>
#include <sstream>

#include "common/string_util.h"

namespace mlperf {
namespace sut {

// ------------------------------------------------------------- QSLs

ClassificationQsl::ClassificationQsl(
    const data::ClassificationDataset &dataset,
    uint64_t performance_count)
    : dataset_(dataset), performanceCount_(performance_count)
{
}

uint64_t
ClassificationQsl::totalSampleCount() const
{
    return static_cast<uint64_t>(dataset_.size());
}

uint64_t
ClassificationQsl::performanceSampleCount() const
{
    return std::min<uint64_t>(performanceCount_, totalSampleCount());
}

void
ClassificationQsl::loadSamplesToRam(
    const std::vector<loadgen::QuerySampleIndex> &idx)
{
    for (loadgen::QuerySampleIndex i : idx)
        staged_.emplace(i, dataset_.image(static_cast<int64_t>(i)));
}

void
ClassificationQsl::unloadSamplesFromRam(
    const std::vector<loadgen::QuerySampleIndex> &idx)
{
    for (loadgen::QuerySampleIndex i : idx)
        staged_.erase(i);
}

const tensor::Tensor &
ClassificationQsl::sample(loadgen::QuerySampleIndex index) const
{
    const auto it = staged_.find(index);
    assert(it != staged_.end() && "sample not staged");
    return it->second;
}

DetectionQsl::DetectionQsl(const data::DetectionDataset &dataset,
                           uint64_t performance_count)
    : dataset_(dataset), performanceCount_(performance_count)
{
}

uint64_t
DetectionQsl::totalSampleCount() const
{
    return static_cast<uint64_t>(dataset_.size());
}

uint64_t
DetectionQsl::performanceSampleCount() const
{
    return std::min<uint64_t>(performanceCount_, totalSampleCount());
}

void
DetectionQsl::loadSamplesToRam(
    const std::vector<loadgen::QuerySampleIndex> &idx)
{
    for (loadgen::QuerySampleIndex i : idx)
        staged_.emplace(i, dataset_.image(static_cast<int64_t>(i)));
}

void
DetectionQsl::unloadSamplesFromRam(
    const std::vector<loadgen::QuerySampleIndex> &idx)
{
    for (loadgen::QuerySampleIndex i : idx)
        staged_.erase(i);
}

const tensor::Tensor &
DetectionQsl::sample(loadgen::QuerySampleIndex index) const
{
    const auto it = staged_.find(index);
    assert(it != staged_.end() && "sample not staged");
    return it->second;
}

TranslationQsl::TranslationQsl(const data::TranslationDataset &dataset,
                               uint64_t performance_count)
    : dataset_(dataset), performanceCount_(performance_count)
{
}

uint64_t
TranslationQsl::totalSampleCount() const
{
    return static_cast<uint64_t>(dataset_.size());
}

uint64_t
TranslationQsl::performanceSampleCount() const
{
    return std::min<uint64_t>(performanceCount_, totalSampleCount());
}

void
TranslationQsl::loadSamplesToRam(
    const std::vector<loadgen::QuerySampleIndex> &idx)
{
    for (loadgen::QuerySampleIndex i : idx)
        staged_.emplace(i, dataset_.source(static_cast<int64_t>(i)));
}

void
TranslationQsl::unloadSamplesFromRam(
    const std::vector<loadgen::QuerySampleIndex> &idx)
{
    for (loadgen::QuerySampleIndex i : idx)
        staged_.erase(i);
}

const std::vector<int64_t> &
TranslationQsl::sample(loadgen::QuerySampleIndex index) const
{
    const auto it = staged_.find(index);
    assert(it != staged_.end() && "sample not staged");
    return it->second;
}

// ------------------------------------------------- result encoding

std::string
encodeClassification(int64_t predicted_class)
{
    return std::to_string(predicted_class);
}

int64_t
decodeClassification(const std::string &data)
{
    return std::stoll(data);
}

std::string
encodeDetections(const std::vector<metrics::Detection> &detections)
{
    std::string out;
    for (const auto &d : detections) {
        if (!out.empty())
            out += ";";
        out += strprintf("%ld,%.6f,%.3f,%.3f,%.3f,%.3f",
                         static_cast<long>(d.cls), d.score, d.box.x0,
                         d.box.y0, d.box.x1, d.box.y1);
    }
    return out;
}

std::vector<metrics::Detection>
decodeDetections(const std::string &data, int64_t image_id)
{
    std::vector<metrics::Detection> out;
    if (data.empty())
        return out;
    for (const std::string &record : split(data, ';')) {
        const auto fields = split(record, ',');
        assert(fields.size() == 6);
        metrics::Detection d;
        d.imageId = image_id;
        d.cls = std::stoll(fields[0]);
        d.score = std::stod(fields[1]);
        d.box.x0 = std::stod(fields[2]);
        d.box.y0 = std::stod(fields[3]);
        d.box.x1 = std::stod(fields[4]);
        d.box.y1 = std::stod(fields[5]);
        out.push_back(d);
    }
    return out;
}

std::string
encodeTokens(const std::vector<int64_t> &tokens)
{
    std::string out;
    for (int64_t tok : tokens) {
        if (!out.empty())
            out += " ";
        out += std::to_string(tok);
    }
    return out;
}

std::vector<int64_t>
decodeTokens(const std::string &data)
{
    std::vector<int64_t> out;
    std::istringstream stream(data);
    int64_t tok;
    while (stream >> tok)
        out.push_back(tok);
    return out;
}

// -------------------------------------------------------------- SUTs

void
ClassifierSut::issueQuery(
    const std::vector<loadgen::QuerySample> &samples,
    loadgen::ResponseDelegate &delegate)
{
    std::vector<loadgen::QuerySampleResponse> responses;
    responses.reserve(samples.size());
    // Stack the query into one [N, C, H, W] batch so the conv kernels
    // parallelize over the batch dimension — this is how offline /
    // server queries reach the intra-op thread pool. The pointer
    // overload stages samples straight into the compiled plan's input
    // buffer, so there is no intermediate batch tensor.
    std::vector<const tensor::Tensor *> images;
    images.reserve(samples.size());
    for (const auto &sample : samples)
        images.push_back(&qsl_.sample(sample.index));
    const std::vector<int64_t> predicted = model_.classifyBatch(images);
    for (size_t i = 0; i < samples.size(); ++i) {
        responses.push_back(
            {samples[i].id, encodeClassification(predicted[i])});
    }
    delegate.querySamplesComplete(responses);
}

void
DetectorSut::issueQuery(const std::vector<loadgen::QuerySample> &samples,
                        loadgen::ResponseDelegate &delegate)
{
    std::vector<loadgen::QuerySampleResponse> responses;
    responses.reserve(samples.size());
    for (const auto &sample : samples) {
        const auto detections =
            model_.detect(qsl_.sample(sample.index),
                          static_cast<int64_t>(sample.index));
        responses.push_back({sample.id, encodeDetections(detections)});
    }
    delegate.querySamplesComplete(responses);
}

void
TranslatorSut::issueQuery(
    const std::vector<loadgen::QuerySample> &samples,
    loadgen::ResponseDelegate &delegate)
{
    std::vector<loadgen::QuerySampleResponse> responses;
    responses.reserve(samples.size());
    for (const auto &sample : samples) {
        const auto tokens =
            model_.translate(qsl_.sample(sample.index));
        responses.push_back({sample.id, encodeTokens(tokens)});
    }
    delegate.querySamplesComplete(responses);
}

} // namespace sut
} // namespace mlperf
