#include "sut/decode_adapters.h"

#include <cassert>

namespace mlperf {
namespace sut {

DecoderEngine::DecoderEngine(const nn::DecoderModel &model,
                             const TranslationQsl &qsl, size_t slots)
    : model_(model), qsl_(qsl),
      pool_(slots, model.arch().maxSrcSteps, model.arch().embedDim),
      scratch_(model.makeScratch()), states_(slots, nullptr)
{
    assert(slots > 0);
}

void
DecoderEngine::prefill(size_t slot, loadgen::QuerySampleIndex index)
{
    assert(slot < states_.size() && states_[slot] == nullptr);
    nn::DecodeState *state = pool_.acquire();
    model_.encode(qsl_.sample(index), *state, scratch_);
    states_[slot] = state;
}

serving::StepOutcome
DecoderEngine::step(size_t slot)
{
    nn::DecodeState *state = states_[slot];
    assert(state != nullptr && !state->finished());
    serving::StepOutcome out;
    out.token = model_.decodeStep(*state, scratch_);
    out.finished = state->finished();
    return out;
}

void
DecoderEngine::padStep(size_t slot)
{
    assert(states_[slot] != nullptr);
    model_.padStep(*states_[slot], scratch_);
}

std::string
DecoderEngine::result(size_t slot) const
{
    assert(states_[slot] != nullptr);
    return encodeTokens(states_[slot]->tokens());
}

uint64_t
DecoderEngine::tokenCount(size_t slot) const
{
    assert(states_[slot] != nullptr);
    return states_[slot]->tokens().size();
}

void
DecoderEngine::release(size_t slot)
{
    assert(states_[slot] != nullptr);
    pool_.release(states_[slot]);
    states_[slot] = nullptr;
}

} // namespace sut
} // namespace mlperf
