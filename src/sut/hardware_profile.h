/**
 * @file
 * Analytical hardware model for simulated inference systems.
 *
 * The paper's evaluation draws on 600+ submissions spanning embedded
 * devices to data-center systems (Sec. VI). We reproduce that
 * population with parametric hardware profiles: compute throughput
 * with batch-dependent efficiency, fixed per-query overhead, DVFS
 * warm-up (the phenomenon behind the 60-second minimum run time,
 * Sec. III-D), and multiplicative latency jitter. DESIGN.md records
 * this substitution.
 */

#ifndef MLPERF_SUT_HARDWARE_PROFILE_H
#define MLPERF_SUT_HARDWARE_PROFILE_H

#include <cstdint>
#include <string>

#include "sim/executor.h"

namespace mlperf {
namespace sut {

/** Processor families from Figure 7. */
enum class ProcessorType { CPU, GPU, DSP, FPGA, ASIC };

std::string processorName(ProcessorType type);

/** Submission categories (Sec. V-A). */
enum class Category { Available, Preview, RDO };

std::string categoryName(Category category);

struct HardwareProfile
{
    std::string systemName = "generic";
    ProcessorType processor = ProcessorType::CPU;
    std::string framework = "TensorFlow";
    Category category = Category::Available;

    /** Peak sustained compute in MAC/s (x2 for FLOP/s). */
    double peakMacsPerSec = 1e11;
    /** Fraction of peak reached at batch 1. */
    double batchOneEfficiency = 0.3;
    /** Batch size at which the efficiency curve is clamped to 1.0. */
    int64_t saturationBatch = 32;
    /** Parallel inference engines (accelerator count). */
    int64_t acceleratorCount = 1;
    /** Fixed software/driver overhead per dispatched batch. */
    double overheadNs = 50e3;
    /** Log-scale latency noise (0 = deterministic). */
    double jitterFraction = 0.03;
    /** DVFS: seconds until clocks reach steady state... */
    double dvfsWarmupSeconds = 0.0;
    /** ...and the latency multiplier when completely cold. */
    double dvfsColdFactor = 1.0;
    /** Largest batch the runtime will form (dynamic batching cap). */
    int64_t maxBatch = 1;

    // ---- Energy model (the paper's population spans "three orders
    //      of magnitude in power consumption").
    /** Idle/static power draw in watts. */
    double idleWatts = 1.0;
    /** Dynamic energy per MAC in picojoules. */
    double picojoulesPerMac = 2.0;

    /**
     * Batch efficiency: saturating curve B / (B + c), with c chosen
     * so that efficiency at batch 1 equals batchOneEfficiency, and
     * clamped to 1.0 from saturationBatch upward. This matches the
     * fill-the-array behaviour of wide MAC engines: efficiency rises
     * steeply for small batches and flattens near peak.
     */
    double efficiencyAt(int64_t batch) const;

    /**
     * Time to execute a batch whose total work is @p macs, excluding
     * warm-up and jitter (those are applied by the SUT at dispatch).
     */
    double batchSeconds(double macs, int64_t batch) const;

    /** DVFS latency multiplier at time @p now since run start. */
    double dvfsFactorAt(sim::Tick now) const;
};

} // namespace sut
} // namespace mlperf

#endif // MLPERF_SUT_HARDWARE_PROFILE_H
