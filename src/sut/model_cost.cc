#include "sut/model_cost.h"

#include <cassert>

namespace mlperf {
namespace sut {

ModelCost
modelCostFor(models::TaskType task)
{
    using models::TaskType;
    ModelCost cost;
    cost.task = task;
    switch (task) {
      case TaskType::ImageClassificationHeavy:
        cost.macsPerSample = 8.2e9 / 2.0;     // Table I: 8.2 GOPs
        cost.workCv = 0.0;
        cost.structureDiscount = 1.0;
        break;
      case TaskType::ImageClassificationLight:
        cost.macsPerSample = 1.138e9 / 2.0;   // Table I: 1.138 GOPs
        cost.workCv = 0.0;
        // Depthwise convolutions underutilize wide MAC arrays.
        cost.structureDiscount = 1.15;
        break;
      case TaskType::ObjectDetectionHeavy:
        cost.macsPerSample = 433e9 / 2.0;     // Table I: 433 GOPs
        cost.workCv = 0.0;
        // Sec. VII-D: 175x the ops of SSD-MobileNet but only 50-60x
        // the time; the dense backbone utilizes hardware ~3x better.
        cost.structureDiscount = 0.33;
        break;
      case TaskType::ObjectDetectionLight:
        cost.macsPerSample = 2.47e9 / 2.0;    // Table I: 2.47 GOPs
        cost.workCv = 0.0;
        cost.structureDiscount = 1.0;
        break;
      case TaskType::MachineTranslation:
        // Table I lists parameters only; sentence cost varies with
        // length (min 4 .. max 16 words in the synthetic corpus).
        cost.macsPerSample = 4.0e9;
        cost.workCv = 0.45;
        cost.structureDiscount = 1.2;  // RNN serialization overhead
        cost.paddedBatching = true;
        break;
    }
    return cost;
}

} // namespace sut
} // namespace mlperf
