#include "sut/multi_model_sut.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace mlperf {
namespace sut {

MultiModelSut::MultiModelSut(sim::Executor &executor,
                             HardwareProfile profile,
                             std::vector<ModelCost> models,
                             uint64_t seed)
    : executor_(executor), profile_(std::move(profile)),
      models_(std::move(models)), rng_(seed)
{
    assert(!models_.empty());
    facades_.reserve(models_.size());
    queues_.resize(models_.size());
    for (size_t i = 0; i < models_.size(); ++i)
        facades_.emplace_back(*this, i);
}

loadgen::SystemUnderTest &
MultiModelSut::tenantSut(size_t model_index)
{
    assert(model_index < facades_.size());
    return facades_[model_index];
}

std::string
MultiModelSut::TenantFacade::name() const
{
    return owner_.profile_.systemName + "/model-" +
           std::to_string(index_);
}

void
MultiModelSut::TenantFacade::issueQuery(
    const std::vector<loadgen::QuerySample> &samples,
    loadgen::ResponseDelegate &delegate)
{
    owner_.enqueue(index_, samples, delegate);
}

double
MultiModelSut::drawSampleMacs(const ModelCost &cost)
{
    double macs = cost.macsPerSample * cost.structureDiscount;
    if (cost.workCv > 0.0) {
        const double sigma =
            std::sqrt(std::log(1.0 + cost.workCv * cost.workCv));
        macs *= std::exp(sigma * rng_.nextGaussian() -
                         sigma * sigma / 2.0);
    }
    return macs;
}

void
MultiModelSut::enqueue(size_t model,
                       const std::vector<loadgen::QuerySample> &samples,
                       loadgen::ResponseDelegate &delegate)
{
    auto &queue = queues_[model];
    for (const auto &sample : samples) {
        queue.push_back({sample.id, &delegate,
                         drawSampleMacs(models_[model])});
    }
    dispatch();
}

void
MultiModelSut::dispatch()
{
    const int64_t max_batch = std::max<int64_t>(1, profile_.maxBatch);
    while (busyEngines_ < profile_.acceleratorCount) {
        // Round-robin over model queues for fairness.
        size_t chosen = queues_.size();
        for (size_t probe = 0; probe < queues_.size(); ++probe) {
            const size_t idx =
                (nextQueue_ + probe) % queues_.size();
            if (!queues_[idx].empty()) {
                chosen = idx;
                break;
            }
        }
        if (chosen == queues_.size())
            return;  // nothing pending
        nextQueue_ = (chosen + 1) % queues_.size();

        auto &queue = queues_[chosen];
        const int64_t take = std::min<int64_t>(
            max_batch, static_cast<int64_t>(queue.size()));
        std::vector<PendingSample> batch;
        batch.reserve(static_cast<size_t>(take));
        for (int64_t i = 0; i < take; ++i) {
            batch.push_back(queue.front());
            queue.pop_front();
        }
        startBatch(chosen, std::move(batch));
    }
}

void
MultiModelSut::startBatch(size_t model,
                          std::vector<PendingSample> batch)
{
    ++busyEngines_;
    ++batchesDispatched_;

    const auto &cost = models_[model];
    const int64_t batch_size = static_cast<int64_t>(batch.size());
    double macs = 0.0;
    if (cost.paddedBatching) {
        double longest = 0.0;
        for (const auto &sample : batch)
            longest = std::max(longest, sample.macs);
        macs = longest * static_cast<double>(batch_size);
    } else {
        for (const auto &sample : batch)
            macs += sample.macs;
    }

    double seconds = profile_.batchSeconds(macs, batch_size);
    seconds *= profile_.dvfsFactorAt(executor_.now());
    if (profile_.jitterFraction > 0.0) {
        seconds *= std::exp(profile_.jitterFraction *
                            rng_.nextGaussian());
    }
    const sim::Tick latency = static_cast<sim::Tick>(
        seconds * static_cast<double>(sim::kNsPerSec));

    executor_.scheduleAfter(
        latency, [this, batch = std::move(batch)] {
            std::vector<loadgen::QuerySampleResponse> responses;
            responses.reserve(batch.size());
            loadgen::ResponseDelegate *delegate = nullptr;
            for (const auto &sample : batch) {
                if (delegate && sample.delegate != delegate) {
                    delegate->querySamplesComplete(responses);
                    responses.clear();
                }
                delegate = sample.delegate;
                responses.push_back({sample.id, ""});
            }
            if (delegate && !responses.empty())
                delegate->querySamplesComplete(responses);
            --busyEngines_;
            dispatch();
        });
}

} // namespace sut
} // namespace mlperf
