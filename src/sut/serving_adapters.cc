#include "sut/serving_adapters.h"

#include <algorithm>
#include <chrono>
#include <cmath>

namespace mlperf {
namespace sut {

ProfileBatchInference::ProfileBatchInference(HardwareProfile profile,
                                             ModelCost cost,
                                             uint64_t seed)
    : profile_(std::move(profile)), cost_(cost), rng_(seed)
{
}

std::vector<loadgen::QuerySampleResponse>
ProfileBatchInference::runBatch(
    const std::vector<loadgen::QuerySample> &samples)
{
    std::vector<loadgen::QuerySampleResponse> responses;
    responses.reserve(samples.size());
    for (const auto &sample : samples)
        responses.push_back({sample.id, ""});
    return responses;
}

sim::Tick
ProfileBatchInference::serviceTimeNs(
    const std::vector<loadgen::QuerySample> &samples, sim::Tick now)
{
    const int64_t batch = static_cast<int64_t>(samples.size());
    const double base = cost_.macsPerSample * cost_.structureDiscount;
    double macs = 0.0;
    double longest = 0.0;
    for (int64_t i = 0; i < batch; ++i) {
        double draw = base;
        if (cost_.workCv > 0.0) {
            // Lognormal with unit mean and the requested cv.
            const double sigma = std::sqrt(
                std::log(1.0 + cost_.workCv * cost_.workCv));
            draw *= std::exp(sigma * rng_.nextGaussian() -
                             sigma * sigma / 2.0);
        }
        macs += draw;
        longest = std::max(longest, draw);
    }
    if (cost_.paddedBatching)
        macs = longest * static_cast<double>(batch);

    double seconds = profile_.batchSeconds(macs, batch);
    seconds *= profile_.dvfsFactorAt(now);
    if (profile_.jitterFraction > 0.0) {
        seconds *= std::exp(profile_.jitterFraction *
                            rng_.nextGaussian());
    }
    return static_cast<sim::Tick>(
        seconds * static_cast<double>(sim::kNsPerSec));
}

std::vector<loadgen::QuerySampleResponse>
ClassifierBatchInference::runBatch(
    const std::vector<loadgen::QuerySample> &samples)
{
    std::vector<loadgen::QuerySampleResponse> responses;
    responses.reserve(samples.size());
    // One compiled-plan execution per dynamic batch: the batcher's
    // whole point is that the worker runs these samples together.
    std::vector<const tensor::Tensor *> images;
    images.reserve(samples.size());
    for (const auto &sample : samples)
        images.push_back(&qsl_.sample(sample.index));
    const std::vector<int64_t> predicted = model_.classifyBatch(images);
    for (size_t i = 0; i < samples.size(); ++i) {
        responses.push_back(
            {samples[i].id, encodeClassification(predicted[i])});
    }
    return responses;
}

std::vector<loadgen::QuerySampleResponse>
SyntheticBatchInference::runBatch(
    const std::vector<loadgen::QuerySample> &samples)
{
    // Busy-wait, not sleep: the point is to occupy a worker the way
    // real compute would, so scheduler overheads stay visible.
    const auto until = std::chrono::steady_clock::now() +
                       std::chrono::nanoseconds(
                           perSampleNs_ *
                           static_cast<sim::Tick>(samples.size()));
    while (std::chrono::steady_clock::now() < until) {
    }
    batchesRun_.fetch_add(1, std::memory_order_relaxed);
    std::vector<loadgen::QuerySampleResponse> responses;
    responses.reserve(samples.size());
    for (const auto &sample : samples)
        responses.push_back({sample.id, ""});
    return responses;
}

uint64_t
publishProfileModel(serving::ModelRegistry &registry,
                    const std::string &name, std::string version,
                    const HardwareProfile &profile,
                    const ModelCost &cost, uint64_t seed)
{
    auto servable = std::make_shared<serving::ServableModel>();
    servable->version = std::move(version);
    servable->engine =
        std::make_unique<ProfileBatchInference>(profile, cost, seed);
    // Analytical models have no tensor form and no packed constants.
    return registry.publish(name, std::move(servable));
}

uint64_t
publishClassifierModel(serving::ModelRegistry &registry,
                       const std::string &name, std::string version,
                       const models::ImageClassifier &model,
                       const ClassificationQsl &qsl)
{
    auto servable = std::make_shared<serving::ServableModel>();
    servable->version = std::move(version);
    servable->engine =
        std::make_unique<ClassifierBatchInference>(model, qsl);
    servable->forward =
        [&model](const tensor::Tensor &input) -> tensor::Tensor {
        return nn::ExecutionInstance::thread().forward(model.compiled(),
                                                       input);
    };
    servable->constantBytes = model.compiled().constantBytes();
    servable->constantsId = &model.compiled();
    return registry.publish(name, std::move(servable));
}

} // namespace sut
} // namespace mlperf
