#include "sut/system_zoo.h"

#include <set>
#include <string>

namespace mlperf {
namespace sut {

namespace {

bool startsWith(const std::string &name, const std::string &prefix);

HardwareProfile
make(const std::string &name, ProcessorType proc,
     const std::string &framework, Category category, double peak_macs,
     double eff1, int64_t sat_batch, int64_t accelerators,
     double overhead_us, int64_t max_batch, double dvfs_warmup_s,
     double dvfs_cold)
{
    HardwareProfile p;
    p.systemName = name;
    p.processor = proc;
    p.framework = framework;
    p.category = category;
    p.peakMacsPerSec = peak_macs;
    p.batchOneEfficiency = eff1;
    p.saturationBatch = sat_batch;
    p.acceleratorCount = accelerators;
    p.overheadNs = overhead_us * 1e3;
    p.maxBatch = max_batch;
    p.dvfsWarmupSeconds = dvfs_warmup_s;
    p.dvfsColdFactor = dvfs_cold;
    return p;
}

std::vector<HardwareProfile>
buildZoo()
{
    using P = ProcessorType;
    using C = Category;
    std::vector<HardwareProfile> zoo;

    // ---- IoT / deeply embedded (CPU-class, no batching).
    zoo.push_back(make("iot-mcu-a", P::CPU, "TensorFlow Lite",
                       C::Available, 2.0e9, 0.85, 1, 1, 500, 1, 0, 1));
    zoo.push_back(make("iot-mcu-b", P::CPU, "ONNX", C::RDO, 4.5e9,
                       0.85, 1, 1, 400, 1, 0, 1));
    zoo.push_back(make("embedded-cpu-a", P::CPU, "TensorFlow Lite",
                       C::Available, 1.2e10, 0.8, 2, 1, 300, 2, 0, 1));
    zoo.push_back(make("embedded-npu-a", P::ASIC, "Hailo SDK",
                       C::Available, 2.6e11, 0.7, 4, 1, 150, 4, 0, 1));
    zoo.push_back(make("embedded-npu-b", P::ASIC, "FuriosaAI",
                       C::Preview, 4.0e11, 0.6, 8, 1, 120, 8, 0, 1));

    // ---- Smartphones (DVFS-heavy: Sec. III-D's 60 s rationale).
    zoo.push_back(make("phone-dsp-a", P::DSP, "SNPE", C::Available,
                       3.5e11, 0.75, 2, 1, 200, 2, 8.0, 1.6));
    zoo.push_back(make("phone-dsp-b", P::DSP, "SNPE", C::Available,
                       6.0e11, 0.75, 2, 1, 180, 2, 10.0, 1.7));
    zoo.push_back(make("phone-cpu-a", P::CPU, "TensorFlow Lite",
                       C::Available, 6.0e10, 0.85, 1, 1, 250, 1, 6.0,
                       1.4));
    zoo.push_back(make("phone-gpu-a", P::GPU, "ARM NN", C::Available,
                       2.2e11, 0.6, 4, 1, 350, 4, 8.0, 1.5));
    zoo.push_back(make("phone-npu-a", P::ASIC, "Synapse", C::Preview,
                       1.1e12, 0.6, 4, 1, 220, 4, 8.0, 1.5));

    // ---- Edge boxes / dev kits.
    zoo.push_back(make("edge-gpu-a", P::GPU, "TensorRT", C::Available,
                       2.4e12, 0.35, 16, 1, 120, 16, 0, 1));
    zoo.push_back(make("edge-gpu-b", P::GPU, "TensorRT", C::Available,
                       5.5e12, 0.3, 16, 1, 110, 16, 0, 1));
    zoo.push_back(make("edge-asic-a", P::ASIC, "FuriosaAI",
                       C::Preview, 4.2e12, 0.55, 8, 1, 90, 8, 0, 1));
    zoo.push_back(make("edge-fpga-a", P::FPGA, "ONNX", C::Available,
                       1.6e12, 0.8, 2, 1, 100, 2, 0, 1));
    zoo.push_back(make("edge-fpga-b", P::FPGA, "ONNX", C::Available,
                       3.3e12, 0.78, 2, 1, 95, 2, 0, 1));

    // ---- Workstation / desktop.
    zoo.push_back(make("desktop-cpu-a", P::CPU, "OpenVINO",
                       C::Available, 9.0e11, 0.6, 8, 1, 80, 8, 0, 1));
    zoo.push_back(make("desktop-cpu-b", P::CPU, "PyTorch",
                       C::Available, 6.5e11, 0.5, 8, 1, 130, 8, 0, 1));
    zoo.push_back(make("desktop-gpu-a", P::GPU, "TensorRT",
                       C::Available, 1.4e13, 0.2, 512, 1, 90, 128, 0,
                       1));

    // ---- Data-center CPUs.
    zoo.push_back(make("dc-cpu-a", P::CPU, "OpenVINO", C::Available,
                       3.4e12, 0.55, 16, 1, 70, 16, 0, 1));
    zoo.push_back(make("dc-cpu-b", P::CPU, "TensorFlow", C::Available,
                       2.6e12, 0.45, 16, 1, 90, 16, 0, 1));
    zoo.push_back(make("dc-cpu-c", P::CPU, "ONNX", C::Available,
                       5.2e12, 0.5, 16, 2, 75, 16, 0, 1));

    // ---- Data-center GPUs (deep batching; big server/offline gap).
    zoo.push_back(make("dc-gpu-a", P::GPU, "TensorRT", C::Available,
                       3.2e13, 0.12, 512, 1, 60, 256, 0, 1));
    zoo.push_back(make("dc-gpu-b", P::GPU, "TensorRT", C::Available,
                       6.0e13, 0.1, 512, 2, 60, 256, 0, 1));
    zoo.push_back(make("dc-gpu-c", P::GPU, "TensorRT", C::Available,
                       6.5e13, 0.1, 512, 4, 55, 256, 0, 1));
    zoo.push_back(make("dc-gpu-d", P::GPU, "TensorFlow", C::Available,
                       4.5e13, 0.15, 512, 1, 100, 256, 0, 1));

    // ---- Data-center accelerators (TPU-class ASICs, FPGA cards).
    zoo.push_back(make("dc-asic-a", P::ASIC, "TensorFlow",
                       C::Available, 1.8e14, 0.25, 512, 1, 50, 128, 0,
                       1));
    zoo.push_back(make("dc-asic-b", P::ASIC, "TensorFlow",
                       C::Available, 3.6e14, 0.22, 512, 2, 50, 128, 0,
                       1));
    zoo.push_back(make("dc-asic-c", P::ASIC, "HanGuang AI",
                       C::Preview, 4.2e14, 0.35, 512, 1, 45, 128, 0,
                       1));
    zoo.push_back(make("dc-asic-d", P::ASIC, "Habana Synapse",
                       C::Available, 2.2e14, 0.4, 48, 1, 55, 48, 0,
                       1));
    zoo.push_back(make("dc-fpga-a", P::FPGA, "ONNX", C::Available,
                       2.8e13, 0.7, 4, 2, 65, 4, 0, 1));
    zoo.push_back(make("dc-fpga-b", P::FPGA, "ONNX", C::Preview,
                       5.6e13, 0.65, 4, 4, 65, 4, 0, 1));

    // ---- Research / other.
    zoo.push_back(make("rdo-analog-a", P::ASIC, "ONNX", C::RDO,
                       8.0e12, 0.9, 2, 1, 140, 2, 0, 1));
    zoo.push_back(make("rdo-asic-a", P::ASIC, "PyTorch", C::RDO,
                       6.4e13, 0.3, 32, 1, 85, 32, 0, 1));

    // ---- Energy model per tier: the population spans "three orders
    //      of magnitude in power consumption" (Sec. I).
    for (auto &p : zoo) {
        const std::string &n = p.systemName;
        if (startsWith(n, "iot")) {
            p.idleWatts = 0.05;
            p.picojoulesPerMac = 5.0;
        } else if (startsWith(n, "embedded")) {
            p.idleWatts = 0.4;
            p.picojoulesPerMac = 2.5;
        } else if (startsWith(n, "phone")) {
            p.idleWatts = 0.8;
            p.picojoulesPerMac = 3.0;
        } else if (startsWith(n, "edge")) {
            p.idleWatts = 8.0;
            p.picojoulesPerMac = 2.0;
        } else if (startsWith(n, "desktop-cpu") ||
                   startsWith(n, "dc-cpu")) {
            p.idleWatts = 90.0;
            p.picojoulesPerMac = 12.0;  // general-purpose overhead
        } else if (startsWith(n, "desktop-gpu") ||
                   startsWith(n, "dc-gpu")) {
            p.idleWatts = 60.0;
            p.picojoulesPerMac = 1.8;
        } else if (startsWith(n, "dc-asic")) {
            p.idleWatts = 75.0;
            p.picojoulesPerMac = 0.7;
        } else if (startsWith(n, "dc-fpga")) {
            p.idleWatts = 30.0;
            p.picojoulesPerMac = 1.2;
        } else {  // rdo
            p.idleWatts = 20.0;
            p.picojoulesPerMac = 0.4;  // analog/research claims
        }
        p.idleWatts *= static_cast<double>(p.acceleratorCount);
    }

    return zoo;
}

bool
startsWith(const std::string &name, const std::string &prefix)
{
    return name.rfind(prefix, 0) == 0;
}

} // namespace

const std::vector<HardwareProfile> &
systemZoo()
{
    static const std::vector<HardwareProfile> zoo = buildZoo();
    return zoo;
}

std::vector<HardwareProfile>
figureSixSystems()
{
    // Eleven diverse systems labelled A..K in the Figure 6 bench.
    static const char *names[] = {
        "dc-gpu-a",    "dc-gpu-c",   "dc-asic-a",   "dc-asic-c",
        "dc-cpu-a",    "dc-cpu-c",   "dc-fpga-a",   "edge-gpu-b",
        "desktop-gpu-a", "dc-gpu-d", "dc-asic-d",
    };
    std::vector<HardwareProfile> out;
    for (const char *name : names) {
        for (const auto &profile : systemZoo()) {
            if (profile.systemName == name) {
                out.push_back(profile);
                break;
            }
        }
    }
    return out;
}

std::vector<std::pair<std::string, ProcessorType>>
frameworkProcessorMatrix()
{
    std::set<std::pair<std::string, int>> seen;
    std::vector<std::pair<std::string, ProcessorType>> out;
    for (const auto &profile : systemZoo()) {
        const auto key = std::make_pair(
            profile.framework, static_cast<int>(profile.processor));
        if (seen.insert(key).second)
            out.emplace_back(profile.framework, profile.processor);
    }
    return out;
}

} // namespace sut
} // namespace mlperf
