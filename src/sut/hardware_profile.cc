#include "sut/hardware_profile.h"

#include <algorithm>
#include <cassert>

namespace mlperf {
namespace sut {

std::string
processorName(ProcessorType type)
{
    switch (type) {
      case ProcessorType::CPU:  return "CPU";
      case ProcessorType::GPU:  return "GPU";
      case ProcessorType::DSP:  return "DSP";
      case ProcessorType::FPGA: return "FPGA";
      case ProcessorType::ASIC: return "ASIC";
    }
    return "?";
}

std::string
categoryName(Category category)
{
    switch (category) {
      case Category::Available: return "available";
      case Category::Preview:   return "preview";
      case Category::RDO:       return "rdo";
    }
    return "?";
}

double
HardwareProfile::efficiencyAt(int64_t batch) const
{
    assert(batch >= 1);
    if (batch >= saturationBatch)
        return 1.0;
    // B / (B + c) with eff(1) = batchOneEfficiency.
    const double c =
        (1.0 - batchOneEfficiency) / batchOneEfficiency;
    const double b = static_cast<double>(batch);
    return std::min(1.0, b / (b + c));
}

double
HardwareProfile::batchSeconds(double macs, int64_t batch) const
{
    return overheadNs * 1e-9 +
           macs / (peakMacsPerSec * efficiencyAt(batch));
}

double
HardwareProfile::dvfsFactorAt(sim::Tick now) const
{
    if (dvfsWarmupSeconds <= 0.0 || dvfsColdFactor <= 1.0)
        return 1.0;
    const double t = static_cast<double>(now) /
                     static_cast<double>(sim::kNsPerSec);
    const double progress =
        std::min(1.0, t / dvfsWarmupSeconds);
    return 1.0 + (dvfsColdFactor - 1.0) * (1.0 - progress);
}

} // namespace sut
} // namespace mlperf
