/**
 * @file
 * The simulated submission population ("system zoo").
 *
 * Thirty-plus hardware profiles spanning IoT endpoints to multi-
 * accelerator data-center systems — the four-orders-of-magnitude
 * performance range of the paper's Sec. VI-D — with processor types
 * and software frameworks matching the Table VII matrix.
 */

#ifndef MLPERF_SUT_SYSTEM_ZOO_H
#define MLPERF_SUT_SYSTEM_ZOO_H

#include <vector>

#include "sut/hardware_profile.h"

namespace mlperf {
namespace sut {

/** The full population, ordered roughly by peak compute. */
const std::vector<HardwareProfile> &systemZoo();

/** Eleven diverse systems used for the Figure 6 study (A..K). */
std::vector<HardwareProfile> figureSixSystems();

/** Framework x processor pairs present in the zoo (Table VII). */
std::vector<std::pair<std::string, ProcessorType>>
frameworkProcessorMatrix();

} // namespace sut
} // namespace mlperf

#endif // MLPERF_SUT_SYSTEM_ZOO_H
