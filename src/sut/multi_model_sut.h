/**
 * @file
 * A simulated system serving several models concurrently — the SUT
 * side of the multitenancy extension (paper Sec. IV-B). One shared
 * pool of inference engines; per-model batchers (different models
 * cannot share a batch); round-robin dispatch between model queues so
 * a heavy tenant cannot starve a light one.
 */

#ifndef MLPERF_SUT_MULTI_MODEL_SUT_H
#define MLPERF_SUT_MULTI_MODEL_SUT_H

#include <deque>
#include <vector>

#include "common/rng.h"
#include "loadgen/sut.h"
#include "sim/executor.h"
#include "sut/hardware_profile.h"
#include "sut/model_cost.h"

namespace mlperf {
namespace sut {

class MultiModelSut
{
  public:
    MultiModelSut(sim::Executor &executor, HardwareProfile profile,
                  std::vector<ModelCost> models,
                  uint64_t seed = 0xC0DE2);

    /**
     * The per-model SystemUnderTest facade to hand to the LoadGen;
     * valid for the lifetime of this object.
     */
    loadgen::SystemUnderTest &tenantSut(size_t model_index);

    uint64_t batchesDispatched() const { return batchesDispatched_; }
    const HardwareProfile &profile() const { return profile_; }

  private:
    struct PendingSample
    {
        loadgen::ResponseId id;
        loadgen::ResponseDelegate *delegate;
        double macs;
    };

    /** Facade implementing SystemUnderTest for one model index. */
    class TenantFacade : public loadgen::SystemUnderTest
    {
      public:
        TenantFacade(MultiModelSut &owner, size_t index)
            : owner_(owner), index_(index)
        {
        }
        std::string name() const override;
        void issueQuery(const std::vector<loadgen::QuerySample> &s,
                        loadgen::ResponseDelegate &d) override;
        void flushQueries() override {}

      private:
        MultiModelSut &owner_;
        size_t index_;
    };

    void enqueue(size_t model, const std::vector<loadgen::QuerySample> &,
                 loadgen::ResponseDelegate &);
    void dispatch();
    void startBatch(size_t model, std::vector<PendingSample> batch);
    double drawSampleMacs(const ModelCost &cost);

    sim::Executor &executor_;
    HardwareProfile profile_;
    std::vector<ModelCost> models_;
    Rng rng_;

    std::vector<TenantFacade> facades_;
    std::vector<std::deque<PendingSample>> queues_;  //!< per model
    size_t nextQueue_ = 0;  //!< round-robin cursor
    int64_t busyEngines_ = 0;
    uint64_t batchesDispatched_ = 0;
};

} // namespace sut
} // namespace mlperf

#endif // MLPERF_SUT_MULTI_MODEL_SUT_H
