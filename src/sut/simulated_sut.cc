#include "sut/simulated_sut.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace mlperf {
namespace sut {

SimulatedSut::SimulatedSut(sim::Executor &executor,
                           HardwareProfile profile, ModelCost cost,
                           SchedulerOptions options, uint64_t seed)
    : executor_(executor), profile_(std::move(profile)), cost_(cost),
      options_(options), rng_(seed)
{
}

int64_t
SimulatedSut::effectiveMaxBatch() const
{
    return options_.maxBatch > 0 ? options_.maxBatch
                                 : std::max<int64_t>(1,
                                                     profile_.maxBatch);
}

double
SimulatedSut::drawSampleMacs()
{
    double macs = cost_.macsPerSample * cost_.structureDiscount;
    if (cost_.workCv > 0.0) {
        // Lognormal with unit mean and the requested cv.
        const double sigma =
            std::sqrt(std::log(1.0 + cost_.workCv * cost_.workCv));
        macs *= std::exp(sigma * rng_.nextGaussian() -
                         sigma * sigma / 2.0);
    }
    return macs;
}

void
SimulatedSut::issueQuery(const std::vector<loadgen::QuerySample> &samples,
                         loadgen::ResponseDelegate &delegate)
{
    std::vector<PendingSample> incoming;
    incoming.reserve(samples.size());
    for (const auto &sample : samples)
        incoming.push_back({sample.id, &delegate, drawSampleMacs()});

    // Length-sorted batching for big (offline-style) queries of
    // variable-length work: reordering within a query is allowed, and
    // it eliminates the padding waste of mixed-length batches.
    if (cost_.paddedBatching &&
        static_cast<int64_t>(incoming.size()) > effectiveMaxBatch()) {
        std::sort(incoming.begin(), incoming.end(),
                  [](const PendingSample &a, const PendingSample &b) {
                      return a.macs < b.macs;
                  });
    }
    for (auto &sample : incoming)
        batcher_.push_back(std::move(sample));

    const int64_t max_batch = effectiveMaxBatch();
    if (options_.batchWindowNs == 0 ||
        static_cast<int64_t>(batcher_.size()) >= max_batch) {
        flushBatcher();
    } else if (!batcherFlushScheduled_) {
        batcherFlushScheduled_ = true;
        executor_.scheduleAfter(options_.batchWindowNs, [this] {
            batcherFlushScheduled_ = false;
            flushBatcher();
        });
    }
}

void
SimulatedSut::flushQueries()
{
    flushBatcher();
}

void
SimulatedSut::flushBatcher()
{
    const int64_t max_batch = effectiveMaxBatch();
    while (!batcher_.empty()) {
        const int64_t take = std::min<int64_t>(
            max_batch, static_cast<int64_t>(batcher_.size()));
        std::vector<PendingSample> batch;
        batch.reserve(static_cast<size_t>(take));
        for (int64_t i = 0; i < take; ++i) {
            batch.push_back(batcher_.front());
            batcher_.pop_front();
        }
        ready_.push_back(std::move(batch));
    }
    dispatchReady();
}

void
SimulatedSut::dispatchReady()
{
    while (busyEngines_ < profile_.acceleratorCount &&
           !ready_.empty()) {
        std::vector<PendingSample> batch = std::move(ready_.front());
        ready_.pop_front();
        startBatch(std::move(batch));
    }
}

void
SimulatedSut::startBatch(std::vector<PendingSample> batch)
{
    ++busyEngines_;
    ++batchesDispatched_;
    samplesProcessed_ += batch.size();

    const int64_t batch_size = static_cast<int64_t>(batch.size());
    // Batch cost: sum of per-sample work, or (for sequence models)
    // batch_size x the longest sample, since every lane pads to it.
    double macs = 0.0;
    if (cost_.paddedBatching) {
        double longest = 0.0;
        for (const auto &sample : batch)
            longest = std::max(longest, sample.macs);
        macs = longest * static_cast<double>(batch_size);
    } else {
        for (const auto &sample : batch)
            macs += sample.macs;
    }

    dynamicJoules_ += macs * profile_.picojoulesPerMac * 1e-12;
    double seconds = profile_.batchSeconds(macs, batch_size);
    seconds += static_cast<double>(
                   options_.timedPreprocessNsPerSample) *
               static_cast<double>(batch_size) * 1e-9;
    seconds *= profile_.dvfsFactorAt(executor_.now());
    if (profile_.jitterFraction > 0.0) {
        seconds *= std::exp(profile_.jitterFraction *
                            rng_.nextGaussian());
    }
    const sim::Tick latency = static_cast<sim::Tick>(
        seconds * static_cast<double>(sim::kNsPerSec));

    executor_.scheduleAfter(
        latency, [this, batch = std::move(batch)] {
            // Group per delegate (usually one) and respond.
            std::vector<loadgen::QuerySampleResponse> responses;
            responses.reserve(batch.size());
            loadgen::ResponseDelegate *delegate = nullptr;
            for (const auto &sample : batch) {
                if (delegate && sample.delegate != delegate) {
                    delegate->querySamplesComplete(responses);
                    responses.clear();
                }
                delegate = sample.delegate;
                responses.push_back({sample.id, ""});
            }
            if (delegate && !responses.empty())
                delegate->querySamplesComplete(responses);
            --busyEngines_;
            dispatchReady();
        });
}

double
SimulatedSut::steadyStateThroughput(int64_t batch) const
{
    const double macs = cost_.macsPerSample * cost_.structureDiscount *
                        static_cast<double>(batch);
    const double seconds = profile_.batchSeconds(macs, batch);
    return static_cast<double>(batch) *
           static_cast<double>(profile_.acceleratorCount) / seconds;
}

} // namespace sut
} // namespace mlperf
