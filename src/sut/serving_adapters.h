/**
 * @file
 * Adapters plugging this repository's two SUT families into the
 * serving runtime (src/serving):
 *
 *  - ProfileBatchInference: a simulated hardware profile + model
 *    cost, for event workers under virtual time. The same analytical
 *    model as SimulatedSut (batch efficiency, DVFS warm-up, jitter),
 *    but with queueing/batching/scheduling handled by ServingSut
 *    instead of inline.
 *  - ClassifierBatchInference: the real NN image classifier, for
 *    thread workers under wall-clock time — the concurrent
 *    counterpart of the inline ClassifierSut.
 *  - SyntheticBatchInference: a calibrated busy-wait, for scheduler
 *    benchmarks that need service time decoupled from model compute
 *    (e.g. the shard-scaling sweep in bench_serving_batching).
 */

#ifndef MLPERF_SUT_SERVING_ADAPTERS_H
#define MLPERF_SUT_SERVING_ADAPTERS_H

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "serving/batch_inference.h"
#include "serving/tenancy/model_registry.h"
#include "sut/hardware_profile.h"
#include "sut/model_cost.h"
#include "sut/nn_sut.h"

namespace mlperf {
namespace sut {

/** Analytical service-time model over a HardwareProfile. */
class ProfileBatchInference : public serving::BatchInference
{
  public:
    ProfileBatchInference(HardwareProfile profile, ModelCost cost,
                          uint64_t seed = 0xDEC0DE);

    std::string name() const override { return profile_.systemName; }

    /** No real compute: responses carry empty payloads. */
    std::vector<loadgen::QuerySampleResponse> runBatch(
        const std::vector<loadgen::QuerySample> &samples) override;

    sim::Tick serviceTimeNs(
        const std::vector<loadgen::QuerySample> &samples,
        sim::Tick now) override;

    const HardwareProfile &profile() const { return profile_; }

  private:
    HardwareProfile profile_;
    ModelCost cost_;
    Rng rng_;
};

/** Real classifier inference; thread-safe (models are stateless). */
class ClassifierBatchInference : public serving::BatchInference
{
  public:
    ClassifierBatchInference(const models::ImageClassifier &model,
                             const ClassificationQsl &qsl)
        : model_(model), qsl_(qsl)
    {
    }

    std::string name() const override { return model_.name(); }

    std::vector<loadgen::QuerySampleResponse> runBatch(
        const std::vector<loadgen::QuerySample> &samples) override;

  private:
    const models::ImageClassifier &model_;
    const ClassificationQsl &qsl_;
};

/**
 * Fixed per-sample service time burned as a busy-wait: the pure
 * scheduler load for worker-pool/shard benchmarks, with zero model
 * variance and no shared state between concurrent calls. Thread-safe.
 * Under an event executor, serviceTimeNs models the same cost so one
 * configuration works in both modes.
 */
class SyntheticBatchInference : public serving::BatchInference
{
  public:
    explicit SyntheticBatchInference(sim::Tick per_sample_ns)
        : perSampleNs_(per_sample_ns)
    {
    }

    std::string name() const override { return "synthetic"; }

    std::vector<loadgen::QuerySampleResponse> runBatch(
        const std::vector<loadgen::QuerySample> &samples) override;

    sim::Tick
    serviceTimeNs(const std::vector<loadgen::QuerySample> &samples,
                  sim::Tick /*now*/) override
    {
        return perSampleNs_ * static_cast<sim::Tick>(samples.size());
    }

    uint64_t
    batchesRun() const
    {
        return batchesRun_.load(std::memory_order_relaxed);
    }

  private:
    const sim::Tick perSampleNs_;
    std::atomic<uint64_t> batchesRun_{0};
};

// ------------------------------------------- registry publish helpers

/**
 * Publish an analytical profile model into @p registry under
 * @p name: a ProfileBatchInference engine for event workers under
 * virtual time, no tensor entry point. Returns the entry's registry
 * generation.
 */
uint64_t publishProfileModel(serving::ModelRegistry &registry,
                             const std::string &name,
                             std::string version,
                             const HardwareProfile &profile,
                             const ModelCost &cost,
                             uint64_t seed = 0xDEC0DE);

/**
 * Publish the real classifier into @p registry under @p name: a
 * ClassifierBatchInference engine for thread workers, a tensor-level
 * forward through the compiled plan (for DAG stages), and
 * prepacked-constant accounting keyed by the CompiledModel's address
 * so aliases of one model are counted once. @p model and @p qsl must
 * outlive the registry entry (and any in-flight handles to it).
 */
uint64_t publishClassifierModel(serving::ModelRegistry &registry,
                                const std::string &name,
                                std::string version,
                                const models::ImageClassifier &model,
                                const ClassificationQsl &qsl);

} // namespace sut
} // namespace mlperf

#endif // MLPERF_SUT_SERVING_ADAPTERS_H
