/**
 * @file
 * Per-task compute-cost models for the simulated SUTs.
 *
 * Costs use the paper's Table I reference complexity (GOPs/input), so
 * simulated systems see the real relative weights of the five tasks —
 * including the Sec. VII-D observation that operation count alone
 * mispredicts throughput, which the structure discount models.
 */

#ifndef MLPERF_SUT_MODEL_COST_H
#define MLPERF_SUT_MODEL_COST_H

#include "models/model_info.h"

namespace mlperf {
namespace sut {

struct ModelCost
{
    models::TaskType task = models::TaskType::ImageClassificationHeavy;
    /** Mean MACs per sample (paper GOPs / 2). */
    double macsPerSample = 4.1e9;
    /**
     * Coefficient of variation of per-sample work. Vision inputs are
     * fixed-size (cv ~ 0); NMT work scales with sentence length
     * (Sec. VI-B attributes NMT's server-scenario losses partly to
     * "variable text input").
     */
    double workCv = 0.0;
    /**
     * Achieved-throughput discount for network structure: Sec. VII-D
     * reports SSD-R34 costs 175x the ops of SSD-MobileNet but only
     * runs 50-60x slower, i.e. large dense networks utilize hardware
     * ~3x better. Modeled as a multiplier on effective MACs.
     */
    double structureDiscount = 1.0;
    /**
     * Sequence batching pads every sample in a batch to the longest
     * sequence, so a batch costs batch_size x max(work) rather than
     * sum(work). Offline queries may be length-sorted before batching
     * (reordering within a query is explicitly allowed), which the
     * server scenario's arrival order precludes — a key source of
     * GNMT's server-scenario throughput loss (Sec. VI-B).
     */
    bool paddedBatching = false;
};

/** Cost model for each of the five tasks. */
ModelCost modelCostFor(models::TaskType task);

} // namespace sut
} // namespace mlperf

#endif // MLPERF_SUT_MODEL_COST_H
