/**
 * @file
 * Mean average precision for object detection (COCO-style).
 *
 * Matches detections to ground truth greedily by score at a fixed IoU
 * threshold, builds the precision-recall curve per class, integrates
 * with 101-point interpolation, and averages over classes — the mAP
 * definition behind the paper's 0.20/0.22 quality targets.
 */

#ifndef MLPERF_METRICS_MAP_H
#define MLPERF_METRICS_MAP_H

#include <cstdint>
#include <vector>

#include "data/detection.h"

namespace mlperf {
namespace metrics {

/** One detection emitted by a model for some image. */
struct Detection
{
    int64_t imageId = 0;
    int64_t cls = 0;
    double score = 0.0;
    data::Box box;
};

/** Ground truth for one image. */
struct ImageGroundTruth
{
    int64_t imageId = 0;
    std::vector<data::GroundTruthObject> objects;
};

/**
 * Average precision for a single class at the given IoU threshold,
 * with 101-point interpolation.
 */
double averagePrecision(const std::vector<Detection> &detections,
                        const std::vector<ImageGroundTruth> &truth,
                        int64_t cls, double iou_threshold);

/** Mean AP over classes [0, num_classes). */
double meanAveragePrecision(const std::vector<Detection> &detections,
                            const std::vector<ImageGroundTruth> &truth,
                            int64_t num_classes,
                            double iou_threshold = 0.5);

/**
 * COCO-style mAP averaged over IoU thresholds 0.50:0.05:0.95 —
 * the stricter headline metric of the COCO evaluation the paper's
 * detection tasks build on.
 */
double cocoMeanAveragePrecision(
    const std::vector<Detection> &detections,
    const std::vector<ImageGroundTruth> &truth, int64_t num_classes);

/**
 * Class-agnostic greedy non-maximum suppression: keeps the highest-
 * scoring detections, dropping any with IoU above the threshold
 * against an already-kept detection of the same class.
 */
std::vector<Detection> nonMaxSuppression(std::vector<Detection>
                                             detections,
                                         double iou_threshold);

} // namespace metrics
} // namespace mlperf

#endif // MLPERF_METRICS_MAP_H
