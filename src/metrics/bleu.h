/**
 * @file
 * Corpus BLEU in the SacreBLEU style (paper Sec. III-A: translation
 * quality is "BLEU implemented using SacreBLEU").
 *
 * Corpus-level modified n-gram precisions for n=1..4, geometric mean,
 * brevity penalty, reported on the 0-100 scale. Operates on integer
 * token sequences (our synthetic language is already tokenized, which
 * sidesteps SacreBLEU's tokenizer — exactly its role of removing
 * tokenization ambiguity).
 */

#ifndef MLPERF_METRICS_BLEU_H
#define MLPERF_METRICS_BLEU_H

#include <cstdint>
#include <vector>

namespace mlperf {
namespace metrics {

using TokenSeq = std::vector<int64_t>;

/** Detailed corpus BLEU decomposition. */
struct BleuResult
{
    double bleu = 0.0;               //!< 0..100
    double precisions[4] = {0, 0, 0, 0};
    double brevityPenalty = 1.0;
    int64_t hypothesisLength = 0;
    int64_t referenceLength = 0;
};

/**
 * Corpus BLEU of hypotheses against single references.
 * Sequences must align index-by-index.
 */
BleuResult corpusBleu(const std::vector<TokenSeq> &hypotheses,
                      const std::vector<TokenSeq> &references);

/** Convenience: just the 0-100 score. */
double bleuScore(const std::vector<TokenSeq> &hypotheses,
                 const std::vector<TokenSeq> &references);

} // namespace metrics
} // namespace mlperf

#endif // MLPERF_METRICS_BLEU_H
