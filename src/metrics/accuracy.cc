#include "metrics/accuracy.h"

#include <cassert>
#include <cstddef>

namespace mlperf {
namespace metrics {

double
top1Accuracy(const std::vector<int64_t> &predictions,
             const std::vector<int64_t> &labels)
{
    assert(predictions.size() == labels.size());
    if (predictions.empty())
        return 0.0;
    size_t correct = 0;
    for (size_t i = 0; i < predictions.size(); ++i) {
        if (predictions[i] == labels[i])
            ++correct;
    }
    return static_cast<double>(correct) /
           static_cast<double>(predictions.size());
}

double
qualityTarget(double fp32_reference, double relative_target)
{
    return fp32_reference * relative_target;
}

bool
meetsTarget(double measured, double fp32_reference,
            double relative_target)
{
    return measured >= qualityTarget(fp32_reference, relative_target);
}

} // namespace metrics
} // namespace mlperf
