/**
 * @file
 * Top-1 accuracy and the relative quality-target rule.
 *
 * The paper fixes per-model quality targets as a fraction of the FP32
 * reference accuracy (99% for most models, 98% for the quantization-
 * sensitive MobileNets; Table I and Sec. III-B). qualityTarget() and
 * meetsTarget() implement that rule for any metric.
 */

#ifndef MLPERF_METRICS_ACCURACY_H
#define MLPERF_METRICS_ACCURACY_H

#include <cstdint>
#include <vector>

namespace mlperf {
namespace metrics {

/** Fraction of predictions equal to labels. */
double top1Accuracy(const std::vector<int64_t> &predictions,
                    const std::vector<int64_t> &labels);

/** Absolute target = relative_target * fp32_reference. */
double qualityTarget(double fp32_reference, double relative_target);

/** True when measured >= relative_target * fp32_reference. */
bool meetsTarget(double measured, double fp32_reference,
                 double relative_target);

} // namespace metrics
} // namespace mlperf

#endif // MLPERF_METRICS_ACCURACY_H
