#include "metrics/bleu.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>

namespace mlperf {
namespace metrics {

namespace {

/** Count n-grams of a sequence into a map keyed by the token window. */
std::map<std::vector<int64_t>, int64_t>
ngramCounts(const TokenSeq &seq, size_t n)
{
    std::map<std::vector<int64_t>, int64_t> counts;
    if (seq.size() < n)
        return counts;
    for (size_t i = 0; i + n <= seq.size(); ++i) {
        std::vector<int64_t> gram(seq.begin() + static_cast<long>(i),
                                  seq.begin() + static_cast<long>(i + n));
        ++counts[gram];
    }
    return counts;
}

} // namespace

BleuResult
corpusBleu(const std::vector<TokenSeq> &hypotheses,
           const std::vector<TokenSeq> &references)
{
    assert(hypotheses.size() == references.size());
    BleuResult result;

    int64_t matches[4] = {0, 0, 0, 0};
    int64_t totals[4] = {0, 0, 0, 0};
    for (size_t s = 0; s < hypotheses.size(); ++s) {
        const TokenSeq &hyp = hypotheses[s];
        const TokenSeq &ref = references[s];
        result.hypothesisLength += static_cast<int64_t>(hyp.size());
        result.referenceLength += static_cast<int64_t>(ref.size());
        for (size_t n = 1; n <= 4; ++n) {
            const auto hyp_counts = ngramCounts(hyp, n);
            const auto ref_counts = ngramCounts(ref, n);
            for (const auto &[gram, count] : hyp_counts) {
                totals[n - 1] += count;
                const auto it = ref_counts.find(gram);
                if (it != ref_counts.end())
                    matches[n - 1] += std::min(count, it->second);
            }
        }
    }

    double log_sum = 0.0;
    bool any_zero = false;
    for (int n = 0; n < 4; ++n) {
        result.precisions[n] =
            totals[n] > 0 ? static_cast<double>(matches[n]) /
                                static_cast<double>(totals[n])
                          : 0.0;
        if (result.precisions[n] <= 0.0)
            any_zero = true;
        else
            log_sum += std::log(result.precisions[n]);
    }

    if (result.hypothesisLength == 0) {
        result.brevityPenalty = 0.0;
        result.bleu = 0.0;
        return result;
    }
    result.brevityPenalty =
        result.hypothesisLength >= result.referenceLength
            ? 1.0
            : std::exp(1.0 - static_cast<double>(result.referenceLength) /
                                 static_cast<double>(
                                     result.hypothesisLength));
    result.bleu = any_zero
                      ? 0.0
                      : 100.0 * result.brevityPenalty *
                            std::exp(log_sum / 4.0);
    return result;
}

double
bleuScore(const std::vector<TokenSeq> &hypotheses,
          const std::vector<TokenSeq> &references)
{
    return corpusBleu(hypotheses, references).bleu;
}

} // namespace metrics
} // namespace mlperf
