#include "metrics/map.h"

#include <algorithm>
#include <map>

namespace mlperf {
namespace metrics {

double
averagePrecision(const std::vector<Detection> &detections,
                 const std::vector<ImageGroundTruth> &truth,
                 int64_t cls, double iou_threshold)
{
    // Gather this class's ground truth per image.
    std::map<int64_t, std::vector<data::Box>> gt_boxes;
    int64_t total_gt = 0;
    for (const auto &img : truth) {
        for (const auto &obj : img.objects) {
            if (obj.cls == cls) {
                gt_boxes[img.imageId].push_back(obj.box);
                ++total_gt;
            }
        }
    }
    if (total_gt == 0)
        return 0.0;

    // This class's detections, best score first.
    std::vector<const Detection *> dets;
    for (const auto &d : detections) {
        if (d.cls == cls)
            dets.push_back(&d);
    }
    std::stable_sort(dets.begin(), dets.end(),
                     [](const Detection *a, const Detection *b) {
                         return a->score > b->score;
                     });

    // Greedy matching: each ground-truth box may match once.
    std::map<int64_t, std::vector<bool>> used;
    for (const auto &[id, boxes] : gt_boxes)
        used[id].assign(boxes.size(), false);

    std::vector<bool> is_tp(dets.size(), false);
    for (size_t i = 0; i < dets.size(); ++i) {
        const Detection &d = *dets[i];
        auto it = gt_boxes.find(d.imageId);
        if (it == gt_boxes.end())
            continue;
        double best_iou = 0.0;
        size_t best_j = 0;
        for (size_t j = 0; j < it->second.size(); ++j) {
            const double v = data::iou(d.box, it->second[j]);
            if (v > best_iou) {
                best_iou = v;
                best_j = j;
            }
        }
        if (best_iou >= iou_threshold && !used[d.imageId][best_j]) {
            used[d.imageId][best_j] = true;
            is_tp[i] = true;
        }
    }

    // Precision-recall curve, then 101-point interpolated AP.
    std::vector<double> precision(dets.size());
    std::vector<double> recall(dets.size());
    int64_t tp = 0;
    for (size_t i = 0; i < dets.size(); ++i) {
        if (is_tp[i])
            ++tp;
        precision[i] = static_cast<double>(tp) /
                       static_cast<double>(i + 1);
        recall[i] = static_cast<double>(tp) /
                    static_cast<double>(total_gt);
    }

    double ap = 0.0;
    for (int r = 0; r <= 100; ++r) {
        const double r_level = static_cast<double>(r) / 100.0;
        double best_p = 0.0;
        for (size_t i = 0; i < dets.size(); ++i) {
            if (recall[i] >= r_level)
                best_p = std::max(best_p, precision[i]);
        }
        ap += best_p;
    }
    return ap / 101.0;
}

double
meanAveragePrecision(const std::vector<Detection> &detections,
                     const std::vector<ImageGroundTruth> &truth,
                     int64_t num_classes, double iou_threshold)
{
    if (num_classes == 0)
        return 0.0;
    double sum = 0.0;
    for (int64_t c = 0; c < num_classes; ++c)
        sum += averagePrecision(detections, truth, c, iou_threshold);
    return sum / static_cast<double>(num_classes);
}

double
cocoMeanAveragePrecision(const std::vector<Detection> &detections,
                         const std::vector<ImageGroundTruth> &truth,
                         int64_t num_classes)
{
    double sum = 0.0;
    int count = 0;
    for (double threshold = 0.50; threshold < 0.96;
         threshold += 0.05) {
        sum += meanAveragePrecision(detections, truth, num_classes,
                                    threshold);
        ++count;
    }
    return sum / count;
}

std::vector<Detection>
nonMaxSuppression(std::vector<Detection> detections, double iou_threshold)
{
    std::stable_sort(detections.begin(), detections.end(),
                     [](const Detection &a, const Detection &b) {
                         return a.score > b.score;
                     });
    std::vector<Detection> kept;
    for (const auto &d : detections) {
        bool suppressed = false;
        for (const auto &k : kept) {
            if (k.imageId == d.imageId && k.cls == d.cls &&
                data::iou(k.box, d.box) > iou_threshold) {
                suppressed = true;
                break;
            }
        }
        if (!suppressed)
            kept.push_back(d);
    }
    return kept;
}

} // namespace metrics
} // namespace mlperf
