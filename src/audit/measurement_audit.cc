#include "audit/measurement_audit.h"

#include <algorithm>
#include <vector>

#include "common/string_util.h"
#include "stats/percentile.h"

namespace mlperf {
namespace audit {

namespace {

/** Timeline entries sorted by issue time (completed queries only). */
std::vector<loadgen::QueryTiming>
completedByIssue(const loadgen::TestResult &result)
{
    std::vector<loadgen::QueryTiming> timeline;
    timeline.reserve(result.timeline.size());
    for (const auto &timing : result.timeline) {
        if (timing.completed != 0)
            timeline.push_back(timing);
    }
    std::sort(timeline.begin(), timeline.end(),
              [](const loadgen::QueryTiming &a,
                 const loadgen::QueryTiming &b) {
                  return a.issued < b.issued;
              });
    return timeline;
}

} // namespace

OmissionAnalysis
analyzeCoordinatedOmission(const loadgen::TestResult &result,
                           double tail_percentile,
                           double drift_tolerance,
                           double inflation_tolerance)
{
    OmissionAnalysis analysis;
    const auto timeline = completedByIssue(result);
    analysis.queries = timeline.size();
    if (timeline.empty())
        return analysis;

    std::vector<uint64_t> issued_latencies, corrected_latencies;
    std::vector<uint64_t> scheduled;
    issued_latencies.reserve(timeline.size());
    corrected_latencies.reserve(timeline.size());
    scheduled.reserve(timeline.size());
    uint64_t drift_sum = 0;
    for (const auto &timing : timeline) {
        const uint64_t drift = timing.issued >= timing.scheduled
                                   ? timing.issued - timing.scheduled
                                   : 0;
        drift_sum += drift;
        analysis.maxDriftNs = std::max(analysis.maxDriftNs, drift);
        issued_latencies.push_back(timing.completed - timing.issued);
        corrected_latencies.push_back(timing.completed -
                                      timing.scheduled);
        scheduled.push_back(timing.scheduled);
    }
    analysis.meanDriftNs = drift_sum / timeline.size();
    std::sort(scheduled.begin(), scheduled.end());
    if (timeline.size() > 1) {
        analysis.meanInterarrivalNs =
            (scheduled.back() - scheduled.front()) /
            (timeline.size() - 1);
    }
    analysis.issuedTailNs =
        stats::percentile(issued_latencies, tail_percentile);
    analysis.correctedTailNs =
        stats::percentile(corrected_latencies, tail_percentile);
    if (analysis.issuedTailNs > 0) {
        analysis.tailInflation =
            static_cast<double>(analysis.correctedTailNs) /
            static_cast<double>(analysis.issuedTailNs);
    }

    const bool drifting =
        analysis.meanInterarrivalNs > 0 &&
        static_cast<double>(analysis.meanDriftNs) >
            drift_tolerance *
                static_cast<double>(analysis.meanInterarrivalNs);
    const bool inflated =
        analysis.tailInflation > inflation_tolerance;
    analysis.flagged = drifting || inflated;
    return analysis;
}

WarmupAnalysis
analyzeWarmupContamination(const loadgen::TestResult &result,
                           double tail_percentile,
                           double warmup_fraction,
                           double shift_tolerance)
{
    WarmupAnalysis analysis;
    const auto timeline = completedByIssue(result);
    analysis.queries = timeline.size();
    if (timeline.size() < 2)
        return analysis;

    // The same latency reference as the scenario's own metric, so the
    // audit judges the number the report actually prints.
    const bool from_scheduled =
        result.scenario == loadgen::Scenario::Server ||
        result.scenario == loadgen::Scenario::TokenStream;
    std::vector<uint64_t> latencies;
    latencies.reserve(timeline.size());
    for (const auto &timing : timeline) {
        const sim::Tick reference =
            from_scheduled ? timing.scheduled : timing.issued;
        latencies.push_back(timing.completed - reference);
    }

    warmup_fraction = std::min(0.9, std::max(0.0, warmup_fraction));
    const size_t warmup = std::max<size_t>(
        1, static_cast<size_t>(warmup_fraction *
                               static_cast<double>(latencies.size())));
    analysis.warmupQueries = warmup;
    const std::vector<uint64_t> head(latencies.begin(),
                                     latencies.begin() +
                                         static_cast<int64_t>(warmup));
    const std::vector<uint64_t> tail(latencies.begin() +
                                         static_cast<int64_t>(warmup),
                                     latencies.end());
    analysis.fullTailNs = stats::percentile(latencies, tail_percentile);
    analysis.warmupTailNs = stats::percentile(head, tail_percentile);
    if (!tail.empty()) {
        analysis.steadyTailNs =
            stats::percentile(tail, tail_percentile);
    }
    if (analysis.steadyTailNs > 0) {
        analysis.tailShift =
            static_cast<double>(analysis.fullTailNs) /
            static_cast<double>(analysis.steadyTailNs);
    }
    analysis.flagged = analysis.tailShift > shift_tolerance;
    return analysis;
}

AuditVerdict
coordinatedOmissionTest(const Runner &runner,
                        loadgen::TestSettings settings,
                        double drift_tolerance,
                        double inflation_tolerance)
{
    AuditVerdict verdict;
    verdict.testName = "TEST06-CoordinatedOmission";

    settings.mode = loadgen::TestMode::PerformanceOnly;
    settings.recordTimeline = true;
    const loadgen::TestResult result = runner(settings);
    if (result.timeline.empty()) {
        verdict.pass = false;
        verdict.detail = "run recorded no timeline; cannot audit "
                         "issue-timestamp drift";
        return verdict;
    }

    const OmissionAnalysis analysis = analyzeCoordinatedOmission(
        result, settings.tailPercentile, drift_tolerance,
        inflation_tolerance);
    verdict.pass = !analysis.flagged;
    verdict.detail = strprintf(
        "issue drift mean %s / max %s against a %s mean interarrival; "
        "tail %s issued-ref vs %s corrected (inflation %.2fx, "
        "tolerance %.2fx)",
        formatDuration(analysis.meanDriftNs).c_str(),
        formatDuration(analysis.maxDriftNs).c_str(),
        formatDuration(analysis.meanInterarrivalNs).c_str(),
        formatDuration(analysis.issuedTailNs).c_str(),
        formatDuration(analysis.correctedTailNs).c_str(),
        analysis.tailInflation, inflation_tolerance);
    return verdict;
}

AuditVerdict
warmupContaminationTest(const Runner &runner,
                        loadgen::TestSettings settings,
                        double warmup_fraction, double shift_tolerance)
{
    AuditVerdict verdict;
    verdict.testName = "TEST07-WarmupContamination";

    settings.mode = loadgen::TestMode::PerformanceOnly;
    settings.recordTimeline = true;
    const loadgen::TestResult result = runner(settings);
    if (result.timeline.empty()) {
        verdict.pass = false;
        verdict.detail = "run recorded no timeline; cannot audit "
                         "warm-up contamination";
        return verdict;
    }

    const WarmupAnalysis analysis = analyzeWarmupContamination(
        result, settings.tailPercentile, warmup_fraction,
        shift_tolerance);
    verdict.pass = !analysis.flagged;
    verdict.detail = strprintf(
        "full-run tail %s vs steady-state tail %s after dropping "
        "%llu warm-up queries (shift %.2fx, tolerance %.2fx)",
        formatDuration(analysis.fullTailNs).c_str(),
        formatDuration(analysis.steadyTailNs).c_str(),
        static_cast<unsigned long long>(analysis.warmupQueries),
        analysis.tailShift, shift_tolerance);
    return verdict;
}

} // namespace audit
} // namespace mlperf
