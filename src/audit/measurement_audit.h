/**
 * @file
 * Measurement audits: do the *reported latencies* mean what they
 * claim? (TEST0x-style extensions to the Sec. V-B suite, after the
 * LLM measurement-bias paper in PAPERS.md.)
 *
 * TEST06 coordinated omission: a closed-loop harness only issues the
 * next query after the previous one returns, so every stall in the
 * SUT silently deletes the queries that *would* have arrived during
 * the stall — the reported tail measures the survivors. The detector
 * compares each query's issued timestamp against its scheduled
 * arrival tick: drift that grows with backpressure is the smoking
 * gun, and the corrected percentile (completed - scheduled) is what
 * the tail would have been had the load stayed open-loop.
 *
 * TEST07 warm-up contamination: cold caches, first-touch page faults,
 * and JIT'd dispatch make a run's earliest latencies unrepresentative.
 * If dropping the warm-up window moves the reported tail by more than
 * the tolerance, the run length is hiding a warm-up effect inside the
 * steady-state claim.
 *
 * Both audits run through the same Runner interface as TEST01/04/05,
 * so they apply unchanged to simulated and real SUTs. The analysis
 * functions are pure (TestResult in, verdict data out) and exposed
 * for direct unit testing on synthetic timelines.
 */

#ifndef MLPERF_AUDIT_MEASUREMENT_AUDIT_H
#define MLPERF_AUDIT_MEASUREMENT_AUDIT_H

#include <cstdint>

#include "audit/audit.h"
#include "loadgen/results.h"
#include "loadgen/test_settings.h"

namespace mlperf {
namespace audit {

/** What analyzeCoordinatedOmission found in one run's timeline. */
struct OmissionAnalysis
{
    uint64_t queries = 0;
    /** issued - scheduled drift over the timeline. */
    uint64_t maxDriftNs = 0;
    uint64_t meanDriftNs = 0;
    /** Mean gap between consecutive scheduled arrivals. */
    uint64_t meanInterarrivalNs = 0;
    /** Tail of (completed - issued): the omission-blind number. */
    uint64_t issuedTailNs = 0;
    /** Tail of (completed - scheduled): the corrected number. */
    uint64_t correctedTailNs = 0;
    /** correctedTail / issuedTail (1.0 when no inflation). */
    double tailInflation = 1.0;
    bool flagged = false;
};

/**
 * Inspect a recorded timeline for coordinated omission. Flags when
 * the mean issue drift exceeds @p drift_tolerance mean interarrival
 * gaps (issue timestamps are sliding under backpressure) or the
 * corrected tail exceeds @p inflation_tolerance x the issued-
 * referenced tail. Requires TestSettings::recordTimeline.
 */
OmissionAnalysis analyzeCoordinatedOmission(
    const loadgen::TestResult &result, double tail_percentile,
    double drift_tolerance = 0.5, double inflation_tolerance = 1.10);

/** What analyzeWarmupContamination found in one run's timeline. */
struct WarmupAnalysis
{
    uint64_t queries = 0;
    uint64_t warmupQueries = 0;  //!< size of the analyzed window
    /** Tail over the whole run — the number a report would print. */
    uint64_t fullTailNs = 0;
    /** Tail excluding the warm-up window. */
    uint64_t steadyTailNs = 0;
    /** Tail within the warm-up window alone. */
    uint64_t warmupTailNs = 0;
    /** fullTail / steadyTail (> 1 when early samples shift the tail). */
    double tailShift = 1.0;
    bool flagged = false;
};

/**
 * Split the timeline (in issue order) into the first
 * @p warmup_fraction of queries and the remainder; flags when the
 * full-run tail exceeds @p shift_tolerance x the steady-state tail,
 * i.e. the reported tail is contaminated by warm-up latencies.
 */
WarmupAnalysis analyzeWarmupContamination(
    const loadgen::TestResult &result, double tail_percentile,
    double warmup_fraction = 0.10, double shift_tolerance = 1.05);

/**
 * TEST06: run performance mode with the timeline recorded and apply
 * analyzeCoordinatedOmission. An open-loop harness passes by
 * construction; a closed-loop one is flagged as soon as the SUT
 * cannot keep up.
 */
AuditVerdict coordinatedOmissionTest(const Runner &runner,
                                     loadgen::TestSettings settings,
                                     double drift_tolerance = 0.5,
                                     double inflation_tolerance = 1.10);

/**
 * TEST07: run performance mode with the timeline recorded and apply
 * analyzeWarmupContamination.
 */
AuditVerdict warmupContaminationTest(const Runner &runner,
                                     loadgen::TestSettings settings,
                                     double warmup_fraction = 0.10,
                                     double shift_tolerance = 1.05);

} // namespace audit
} // namespace mlperf

#endif // MLPERF_AUDIT_MEASUREMENT_AUDIT_H
