#include "audit/audit.h"

#include <cmath>
#include <map>
#include <vector>

#include "audit/measurement_audit.h"
#include "common/string_util.h"

namespace mlperf {
namespace audit {

AuditVerdict
accuracyVerificationTest(const Runner &runner,
                         loadgen::TestSettings settings,
                         double log_fraction)
{
    AuditVerdict verdict;
    verdict.testName = "TEST01-AccuracyVerification";

    // Performance run with sampled response logging.
    loadgen::TestSettings perf = settings;
    perf.mode = loadgen::TestMode::PerformanceOnly;
    perf.accuracyLogFraction = log_fraction;
    const loadgen::TestResult perf_result = runner(perf);

    if (perf_result.accuracyLog.empty()) {
        verdict.pass = false;
        verdict.detail = "no responses were logged in performance "
                         "mode; cannot verify accuracy";
        return verdict;
    }

    // Reference accuracy run.
    loadgen::TestSettings acc = settings;
    acc.mode = loadgen::TestMode::AccuracyOnly;
    const loadgen::TestResult acc_result = runner(acc);

    std::map<loadgen::QuerySampleIndex, std::string> reference;
    for (const auto &record : acc_result.accuracyLog)
        reference[record.sampleIndex] = record.data;

    uint64_t checked = 0, mismatched = 0;
    for (const auto &record : perf_result.accuracyLog) {
        const auto it = reference.find(record.sampleIndex);
        if (it == reference.end())
            continue;  // sample outside the accuracy sweep (unlikely)
        ++checked;
        if (record.data != it->second)
            ++mismatched;
    }
    verdict.pass = checked > 0 && mismatched == 0;
    verdict.detail = strprintf(
        "checked %llu sampled responses against the accuracy run; "
        "%llu mismatched",
        static_cast<unsigned long long>(checked),
        static_cast<unsigned long long>(mismatched));
    return verdict;
}

AuditVerdict
cachingDetectionTest(const Runner &runner,
                     loadgen::TestSettings settings, double tolerance)
{
    AuditVerdict verdict;
    verdict.testName = "TEST04-CachingDetection";

    loadgen::TestSettings unique = settings;
    unique.mode = loadgen::TestMode::PerformanceOnly;
    unique.sampleIndexMode =
        loadgen::TestSettings::SampleIndexMode::UniqueSweep;
    const loadgen::TestResult unique_result = runner(unique);

    loadgen::TestSettings duplicate = settings;
    duplicate.mode = loadgen::TestMode::PerformanceOnly;
    duplicate.sampleIndexMode =
        loadgen::TestSettings::SampleIndexMode::SameIndex;
    const loadgen::TestResult duplicate_result = runner(duplicate);

    if (unique_result.completedQps <= 0.0) {
        verdict.pass = false;
        verdict.detail = "unique-index run produced no throughput";
        return verdict;
    }
    const double speedup =
        duplicate_result.completedQps / unique_result.completedQps;
    verdict.pass = speedup <= tolerance;
    verdict.detail = strprintf(
        "duplicate-index throughput is %.3fx the unique-index "
        "throughput (tolerance %.2fx)",
        speedup, tolerance);
    return verdict;
}

AuditVerdict
alternateSeedTest(const Runner &runner, loadgen::TestSettings settings,
                  uint64_t alternate_seed, double tolerance)
{
    AuditVerdict verdict;
    verdict.testName = "TEST05-AlternateRandomSeed";

    loadgen::TestSettings official = settings;
    official.mode = loadgen::TestMode::PerformanceOnly;
    const loadgen::TestResult official_result = runner(official);

    loadgen::TestSettings alternate = official;
    alternate.sampleIndexSeed = alternate_seed;
    alternate.scheduleSeed = alternate_seed ^ 0xFFFF;
    const loadgen::TestResult alternate_result = runner(alternate);

    if (official_result.completedQps <= 0.0) {
        verdict.pass = false;
        verdict.detail = "official-seed run produced no throughput";
        return verdict;
    }
    const double delta =
        std::abs(alternate_result.completedQps -
                 official_result.completedQps) /
        official_result.completedQps;
    verdict.pass = delta <= tolerance;
    verdict.detail = strprintf(
        "alternate-seed throughput differs by %.2f%% "
        "(tolerance %.0f%%)",
        100.0 * delta, 100.0 * tolerance);
    return verdict;
}

AuditVerdict
customDatasetTest(
    const Runner &official, const Runner &custom,
    const std::function<double(const loadgen::TestResult &)>
        &official_quality,
    const std::function<double(const loadgen::TestResult &)>
        &custom_quality,
    loadgen::TestSettings settings, double quality_tolerance,
    double perf_tolerance)
{
    AuditVerdict verdict;
    verdict.testName = "CustomDataset";

    // Quality on both datasets via accuracy-mode runs.
    loadgen::TestSettings acc = settings;
    acc.mode = loadgen::TestMode::AccuracyOnly;
    const double q_official = official_quality(official(acc));
    const double q_custom = custom_quality(custom(acc));

    // Performance on both datasets.
    loadgen::TestSettings perf = settings;
    perf.mode = loadgen::TestMode::PerformanceOnly;
    const loadgen::TestResult perf_official = official(perf);
    const loadgen::TestResult perf_custom = custom(perf);

    if (q_official <= 0.0 || perf_official.completedQps <= 0.0) {
        verdict.pass = false;
        verdict.detail = "reference run produced no quality or "
                         "throughput to compare against";
        return verdict;
    }
    const double quality_drop = 1.0 - q_custom / q_official;
    const double perf_delta =
        std::abs(perf_custom.completedQps -
                 perf_official.completedQps) /
        perf_official.completedQps;
    verdict.pass = quality_drop <= quality_tolerance &&
                   perf_delta <= perf_tolerance;
    verdict.detail = strprintf(
        "custom-data quality %.4f vs reference %.4f (drop %.1f%%, "
        "tolerance %.0f%%); throughput delta %.1f%% (tolerance "
        "%.0f%%)",
        q_custom, q_official, 100.0 * quality_drop,
        100.0 * quality_tolerance, 100.0 * perf_delta,
        100.0 * perf_tolerance);
    return verdict;
}

AuditVerdict
runAllAudits(const Runner &runner,
             const loadgen::TestSettings &settings)
{
    AuditVerdict combined;
    combined.testName = "AllAudits";
    combined.pass = true;
    std::vector<AuditVerdict> verdicts = {
        accuracyVerificationTest(runner, settings),
        cachingDetectionTest(runner, settings),
        alternateSeedTest(runner, settings)};
    // The measurement audits only have teeth where latencies are
    // referenced against a schedule the SUT does not control. For
    // TokenStream the corrected/issued pair is computed on the TTFT
    // series, so the same drift check audits the streaming metric.
    if (settings.scenario == loadgen::Scenario::Server ||
        settings.scenario == loadgen::Scenario::TokenStream) {
        verdicts.push_back(coordinatedOmissionTest(runner, settings));
        verdicts.push_back(warmupContaminationTest(runner, settings));
    }
    for (const AuditVerdict &verdict : verdicts) {
        combined.pass = combined.pass && verdict.pass;
        if (!combined.detail.empty())
            combined.detail += "; ";
        combined.detail += verdict.testName + ": " +
                           (verdict.pass ? "PASS" : "FAIL") + " (" +
                           verdict.detail + ")";
    }
    return combined;
}

} // namespace audit
} // namespace mlperf
