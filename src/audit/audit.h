/**
 * @file
 * Result-review validation suite (paper Sec. V-B).
 *
 * These are the audit experiments that peer review runs against a
 * submission to detect rule violations without access to proprietary
 * SUT internals:
 *
 *  - TEST01 accuracy verification: sample-log responses during a
 *    performance run and check them against the accuracy run.
 *  - TEST04 on-the-fly caching detection: compare performance with
 *    unique vs duplicate sample indices.
 *  - TEST05 alternate-random-seed testing: replace the official seeds
 *    and compare performance.
 *
 * Each test drives the submission through a caller-provided runner so
 * the same audits apply to simulated and real SUTs.
 */

#ifndef MLPERF_AUDIT_AUDIT_H
#define MLPERF_AUDIT_AUDIT_H

#include <functional>
#include <string>

#include "loadgen/results.h"
#include "loadgen/test_settings.h"

namespace mlperf {
namespace audit {

/**
 * Runs one LoadGen test for the submission under audit. Must build a
 * fresh executor/SUT for every call so runs are independent.
 */
using Runner =
    std::function<loadgen::TestResult(const loadgen::TestSettings &)>;

struct AuditVerdict
{
    bool pass = false;
    std::string testName;
    std::string detail;  //!< human-readable explanation
};

/**
 * TEST01: run performance mode with a fraction of responses logged
 * and verify each logged result matches the accuracy-mode result for
 * the same sample index. Requires a deterministic SUT (MLPerf rules
 * require run-to-run consistent results for the same sample).
 */
AuditVerdict accuracyVerificationTest(const Runner &runner,
                                      loadgen::TestSettings settings,
                                      double log_fraction = 0.10);

/**
 * TEST04: measure performance with unique sample indices, then with a
 * single repeated index. A caching SUT runs significantly faster on
 * duplicates. @p tolerance is the allowed speedup ratio (default:
 * duplicates may be at most 10% faster).
 */
AuditVerdict cachingDetectionTest(const Runner &runner,
                                  loadgen::TestSettings settings,
                                  double tolerance = 1.10);

/**
 * TEST05: re-run with alternate schedule/sample seeds; performance
 * must stay within @p tolerance (relative) of the official-seed run,
 * catching optimizations tuned to the fixed seed.
 */
AuditVerdict alternateSeedTest(const Runner &runner,
                               loadgen::TestSettings settings,
                               uint64_t alternate_seed = 0xA17E55EE,
                               double tolerance = 0.10);

/**
 * Custom-dataset testing (Sec. V-B: "we use custom data sets to
 * detect result caching ... replacing the reference data set with a
 * custom data set" and comparing quality and performance).
 *
 * @param official runner bound to the reference dataset
 * @param custom runner bound to a custom dataset of the same shape
 * @param quality_of evaluates task quality from a finished accuracy
 *        run (the accuracy script, partially applied to the matching
 *        dataset)
 * @param quality_tolerance max allowed relative quality drop on the
 *        custom data (a memorizing SUT collapses here)
 * @param perf_tolerance max allowed relative throughput difference
 */
AuditVerdict customDatasetTest(
    const Runner &official, const Runner &custom,
    const std::function<double(const loadgen::TestResult &)>
        &official_quality,
    const std::function<double(const loadgen::TestResult &)>
        &custom_quality,
    loadgen::TestSettings settings, double quality_tolerance = 0.05,
    double perf_tolerance = 0.10);

/** Run all audits and AND the verdicts (details concatenated). */
AuditVerdict runAllAudits(const Runner &runner,
                          const loadgen::TestSettings &settings);

} // namespace audit
} // namespace mlperf

#endif // MLPERF_AUDIT_AUDIT_H
