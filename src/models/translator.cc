#include "models/translator.h"

#include <cassert>
#include <cmath>

#include "metrics/bleu.h"
#include "nn/activations.h"
#include "nn/init.h"
#include "nn/layers.h"

namespace mlperf {
namespace models {

using tensor::Shape;
using tensor::Tensor;

namespace {

/** Unit-variance random embedding table [vocab, dim]. */
Tensor
makeEmbeddingTable(int64_t vocab, int64_t dim, Rng &rng)
{
    Tensor t(Shape{vocab, dim});
    const float scale = 1.0f / std::sqrt(static_cast<float>(dim));
    for (int64_t i = 0; i < t.numel(); ++i)
        t[i] = scale * static_cast<float>(rng.nextGaussian());
    // Normalize each row to unit length so inner products are a clean
    // match signal.
    for (int64_t v = 0; v < vocab; ++v) {
        double norm = 0.0;
        for (int64_t d = 0; d < dim; ++d)
            norm += static_cast<double>(t.at(v, d)) * t.at(v, d);
        const float inv = static_cast<float>(1.0 / std::sqrt(norm));
        for (int64_t d = 0; d < dim; ++d)
            t.at(v, d) *= inv;
    }
    return t;
}

nn::LSTMCell
makeCell(int64_t input, int64_t hidden, Rng &rng)
{
    return nn::LSTMCell(
        nn::heNormal(Shape{4 * hidden, input}, input, rng),
        nn::heNormal(Shape{4 * hidden, hidden}, hidden, rng),
        nn::zeroBias(4 * hidden));
}

} // namespace

Translator::Translator(const TranslatorArch &arch,
                       const data::TranslationDataset &dataset)
    : arch_(arch),
      vocab_(dataset.config().vocabSize),
      embed_([&] {
          Rng rng(arch.weightSeed);
          return nn::Embedding(
              makeEmbeddingTable(vocab_, arch.embedDim, rng));
      }()),
      posEnc_([&] {
          Rng rng(arch.weightSeed + 1);
          return makeEmbeddingTable(dataset.config().maxLength + 2,
                                    arch.embedDim, rng);
      }()),
      encoderCell_([&] {
          Rng rng(arch.weightSeed + 2);
          return makeCell(arch.embedDim, arch.embedDim, rng);
      }()),
      decoderCell_([&] {
          Rng rng(arch.weightSeed + 3);
          return makeCell(arch.embedDim, arch.embedDim, rng);
      }()),
      outputProj_("gnmt-output-projection"),
      maxSteps_(dataset.config().maxLength + 2)
{
    // Output projection: row v is the embedding of the source word
    // whose lexicon image is v, so logits peak at the correct target.
    Tensor w(Shape{vocab_, arch_.embedDim});
    std::vector<float> bias(static_cast<size_t>(vocab_), 0.0f);
    std::vector<int64_t> preimage(static_cast<size_t>(vocab_), -1);
    for (int64_t s = data::kFirstWordToken; s < vocab_; ++s)
        preimage[static_cast<size_t>(dataset.translateWord(s))] = s;
    preimage[data::kEosToken] = data::kEosToken;
    Tensor table = embed_.forward([&] {
        std::vector<int64_t> all(static_cast<size_t>(vocab_));
        for (int64_t v = 0; v < vocab_; ++v)
            all[static_cast<size_t>(v)] = v;
        return all;
    }());
    for (int64_t v = 0; v < vocab_; ++v) {
        const int64_t pre = preimage[static_cast<size_t>(v)];
        if (pre < 0) {
            // PAD/BOS are never valid outputs.
            bias[static_cast<size_t>(v)] = -100.0f;
            continue;
        }
        for (int64_t d = 0; d < arch_.embedDim; ++d)
            w.at(v, d) = table.at(pre, d);
    }
    outputProj_.add(std::make_unique<nn::DenseLayer>(
        std::move(w), std::move(bias), /*fuse_relu=*/false));

    rebuildCompiled();
}

void
Translator::rebuildCompiled()
{
    compiledProj_ = std::make_unique<nn::CompiledModel>(
        outputProj_, Shape{arch_.embedDim});
}

Translator
Translator::gnmtProxy(const data::TranslationDataset &dataset)
{
    return Translator(TranslatorArch{}, dataset);
}

std::vector<int64_t>
Translator::translateInternal(const std::vector<int64_t> &source,
                              std::vector<Tensor> *contexts) const
{
    assert(!source.empty());
    const int64_t steps = std::min(
        static_cast<int64_t>(source.size()), maxSteps_);
    const int64_t dim = arch_.embedDim;

    // ---- Encoder: embedding + position + mixed-in LSTM state.
    Tensor enc_states(Shape{steps, dim});
    auto enc_state = encoderCell_.initialState(1);
    for (int64_t t = 0; t < steps; ++t) {
        const Tensor e = embed_.forward(
            {source[static_cast<size_t>(t)]});
        encoderCell_.step(e, enc_state);
        for (int64_t d = 0; d < dim; ++d) {
            enc_states.at(t, d) =
                e[d] + posEnc_.at(t, d) +
                static_cast<float>(arch_.lstmMix) * enc_state.h[d];
        }
    }

    // ---- Decoder: position-queried attention + output projection.
    std::vector<int64_t> output;
    auto dec_state = decoderCell_.initialState(1);
    int64_t prev = data::kBosToken;
    for (int64_t t = 0; t < steps; ++t) {
        const Tensor pe = embed_.forward({prev});
        decoderCell_.step(pe, dec_state);
        Tensor query(Shape{1, dim});
        for (int64_t d = 0; d < dim; ++d) {
            query[d] = static_cast<float>(arch_.queryGain) *
                           posEnc_.at(t, d) +
                       static_cast<float>(arch_.lstmMix) *
                           dec_state.h[d];
        }
        Tensor ctx = nn::dotAttention(enc_states, query);
        if (contexts)
            contexts->push_back(ctx);
        const Tensor logits =
            nn::ExecutionInstance::thread().forward(*compiledProj_,
                                                    ctx);
        const int64_t token = nn::argmaxRows(logits)[0];
        output.push_back(token);
        if (token == data::kEosToken)
            break;
        prev = token;
    }
    return output;
}

std::vector<int64_t>
Translator::translate(const std::vector<int64_t> &source) const
{
    return translateInternal(source, nullptr);
}

double
Translator::evaluateBleu(const data::TranslationDataset &dataset,
                         int64_t count) const
{
    assert(count <= dataset.size());
    std::vector<metrics::TokenSeq> hyps, refs;
    hyps.reserve(static_cast<size_t>(count));
    refs.reserve(static_cast<size_t>(count));
    for (int64_t i = 0; i < count; ++i) {
        hyps.push_back(translate(dataset.source(i)));
        refs.push_back(dataset.reference(i));
    }
    return metrics::bleuScore(hyps, refs);
}

int
Translator::quantize(const data::TranslationDataset &dataset,
                     const quant::QuantizeOptions &options)
{
    // Calibrate the projection on attention contexts from the fixed
    // calibration sentences.
    std::vector<Tensor> contexts;
    for (const auto &sentence : dataset.calibrationSet())
        translateInternal(sentence, &contexts);
    // The projection is the one (and last) layer of this submodel and
    // is precisely the stage being quantized, so the mixed-precision
    // keep-last default does not apply here.
    quant::QuantizeOptions proj_options = options;
    proj_options.keepLastLayerFp32 = false;
    const int swapped =
        quant::quantizeSequential(outputProj_, contexts, proj_options);
    rebuildCompiled();  // the graph referenced the swapped-out layer
    return swapped;
}

uint64_t
Translator::paramCount() const
{
    return embed_.paramCount() +
           static_cast<uint64_t>(posEnc_.numel()) +
           encoderCell_.paramCount() + decoderCell_.paramCount() +
           outputProj_.paramCount();
}

uint64_t
Translator::flopsPerSentence(int64_t source_length) const
{
    const uint64_t dim = static_cast<uint64_t>(arch_.embedDim);
    const uint64_t len = static_cast<uint64_t>(source_length);
    const uint64_t lstm =
        encoderCell_.flopsPerStep() + decoderCell_.flopsPerStep();
    const uint64_t attention = 2 * len * dim * 2;  // scores + blend
    const uint64_t projection =
        2 * static_cast<uint64_t>(vocab_) * dim;
    return len * (lstm + attention + projection);
}

} // namespace models
} // namespace mlperf
