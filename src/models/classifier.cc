#include "models/classifier.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "nn/activations.h"
#include "nn/init.h"
#include "nn/layers.h"

namespace mlperf {
namespace models {

using tensor::Conv2dParams;
using tensor::Shape;
using tensor::Tensor;

namespace {

std::unique_ptr<nn::Conv2dLayer>
conv(int64_t in_c, int64_t out_c, int64_t k, int64_t stride, bool relu,
     Rng &rng)
{
    Conv2dParams p{k, k, stride, stride, k / 2, k / 2};
    return std::make_unique<nn::Conv2dLayer>(
        nn::heNormal(Shape{out_c, in_c, k, k}, in_c * k * k, rng),
        nn::zeroBias(out_c), p, relu);
}

std::unique_ptr<nn::DepthwiseConv2dLayer>
dwconv(int64_t channels, int64_t stride, double gain_spread, Rng &rng)
{
    Conv2dParams p{3, 3, stride, stride, 1, 1};
    // Identity-biased init: a centre tap plus random perturbation.
    // Pure random depthwise filters scramble the spatial structure the
    // closed-form head depends on; trained depthwise filters are
    // likewise dominated by smooth low-pass/identity-like shapes.
    tensor::Tensor w = nn::heNormal(Shape{channels, 1, 3, 3}, 9, rng);
    for (int64_t c = 0; c < channels; ++c)
        w[c * 9 + 4] += 1.0f;
    (void)gain_spread;  // applied by the caller together with the
                        // compensating pointwise scale
    return std::make_unique<nn::DepthwiseConv2dLayer>(
        std::move(w), nn::zeroBias(channels), p, /*fuse_relu=*/false);
}

/**
 * Stage widths/strides: width doubles (with stride 2) on every odd
 * stage, so a 3-block net runs W, 2W(s2), 2W — loosely following the
 * halve-resolution-double-width convention of ResNet/MobileNet.
 */
struct StagePlan
{
    int64_t inWidth;
    int64_t outWidth;
    int64_t stride;
};

std::vector<StagePlan>
planStages(int64_t stem_width, int64_t blocks)
{
    std::vector<StagePlan> plan;
    int64_t width = stem_width;
    for (int64_t i = 0; i < blocks; ++i) {
        if (i % 2 == 1)
            plan.push_back({width, width * 2, 2});
        else
            plan.push_back({width, width, 1});
        width = plan.back().outWidth;
    }
    return plan;
}

} // namespace

ImageClassifier::ImageClassifier(
    const ClassifierArch &arch,
    const data::ClassificationDataset &dataset)
    : network_(arch.name),
      inputShape_({1, dataset.config().channels,
                   dataset.config().height, dataset.config().width})
{
    Rng rng(arch.weightSeed);
    const int64_t in_c = dataset.config().channels;

    // Backbone.
    network_.add(conv(in_c, arch.stemWidth, 3, 1, true, rng));
    network_.add(std::make_unique<nn::MaxPoolLayer>(2, 2));
    for (const auto &stage : planStages(arch.stemWidth, arch.blocks)) {
        if (arch.depthwise) {
            // MobileNet block: depthwise (carries the stride) then
            // pointwise 1x1 expansion. The per-channel gains g_c on
            // the depthwise filters are exactly undone by dividing the
            // pointwise weights, so the FP32 function is independent
            // of dwGainSpread — but the quantizer sees BN-fold-style
            // per-channel weight/activation range spread, reproducing
            // MobileNet's INT8 sensitivity (Sec. III-B).
            std::vector<float> gains(
                static_cast<size_t>(stage.inWidth));
            for (auto &g : gains) {
                g = static_cast<float>(std::pow(
                    arch.dwGainSpread, rng.nextDouble() - 0.5));
            }
            auto dw = dwconv(stage.inWidth, stage.stride,
                             arch.dwGainSpread, rng);
            auto pw = conv(stage.inWidth, stage.outWidth, 1, 1, true,
                           rng);
            {
                tensor::Tensor dww = dw->weight();
                for (int64_t c = 0; c < stage.inWidth; ++c) {
                    for (int64_t i = 0; i < 9; ++i)
                        dww[c * 9 + i] *=
                            gains[static_cast<size_t>(c)];
                }
                dw = std::make_unique<nn::DepthwiseConv2dLayer>(
                    std::move(dww), nn::zeroBias(stage.inWidth),
                    dw->params(), /*fuse_relu=*/false);
                tensor::Tensor pww = pw->weight();
                for (int64_t o = 0; o < stage.outWidth; ++o) {
                    for (int64_t c = 0; c < stage.inWidth; ++c) {
                        pww[o * stage.inWidth + c] /=
                            gains[static_cast<size_t>(c)];
                    }
                }
                pw = std::make_unique<nn::Conv2dLayer>(
                    std::move(pww), nn::zeroBias(stage.outWidth),
                    pw->params(), /*fuse_relu=*/true);
            }
            network_.add(std::move(dw));
            network_.add(std::move(pw));
        } else {
            // ResNet v1.5 block: stride on the first 3x3; projection
            // on the skip when shape changes.
            auto c1 = conv(stage.inWidth, stage.outWidth, 3,
                           stage.stride, true, rng);
            auto c2 = conv(stage.outWidth, stage.outWidth, 3, 1,
                           /*relu=*/false, rng);
            std::unique_ptr<nn::Conv2dLayer> proj;
            if (stage.stride != 1 || stage.inWidth != stage.outWidth) {
                proj = conv(stage.inWidth, stage.outWidth, 1,
                            stage.stride, /*relu=*/false, rng);
            }
            network_.add(std::make_unique<nn::ResidualBlock>(
                std::move(c1), std::move(c2), std::move(proj)));
        }
    }
    // Coarse spatial pooling (2x2 regions) rather than a full global
    // average: the class prototypes are spatial patterns, so keeping
    // coarse layout information is what makes the closed-form head
    // separable.
    network_.add(std::make_unique<nn::AvgPoolLayer>(2, 2));
    network_.add(std::make_unique<nn::FlattenLayer>());

    // Closed-form head: diagonal-LDA over backbone features. Class
    // means and per-feature variances are estimated from the training
    // stream; argmax_c sum_f mu_cf x_f / var_f - ||mu_c||_var^2 / 2 is
    // the Gaussian nearest-class-mean rule with whitened features,
    // which makes FP32 accuracy invariant to per-channel gain scale.
    const auto &cfg = dataset.config();
    const int64_t feat_dim = network_.outputShape(inputShape_).dim(1);
    std::vector<std::vector<double>> mean(
        static_cast<size_t>(cfg.numClasses),
        std::vector<double>(static_cast<size_t>(feat_dim), 0.0));
    std::vector<double> var(static_cast<size_t>(feat_dim), 0.0);
    double grand_count = 0.0;
    std::vector<double> grand_mean(static_cast<size_t>(feat_dim), 0.0);
    for (int64_t c = 0; c < cfg.numClasses; ++c) {
        for (int64_t j = 0; j < cfg.trainPerClass; ++j) {
            const Tensor feat =
                network_.forward(dataset.trainImage(c, j));
            for (int64_t f = 0; f < feat_dim; ++f) {
                const double v = feat[f];
                mean[static_cast<size_t>(c)][static_cast<size_t>(f)] +=
                    v;
                grand_mean[static_cast<size_t>(f)] += v;
                var[static_cast<size_t>(f)] += v * v;
                grand_count += f == 0 ? 1.0 : 0.0;
            }
        }
    }
    for (int64_t f = 0; f < feat_dim; ++f) {
        const double m = grand_mean[static_cast<size_t>(f)] /
                         grand_count;
        var[static_cast<size_t>(f)] =
            var[static_cast<size_t>(f)] / grand_count - m * m + 1e-6;
    }

    Tensor head_w(Shape{cfg.numClasses, feat_dim});
    std::vector<float> head_b(static_cast<size_t>(cfg.numClasses));
    for (int64_t c = 0; c < cfg.numClasses; ++c) {
        double norm_sq = 0.0;
        for (int64_t f = 0; f < feat_dim; ++f) {
            const double m =
                mean[static_cast<size_t>(c)][static_cast<size_t>(f)] /
                static_cast<double>(cfg.trainPerClass);
            const double w = m / var[static_cast<size_t>(f)];
            head_w.at(c, f) = static_cast<float>(w);
            norm_sq += m * w;
        }
        head_b[static_cast<size_t>(c)] =
            static_cast<float>(-0.5 * norm_sq);
    }
    network_.add(std::make_unique<nn::DenseLayer>(
        std::move(head_w), std::move(head_b), /*fuse_relu=*/false));

    rebuildCompiled();
}

void
ImageClassifier::rebuildCompiled()
{
    tensor::Shape sample{inputShape_.dim(1), inputShape_.dim(2),
                         inputShape_.dim(3)};
    compiled_ = std::make_unique<nn::CompiledModel>(network_,
                                                    std::move(sample));
}

ImageClassifier
ImageClassifier::resnet50Proxy(const data::ClassificationDataset &dataset)
{
    ClassifierArch arch;
    arch.name = "resnet50-v1.5-proxy";
    arch.stemWidth = 16;
    arch.blocks = 4;
    arch.depthwise = false;
    arch.weightSeed = 0x5E5E50;
    return ImageClassifier(arch, dataset);
}

ImageClassifier
ImageClassifier::mobilenetProxy(const data::ClassificationDataset &dataset)
{
    ClassifierArch arch;
    arch.name = "mobilenet-v1-proxy";
    arch.stemWidth = 16;
    arch.blocks = 4;
    arch.depthwise = true;
    arch.dwGainSpread = 1.0;   // quantization-friendly reference weights
    arch.weightSeed = 0x2222;
    return ImageClassifier(arch, dataset);
}

ImageClassifier
ImageClassifier::mobilenetProxyNaive(
    const data::ClassificationDataset &dataset)
{
    ClassifierArch arch;
    arch.name = "mobilenet-v1-proxy-naive";
    arch.stemWidth = 16;
    arch.blocks = 4;
    arch.depthwise = true;
    arch.dwGainSpread = 50.0;  // BN-fold-style per-channel spread
    arch.weightSeed = 0x2222;
    return ImageClassifier(arch, dataset);
}

int64_t
ImageClassifier::classify(const Tensor &image) const
{
    return classifyBatch(image)[0];
}

std::vector<int64_t>
ImageClassifier::classifyBatch(const Tensor &batch) const
{
    const int64_t n = batch.shape().dim(0);
    auto &instance = nn::ExecutionInstance::thread();
    float *staged = instance.stageInput(*compiled_, n);
    std::copy(batch.data(), batch.data() + batch.numel(), staged);
    const float *logits = instance.run(*compiled_, n);
    const nn::Plan &plan = compiled_->planFor(n);
    return nn::argmaxRows(logits, n, plan.outputNumel / n);
}

std::vector<int64_t>
ImageClassifier::classifyBatch(
    const std::vector<const Tensor *> &images) const
{
    const int64_t n = static_cast<int64_t>(images.size());
    assert(n > 0);
    auto &instance = nn::ExecutionInstance::thread();
    float *staged = instance.stageInput(*compiled_, n);
    const int64_t sample_numel = images[0]->numel();
    for (int64_t i = 0; i < n; ++i) {
        const Tensor &img = *images[static_cast<size_t>(i)];
        assert(img.numel() == sample_numel);
        std::copy(img.data(), img.data() + sample_numel,
                  staged + i * sample_numel);
    }
    const float *logits = instance.run(*compiled_, n);
    const nn::Plan &plan = compiled_->planFor(n);
    return nn::argmaxRows(logits, n, plan.outputNumel / n);
}

double
ImageClassifier::evaluateAccuracy(
    const data::ClassificationDataset &dataset, int64_t count) const
{
    assert(count <= dataset.size());
    int64_t correct = 0;
    for (int64_t i = 0; i < count; ++i) {
        if (classify(dataset.image(i)) == dataset.label(i))
            ++correct;
    }
    return static_cast<double>(correct) / static_cast<double>(count);
}

int
ImageClassifier::quantize(const data::ClassificationDataset &dataset,
                          const quant::QuantizeOptions &options)
{
    const int swapped = quant::quantizeSequential(
        network_, dataset.calibrationSet(), options);
    // The graph holds non-owning pointers into network_'s layers, so
    // any swap invalidates it wholesale; re-lower from scratch.
    rebuildCompiled();
    return swapped;
}

uint64_t
ImageClassifier::flopsPerInput() const
{
    return network_.flops(inputShape_);
}

} // namespace models
} // namespace mlperf
