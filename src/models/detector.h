/**
 * @file
 * Object-detector proxy models (SSD-ResNet-34 and SSD-MobileNet-v1
 * stand-ins).
 *
 * The detector is a genuine single-shot pipeline on the NN substrate:
 * an optional denoising stem, a convolutional detection head whose
 * filters are the class prototypes (matched filtering — the
 * closed-form analogue of a trained SSD head), local-maximum peak
 * extraction, and class-aware NMS. The heavy variant runs at full
 * resolution with a denoising stem; the light variant runs on a 2x
 * downsampled image, trading mAP for a fraction of the FLOPs, exactly
 * the heavy/light split of paper Table I.
 */

#ifndef MLPERF_MODELS_DETECTOR_H
#define MLPERF_MODELS_DETECTOR_H

#include <string>
#include <vector>

#include "data/detection.h"
#include "metrics/map.h"
#include "nn/plan.h"
#include "nn/sequential.h"
#include "quant/quantize_model.h"

namespace mlperf {
namespace models {

struct DetectorArch
{
    std::string name = "detector";
    int64_t downsample = 1;     //!< 1 = full res, 2 = half res
    bool denoiseStem = false;   //!< Gaussian-blur stem (heavy variant)
    double scoreThreshold = 0.25;  //!< fraction of prototype energy
    double nmsIou = 0.3;
};

class ObjectDetector
{
  public:
    ObjectDetector(const DetectorArch &arch,
                   const data::DetectionDataset &dataset);

    /** Heavyweight SSD proxy (full resolution + denoise stem). */
    static ObjectDetector ssdResnet34Proxy(
        const data::DetectionDataset &dataset);

    /** Lightweight SSD proxy (2x downsampled input). */
    static ObjectDetector ssdMobilenetProxy(
        const data::DetectionDataset &dataset);

    /** Detect objects in one [1, C, H, W] scene. */
    std::vector<metrics::Detection> detect(const tensor::Tensor &image,
                                           int64_t image_id) const;

    /** mAP@0.5 over dataset indices [0, count). */
    double evaluateMap(const data::DetectionDataset &dataset,
                       int64_t count) const;

    /** COCO-style mAP@[.50:.05:.95] (stricter than mAP@0.5). */
    double evaluateCocoMap(const data::DetectionDataset &dataset,
                           int64_t count) const;

    /** Post-training quantization via the fixed calibration set. */
    int quantize(const data::DetectionDataset &dataset,
                 const quant::QuantizeOptions &options = {});

    const std::string &name() const { return network_.name(); }
    uint64_t paramCount() const { return network_.paramCount(); }
    uint64_t flopsPerInput() const;
    nn::Sequential &network() { return network_; }
    const nn::CompiledModel &compiled() const { return *compiled_; }

  private:
    void rebuildCompiled();

    nn::Sequential network_;
    std::unique_ptr<nn::CompiledModel> compiled_;
    tensor::Shape inputShape_;
    DetectorArch arch_;
    int64_t numClasses_;
    int64_t objectSize_;        //!< full-resolution object side
    double scoreScale_;         //!< normalizes peak scores to ~[0, 1]
    double threshold_;          //!< absolute score threshold
};

} // namespace models
} // namespace mlperf

#endif // MLPERF_MODELS_DETECTOR_H
