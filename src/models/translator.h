/**
 * @file
 * GNMT proxy model: embedding -> LSTM encoder -> positional dot
 * attention -> LSTM decoder -> dense output projection.
 *
 * The compute motif matches GNMT (recurrent cells, attention, large
 * output projection — the RNN motif the paper added the task for).
 * Correctness is carried by a closed-form construction: word
 * embeddings are near-orthogonal random vectors, encoder states carry
 * embedding + position, the decoder queries by position, and the
 * output projection rows are the embeddings of each target word's
 * lexicon preimage, so the argmax recovers the hidden lexicon. The
 * real LSTM states are mixed in with a small weight, acting as the
 * structured "model noise" that keeps BLEU below 100 and responsive
 * to quantization (substitution recorded in DESIGN.md).
 */

#ifndef MLPERF_MODELS_TRANSLATOR_H
#define MLPERF_MODELS_TRANSLATOR_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "data/translation.h"
#include "nn/plan.h"
#include "nn/rnn.h"
#include "nn/sequential.h"
#include "quant/quantize_model.h"

namespace mlperf {
namespace models {

struct TranslatorArch
{
    std::string name = "gnmt-proxy";
    int64_t embedDim = 32;
    double lstmMix = 0.20;   //!< weight of LSTM state in enc/dec paths
    double queryGain = 4.0;  //!< position-query sharpness
    uint64_t weightSeed = 0x6E347;
};

class Translator
{
  public:
    Translator(const TranslatorArch &arch,
               const data::TranslationDataset &dataset);

    static Translator gnmtProxy(const data::TranslationDataset &dataset);

    /** Translate one source sentence (tokens ending in EOS). */
    std::vector<int64_t> translate(
        const std::vector<int64_t> &source) const;

    /** Corpus BLEU over dataset indices [0, count). */
    double evaluateBleu(const data::TranslationDataset &dataset,
                        int64_t count) const;

    /**
     * Quantize the output projection (the GEMM-heavy stage real INT8
     * deployments quantize first) using contexts gathered from the
     * dataset's calibration sentences.
     */
    int quantize(const data::TranslationDataset &dataset,
                 const quant::QuantizeOptions &options = {});

    const std::string &name() const { return arch_.name; }
    uint64_t paramCount() const;

    /** Compiled form of the output projection (the per-step GEMM). */
    const nn::CompiledModel &compiledProjection() const
    {
        return *compiledProj_;
    }

    /** Eager reference for the projection (differential testing). */
    const nn::Sequential &outputProjection() const
    {
        return outputProj_;
    }

    /** Per-sentence FLOPs for a source of the given length. */
    uint64_t flopsPerSentence(int64_t source_length) const;

  private:
    /** Shared inference path; optionally records attention contexts. */
    std::vector<int64_t> translateInternal(
        const std::vector<int64_t> &source,
        std::vector<tensor::Tensor> *contexts) const;

    void rebuildCompiled();

    TranslatorArch arch_;
    int64_t vocab_;
    nn::Embedding embed_;
    tensor::Tensor posEnc_;     //!< [maxSteps, embedDim]
    nn::LSTMCell encoderCell_;
    nn::LSTMCell decoderCell_;
    nn::Sequential outputProj_; //!< single DenseLayer, quantizable
    std::unique_ptr<nn::CompiledModel> compiledProj_;
    int64_t maxSteps_;
};

} // namespace models
} // namespace mlperf

#endif // MLPERF_MODELS_TRANSLATOR_H
