/**
 * @file
 * Task and reference-model registry (paper Tables I and III).
 *
 * Each entry carries the paper-reported reference figures (parameters,
 * GOPs/input, quality metric, relative quality target, scenario latency
 * constraints) alongside the actual figures of the proxy model built in
 * this repository. Benches print both so the substitution is explicit.
 */

#ifndef MLPERF_MODELS_MODEL_INFO_H
#define MLPERF_MODELS_MODEL_INFO_H

#include <cstdint>
#include <string>
#include <vector>

namespace mlperf {
namespace models {

/** The five MLPerf Inference v0.5 tasks (Table I). */
enum class TaskType
{
    ImageClassificationHeavy,  //!< ResNet-50 v1.5 / ImageNet
    ImageClassificationLight,  //!< MobileNet-v1 / ImageNet
    ObjectDetectionHeavy,      //!< SSD-ResNet-34 / COCO 1200x1200
    ObjectDetectionLight,      //!< SSD-MobileNet-v1 / COCO 300x300
    MachineTranslation,        //!< GNMT / WMT16 EN-DE
};

/** All tasks, in Table I order. */
const std::vector<TaskType> &allTasks();

/** Short name, e.g. "ResNet-50 v1.5". */
std::string taskModelName(TaskType task);

/** Task area, "Vision" or "Language". */
std::string taskArea(TaskType task);

/** Static description of one Table I row plus Table III constraints. */
struct ModelInfo
{
    TaskType task;
    std::string modelName;       //!< reference model name
    std::string datasetName;     //!< paper data set
    std::string proxyDataset;    //!< this repo's synthetic stand-in
    std::string qualityMetric;   //!< "Top-1", "mAP", "SacreBLEU"
    double relativeQualityTarget;  //!< 0.99 / 0.98 of FP32 (Sec. III-B)

    // Paper-reported reference complexity (Table I).
    double paperParamsMillions;
    double paperGopsPerInput;
    double paperFp32Quality;     //!< e.g. 0.76456 Top-1

    // Table III latency constraints.
    double multistreamArrivalMs;
    double serverQosMs;

    // Tail-latency percentile for constrained scenarios (Sec. III-D):
    // 99th for vision, 97th for translation.
    double tailPercentile;

    // Per-query sample floor for the offline scenario.
    uint64_t offlineMinSamples;
};

/** Table I + Table III registry, in paper order. */
const std::vector<ModelInfo> &referenceModels();

/** Registry lookup by task. */
const ModelInfo &modelInfo(TaskType task);

} // namespace models
} // namespace mlperf

#endif // MLPERF_MODELS_MODEL_INFO_H
