#include "models/detector.h"

#include <cassert>
#include <cmath>

#include "nn/layers.h"

namespace mlperf {
namespace models {

using tensor::Conv2dParams;
using tensor::Shape;
using tensor::Tensor;

namespace {

/** Per-channel Gaussian blur (3x3), optionally strided for downsampling. */
std::unique_ptr<nn::DepthwiseConv2dLayer>
blurStem(int64_t channels, int64_t stride)
{
    Tensor w(Shape{channels, 1, 3, 3});
    static const float kKernel[9] = {
        1.f / 16, 2.f / 16, 1.f / 16,
        2.f / 16, 4.f / 16, 2.f / 16,
        1.f / 16, 2.f / 16, 1.f / 16,
    };
    for (int64_t c = 0; c < channels; ++c) {
        for (int64_t i = 0; i < 9; ++i)
            w[c * 9 + i] = kKernel[i];
    }
    Conv2dParams p{3, 3, stride, stride, 1, 1};
    return std::make_unique<nn::DepthwiseConv2dLayer>(
        std::move(w), std::vector<float>(), p, /*fuse_relu=*/false);
}

/** 2x2 block-average a [C, S, S] prototype down to [C, S/2, S/2]. */
Tensor
downsamplePrototype(const Tensor &proto, int64_t channels, int64_t s)
{
    const int64_t hs = s / 2;
    Tensor out(Shape{channels, hs, hs});
    for (int64_t c = 0; c < channels; ++c) {
        for (int64_t y = 0; y < hs; ++y) {
            for (int64_t x = 0; x < hs; ++x) {
                const float sum =
                    proto[(c * s + 2 * y) * s + 2 * x] +
                    proto[(c * s + 2 * y) * s + 2 * x + 1] +
                    proto[(c * s + 2 * y + 1) * s + 2 * x] +
                    proto[(c * s + 2 * y + 1) * s + 2 * x + 1];
                out[(c * hs + y) * hs + x] = sum / 4.0f;
            }
        }
    }
    return out;
}

} // namespace

ObjectDetector::ObjectDetector(const DetectorArch &arch,
                               const data::DetectionDataset &dataset)
    : network_(arch.name),
      inputShape_({1, dataset.config().channels,
                   dataset.config().height, dataset.config().width}),
      arch_(arch),
      numClasses_(dataset.numClasses()),
      objectSize_(dataset.config().objectSize)
{
    const auto &cfg = dataset.config();
    const int64_t ds = arch.downsample;
    assert(ds == 1 || ds == 2);

    if (arch.denoiseStem)
        network_.add(blurStem(cfg.channels, 1));
    if (ds == 2)
        network_.add(blurStem(cfg.channels, 2));

    // Matched-filter head: one filter per class, kernel = prototype at
    // the working resolution, bias = -||p||^2/2 so the peak response
    // approximates (contrast - 1/2) * ||p||^2.
    const int64_t k = objectSize_ / ds;
    Tensor head(Shape{numClasses_, cfg.channels, k, k});
    std::vector<float> bias(static_cast<size_t>(numClasses_));
    double mean_energy = 0.0;
    for (int64_t c = 0; c < numClasses_; ++c) {
        Tensor proto = dataset.prototype(c);
        if (ds == 2)
            proto = downsamplePrototype(proto, cfg.channels,
                                        objectSize_);
        // Energies are computed at the working resolution, so the
        // bias and score normalization stay self-consistent for both
        // the full-res and downsampled variants.
        double energy = 0.0;
        for (int64_t i = 0; i < proto.numel(); ++i) {
            head[c * proto.numel() + i] = proto[i];
            energy += static_cast<double>(proto[i]) * proto[i];
        }
        bias[static_cast<size_t>(c)] =
            static_cast<float>(-0.5 * energy);
        mean_energy += energy;
    }
    mean_energy /= static_cast<double>(numClasses_);
    scoreScale_ = 1.0 / (0.5 * mean_energy);
    threshold_ = arch.scoreThreshold;

    Conv2dParams p{k, k, 1, 1, 0, 0};  // valid convolution
    network_.add(std::make_unique<nn::Conv2dLayer>(
        std::move(head), std::move(bias), p, /*fuse_relu=*/false));

    rebuildCompiled();
}

void
ObjectDetector::rebuildCompiled()
{
    tensor::Shape sample{inputShape_.dim(1), inputShape_.dim(2),
                         inputShape_.dim(3)};
    compiled_ = std::make_unique<nn::CompiledModel>(network_,
                                                    std::move(sample));
}

ObjectDetector
ObjectDetector::ssdResnet34Proxy(const data::DetectionDataset &dataset)
{
    DetectorArch arch;
    arch.name = "ssd-resnet34-proxy";
    arch.downsample = 1;
    arch.denoiseStem = true;
    arch.scoreThreshold = 0.25;
    return ObjectDetector(arch, dataset);
}

ObjectDetector
ObjectDetector::ssdMobilenetProxy(const data::DetectionDataset &dataset)
{
    DetectorArch arch;
    arch.name = "ssd-mobilenet-v1-proxy";
    arch.downsample = 2;
    arch.denoiseStem = false;
    arch.scoreThreshold = 0.25;
    return ObjectDetector(arch, dataset);
}

std::vector<metrics::Detection>
ObjectDetector::detect(const Tensor &image, int64_t image_id) const
{
    const Tensor maps =
        nn::ExecutionInstance::thread().forward(*compiled_, image);
    assert(maps.shape().rank() == 4);
    const int64_t classes = maps.shape().dim(1);
    const int64_t oh = maps.shape().dim(2);
    const int64_t ow = maps.shape().dim(3);
    const int64_t ds = arch_.downsample;

    std::vector<metrics::Detection> candidates;
    for (int64_t c = 0; c < classes; ++c) {
        for (int64_t y = 0; y < oh; ++y) {
            for (int64_t x = 0; x < ow; ++x) {
                const float v = maps.at(0, c, y, x);
                const double score = v * scoreScale_;
                if (score < threshold_)
                    continue;
                // 3x3 local maximum within the class map.
                bool is_peak = true;
                for (int64_t dy = -1; dy <= 1 && is_peak; ++dy) {
                    for (int64_t dx = -1; dx <= 1; ++dx) {
                        const int64_t ny = y + dy, nx = x + dx;
                        if (ny < 0 || ny >= oh || nx < 0 || nx >= ow)
                            continue;
                        if (maps.at(0, c, ny, nx) > v) {
                            is_peak = false;
                            break;
                        }
                    }
                }
                if (!is_peak)
                    continue;
                metrics::Detection d;
                d.imageId = image_id;
                d.cls = c;
                d.score = score;
                d.box.x0 = static_cast<double>(x * ds);
                d.box.y0 = static_cast<double>(y * ds);
                d.box.x1 = d.box.x0 + static_cast<double>(objectSize_);
                d.box.y1 = d.box.y0 + static_cast<double>(objectSize_);
                candidates.push_back(d);
            }
        }
    }
    return metrics::nonMaxSuppression(std::move(candidates),
                                      arch_.nmsIou);
}

double
ObjectDetector::evaluateMap(const data::DetectionDataset &dataset,
                            int64_t count) const
{
    assert(count <= dataset.size());
    std::vector<metrics::Detection> detections;
    std::vector<metrics::ImageGroundTruth> truth;
    for (int64_t i = 0; i < count; ++i) {
        auto dets = detect(dataset.image(i), i);
        detections.insert(detections.end(), dets.begin(), dets.end());
        truth.push_back({i, dataset.groundTruth(i)});
    }
    return metrics::meanAveragePrecision(detections, truth,
                                         numClasses_);
}

double
ObjectDetector::evaluateCocoMap(const data::DetectionDataset &dataset,
                                int64_t count) const
{
    assert(count <= dataset.size());
    std::vector<metrics::Detection> detections;
    std::vector<metrics::ImageGroundTruth> truth;
    for (int64_t i = 0; i < count; ++i) {
        auto dets = detect(dataset.image(i), i);
        detections.insert(detections.end(), dets.begin(), dets.end());
        truth.push_back({i, dataset.groundTruth(i)});
    }
    return metrics::cocoMeanAveragePrecision(detections, truth,
                                             numClasses_);
}

int
ObjectDetector::quantize(const data::DetectionDataset &dataset,
                         const quant::QuantizeOptions &options)
{
    const int swapped = quant::quantizeSequential(
        network_, dataset.calibrationSet(), options);
    rebuildCompiled();  // the graph referenced the swapped-out layers
    return swapped;
}

uint64_t
ObjectDetector::flopsPerInput() const
{
    return network_.flops(inputShape_);
}

} // namespace models
} // namespace mlperf
