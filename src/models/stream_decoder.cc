#include "models/stream_decoder.h"

#include <cmath>

#include "nn/init.h"

namespace mlperf {
namespace models {

using tensor::Shape;
using tensor::Tensor;

namespace {

/** Unit-variance random embedding table [vocab, dim] — the same
    recipe (and Rng stream) as the Translator's. */
Tensor
makeEmbeddingTable(int64_t vocab, int64_t dim, Rng &rng)
{
    Tensor t(Shape{vocab, dim});
    const float scale = 1.0f / std::sqrt(static_cast<float>(dim));
    for (int64_t i = 0; i < t.numel(); ++i)
        t[i] = scale * static_cast<float>(rng.nextGaussian());
    for (int64_t v = 0; v < vocab; ++v) {
        double norm = 0.0;
        for (int64_t d = 0; d < dim; ++d)
            norm += static_cast<double>(t.at(v, d)) * t.at(v, d);
        const float inv = static_cast<float>(1.0 / std::sqrt(norm));
        for (int64_t d = 0; d < dim; ++d)
            t.at(v, d) *= inv;
    }
    return t;
}

nn::LSTMCell
makeCell(int64_t input, int64_t hidden, Rng &rng)
{
    return nn::LSTMCell(
        nn::heNormal(Shape{4 * hidden, input}, input, rng),
        nn::heNormal(Shape{4 * hidden, hidden}, hidden, rng),
        nn::zeroBias(4 * hidden));
}

} // namespace

nn::DecoderModel
makeStreamDecoder(const data::TranslationDataset &dataset,
                  const TranslatorArch &arch)
{
    const int64_t vocab = dataset.config().vocabSize;
    const int64_t dim = arch.embedDim;
    const int64_t max_steps = dataset.config().maxLength + 2;

    Rng embed_rng(arch.weightSeed);
    Tensor embed_table = makeEmbeddingTable(vocab, dim, embed_rng);
    Rng pos_rng(arch.weightSeed + 1);
    Tensor pos_enc = makeEmbeddingTable(max_steps, dim, pos_rng);
    Rng enc_rng(arch.weightSeed + 2);
    nn::LSTMCell encoder = makeCell(dim, dim, enc_rng);
    Rng dec_rng(arch.weightSeed + 3);
    nn::LSTMCell decoder = makeCell(dim, dim, dec_rng);

    // Output projection: row v is the embedding of the source word
    // whose lexicon image is v, so logits peak at the correct target;
    // PAD/BOS can never be emitted.
    Tensor w(Shape{vocab, dim});
    std::vector<float> bias(static_cast<size_t>(vocab), 0.0f);
    std::vector<int64_t> preimage(static_cast<size_t>(vocab), -1);
    for (int64_t s = data::kFirstWordToken; s < vocab; ++s)
        preimage[static_cast<size_t>(dataset.translateWord(s))] = s;
    preimage[data::kEosToken] = data::kEosToken;
    for (int64_t v = 0; v < vocab; ++v) {
        const int64_t pre = preimage[static_cast<size_t>(v)];
        if (pre < 0) {
            bias[static_cast<size_t>(v)] = -100.0f;
            continue;
        }
        for (int64_t d = 0; d < dim; ++d)
            w.at(v, d) = embed_table.at(pre, d);
    }

    nn::DecoderArch decoder_arch;
    decoder_arch.vocab = vocab;
    decoder_arch.embedDim = dim;
    decoder_arch.maxSrcSteps = max_steps;
    decoder_arch.bosToken = data::kBosToken;
    decoder_arch.eosToken = data::kEosToken;
    decoder_arch.lstmMix = static_cast<float>(arch.lstmMix);
    decoder_arch.queryGain = static_cast<float>(arch.queryGain);

    return nn::DecoderModel(decoder_arch, std::move(embed_table),
                            std::move(pos_enc), std::move(encoder),
                            std::move(decoder), std::move(w),
                            std::move(bias));
}

} // namespace models
} // namespace mlperf
