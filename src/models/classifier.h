/**
 * @file
 * Image-classifier proxy models (ResNet-50 v1.5 and MobileNet-v1
 * stand-ins) plus a width/depth family used to reproduce Figure 1.
 *
 * Construction mirrors the paper's reference-weights discipline with a
 * closed-form "training" step: a fixed-seed convolutional backbone
 * extracts features, and the final dense layer is fit as a
 * nearest-class-mean linear classifier over a small training stream of
 * the synthetic dataset. No gradient descent, fully deterministic —
 * the same weights on every run, like MLPerf's distributed reference
 * models (substitution recorded in DESIGN.md).
 */

#ifndef MLPERF_MODELS_CLASSIFIER_H
#define MLPERF_MODELS_CLASSIFIER_H

#include <memory>
#include <string>
#include <vector>

#include "data/classification.h"
#include "nn/plan.h"
#include "nn/sequential.h"
#include "quant/quantize_model.h"

namespace mlperf {
namespace models {

/** Architecture knobs for the classifier family (Figure 1 sweeps). */
struct ClassifierArch
{
    std::string name = "classifier";
    int64_t stemWidth = 16;      //!< channels after the stem conv
    int64_t blocks = 3;          //!< residual / dw-separable stages
    bool depthwise = false;      //!< MobileNet-style when true
    /**
     * Log-uniform spread of per-channel depthwise filter gains,
     * emulating the wide BN-folded weight ranges that make trained
     * MobileNets quantization-sensitive (paper Sec. III-B). 1.0 means
     * uniform gains, i.e. "quantization-friendly" weights.
     */
    double dwGainSpread = 1.0;
    uint64_t weightSeed = 0xC0FFEE;
};

class ImageClassifier
{
  public:
    /** Build from an architecture and fit the head on the dataset. */
    ImageClassifier(const ClassifierArch &arch,
                    const data::ClassificationDataset &dataset);

    /** The paper's heavyweight classifier proxy. */
    static ImageClassifier resnet50Proxy(
        const data::ClassificationDataset &dataset);

    /** The paper's lightweight classifier proxy. */
    static ImageClassifier mobilenetProxy(
        const data::ClassificationDataset &dataset);

    /**
     * MobileNet proxy with naive (pre-quantization-aware) weights:
     * identical FP32 function, but BN-fold-style per-channel range
     * spread makes INT8 lose unacceptable accuracy — the reason the
     * paper narrowed MobileNet's window to 2% and shipped retrained,
     * quantization-friendly weights (Sec. III-B). mobilenetProxy() is
     * the quantization-friendly version.
     */
    static ImageClassifier mobilenetProxyNaive(
        const data::ClassificationDataset &dataset);

    /** Predicted class for one [1, C, H, W] image. */
    int64_t classify(const tensor::Tensor &image) const;

    /** Predicted classes for a [N, C, H, W] batch. */
    std::vector<int64_t> classifyBatch(const tensor::Tensor &batch) const;

    /**
     * Predicted classes for N single-sample [1, C, H, W] images,
     * stacked directly into the compiled plan's input buffer — the
     * batching SUTs use this to avoid an intermediate batch tensor.
     */
    std::vector<int64_t>
    classifyBatch(const std::vector<const tensor::Tensor *> &images)
        const;

    /** Top-1 accuracy over dataset indices [0, count). */
    double evaluateAccuracy(const data::ClassificationDataset &dataset,
                            int64_t count) const;

    /**
     * Post-training quantization using the dataset's fixed
     * calibration set (Sec. IV-A flow). Returns quantized layer count.
     */
    int quantize(const data::ClassificationDataset &dataset,
                 const quant::QuantizeOptions &options = {});

    const std::string &name() const { return network_.name(); }
    uint64_t paramCount() const { return network_.paramCount(); }
    uint64_t flopsPerInput() const;
    nn::Sequential &network() { return network_; }

    /**
     * The fused, memory-planned form every query runs through.
     * Rebuilt by quantize(); network_ stays the eager differential-
     * testing reference.
     */
    const nn::CompiledModel &compiled() const { return *compiled_; }

  private:
    /** Re-lower network_ after construction or layer swaps. */
    void rebuildCompiled();

    nn::Sequential network_;
    tensor::Shape inputShape_;
    std::unique_ptr<nn::CompiledModel> compiled_;
};

} // namespace models
} // namespace mlperf

#endif // MLPERF_MODELS_CLASSIFIER_H
