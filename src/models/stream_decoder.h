/**
 * @file
 * Closed-form streaming decoder over the synthetic translation task.
 *
 * Packages the Translator's GNMT-proxy construction (translator.h)
 * for incremental, token-at-a-time decode: same weight seeds, same
 * encoder-state recipe (embedding + position + mixed-in LSTM state),
 * same position-queried attention and lexicon-preimage projection.
 * Because the projection argmax recovers the hidden lexicon and the
 * source ends with EOS, the decoder genuinely emits EOS when its
 * positional query attends to the source's EOS slot — output length
 * tracks source length through real compute, which is what gives the
 * token-streaming benchmarks a controllable length-variance axis.
 */

#ifndef MLPERF_MODELS_STREAM_DECODER_H
#define MLPERF_MODELS_STREAM_DECODER_H

#include "data/translation.h"
#include "models/translator.h"
#include "nn/decoder.h"

namespace mlperf {
namespace models {

/**
 * Build the streaming GNMT proxy for @p dataset. With the default
 * arch this is weight-for-weight the construction of
 * Translator::gnmtProxy, so the streamed tokens match the batch
 * translator's output for every source sentence.
 */
nn::DecoderModel makeStreamDecoder(
    const data::TranslationDataset &dataset,
    const TranslatorArch &arch = {});

} // namespace models
} // namespace mlperf

#endif // MLPERF_MODELS_STREAM_DECODER_H
