#include "models/model_info.h"

#include <cassert>

namespace mlperf {
namespace models {

const std::vector<TaskType> &
allTasks()
{
    static const std::vector<TaskType> tasks = {
        TaskType::ImageClassificationHeavy,
        TaskType::ImageClassificationLight,
        TaskType::ObjectDetectionHeavy,
        TaskType::ObjectDetectionLight,
        TaskType::MachineTranslation,
    };
    return tasks;
}

std::string
taskModelName(TaskType task)
{
    switch (task) {
      case TaskType::ImageClassificationHeavy: return "ResNet-50 v1.5";
      case TaskType::ImageClassificationLight: return "MobileNet-v1";
      case TaskType::ObjectDetectionHeavy:     return "SSD-ResNet-34";
      case TaskType::ObjectDetectionLight:     return "SSD-MobileNet-v1";
      case TaskType::MachineTranslation:       return "GNMT";
    }
    return "?";
}

std::string
taskArea(TaskType task)
{
    return task == TaskType::MachineTranslation ? "Language" : "Vision";
}

const std::vector<ModelInfo> &
referenceModels()
{
    // Table I (tasks, reference complexity, quality targets),
    // Table III (latency constraints), Sec. III-D (tail percentiles),
    // Table V (offline sample floor).
    static const std::vector<ModelInfo> registry = {
        {
            TaskType::ImageClassificationHeavy,
            "ResNet-50 v1.5",
            "ImageNet (224x224)",
            "Synthetic-ImageNet (32x32)",
            "Top-1",
            0.99,
            25.6, 8.2, 0.76456,
            50.0, 15.0,
            0.99,
            24576,
        },
        {
            TaskType::ImageClassificationLight,
            "MobileNet-v1",
            "ImageNet (224x224)",
            "Synthetic-ImageNet (32x32)",
            "Top-1",
            0.98,  // narrowed window for the quantization-sensitive net
            4.2, 1.138, 0.71676,
            50.0, 10.0,
            0.99,
            24576,
        },
        {
            TaskType::ObjectDetectionHeavy,
            "SSD-ResNet-34",
            "COCO (1,200x1,200)",
            "Synthetic-COCO (96x96)",
            "mAP",
            0.99,
            36.3, 433.0, 0.20,
            66.0, 100.0,
            0.99,
            24576,
        },
        {
            TaskType::ObjectDetectionLight,
            "SSD-MobileNet-v1",
            "COCO (300x300)",
            "Synthetic-COCO (48x48)",
            "mAP",
            0.99,  // absolute floor relaxed to 22.0 mAP in the paper
            6.91, 2.47, 0.22,
            50.0, 10.0,
            0.99,
            24576,
        },
        {
            TaskType::MachineTranslation,
            "GNMT",
            "WMT16 EN-DE",
            "Synthetic-WMT (vocab 64)",
            "SacreBLEU",
            0.99,
            210.0, 0.0,  // paper lists parameters only for GNMT
            23.9,        // SacreBLEU is on its native 0-100 scale
            100.0, 250.0,
            0.97,
            24576,
        },
    };
    return registry;
}

const ModelInfo &
modelInfo(TaskType task)
{
    for (const auto &info : referenceModels()) {
        if (info.task == task)
            return info;
    }
    assert(false && "unknown task");
    return referenceModels().front();
}

} // namespace models
} // namespace mlperf
