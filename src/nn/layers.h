/**
 * @file
 * Concrete layers: convolutions, dense, pooling, activations, and the
 * residual block used by the ResNet-style proxy models.
 */

#ifndef MLPERF_NN_LAYERS_H
#define MLPERF_NN_LAYERS_H

#include <memory>
#include <vector>

#include "nn/graph.h"
#include "nn/layer.h"
#include "tensor/conv.h"

namespace mlperf {
namespace nn {

/** Standard convolution with optional fused ReLU. */
class Conv2dLayer : public Layer
{
  public:
    /**
     * @param weight [outC, inC, kh, kw]
     * @param bias   [outC] (may be empty for no bias)
     */
    Conv2dLayer(tensor::Tensor weight, std::vector<float> bias,
                tensor::Conv2dParams params, bool fuse_relu = true);

    tensor::Tensor forward(const tensor::Tensor &input) const override;
    void forwardInto(const float *input, const tensor::Shape &in_shape,
                     float *out) const override;
    tensor::Shape outputShape(const tensor::Shape &input) const override;
    uint64_t paramCount() const override;
    uint64_t flops(const tensor::Shape &input) const override;
    OpKind opKind() const override { return OpKind::Conv2d; }
    std::string name() const override { return "conv2d"; }

    /** Prepacked weights + fused bias/ReLU epilogue (tensor::conv). */
    std::unique_ptr<PreparedKernel> prepare(bool post_relu) const
        override;

    /** Direct NCHWc kernel (tensor/conv_direct): no im2col, no
     *  scratch, weights blocked into the kernel's consume order. */
    bool supportsNchwc() const override { return true; }
    std::unique_ptr<PreparedKernel> prepareDirect(bool post_relu) const
        override;

    const tensor::Tensor &weight() const { return weight_; }
    const std::vector<float> &bias() const { return bias_; }
    const tensor::Conv2dParams &params() const { return params_; }
    bool fusedRelu() const { return fuseRelu_; }

  private:
    tensor::Tensor weight_;
    std::vector<float> bias_;
    tensor::Conv2dParams params_;
    bool fuseRelu_;
};

/** Depthwise convolution (MobileNet building block). */
class DepthwiseConv2dLayer : public Layer
{
  public:
    /** @param weight [C, 1, kh, kw] */
    DepthwiseConv2dLayer(tensor::Tensor weight, std::vector<float> bias,
                         tensor::Conv2dParams params,
                         bool fuse_relu = true);

    tensor::Tensor forward(const tensor::Tensor &input) const override;
    void forwardInto(const float *input, const tensor::Shape &in_shape,
                     float *out) const override;
    tensor::Shape outputShape(const tensor::Shape &input) const override;
    uint64_t paramCount() const override;
    uint64_t flops(const tensor::Shape &input) const override;
    OpKind opKind() const override { return OpKind::DepthwiseConv2d; }
    std::string name() const override { return "dwconv2d"; }

    const tensor::Tensor &weight() const { return weight_; }
    const std::vector<float> &bias() const { return bias_; }
    const tensor::Conv2dParams &params() const { return params_; }
    bool fusedRelu() const { return fuseRelu_; }

  private:
    tensor::Tensor weight_;
    std::vector<float> bias_;
    tensor::Conv2dParams params_;
    bool fuseRelu_;
};

/** Fully connected layer on [batch, in] inputs. */
class DenseLayer : public Layer
{
  public:
    /** @param weight [out, in] */
    DenseLayer(tensor::Tensor weight, std::vector<float> bias,
               bool fuse_relu = false);

    tensor::Tensor forward(const tensor::Tensor &input) const override;
    void forwardInto(const float *input, const tensor::Shape &in_shape,
                     float *out) const override;
    tensor::Shape outputShape(const tensor::Shape &input) const override;
    uint64_t paramCount() const override;
    uint64_t flops(const tensor::Shape &input) const override;
    OpKind opKind() const override { return OpKind::Dense; }
    std::string name() const override { return "dense"; }

    /** Prepacked W^T panels + fused bias/ReLU epilogue. */
    std::unique_ptr<PreparedKernel> prepare(bool post_relu) const
        override;

    const tensor::Tensor &weight() const { return weight_; }
    const std::vector<float> &bias() const { return bias_; }
    bool fusedRelu() const { return fuseRelu_; }

  private:
    tensor::Tensor weight_;
    std::vector<float> bias_;
    bool fuseRelu_;
};

/** Max pooling, square kernel, no padding. */
class MaxPoolLayer : public Layer
{
  public:
    MaxPoolLayer(int64_t kernel, int64_t stride)
        : kernel_(kernel), stride_(stride)
    {
    }

    tensor::Tensor forward(const tensor::Tensor &input) const override;
    void forwardInto(const float *input, const tensor::Shape &in_shape,
                     float *out) const override;
    tensor::Shape outputShape(const tensor::Shape &input) const override;
    OpKind opKind() const override { return OpKind::MaxPool; }
    std::string name() const override { return "maxpool"; }

    int64_t kernel() const { return kernel_; }
    int64_t stride() const { return stride_; }

  private:
    int64_t kernel_;
    int64_t stride_;
};

/** Average pooling, square kernel, no padding. */
class AvgPoolLayer : public Layer
{
  public:
    AvgPoolLayer(int64_t kernel, int64_t stride)
        : kernel_(kernel), stride_(stride)
    {
    }

    tensor::Tensor forward(const tensor::Tensor &input) const override;
    void forwardInto(const float *input, const tensor::Shape &in_shape,
                     float *out) const override;
    tensor::Shape outputShape(const tensor::Shape &input) const override;
    OpKind opKind() const override { return OpKind::AvgPool; }
    std::string name() const override { return "avgpool"; }

    int64_t kernel() const { return kernel_; }
    int64_t stride() const { return stride_; }

  private:
    int64_t kernel_;
    int64_t stride_;
};

/** Global average pooling [N,C,H,W] -> [N,C]. */
class GlobalAvgPoolLayer : public Layer
{
  public:
    tensor::Tensor forward(const tensor::Tensor &input) const override;
    void forwardInto(const float *input, const tensor::Shape &in_shape,
                     float *out) const override;
    tensor::Shape outputShape(const tensor::Shape &input) const override;
    OpKind opKind() const override { return OpKind::GlobalAvgPool; }
    std::string name() const override { return "gap"; }
};

/** Flatten to [N, rest]. */
class FlattenLayer : public Layer
{
  public:
    tensor::Tensor forward(const tensor::Tensor &input) const override;
    void forwardInto(const float *input, const tensor::Shape &in_shape,
                     float *out) const override;
    tensor::Shape outputShape(const tensor::Shape &input) const override;
    OpKind opKind() const override { return OpKind::Flatten; }
    std::string name() const override { return "flatten"; }
};

/** Standalone ReLU; graph compilation fuses it into the producer. */
class ReluLayer : public Layer
{
  public:
    tensor::Tensor forward(const tensor::Tensor &input) const override;
    void forwardInto(const float *input, const tensor::Shape &in_shape,
                     float *out) const override;
    tensor::Shape outputShape(const tensor::Shape &input) const override
    {
        return input;
    }
    OpKind opKind() const override { return OpKind::Relu; }
    std::string name() const override { return "relu"; }
};

/**
 * Inference-mode batch normalization over the channel dimension
 * (dim 1 of [N, C, ...] inputs): y = gamma * (x - mean) / sqrt(var +
 * eps) + beta with frozen statistics. Kept in the zoo so the graph
 * compiler's Conv+BN folding pass has a real pattern to fold; folded
 * graphs never execute it.
 */
class BatchNormLayer : public Layer
{
  public:
    BatchNormLayer(std::vector<float> gamma, std::vector<float> beta,
                   std::vector<float> mean, std::vector<float> var,
                   float eps = 1e-5f);

    tensor::Tensor forward(const tensor::Tensor &input) const override;
    void forwardInto(const float *input, const tensor::Shape &in_shape,
                     float *out) const override;
    tensor::Shape outputShape(const tensor::Shape &input) const override
    {
        return input;
    }
    uint64_t paramCount() const override
    {
        return 2 * scale_.size();  // gamma + beta
    }
    OpKind opKind() const override { return OpKind::BatchNorm; }
    std::string name() const override { return "batchnorm"; }

    /** Per-channel folded affine form: y = scale * x + shift. */
    const std::vector<float> &scale() const { return scale_; }
    const std::vector<float> &shift() const { return shift_; }
    int64_t channels() const
    {
        return static_cast<int64_t>(scale_.size());
    }

  private:
    std::vector<float> scale_;
    std::vector<float> shift_;
};

/**
 * ResNet v1.5-style residual block: conv(3x3, stride s) -> relu ->
 * conv(3x3) -> add skip -> relu, with a 1x1 projection on the skip
 * path when shape changes (stride-on-the-3x3 is specifically the v1.5
 * variant the paper standardizes on).
 */
class ResidualBlock : public Layer, public CompositeLowering
{
  public:
    ResidualBlock(std::unique_ptr<Conv2dLayer> conv1,
                  std::unique_ptr<Conv2dLayer> conv2,
                  std::unique_ptr<Conv2dLayer> projection);

    tensor::Tensor forward(const tensor::Tensor &input) const override;
    tensor::Shape outputShape(const tensor::Shape &input) const override;
    uint64_t paramCount() const override;
    uint64_t flops(const tensor::Shape &input) const override;
    int lower(ModelGraph &graph, int input) const override;
    std::string name() const override { return "residual"; }

    /** Sub-layer access for the quantization pass. */
    const Conv2dLayer &conv1() const { return *conv1_; }
    const Conv2dLayer &conv2() const { return *conv2_; }
    const Conv2dLayer *projection() const { return projection_.get(); }

  private:
    std::unique_ptr<Conv2dLayer> conv1_;
    std::unique_ptr<Conv2dLayer> conv2_;
    std::unique_ptr<Conv2dLayer> projection_;  //!< null for identity skip
};

} // namespace nn
} // namespace mlperf

#endif // MLPERF_NN_LAYERS_H
