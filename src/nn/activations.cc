#include "nn/activations.h"

#include <cassert>
#include <cmath>

namespace mlperf {
namespace nn {

void
reluInplace(tensor::Tensor &t)
{
    float *p = t.data();
    const int64_t n = t.numel();
    for (int64_t i = 0; i < n; ++i)
        p[i] = p[i] > 0.0f ? p[i] : 0.0f;
}

void
sigmoidInplace(tensor::Tensor &t)
{
    float *p = t.data();
    const int64_t n = t.numel();
    for (int64_t i = 0; i < n; ++i)
        p[i] = 1.0f / (1.0f + std::exp(-p[i]));
}

void
tanhInplace(tensor::Tensor &t)
{
    float *p = t.data();
    const int64_t n = t.numel();
    for (int64_t i = 0; i < n; ++i)
        p[i] = std::tanh(p[i]);
}

tensor::Tensor
softmax(const tensor::Tensor &logits)
{
    assert(logits.shape().rank() == 2);
    const int64_t batch = logits.shape().dim(0);
    const int64_t classes = logits.shape().dim(1);
    tensor::Tensor out(logits.shape());
    for (int64_t b = 0; b < batch; ++b) {
        const float *in_row = logits.data() + b * classes;
        float *out_row = out.data() + b * classes;
        float max_v = in_row[0];
        for (int64_t c = 1; c < classes; ++c)
            max_v = std::max(max_v, in_row[c]);
        double sum = 0.0;
        for (int64_t c = 0; c < classes; ++c) {
            out_row[c] = std::exp(in_row[c] - max_v);
            sum += out_row[c];
        }
        const float inv = static_cast<float>(1.0 / sum);
        for (int64_t c = 0; c < classes; ++c)
            out_row[c] *= inv;
    }
    return out;
}

std::vector<int64_t>
argmaxRows(const float *data, int64_t rows, int64_t cols)
{
    std::vector<int64_t> out(static_cast<size_t>(rows));
    for (int64_t b = 0; b < rows; ++b) {
        const float *row = data + b * cols;
        int64_t best = 0;
        for (int64_t c = 1; c < cols; ++c) {
            if (row[c] > row[best])
                best = c;
        }
        out[static_cast<size_t>(b)] = best;
    }
    return out;
}

std::vector<int64_t>
argmaxRows(const tensor::Tensor &t)
{
    assert(t.shape().rank() == 2);
    return argmaxRows(t.data(), t.shape().dim(0), t.shape().dim(1));
}

} // namespace nn
} // namespace mlperf
