/**
 * @file
 * ModelGraph: the compiler IR between the eager layer zoo and the
 * compiled execution plan (nn/plan.h).
 *
 * A Sequential is lowered into a flat DAG of single-output nodes:
 * composite layers (ResidualBlock and its quantized twin) are
 * flattened into their convolutions plus an explicit Add node with a
 * skip edge, so every activation the model materializes is visible to
 * the optimization passes and the memory planner. The pass pipeline
 * mirrors what production graph compilers run before codegen:
 *
 *   1. foldBatchNorm  — Conv/Dense + BatchNorm -> folded weights
 *   2. fuseRelu       — producer + ReLU -> producer with post-op
 *   3. eliminateDeadNodes — drop nodes unreachable from the output
 *
 * Nodes reference layers non-owningly: either layers owned by the
 * source Sequential (which must outlive the graph) or layers created
 * by passes and owned by the graph itself. Layer::forward stays the
 * eager reference semantics every compiled plan is differential-
 * tested against.
 */

#ifndef MLPERF_NN_GRAPH_H
#define MLPERF_NN_GRAPH_H

#include <memory>
#include <string>
#include <vector>

#include "nn/layer.h"
#include "nn/sequential.h"

namespace mlperf {
namespace nn {

const char *opKindName(OpKind kind);

/**
 * True for op kinds whose layers can pre-pack their weights at
 * compile time and fuse the bias/ReLU/requantize epilogue into the
 * GEMM tail (see Layer::prepare). Depthwise convs are excluded: the
 * direct kernel already fuses its post-ops and has nothing to pack.
 */
bool opSupportsFusedEpilogue(OpKind kind);

/** Node operand id naming the graph input rather than another node. */
constexpr int kGraphInput = -1;

class ModelGraph;

/**
 * Implemented by composite layers (ResidualBlock and its quantized
 * twin) so the lowering can flatten them into primitive nodes without
 * the graph module depending on the modules that define them.
 */
class CompositeLowering
{
  public:
    virtual ~CompositeLowering() = default;

    /**
     * Append nodes implementing this layer to @p graph; @p input is
     * the operand id feeding the layer. Returns the id of the node
     * producing the layer's output.
     */
    virtual int lower(ModelGraph &graph, int input) const = 0;
};

struct GraphNode
{
    OpKind kind = OpKind::Opaque;
    /** Implementing layer; null only for Add. Non-owning. */
    const Layer *layer = nullptr;
    /** Producer node ids (or kGraphInput). Add has two, rest one. */
    std::vector<int> inputs;
    /** Apply ReLU to the output buffer after the op (fusion post-op). */
    bool postRelu = false;
    /**
     * Marked by markFusableEpilogues(): the plan builder may prepack
     * this node's weights and fuse its epilogue (bias/postRelu/
     * requantize) into the kernel tail.
     */
    bool fusableEpilogue = false;
    /**
     * Activation layout of this node's OUTPUT, assigned by
     * propagateLayout(). Logical shapes (inferShapes) stay NCHW; the
     * plan builder sizes NCHWc buffers physically. LayoutConvert
     * nodes (layer == null, like Add) re-tile between the two.
     */
    Layout layout = Layout::NCHW;
    std::string label;
};

class ModelGraph
{
  public:
    ModelGraph() = default;
    ModelGraph(ModelGraph &&) = default;
    ModelGraph &operator=(ModelGraph &&) = default;
    ModelGraph(const ModelGraph &) = delete;
    ModelGraph &operator=(const ModelGraph &) = delete;

    /**
     * Lower a Sequential into graph form. Residual blocks (FP32 and
     * quantized) become conv1 -> conv2 -> Add(conv2, skip) with an
     * optional projection on the skip edge. The Sequential must
     * outlive the graph.
     */
    static ModelGraph fromSequential(const Sequential &model);

    const std::string &name() const { return name_; }
    void setName(std::string name) { name_ = std::move(name); }

    int nodeCount() const { return static_cast<int>(nodes_.size()); }
    const GraphNode &node(int id) const
    {
        return nodes_[static_cast<size_t>(id)];
    }
    GraphNode &node(int id) { return nodes_[static_cast<size_t>(id)]; }
    const std::vector<GraphNode> &nodes() const { return nodes_; }

    int outputNode() const { return output_; }
    void setOutput(int id) { output_ = id; }

    /** Append a node; returns its id. Nodes must stay topological. */
    int addNode(GraphNode node);

    /** Transfer ownership of a pass- or builder-created layer. */
    const Layer *ownLayer(std::unique_ptr<Layer> layer);

    /**
     * Swap the implementing layer of node @p id (quantization uses
     * this to retarget individual graph nodes); the graph takes
     * ownership of the replacement.
     */
    void replaceNodeLayer(int id, std::unique_ptr<Layer> layer,
                          OpKind kind);

    // ---------------------------------------------------- passes

    /** Fold BatchNorm into preceding Conv/Depthwise/Dense weights. */
    int foldBatchNorm();

    /** Fuse single-consumer ReLU nodes into their producer. */
    int fuseRelu();

    /** Remove nodes unreachable from the output; returns count. */
    int eliminateDeadNodes();

    /**
     * Mark nodes whose kind supports compile-time weight prepacking
     * with a fused epilogue (see opSupportsFusedEpilogue); returns the
     * number marked. Runs after the other passes so fused post-ReLUs
     * are visible; replaceNodeLayer keeps the mark current when
     * quantization retargets a node.
     */
    int markFusableEpilogues();

    /**
     * Layout propagation: assign the NCHWc tiled layout to chains the
     * direct kernels can execute and insert explicit LayoutConvert
     * nodes where layouts disagree (graph input and output are always
     * NCHW). Composes with the other passes in any order and is
     * idempotent: a re-run first dissolves every convert it inserted
     * before, then re-propagates — CompiledModel re-runs it after
     * quantizeGraph retargets nodes.
     *
     * Policy: Conv2d/QConv2d nodes whose layer supportsNchwc() anchor
     * tiled chains; ReLU and pools follow their producer's layout;
     * Add harmonizes its operands to NCHWc when either side is tiled;
     * GlobalAvgPool consumes either layout directly. In a graph
     * containing ANY quantized node, fp32 Conv2d stays NCHW so the
     * fp32 path feeding quantize/dequantize boundaries remains
     * bit-identical to the eager reference (the int8 direct kernel is
     * exact, the fp32 one is only 1e-4-close). Returns the number of
     * nodes assigned the tiled layout.
     */
    int propagateLayout();

    /** The standard pipeline: fold BN, fuse ReLU, DCE, mark fusable. */
    void runDefaultPasses();

    // ------------------------------------------------ shape query

    /**
     * Static shape inference: per-node output shapes for a full
     * input shape (batch included). Index i is node i's output.
     */
    std::vector<tensor::Shape>
    inferShapes(const tensor::Shape &input) const;

    /** Consumer count per node id (reads of each node's output). */
    std::vector<int> consumerCounts() const;

    /** Sum of paramCount over distinct node layers. */
    uint64_t paramCount() const;

  private:
    std::string name_;
    std::vector<GraphNode> nodes_;
    int output_ = -1;
    std::vector<std::unique_ptr<Layer>> owned_;
};

} // namespace nn
} // namespace mlperf

#endif // MLPERF_NN_GRAPH_H
