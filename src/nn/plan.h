/**
 * @file
 * Compile-then-execute runtime: CompiledModel turns a ModelGraph into
 * per-batch-size ExecutionPlans (fused ops + static buffer offsets
 * from the liveness memory planner), and ExecutionInstance executes a
 * plan out of one thread-local grow-only arena.
 *
 * Threading model: a CompiledModel is immutable after construction
 * apart from its internal plan cache and prepacked constant section,
 * which are guarded by a shared_mutex (readers take only the shared
 * lock, so steady-state lookups never serialize), so any number of
 * serving workers may share one CompiledModel. Each worker runs its
 * own ExecutionInstance (one per thread via thread()), so query
 * execution touches no shared mutable state beyond the read-only
 * constants and performs zero heap allocations in steady state.
 *
 * Correctness contract: for every model and batch size, running the
 * compiled plan must match the eager Sequential::forward reference
 * (exactly for int8 paths, to ~1e-4 for fp32 where fusion reorders
 * float math). tests/nn/plan_test.cc and
 * tests/models/compiled_parity_test.cc enforce this differentially.
 */

#ifndef MLPERF_NN_PLAN_H
#define MLPERF_NN_PLAN_H

#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "nn/graph.h"
#include "nn/sequential.h"

namespace mlperf {
namespace nn {

struct CompileOptions
{
    bool foldBatchNorm = true;
    bool fuseRelu = true;
    bool eliminateDeadNodes = true;
    /**
     * Pack conv/dense/int8 weights once at plan-build time into the
     * micro-kernel panel layout (the plan's constant-data section)
     * and fuse bias/ReLU/requantize epilogues into the kernel tail,
     * so the steady-state query path never repacks a weight or runs
     * a separate elementwise pass. Off only for A/B benchmarking.
     */
    bool prepackConstants = true;
    /**
     * Run ModelGraph::propagateLayout so convolution chains execute
     * in the NCHWc tiled layout through the direct kernels instead of
     * im2col + GEMM. Requires prepackConstants (the direct kernels
     * exist only in prepared form); the MLPERF_FORCE_IM2COL
     * environment variable (any non-"0" value) overrides this to
     * false at CompiledModel construction, forcing the im2col
     * reference path for differential debugging.
     */
    bool propagateLayout = true;
};

/** One executable op with resolved arena offsets (in floats). */
struct PlanStep
{
    OpKind kind = OpKind::Opaque;
    const Layer *layer = nullptr;  //!< null for Add and LayoutConvert
    /**
     * Prepacked fast path for this step, owned by the CompiledModel's
     * constant section and shared read-only across threads; null when
     * the layer has none (executor falls back to forwardInto). When
     * set, the kernel's fused epilogue already covers postRelu.
     */
    const PreparedKernel *prepared = nullptr;
    bool postRelu = false;
    /** Copied from the graph node's markFusableEpilogues() mark; only
     *  marked steps are eligible for a prepared kernel. */
    bool fusableEpilogue = false;
    tensor::Shape inShape;   //!< LOGICAL shape of operand 0 (NCHW)
    tensor::Shape outShape;  //!< LOGICAL output shape (NCHW)
    /** Physical layout of the operand-0 / output buffers. Shapes stay
     *  logical; NCHWc buffers are sized to the padded physical extent
     *  by the plan builder. */
    Layout inLayout = Layout::NCHW;
    Layout outLayout = Layout::NCHW;
    int64_t in0 = 0;
    int64_t in1 = -1;        //!< second Add operand, else -1
    int64_t out = 0;
    /**
     * Arena offset (floats) of this step's kernel scratch, -1 when the
     * kernel needs none. Carved from the same liveness-planned arena
     * as the activations — live only during this step, so the planner
     * overlaps it with dead values. Direct-conv steps need none;
     * im2col steps put their patch matrix here.
     */
    int64_t scratch = -1;
    int64_t scratchFloats = 0;
    /** Resolved pool geometry for NCHWc pool steps (the direct pool
     *  kernels bypass Layer::forwardInto). */
    int64_t poolKernel = 0;
    int64_t poolStride = 0;
    std::string label;
};

/** An execution schedule specialized to one batch size. */
struct Plan
{
    int64_t batch = 0;
    std::vector<PlanStep> steps;
    /** Arena size after liveness-based reuse, in floats. */
    int64_t arenaFloats = 0;
    /** Sum of all value buffers without reuse, in floats. */
    int64_t naiveFloats = 0;
    int64_t inputOffset = 0;
    int64_t inputNumel = 0;
    int64_t outputOffset = 0;
    int64_t outputNumel = 0;
    /** Bytes of prepacked constants referenced by this plan's steps. */
    int64_t constantBytes = 0;
    tensor::Shape inputShape;
    tensor::Shape outputShape;
};

/**
 * An optimized graph plus a lazily built, cached Plan per batch size.
 * Construction runs the pass pipeline once; planFor() is safe to call
 * concurrently.
 */
class CompiledModel
{
  public:
    /**
     * Compile a Sequential for inputs of @p sample_shape (one sample,
     * no batch dimension). The Sequential must outlive the model.
     */
    CompiledModel(const Sequential &model, tensor::Shape sample_shape,
                  CompileOptions options = {});

    /** Adopt an already-lowered (and typically optimized) graph. */
    CompiledModel(ModelGraph graph, tensor::Shape sample_shape,
                  CompileOptions options = {});

    CompiledModel(const CompiledModel &) = delete;
    CompiledModel &operator=(const CompiledModel &) = delete;

    const std::string &name() const { return graph_.name(); }
    const ModelGraph &graph() const { return graph_; }
    ModelGraph &graph() { return graph_; }
    const tensor::Shape &sampleShape() const { return sampleShape_; }

    /**
     * Drop cached plans AND the prepacked constant section (after the
     * graph is mutated, e.g. by quantizeGraph) — stale packed weights
     * must never outlive the layers they were packed from. The next
     * planFor() rebuilds both from the current graph.
     */
    void invalidatePlans();

    /**
     * The plan for @p batch, built on first use. Thread-safe: steady-
     * state lookups take only a shared (reader) lock, so concurrent
     * workers never serialize on this hot read-only path; the
     * exclusive lock is taken once per new batch size to build.
     */
    const Plan &planFor(int64_t batch) const;

    /** Total bytes in the prepacked constant section. */
    int64_t constantBytes() const;

  private:
    Plan buildPlan(int64_t batch) const;

    /**
     * Resolve each step's prepared kernel from the constant cache,
     * building missing entries via Layer::prepare (NCHW steps) or
     * Layer::prepareDirect (NCHWc steps). Called from inside
     * buildPlan BEFORE buffers are planned, so kernel scratch
     * footprints are visible to the memory planner. Caller must hold
     * the exclusive lock.
     */
    void attachConstants(Plan &plan) const;

    ModelGraph graph_;
    tensor::Shape sampleShape_;
    CompileOptions options_;
    mutable std::shared_mutex mutex_;
    mutable std::map<int64_t, std::unique_ptr<Plan>> plans_;
    /**
     * Constant-data section: one prepacked kernel per (layer,
     * postRelu, direct-NCHWc) triple, shared by every plan (all batch
     * sizes) and read-only once published by planFor's exclusive
     * section.
     */
    mutable std::map<std::tuple<const Layer *, bool, bool>,
                     std::unique_ptr<PreparedKernel>>
        constants_;
};

/**
 * Human-readable plan listing for debugging the layout and memory
 * passes: one line per step with kind, layouts, arena offsets, and —
 * for convolution steps — the kernel scratch footprint (scratch_kb),
 * which is how you see the direct path's zero-scratch win next to an
 * im2col step's patch matrix.
 */
std::string planDebugDump(const Plan &plan);

/**
 * Per-thread executor state: one grow-only, 64-byte-aligned arena
 * sized to the largest plan it has run. Not thread-safe; use one
 * instance per thread (thread() hands out exactly that).
 */
class ExecutionInstance
{
  public:
    ExecutionInstance() = default;
    ExecutionInstance(const ExecutionInstance &) = delete;
    ExecutionInstance &operator=(const ExecutionInstance &) = delete;

    /** The calling thread's instance. */
    static ExecutionInstance &thread();

    /**
     * Make room for @p model at @p batch and return the input buffer
     * (inputNumel floats) for the caller to fill — batch stacking
     * writes samples straight into the arena, no staging copy.
     */
    float *stageInput(const CompiledModel &model, int64_t batch);

    /**
     * Execute the staged input; returns the output buffer
     * (outputNumel floats), valid until the next stage/run/forward
     * on this instance.
     */
    const float *run(const CompiledModel &model, int64_t batch);

    /** Convenience eager-style entry: copy in, run, copy out. */
    tensor::Tensor forward(const CompiledModel &model,
                           const tensor::Tensor &input);

    /** Current arena footprint in bytes. */
    int64_t bufferBytes() const { return capacityFloats_ * 4; }

  private:
    void ensureCapacity(int64_t floats);

    std::unique_ptr<float, void (*)(void *)> buffer_{nullptr, nullptr};
    int64_t capacityFloats_ = 0;
};

} // namespace nn
} // namespace mlperf

#endif // MLPERF_NN_PLAN_H
