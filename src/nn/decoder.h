/**
 * @file
 * Autoregressive streaming decoder built from the rnn.h primitives
 * (Embedding + LSTMCell + dotAttention + dense logits head).
 *
 * This is the token-streaming workload ROADMAP item 3 asks for: the
 * model emits one token per decodeStep() against a persistent
 * per-sequence recurrent state — a KV-cache analogue holding the
 * encoder states (the "keys/values") and the decoder LSTM h/c. All
 * per-sequence state lives in a pooled DecodeState and all transient
 * buffers in a per-thread DecodeScratch, so the steady-state decode
 * path performs zero heap allocations; the pool reports any growth it
 * is forced into so benches can assert the invariant.
 *
 * The incremental path is bit-identical to the unrolled eager
 * reference (referenceDecode) by construction: every step delegates
 * to the same stepInto/dotAttentionInto/denseForward calls at batch 1
 * with per-sequence buffers, so a sequence's compute never depends on
 * which other sequences share the batch — the property that makes
 * continuous batching (sequences joining/leaving mid-batch) safe.
 */

#ifndef MLPERF_NN_DECODER_H
#define MLPERF_NN_DECODER_H

#include <cstdint>
#include <memory>
#include <vector>

#include "nn/rnn.h"
#include "tensor/tensor.h"

namespace mlperf {
namespace nn {

/** Everything that shapes the decoder besides its weights. */
struct DecoderArch
{
    int64_t vocab = 0;
    int64_t embedDim = 0;
    /** Max encoder positions == rows of the position table. */
    int64_t maxSrcSteps = 0;
    int64_t bosToken = 1;
    int64_t eosToken = 2;
    float lstmMix = 0.2f;   //!< weight of LSTM state in enc/dec paths
    float queryGain = 4.0f; //!< position-query sharpness
};

/**
 * Persistent per-sequence decode state: encoder states ("KV cache"),
 * decoder LSTM h/c, the running output. Sized once for the model's
 * maxima by the pool; reset() keeps every capacity.
 */
class DecodeState
{
  public:
    DecodeState(int64_t max_src_steps, int64_t dim)
        : encStates_(static_cast<size_t>(max_src_steps * dim)),
          h_(static_cast<size_t>(dim)), c_(static_cast<size_t>(dim))
    {
        output_.reserve(static_cast<size_t>(max_src_steps));
    }

    const std::vector<int64_t> &tokens() const { return output_; }
    bool finished() const { return done_; }
    int64_t sourceSteps() const { return srcSteps_; }
    /** Decode positions emitted so far. */
    int64_t stepsDone() const { return step_; }

  private:
    friend class DecoderModel;

    std::vector<float> encStates_;  //!< [maxSrcSteps, dim], row-major
    int64_t srcSteps_ = 0;          //!< valid encoder rows
    std::vector<float> h_, c_;      //!< decoder LSTM state [dim]
    int64_t prevToken_ = 0;
    int64_t step_ = 0;              //!< next decode position
    std::vector<int64_t> output_;
    bool done_ = false;
};

/** Transient per-thread buffers for encode/decodeStep/padStep. */
class DecodeScratch
{
  public:
    DecodeScratch(int64_t max_src_steps, int64_t dim, int64_t vocab)
        : embed_(static_cast<size_t>(dim)),
          gates_(static_cast<size_t>(4 * dim)),
          rec_(static_cast<size_t>(4 * dim)),
          query_(static_cast<size_t>(dim)),
          context_(static_cast<size_t>(dim)),
          logits_(static_cast<size_t>(vocab)),
          scores_(static_cast<size_t>(max_src_steps)),
          encH_(static_cast<size_t>(dim)),
          encC_(static_cast<size_t>(dim)),
          padH_(static_cast<size_t>(dim)),
          padC_(static_cast<size_t>(dim))
    {
    }

  private:
    friend class DecoderModel;

    std::vector<float> embed_, gates_, rec_, query_, context_, logits_;
    std::vector<double> scores_;
    std::vector<float> encH_, encC_;  //!< encoder LSTM state (prefill)
    std::vector<float> padH_, padC_;  //!< frozen-state copy (padStep)
};

/**
 * Fixed-size pool of DecodeStates. acquire() prefers the free list
 * and only allocates when the pool is exhausted — growths() exposes
 * how often, so the zero-alloc steady-state contract is checkable.
 * Single-threaded by design: each decode engine owns its pool.
 */
class DecodeStatePool
{
  public:
    DecodeStatePool(size_t capacity, int64_t max_src_steps, int64_t dim)
        : maxSrcSteps_(max_src_steps), dim_(dim)
    {
        states_.reserve(capacity * 2);
        free_.reserve(capacity * 2);
        for (size_t i = 0; i < capacity; ++i) {
            states_.push_back(std::make_unique<DecodeState>(
                max_src_steps, dim));
            free_.push_back(states_.back().get());
        }
    }

    DecodeState *
    acquire()
    {
        if (free_.empty()) {
            ++growths_;
            states_.push_back(std::make_unique<DecodeState>(
                maxSrcSteps_, dim_));
            return states_.back().get();
        }
        DecodeState *state = free_.back();
        free_.pop_back();
        return state;
    }

    void release(DecodeState *state) { free_.push_back(state); }

    size_t size() const { return states_.size(); }
    size_t available() const { return free_.size(); }
    /** Times acquire() had to allocate past the initial capacity. */
    uint64_t growths() const { return growths_; }

  private:
    int64_t maxSrcSteps_;
    int64_t dim_;
    std::vector<std::unique_ptr<DecodeState>> states_;
    std::vector<DecodeState *> free_;
    uint64_t growths_ = 0;
};

/**
 * The decoder proxy model. Construction-agnostic: weights come in as
 * plain tensors (models/stream_decoder.cc builds the closed-form GNMT
 * proxy whose argmax provably recovers the dataset lexicon and emits
 * EOS at the source's EOS position, so output length tracks source
 * length through genuine compute).
 */
class DecoderModel
{
  public:
    /**
     * @param embed_table [vocab, dim]
     * @param pos_enc [maxSrcSteps, dim]
     * @param proj_w [vocab, dim] logits head; @p proj_bias [vocab]
     */
    DecoderModel(DecoderArch arch, tensor::Tensor embed_table,
                 tensor::Tensor pos_enc, LSTMCell encoder_cell,
                 LSTMCell decoder_cell, tensor::Tensor proj_w,
                 std::vector<float> proj_bias);

    const DecoderArch &arch() const { return arch_; }

    DecodeScratch
    makeScratch() const
    {
        return DecodeScratch(arch_.maxSrcSteps, arch_.embedDim,
                             arch_.vocab);
    }

    /**
     * Prefill: run the encoder over @p source into @p state and reset
     * the decode cursor. Zero-alloc given pooled state and scratch.
     */
    void encode(const std::vector<int64_t> &source, DecodeState &state,
                DecodeScratch &scratch) const;

    /**
     * Emit one token (appended to state.tokens()); marks the state
     * finished on EOS or when the position budget is exhausted.
     * Must not be called on a finished state. Zero-alloc.
     */
    int64_t decodeStep(DecodeState &state, DecodeScratch &scratch) const;

    /**
     * The static-batching tax: one full decode step of compute
     * (embedding, LSTM, attention, logits) against a frozen copy of
     * @p state, discarding the result. A padded batch spends exactly
     * this on every already-finished slot per step.
     */
    void padStep(const DecodeState &state, DecodeScratch &scratch) const;

    /**
     * Unrolled eager reference over the allocating rnn.h primitives —
     * the differential baseline for the incremental path.
     */
    std::vector<int64_t> referenceDecode(
        const std::vector<int64_t> &source) const;

    /** MAC-dominated op count (x2) of one decode step. */
    uint64_t flopsPerToken(int64_t src_steps) const;

  private:
    DecoderArch arch_;
    Embedding embed_;
    tensor::Tensor posEnc_;
    LSTMCell encoderCell_;
    LSTMCell decoderCell_;
    tensor::Tensor projW_;          //!< [vocab, dim]
    std::vector<float> projBias_;
};

} // namespace nn
} // namespace mlperf

#endif // MLPERF_NN_DECODER_H
