/**
 * @file
 * Sequential model container.
 */

#ifndef MLPERF_NN_SEQUENTIAL_H
#define MLPERF_NN_SEQUENTIAL_H

#include <memory>
#include <string>
#include <vector>

#include "nn/layer.h"

namespace mlperf {
namespace nn {

/**
 * A feed-forward chain of layers. Residual topologies are handled by
 * composite layers (ResidualBlock), so a Sequential is sufficient for
 * all the CNN proxy models.
 */
class Sequential
{
  public:
    explicit Sequential(std::string name) : name_(std::move(name)) {}

    /** Append a layer; returns *this for chaining. */
    Sequential &add(std::unique_ptr<Layer> layer);

    /** Run all layers in order. */
    tensor::Tensor forward(const tensor::Tensor &input) const;

    /** Final output shape for a given input shape. */
    tensor::Shape outputShape(const tensor::Shape &input) const;

    /** Total trainable parameters. */
    uint64_t paramCount() const;

    /** Total per-sample FLOPs for the given input shape. */
    uint64_t flops(const tensor::Shape &input) const;

    const std::string &name() const { return name_; }
    size_t layerCount() const { return layers_.size(); }
    Layer &layer(size_t i) { return *layers_[i]; }
    const Layer &layer(size_t i) const { return *layers_[i]; }

    /**
     * Replace layer @p i (used by the quantization pass to swap FP32
     * layers for their INT8 counterparts).
     */
    void replaceLayer(size_t i, std::unique_ptr<Layer> layer);

  private:
    std::string name_;
    std::vector<std::unique_ptr<Layer>> layers_;
};

} // namespace nn
} // namespace mlperf

#endif // MLPERF_NN_SEQUENTIAL_H
