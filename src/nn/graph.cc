#include "nn/graph.h"

#include <cassert>
#include <map>
#include <unordered_set>
#include <utility>

#include "nn/layers.h"

namespace mlperf {
namespace nn {

using tensor::Shape;

const char *
opKindName(OpKind kind)
{
    switch (kind) {
    case OpKind::Conv2d:
        return "conv2d";
    case OpKind::DepthwiseConv2d:
        return "dwconv2d";
    case OpKind::Dense:
        return "dense";
    case OpKind::MaxPool:
        return "maxpool";
    case OpKind::AvgPool:
        return "avgpool";
    case OpKind::GlobalAvgPool:
        return "gap";
    case OpKind::Flatten:
        return "flatten";
    case OpKind::Relu:
        return "relu";
    case OpKind::BatchNorm:
        return "batchnorm";
    case OpKind::Add:
        return "add";
    case OpKind::QConv2d:
        return "qconv2d";
    case OpKind::QDepthwiseConv2d:
        return "qdwconv2d";
    case OpKind::QDense:
        return "qdense";
    case OpKind::LayoutConvert:
        return "layout_convert";
    case OpKind::Opaque:
        return "opaque";
    }
    return "unknown";
}

bool
opSupportsFusedEpilogue(OpKind kind)
{
    switch (kind) {
    case OpKind::Conv2d:
    case OpKind::Dense:
    case OpKind::QConv2d:
    case OpKind::QDense:
        return true;
    default:
        return false;
    }
}

ModelGraph
ModelGraph::fromSequential(const Sequential &model)
{
    ModelGraph graph;
    graph.setName(model.name());
    int cur = kGraphInput;
    for (size_t i = 0; i < model.layerCount(); ++i) {
        const Layer &layer = model.layer(i);
        if (const auto *comp =
                dynamic_cast<const CompositeLowering *>(&layer)) {
            cur = comp->lower(graph, cur);
            continue;
        }
        GraphNode node;
        node.kind = layer.opKind();
        node.layer = &layer;
        node.inputs = {cur};
        node.label = layer.name();
        cur = graph.addNode(std::move(node));
    }
    assert(graph.nodeCount() > 0 && "cannot lower an empty Sequential");
    graph.setOutput(cur);
    return graph;
}

int
ModelGraph::addNode(GraphNode node)
{
    assert(node.kind == OpKind::Add ? node.inputs.size() == 2
                                    : node.inputs.size() == 1);
    for (const int in : node.inputs) {
        assert(in >= kGraphInput && in < nodeCount());
        (void)in;
    }
    nodes_.push_back(std::move(node));
    return nodeCount() - 1;
}

const Layer *
ModelGraph::ownLayer(std::unique_ptr<Layer> layer)
{
    owned_.push_back(std::move(layer));
    return owned_.back().get();
}

void
ModelGraph::replaceNodeLayer(int id, std::unique_ptr<Layer> layer,
                             OpKind kind)
{
    GraphNode &n = node(id);
    n.layer = ownLayer(std::move(layer));
    n.kind = kind;
    n.fusableEpilogue = opSupportsFusedEpilogue(kind);
}

namespace {

/** Redirect every read of node @p from to node @p to. */
void
rewire(std::vector<GraphNode> &nodes, int &output, int from, int to)
{
    for (GraphNode &n : nodes) {
        for (int &in : n.inputs) {
            if (in == from)
                in = to;
        }
    }
    if (output == from)
        output = to;
}

/** Scale conv/dense weights by per-output-channel BN scale/shift. */
std::unique_ptr<Layer>
foldIntoWeights(const GraphNode &prod, const BatchNormLayer &bn)
{
    const auto fold = [&bn](const tensor::Tensor &weight,
                            const std::vector<float> &bias,
                            tensor::Tensor &w_out,
                            std::vector<float> &b_out) {
        const int64_t out_c = weight.shape().dim(0);
        const int64_t per_c = weight.numel() / out_c;
        w_out = tensor::Tensor(weight.shape());
        b_out.assign(static_cast<size_t>(out_c), 0.0f);
        const std::vector<float> &scale = bn.scale();
        const std::vector<float> &shift = bn.shift();
        for (int64_t o = 0; o < out_c; ++o) {
            const float s = scale[static_cast<size_t>(o)];
            const float *src = weight.data() + o * per_c;
            float *dst = w_out.data() + o * per_c;
            for (int64_t i = 0; i < per_c; ++i)
                dst[i] = src[i] * s;
            const float b = bias.empty()
                                ? 0.0f
                                : bias[static_cast<size_t>(o)];
            b_out[static_cast<size_t>(o)] =
                b * s + shift[static_cast<size_t>(o)];
        }
    };

    tensor::Tensor w;
    std::vector<float> b;
    if (prod.kind == OpKind::Conv2d) {
        const auto *conv = dynamic_cast<const Conv2dLayer *>(prod.layer);
        if (conv == nullptr || conv->fusedRelu() ||
            conv->weight().shape().dim(0) != bn.channels())
            return nullptr;
        fold(conv->weight(), conv->bias(), w, b);
        return std::make_unique<Conv2dLayer>(std::move(w), std::move(b),
                                             conv->params(), false);
    }
    if (prod.kind == OpKind::DepthwiseConv2d) {
        const auto *conv =
            dynamic_cast<const DepthwiseConv2dLayer *>(prod.layer);
        if (conv == nullptr || conv->fusedRelu() ||
            conv->weight().shape().dim(0) != bn.channels())
            return nullptr;
        fold(conv->weight(), conv->bias(), w, b);
        return std::make_unique<DepthwiseConv2dLayer>(
            std::move(w), std::move(b), conv->params(), false);
    }
    if (prod.kind == OpKind::Dense) {
        const auto *dense = dynamic_cast<const DenseLayer *>(prod.layer);
        if (dense == nullptr || dense->fusedRelu() ||
            dense->weight().shape().dim(0) != bn.channels())
            return nullptr;
        fold(dense->weight(), dense->bias(), w, b);
        return std::make_unique<DenseLayer>(std::move(w), std::move(b),
                                            false);
    }
    return nullptr;
}

} // namespace

int
ModelGraph::foldBatchNorm()
{
    int folds = 0;
    for (int id = 0; id < nodeCount(); ++id) {
        const GraphNode &bn_node = node(id);
        if (bn_node.kind != OpKind::BatchNorm || bn_node.postRelu)
            continue;
        const auto *bn =
            dynamic_cast<const BatchNormLayer *>(bn_node.layer);
        if (bn == nullptr)
            continue;
        const int pid = bn_node.inputs[0];
        if (pid == kGraphInput || pid == output_)
            continue;
        const std::vector<int> consumers = consumerCounts();
        if (consumers[static_cast<size_t>(pid)] != 1)
            continue;
        GraphNode &prod = node(pid);
        if (prod.postRelu)
            continue;  // ReLU before BN is not linear-foldable
        std::unique_ptr<Layer> folded = foldIntoWeights(prod, *bn);
        if (!folded)
            continue;
        prod.layer = ownLayer(std::move(folded));
        prod.label += "+bn";
        rewire(nodes_, output_, id, pid);
        // Detach the dead BN so it no longer counts as a consumer of
        // the conv — later passes must see true consumer counts even
        // before DCE compacts the graph.
        node(id).inputs = {kGraphInput};
        ++folds;
    }
    return folds;
}

int
ModelGraph::fuseRelu()
{
    int fused = 0;
    for (int id = 0; id < nodeCount(); ++id) {
        const GraphNode &relu = node(id);
        if (relu.kind != OpKind::Relu)
            continue;
        const int pid = relu.inputs[0];
        if (pid == kGraphInput || pid == output_)
            continue;
        const std::vector<int> consumers = consumerCounts();
        if (consumers[static_cast<size_t>(pid)] != 1)
            continue;
        GraphNode &prod = node(pid);
        if (prod.kind == OpKind::Relu || prod.kind == OpKind::Flatten ||
            prod.kind == OpKind::Opaque ||
            prod.kind == OpKind::LayoutConvert)
            continue;  // flatten/convert alias or re-tile; opaque has
                       // no post-op slot
        prod.postRelu = true;
        rewire(nodes_, output_, id, pid);
        // Detach the dead ReLU (see foldBatchNorm).
        node(id).inputs = {kGraphInput};
        ++fused;
    }
    return fused;
}

int
ModelGraph::eliminateDeadNodes()
{
    if (output_ < 0)
        return 0;
    std::vector<bool> live(nodes_.size(), false);
    std::vector<int> stack = {output_};
    while (!stack.empty()) {
        const int id = stack.back();
        stack.pop_back();
        if (live[static_cast<size_t>(id)])
            continue;
        live[static_cast<size_t>(id)] = true;
        for (const int in : nodes_[static_cast<size_t>(id)].inputs) {
            if (in != kGraphInput)
                stack.push_back(in);
        }
    }

    std::vector<int> remap(nodes_.size(), -1);
    std::vector<GraphNode> kept;
    kept.reserve(nodes_.size());
    for (size_t id = 0; id < nodes_.size(); ++id) {
        if (!live[id])
            continue;
        remap[id] = static_cast<int>(kept.size());
        kept.push_back(std::move(nodes_[id]));
    }
    const int removed = nodeCount() - static_cast<int>(kept.size());
    for (GraphNode &n : kept) {
        for (int &in : n.inputs) {
            if (in != kGraphInput)
                in = remap[static_cast<size_t>(in)];
        }
    }
    nodes_ = std::move(kept);
    output_ = remap[static_cast<size_t>(output_)];
    return removed;
}

int
ModelGraph::markFusableEpilogues()
{
    int marked = 0;
    for (GraphNode &n : nodes_) {
        n.fusableEpilogue =
            n.layer != nullptr && opSupportsFusedEpilogue(n.kind);
        if (n.fusableEpilogue)
            ++marked;
    }
    return marked;
}

int
ModelGraph::propagateLayout()
{
    if (output_ < 0)
        return 0;

    // A kept-fp32 conv inside a quantized graph must stay on the
    // bit-identical im2col path: quantize boundaries downstream snap
    // activations to codes, and a last-ulp fp32 difference can flip a
    // code. Pure-fp32 graphs carry the documented 1e-4 tolerance, so
    // there the fp32 direct kernel is fair game.
    bool has_quantized = false;
    for (const GraphNode &n : nodes_) {
        if (n.kind == OpKind::QConv2d ||
            n.kind == OpKind::QDepthwiseConv2d ||
            n.kind == OpKind::QDense)
            has_quantized = true;
    }

    // Rebuild the node vector from scratch: converts from a previous
    // run dissolve (remapped to their source), fresh converts are
    // interleaved right before the consumer that needs them. This
    // makes the pass idempotent and safe to re-run after quantization
    // retargets nodes.
    std::vector<GraphNode> old = std::move(nodes_);
    nodes_.clear();
    nodes_.reserve(old.size());
    std::vector<int> remap(old.size(), kGraphInput);

    const auto layoutOf = [this](int id) {
        return id == kGraphInput
                   ? Layout::NCHW
                   : nodes_[static_cast<size_t>(id)].layout;
    };
    // One convert per (producer, target layout), shared by every
    // consumer that needs that form.
    std::map<std::pair<int, int>, int> converts;
    const auto converted = [&](int id, Layout want) {
        if (layoutOf(id) == want)
            return id;
        const auto key = std::make_pair(id, static_cast<int>(want));
        const auto it = converts.find(key);
        if (it != converts.end())
            return it->second;
        GraphNode cv;
        cv.kind = OpKind::LayoutConvert;
        cv.inputs = {id};
        cv.layout = want;
        cv.label = want == Layout::NCHWc ? "to_nchwc" : "to_nchw";
        nodes_.push_back(std::move(cv));
        const int cid = nodeCount() - 1;
        converts.emplace(key, cid);
        return cid;
    };

    int tiled = 0;
    for (size_t i = 0; i < old.size(); ++i) {
        GraphNode n = std::move(old[i]);
        if (n.kind == OpKind::LayoutConvert) {
            remap[i] = n.inputs[0] == kGraphInput
                           ? kGraphInput
                           : remap[static_cast<size_t>(n.inputs[0])];
            continue;
        }
        for (int &in : n.inputs) {
            if (in != kGraphInput)
                in = remap[static_cast<size_t>(in)];
        }

        Layout lay = Layout::NCHW;
        switch (n.kind) {
        case OpKind::Conv2d:
        case OpKind::QConv2d:
            if (n.layer != nullptr && n.layer->supportsNchwc() &&
                (n.kind == OpKind::QConv2d || !has_quantized))
                lay = Layout::NCHWc;
            n.inputs[0] = converted(n.inputs[0], lay);
            break;
        case OpKind::MaxPool:
        case OpKind::AvgPool:
            // The NCHWc pool kernels need the layer's kernel/stride,
            // which the plan builder recovers from the concrete pool
            // layer types; anything else must see NCHW.
            lay = layoutOf(n.inputs[0]);
            if (lay == Layout::NCHWc &&
                dynamic_cast<const MaxPoolLayer *>(n.layer) == nullptr &&
                dynamic_cast<const AvgPoolLayer *>(n.layer) == nullptr) {
                lay = Layout::NCHW;
                n.inputs[0] = converted(n.inputs[0], lay);
            }
            break;
        case OpKind::Relu:
            // Elementwise: runs over the physical extent either way.
            lay = layoutOf(n.inputs[0]);
            break;
        case OpKind::Add:
            lay = (layoutOf(n.inputs[0]) == Layout::NCHWc ||
                   layoutOf(n.inputs[1]) == Layout::NCHWc)
                      ? Layout::NCHWc
                      : Layout::NCHW;
            n.inputs[0] = converted(n.inputs[0], lay);
            n.inputs[1] = converted(n.inputs[1], lay);
            break;
        case OpKind::GlobalAvgPool:
            // Layout-flexible consumer: reads NCHW or NCHWc directly
            // and always emits the dense [N, C] head input, so a
            // tiled chain ends here without an explicit convert (the
            // executor needs the concrete layer type for nothing but
            // sanity, so guard on it like the pools).
            lay = Layout::NCHW;
            if (layoutOf(n.inputs[0]) == Layout::NCHWc &&
                dynamic_cast<const GlobalAvgPoolLayer *>(n.layer) ==
                    nullptr)
                n.inputs[0] = converted(n.inputs[0], Layout::NCHW);
            break;
        default:
            // Every other op (dense, flatten, batchnorm, depthwise,
            // quantized dense, opaque) speaks NCHW only.
            n.inputs[0] = converted(n.inputs[0], Layout::NCHW);
            break;
        }
        n.layout = lay;
        if (lay == Layout::NCHWc)
            ++tiled;
        nodes_.push_back(std::move(n));
        remap[i] = nodeCount() - 1;
    }

    int out = remap[static_cast<size_t>(output_)];
    // The graph output contract is NCHW, whatever the last node is.
    out = converted(out, Layout::NCHW);
    output_ = out;
    return tiled;
}

void
ModelGraph::runDefaultPasses()
{
    foldBatchNorm();
    fuseRelu();
    eliminateDeadNodes();
    markFusableEpilogues();
}

std::vector<Shape>
ModelGraph::inferShapes(const Shape &input) const
{
    std::vector<Shape> shapes;
    shapes.reserve(nodes_.size());
    for (const GraphNode &n : nodes_) {
        const Shape &in0 = n.inputs[0] == kGraphInput
                               ? input
                               : shapes[static_cast<size_t>(n.inputs[0])];
        if (n.kind == OpKind::Add) {
            const Shape &in1 =
                n.inputs[1] == kGraphInput
                    ? input
                    : shapes[static_cast<size_t>(n.inputs[1])];
            assert(in0 == in1 && "Add operand shapes must match");
            (void)in1;
            shapes.push_back(in0);
        } else if (n.kind == OpKind::LayoutConvert) {
            // Re-tiling changes the physical buffer, not the logical
            // shape; the plan builder sizes NCHWc buffers physically.
            shapes.push_back(in0);
        } else {
            assert(n.layer != nullptr);
            shapes.push_back(n.layer->outputShape(in0));
        }
    }
    return shapes;
}

std::vector<int>
ModelGraph::consumerCounts() const
{
    std::vector<int> counts(nodes_.size(), 0);
    for (const GraphNode &n : nodes_) {
        for (const int in : n.inputs) {
            if (in != kGraphInput)
                ++counts[static_cast<size_t>(in)];
        }
    }
    return counts;
}

uint64_t
ModelGraph::paramCount() const
{
    uint64_t total = 0;
    std::unordered_set<const Layer *> seen;
    for (const GraphNode &n : nodes_) {
        if (n.layer != nullptr && seen.insert(n.layer).second)
            total += n.layer->paramCount();
    }
    return total;
}

} // namespace nn
} // namespace mlperf
