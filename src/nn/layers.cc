#include "nn/layers.h"

#include <cassert>
#include <cmath>

#include "nn/activations.h"
#include "tensor/conv_direct.h"
#include "tensor/gemm.h"

namespace mlperf {
namespace nn {

using tensor::Shape;
using tensor::Tensor;

namespace {

/** Conv weights packed as the A operand of the im2col GEMM, with
 *  bias + ReLU fused into the kernel epilogue. */
class PreparedConv2d final : public PreparedKernel
{
  public:
    PreparedConv2d(const Tensor &weight, const std::vector<float> &bias,
                   const tensor::Conv2dParams &params, bool relu)
        : weights_(tensor::packMatrixA(
              weight.data(), weight.shape().dim(0),
              weight.numel() / weight.shape().dim(0))),
          raw_(weight), bias_(bias), params_(params), relu_(relu)
    {
    }

    void
    run(const float *input, const Shape &in_shape, float *out,
        float *scratch) const override
    {
        const int64_t out_hw = params_.outH(in_shape.dim(2)) *
                               params_.outW(in_shape.dim(3));
        // Mirror the eager kernel's small-shape dispatch so compiled
        // results stay bit-identical to Layer::forward at every shape;
        // there is no pack step to skip below the threshold anyway.
        if (tensor::gemmUsesSmallPath(weights_.rows(), out_hw,
                                      weights_.cols())) {
            tensor::conv2dInto(input, in_shape.dim(0), in_shape.dim(1),
                               in_shape.dim(2), in_shape.dim(3), raw_,
                               bias_.empty() ? nullptr : bias_.data(),
                               params_, relu_, out);
            return;
        }
        tensor::conv2dPrepackedInto(
            input, in_shape.dim(0), in_shape.dim(1), in_shape.dim(2),
            in_shape.dim(3), weights_,
            bias_.empty() ? nullptr : bias_.data(), params_, relu_,
            out, scratch);
    }

    int64_t
    scratchFloats(const Shape &in_shape) const override
    {
        const int64_t out_hw = params_.outH(in_shape.dim(2)) *
                               params_.outW(in_shape.dim(3));
        // The small-shape path runs the eager kernel out of the thread
        // arena; above the threshold the im2col patch matrix (one
        // slice per image, workers write disjoint slices) comes from
        // the plan arena so its footprint is planner-visible.
        if (tensor::gemmUsesSmallPath(weights_.rows(), out_hw,
                                      weights_.cols()))
            return 0;
        return in_shape.dim(0) * weights_.cols() * out_hw;
    }

    int64_t constantBytes() const override { return weights_.bytes(); }

  private:
    tensor::PackedMatrix weights_;
    const Tensor &raw_;               //!< owned by the layer
    const std::vector<float> &bias_;  //!< owned by the layer
    tensor::Conv2dParams params_;
    bool relu_;
};

/** Conv weights blocked for the direct NCHWc kernel: no im2col, no
 *  scratch, bias/ReLU fused while the output tile is register-hot. */
class PreparedConv2dDirect final : public PreparedKernel
{
  public:
    PreparedConv2dDirect(const Tensor &weight,
                         const std::vector<float> &bias,
                         const tensor::Conv2dParams &params, bool relu)
        : weights_(tensor::packConvNchwc(
              weight, bias.empty() ? nullptr : bias.data(),
              static_cast<int64_t>(bias.size()))),
          params_(params), relu_(relu)
    {
    }

    void
    run(const float *input, const Shape &in_shape, float *out,
        float *scratch) const override
    {
        (void)scratch;  // the point of the direct kernel
        tensor::convDirectNchwc(input, in_shape.dim(0), in_shape.dim(1),
                                in_shape.dim(2), in_shape.dim(3),
                                weights_, params_, relu_, out);
    }

    int64_t constantBytes() const override { return weights_.bytes(); }

  private:
    tensor::PackedConvNchwc weights_;
    tensor::Conv2dParams params_;
    bool relu_;
};

/** Dense weights packed (transpose absorbed) as the B operand, with
 *  bias + ReLU fused into the kernel epilogue. */
class PreparedDense final : public PreparedKernel
{
  public:
    PreparedDense(const Tensor &weight, const std::vector<float> &bias,
                  bool relu)
        : weights_(tensor::packMatrixB(
              weight.data(), weight.shape().dim(1),
              weight.shape().dim(0), /*b_trans=*/true)),
          raw_(weight), bias_(bias), relu_(relu)
    {
    }

    void
    run(const float *input, const Shape &in_shape, float *out,
        float *scratch) const override
    {
        (void)scratch;  // GEMM packs into the thread arena
        const int64_t batch = in_shape.dim(0);
        const int64_t in = in_shape.dim(1);
        const int64_t features = weights_.cols();
        // Mirror the eager kernel's small-shape dispatch so compiled
        // results stay bit-identical to Layer::forward at every shape;
        // there is no pack step to skip below the threshold anyway.
        if (tensor::gemmUsesSmallPath(batch, features, in)) {
            tensor::denseForward(raw_.data(),
                                 bias_.empty() ? nullptr : bias_.data(),
                                 input, out, batch, in, features);
            if (relu_) {
                for (int64_t i = 0; i < batch * features; ++i) {
                    if (out[i] < 0.0f)
                        out[i] = 0.0f;
                }
            }
            return;
        }
        tensor::GemmEpilogue epilogue;
        epilogue.bias = bias_.empty() ? nullptr : bias_.data();
        epilogue.biasPerRow = false;  // C columns are output features
        epilogue.relu = relu_;
        tensor::gemmPrepacked(input, weights_, out, batch, features, in,
                              epilogue);
    }

    int64_t constantBytes() const override { return weights_.bytes(); }

  private:
    tensor::PackedMatrix weights_;
    const Tensor &raw_;               //!< owned by the layer
    const std::vector<float> &bias_;  //!< owned by the layer
    bool relu_;
};

} // namespace

// ---------------------------------------------------------------- Conv2d

Conv2dLayer::Conv2dLayer(Tensor weight, std::vector<float> bias,
                         tensor::Conv2dParams params, bool fuse_relu)
    : weight_(std::move(weight)), bias_(std::move(bias)),
      params_(params), fuseRelu_(fuse_relu)
{
    assert(weight_.shape().rank() == 4);
    assert(bias_.empty() ||
           static_cast<int64_t>(bias_.size()) == weight_.shape().dim(0));
}

Tensor
Conv2dLayer::forward(const Tensor &input) const
{
    Tensor out(outputShape(input.shape()));
    forwardInto(input.data(), input.shape(), out.data());
    return out;
}

void
Conv2dLayer::forwardInto(const float *input, const Shape &in_shape,
                         float *out) const
{
    assert(in_shape.rank() == 4);
    tensor::conv2dInto(input, in_shape.dim(0), in_shape.dim(1),
                       in_shape.dim(2), in_shape.dim(3), weight_,
                       bias_.empty() ? nullptr : bias_.data(), params_,
                       fuseRelu_, out);
}

Shape
Conv2dLayer::outputShape(const Shape &input) const
{
    return Shape{input.dim(0), weight_.shape().dim(0),
                 params_.outH(input.dim(2)), params_.outW(input.dim(3))};
}

uint64_t
Conv2dLayer::paramCount() const
{
    return static_cast<uint64_t>(weight_.numel()) + bias_.size();
}

std::unique_ptr<PreparedKernel>
Conv2dLayer::prepare(bool post_relu) const
{
    return std::make_unique<PreparedConv2d>(weight_, bias_, params_,
                                            fuseRelu_ || post_relu);
}

std::unique_ptr<PreparedKernel>
Conv2dLayer::prepareDirect(bool post_relu) const
{
    return std::make_unique<PreparedConv2dDirect>(
        weight_, bias_, params_, fuseRelu_ || post_relu);
}

uint64_t
Conv2dLayer::flops(const Shape &input) const
{
    const Shape out = outputShape(input);
    const uint64_t macs_per_pixel = static_cast<uint64_t>(
        weight_.shape().dim(1) * params_.kernelH * params_.kernelW);
    return 2 * macs_per_pixel *
           static_cast<uint64_t>(out.dim(1) * out.dim(2) * out.dim(3));
}

// ------------------------------------------------------- DepthwiseConv2d

DepthwiseConv2dLayer::DepthwiseConv2dLayer(Tensor weight,
                                           std::vector<float> bias,
                                           tensor::Conv2dParams params,
                                           bool fuse_relu)
    : weight_(std::move(weight)), bias_(std::move(bias)),
      params_(params), fuseRelu_(fuse_relu)
{
    assert(weight_.shape().rank() == 4);
    assert(weight_.shape().dim(1) == 1);
}

Tensor
DepthwiseConv2dLayer::forward(const Tensor &input) const
{
    Tensor out(outputShape(input.shape()));
    forwardInto(input.data(), input.shape(), out.data());
    return out;
}

void
DepthwiseConv2dLayer::forwardInto(const float *input,
                                  const Shape &in_shape,
                                  float *out) const
{
    assert(in_shape.rank() == 4);
    tensor::depthwiseConv2dInto(
        input, in_shape.dim(0), in_shape.dim(1), in_shape.dim(2),
        in_shape.dim(3), weight_,
        bias_.empty() ? nullptr : bias_.data(), params_, fuseRelu_,
        out);
}

Shape
DepthwiseConv2dLayer::outputShape(const Shape &input) const
{
    return Shape{input.dim(0), input.dim(1),
                 params_.outH(input.dim(2)), params_.outW(input.dim(3))};
}

uint64_t
DepthwiseConv2dLayer::paramCount() const
{
    return static_cast<uint64_t>(weight_.numel()) + bias_.size();
}

uint64_t
DepthwiseConv2dLayer::flops(const Shape &input) const
{
    const Shape out = outputShape(input);
    return 2 * static_cast<uint64_t>(params_.kernelH * params_.kernelW) *
           static_cast<uint64_t>(out.dim(1) * out.dim(2) * out.dim(3));
}

// ----------------------------------------------------------------- Dense

DenseLayer::DenseLayer(Tensor weight, std::vector<float> bias,
                       bool fuse_relu)
    : weight_(std::move(weight)), bias_(std::move(bias)),
      fuseRelu_(fuse_relu)
{
    assert(weight_.shape().rank() == 2);
    assert(bias_.empty() ||
           static_cast<int64_t>(bias_.size()) == weight_.shape().dim(0));
}

Tensor
DenseLayer::forward(const Tensor &input) const
{
    assert(input.shape().rank() == 2);
    Tensor y(outputShape(input.shape()));
    forwardInto(input.data(), input.shape(), y.data());
    return y;
}

void
DenseLayer::forwardInto(const float *input, const Shape &in_shape,
                        float *out) const
{
    assert(in_shape.rank() == 2);
    const int64_t batch = in_shape.dim(0);
    const int64_t in = in_shape.dim(1);
    const int64_t out_dim = weight_.shape().dim(0);
    assert(weight_.shape().dim(1) == in);
    tensor::denseForward(weight_.data(),
                         bias_.empty() ? nullptr : bias_.data(), input,
                         out, batch, in, out_dim);
    if (fuseRelu_) {
        const int64_t n = batch * out_dim;
        for (int64_t i = 0; i < n; ++i) {
            if (out[i] < 0.0f)
                out[i] = 0.0f;
        }
    }
}

Shape
DenseLayer::outputShape(const Shape &input) const
{
    return Shape{input.dim(0), weight_.shape().dim(0)};
}

uint64_t
DenseLayer::paramCount() const
{
    return static_cast<uint64_t>(weight_.numel()) + bias_.size();
}

std::unique_ptr<PreparedKernel>
DenseLayer::prepare(bool post_relu) const
{
    return std::make_unique<PreparedDense>(weight_, bias_,
                                           fuseRelu_ || post_relu);
}

uint64_t
DenseLayer::flops(const Shape &input) const
{
    (void)input;
    return 2 * static_cast<uint64_t>(weight_.numel());
}

// --------------------------------------------------------------- Pooling

Tensor
MaxPoolLayer::forward(const Tensor &input) const
{
    return tensor::maxPool2d(input, kernel_, stride_);
}

void
MaxPoolLayer::forwardInto(const float *input, const Shape &in_shape,
                          float *out) const
{
    assert(in_shape.rank() == 4);
    tensor::maxPool2dInto(input, in_shape.dim(0), in_shape.dim(1),
                          in_shape.dim(2), in_shape.dim(3), kernel_,
                          stride_, out);
}

Shape
MaxPoolLayer::outputShape(const Shape &input) const
{
    return Shape{input.dim(0), input.dim(1),
                 (input.dim(2) - kernel_) / stride_ + 1,
                 (input.dim(3) - kernel_) / stride_ + 1};
}

Tensor
AvgPoolLayer::forward(const Tensor &input) const
{
    return tensor::avgPool2d(input, kernel_, stride_);
}

void
AvgPoolLayer::forwardInto(const float *input, const Shape &in_shape,
                          float *out) const
{
    assert(in_shape.rank() == 4);
    tensor::avgPool2dInto(input, in_shape.dim(0), in_shape.dim(1),
                          in_shape.dim(2), in_shape.dim(3), kernel_,
                          stride_, out);
}

Shape
AvgPoolLayer::outputShape(const Shape &input) const
{
    return Shape{input.dim(0), input.dim(1),
                 (input.dim(2) - kernel_) / stride_ + 1,
                 (input.dim(3) - kernel_) / stride_ + 1};
}

Tensor
GlobalAvgPoolLayer::forward(const Tensor &input) const
{
    return tensor::globalAvgPool(input);
}

void
GlobalAvgPoolLayer::forwardInto(const float *input,
                                const Shape &in_shape,
                                float *out) const
{
    assert(in_shape.rank() == 4);
    tensor::globalAvgPoolInto(input, in_shape.dim(0), in_shape.dim(1),
                              in_shape.dim(2), in_shape.dim(3), out);
}

Shape
GlobalAvgPoolLayer::outputShape(const Shape &input) const
{
    return Shape{input.dim(0), input.dim(1)};
}

Tensor
FlattenLayer::forward(const Tensor &input) const
{
    return input.reshaped(outputShape(input.shape()));
}

void
FlattenLayer::forwardInto(const float *input, const Shape &in_shape,
                          float *out) const
{
    std::copy(input, input + in_shape.numel(), out);
}

Shape
FlattenLayer::outputShape(const Shape &input) const
{
    int64_t rest = 1;
    for (int64_t i = 1; i < input.rank(); ++i)
        rest *= input.dim(i);
    return Shape{input.dim(0), rest};
}

// ------------------------------------------------------- Relu / BN

Tensor
ReluLayer::forward(const Tensor &input) const
{
    Tensor out = input;
    reluInplace(out);
    return out;
}

void
ReluLayer::forwardInto(const float *input, const Shape &in_shape,
                       float *out) const
{
    const int64_t n = in_shape.numel();
    for (int64_t i = 0; i < n; ++i)
        out[i] = input[i] < 0.0f ? 0.0f : input[i];
}

BatchNormLayer::BatchNormLayer(std::vector<float> gamma,
                               std::vector<float> beta,
                               std::vector<float> mean,
                               std::vector<float> var, float eps)
{
    assert(gamma.size() == beta.size() &&
           gamma.size() == mean.size() && gamma.size() == var.size());
    scale_.resize(gamma.size());
    shift_.resize(gamma.size());
    for (size_t c = 0; c < gamma.size(); ++c) {
        const float inv_std =
            1.0f / std::sqrt(var[c] + eps);
        scale_[c] = gamma[c] * inv_std;
        shift_[c] = beta[c] - mean[c] * scale_[c];
    }
}

Tensor
BatchNormLayer::forward(const Tensor &input) const
{
    Tensor out(input.shape());
    forwardInto(input.data(), input.shape(), out.data());
    return out;
}

void
BatchNormLayer::forwardInto(const float *input, const Shape &in_shape,
                            float *out) const
{
    assert(in_shape.rank() >= 2);
    const int64_t n = in_shape.dim(0);
    const int64_t c = in_shape.dim(1);
    assert(c == channels());
    const int64_t inner = in_shape.numel() / (n * c);
    for (int64_t nc = 0; nc < n * c; ++nc) {
        const int64_t ci = nc % c;
        const float s = scale_[static_cast<size_t>(ci)];
        const float b = shift_[static_cast<size_t>(ci)];
        const float *src = input + nc * inner;
        float *dst = out + nc * inner;
        for (int64_t i = 0; i < inner; ++i)
            dst[i] = s * src[i] + b;
    }
}

// -------------------------------------------------------- ResidualBlock

ResidualBlock::ResidualBlock(std::unique_ptr<Conv2dLayer> conv1,
                             std::unique_ptr<Conv2dLayer> conv2,
                             std::unique_ptr<Conv2dLayer> projection)
    : conv1_(std::move(conv1)), conv2_(std::move(conv2)),
      projection_(std::move(projection))
{
}

Tensor
ResidualBlock::forward(const Tensor &input) const
{
    Tensor main = conv2_->forward(conv1_->forward(input));
    const Tensor skip =
        projection_ ? projection_->forward(input) : input;
    assert(main.shape() == skip.shape());
    float *p = main.data();
    const float *s = skip.data();
    const int64_t n = main.numel();
    for (int64_t i = 0; i < n; ++i) {
        p[i] += s[i];
        if (p[i] < 0.0f)
            p[i] = 0.0f;  // post-add ReLU
    }
    return main;
}

Shape
ResidualBlock::outputShape(const Shape &input) const
{
    return conv2_->outputShape(conv1_->outputShape(input));
}

uint64_t
ResidualBlock::paramCount() const
{
    uint64_t n = conv1_->paramCount() + conv2_->paramCount();
    if (projection_)
        n += projection_->paramCount();
    return n;
}

uint64_t
ResidualBlock::flops(const Shape &input) const
{
    uint64_t n = conv1_->flops(input) +
                 conv2_->flops(conv1_->outputShape(input));
    if (projection_)
        n += projection_->flops(input);
    return n;
}

int
ResidualBlock::lower(ModelGraph &graph, int input) const
{
    GraphNode c1;
    c1.kind = OpKind::Conv2d;
    c1.layer = conv1_.get();
    c1.inputs = {input};
    c1.label = "residual/conv1";
    const int c1_id = graph.addNode(std::move(c1));

    GraphNode c2;
    c2.kind = OpKind::Conv2d;
    c2.layer = conv2_.get();
    c2.inputs = {c1_id};
    c2.label = "residual/conv2";
    const int c2_id = graph.addNode(std::move(c2));

    int skip = input;
    if (projection_) {
        GraphNode proj;
        proj.kind = OpKind::Conv2d;
        proj.layer = projection_.get();
        proj.inputs = {input};
        proj.label = "residual/proj";
        skip = graph.addNode(std::move(proj));
    }

    GraphNode add;
    add.kind = OpKind::Add;
    add.inputs = {c2_id, skip};
    add.postRelu = true;  // the block's post-add ReLU
    add.label = "residual/add";
    return graph.addNode(std::move(add));
}

} // namespace nn
} // namespace mlperf
