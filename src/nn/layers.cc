#include "nn/layers.h"

#include <cassert>

#include "nn/activations.h"
#include "tensor/gemm.h"

namespace mlperf {
namespace nn {

using tensor::Shape;
using tensor::Tensor;

// ---------------------------------------------------------------- Conv2d

Conv2dLayer::Conv2dLayer(Tensor weight, std::vector<float> bias,
                         tensor::Conv2dParams params, bool fuse_relu)
    : weight_(std::move(weight)), bias_(std::move(bias)),
      params_(params), fuseRelu_(fuse_relu)
{
    assert(weight_.shape().rank() == 4);
    assert(bias_.empty() ||
           static_cast<int64_t>(bias_.size()) == weight_.shape().dim(0));
}

Tensor
Conv2dLayer::forward(const Tensor &input) const
{
    Tensor out = tensor::conv2d(
        input, weight_, bias_.empty() ? nullptr : bias_.data(), params_);
    if (fuseRelu_)
        reluInplace(out);
    return out;
}

Shape
Conv2dLayer::outputShape(const Shape &input) const
{
    return Shape{input.dim(0), weight_.shape().dim(0),
                 params_.outH(input.dim(2)), params_.outW(input.dim(3))};
}

uint64_t
Conv2dLayer::paramCount() const
{
    return static_cast<uint64_t>(weight_.numel()) + bias_.size();
}

uint64_t
Conv2dLayer::flops(const Shape &input) const
{
    const Shape out = outputShape(input);
    const uint64_t macs_per_pixel = static_cast<uint64_t>(
        weight_.shape().dim(1) * params_.kernelH * params_.kernelW);
    return 2 * macs_per_pixel *
           static_cast<uint64_t>(out.dim(1) * out.dim(2) * out.dim(3));
}

// ------------------------------------------------------- DepthwiseConv2d

DepthwiseConv2dLayer::DepthwiseConv2dLayer(Tensor weight,
                                           std::vector<float> bias,
                                           tensor::Conv2dParams params,
                                           bool fuse_relu)
    : weight_(std::move(weight)), bias_(std::move(bias)),
      params_(params), fuseRelu_(fuse_relu)
{
    assert(weight_.shape().rank() == 4);
    assert(weight_.shape().dim(1) == 1);
}

Tensor
DepthwiseConv2dLayer::forward(const Tensor &input) const
{
    Tensor out = tensor::depthwiseConv2d(
        input, weight_, bias_.empty() ? nullptr : bias_.data(), params_);
    if (fuseRelu_)
        reluInplace(out);
    return out;
}

Shape
DepthwiseConv2dLayer::outputShape(const Shape &input) const
{
    return Shape{input.dim(0), input.dim(1),
                 params_.outH(input.dim(2)), params_.outW(input.dim(3))};
}

uint64_t
DepthwiseConv2dLayer::paramCount() const
{
    return static_cast<uint64_t>(weight_.numel()) + bias_.size();
}

uint64_t
DepthwiseConv2dLayer::flops(const Shape &input) const
{
    const Shape out = outputShape(input);
    return 2 * static_cast<uint64_t>(params_.kernelH * params_.kernelW) *
           static_cast<uint64_t>(out.dim(1) * out.dim(2) * out.dim(3));
}

// ----------------------------------------------------------------- Dense

DenseLayer::DenseLayer(Tensor weight, std::vector<float> bias,
                       bool fuse_relu)
    : weight_(std::move(weight)), bias_(std::move(bias)),
      fuseRelu_(fuse_relu)
{
    assert(weight_.shape().rank() == 2);
    assert(bias_.empty() ||
           static_cast<int64_t>(bias_.size()) == weight_.shape().dim(0));
}

Tensor
DenseLayer::forward(const Tensor &input) const
{
    assert(input.shape().rank() == 2);
    const int64_t batch = input.shape().dim(0);
    const int64_t in = input.shape().dim(1);
    const int64_t out = weight_.shape().dim(0);
    assert(weight_.shape().dim(1) == in);
    Tensor y(Shape{batch, out});
    tensor::denseForward(weight_.data(),
                         bias_.empty() ? nullptr : bias_.data(),
                         input.data(), y.data(), batch, in, out);
    if (fuseRelu_)
        reluInplace(y);
    return y;
}

Shape
DenseLayer::outputShape(const Shape &input) const
{
    return Shape{input.dim(0), weight_.shape().dim(0)};
}

uint64_t
DenseLayer::paramCount() const
{
    return static_cast<uint64_t>(weight_.numel()) + bias_.size();
}

uint64_t
DenseLayer::flops(const Shape &input) const
{
    (void)input;
    return 2 * static_cast<uint64_t>(weight_.numel());
}

// --------------------------------------------------------------- Pooling

Tensor
MaxPoolLayer::forward(const Tensor &input) const
{
    return tensor::maxPool2d(input, kernel_, stride_);
}

Shape
MaxPoolLayer::outputShape(const Shape &input) const
{
    return Shape{input.dim(0), input.dim(1),
                 (input.dim(2) - kernel_) / stride_ + 1,
                 (input.dim(3) - kernel_) / stride_ + 1};
}

Tensor
AvgPoolLayer::forward(const Tensor &input) const
{
    assert(input.shape().rank() == 4);
    const int64_t n = input.shape().dim(0);
    const int64_t c = input.shape().dim(1);
    const int64_t h = input.shape().dim(2);
    const int64_t w = input.shape().dim(3);
    const Shape out_shape = outputShape(input.shape());
    const int64_t out_h = out_shape.dim(2);
    const int64_t out_w = out_shape.dim(3);
    const float inv =
        1.0f / static_cast<float>(kernel_ * kernel_);
    Tensor output(out_shape);
    for (int64_t ni = 0; ni < n; ++ni) {
        for (int64_t ci = 0; ci < c; ++ci) {
            const float *chan = input.data() + (ni * c + ci) * h * w;
            float *out =
                output.data() + (ni * c + ci) * out_h * out_w;
            for (int64_t oh = 0; oh < out_h; ++oh) {
                for (int64_t ow = 0; ow < out_w; ++ow) {
                    float sum = 0.0f;
                    for (int64_t kh = 0; kh < kernel_; ++kh) {
                        for (int64_t kw = 0; kw < kernel_; ++kw) {
                            sum += chan[(oh * stride_ + kh) * w +
                                        ow * stride_ + kw];
                        }
                    }
                    out[oh * out_w + ow] = sum * inv;
                }
            }
        }
    }
    return output;
}

Shape
AvgPoolLayer::outputShape(const Shape &input) const
{
    return Shape{input.dim(0), input.dim(1),
                 (input.dim(2) - kernel_) / stride_ + 1,
                 (input.dim(3) - kernel_) / stride_ + 1};
}

Tensor
GlobalAvgPoolLayer::forward(const Tensor &input) const
{
    return tensor::globalAvgPool(input);
}

Shape
GlobalAvgPoolLayer::outputShape(const Shape &input) const
{
    return Shape{input.dim(0), input.dim(1)};
}

Tensor
FlattenLayer::forward(const Tensor &input) const
{
    return input.reshaped(outputShape(input.shape()));
}

Shape
FlattenLayer::outputShape(const Shape &input) const
{
    int64_t rest = 1;
    for (int64_t i = 1; i < input.rank(); ++i)
        rest *= input.dim(i);
    return Shape{input.dim(0), rest};
}

// -------------------------------------------------------- ResidualBlock

ResidualBlock::ResidualBlock(std::unique_ptr<Conv2dLayer> conv1,
                             std::unique_ptr<Conv2dLayer> conv2,
                             std::unique_ptr<Conv2dLayer> projection)
    : conv1_(std::move(conv1)), conv2_(std::move(conv2)),
      projection_(std::move(projection))
{
}

Tensor
ResidualBlock::forward(const Tensor &input) const
{
    Tensor main = conv2_->forward(conv1_->forward(input));
    const Tensor skip =
        projection_ ? projection_->forward(input) : input;
    assert(main.shape() == skip.shape());
    float *p = main.data();
    const float *s = skip.data();
    const int64_t n = main.numel();
    for (int64_t i = 0; i < n; ++i) {
        p[i] += s[i];
        if (p[i] < 0.0f)
            p[i] = 0.0f;  // post-add ReLU
    }
    return main;
}

Shape
ResidualBlock::outputShape(const Shape &input) const
{
    return conv2_->outputShape(conv1_->outputShape(input));
}

uint64_t
ResidualBlock::paramCount() const
{
    uint64_t n = conv1_->paramCount() + conv2_->paramCount();
    if (projection_)
        n += projection_->paramCount();
    return n;
}

uint64_t
ResidualBlock::flops(const Shape &input) const
{
    uint64_t n = conv1_->flops(input) +
                 conv2_->flops(conv1_->outputShape(input));
    if (projection_)
        n += projection_->flops(input);
    return n;
}

} // namespace nn
} // namespace mlperf
