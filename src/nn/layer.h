/**
 * @file
 * Layer interface for the inference engine.
 *
 * Layers are immutable after construction (inference only) and expose
 * parameter and FLOP counts so the model zoo can report the complexity
 * metadata the paper uses (Table I parameters/GOPs, Figure 1 Pareto).
 */

#ifndef MLPERF_NN_LAYER_H
#define MLPERF_NN_LAYER_H

#include <cstdint>
#include <string>

#include "tensor/tensor.h"

namespace mlperf {
namespace nn {

class Layer
{
  public:
    virtual ~Layer() = default;

    /** Run inference on a batch; input layout is layer specific. */
    virtual tensor::Tensor forward(const tensor::Tensor &input) const = 0;

    /** Shape produced for a given input shape (used for FLOP chains). */
    virtual tensor::Shape
    outputShape(const tensor::Shape &input) const = 0;

    /** Trainable parameter count. */
    virtual uint64_t paramCount() const { return 0; }

    /**
     * Multiply-accumulate-dominated operation count for ONE sample of
     * the given input shape, counting a MAC as 2 ops (the convention
     * behind the paper's GOPS/input column).
     */
    virtual uint64_t flops(const tensor::Shape &input) const
    {
        (void)input;
        return 0;
    }

    virtual std::string name() const = 0;
};

} // namespace nn
} // namespace mlperf

#endif // MLPERF_NN_LAYER_H
