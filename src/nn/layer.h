/**
 * @file
 * Layer interface for the inference engine.
 *
 * Layers are immutable after construction (inference only) and expose
 * parameter and FLOP counts so the model zoo can report the complexity
 * metadata the paper uses (Table I parameters/GOPs, Figure 1 Pareto).
 */

#ifndef MLPERF_NN_LAYER_H
#define MLPERF_NN_LAYER_H

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>

#include "tensor/tensor.h"

namespace mlperf {
namespace nn {

/**
 * Graph-compiler operator kind (see nn/graph.h). Lives here so any
 * layer — including ones in higher-level modules like quant — can
 * declare how it lowers without the graph depending on those modules.
 */
enum class OpKind
{
    Conv2d,
    DepthwiseConv2d,
    Dense,
    MaxPool,
    AvgPool,
    GlobalAvgPool,
    Flatten,   //!< reshape; aliases its input buffer in the plan
    Relu,
    BatchNorm,
    Add,       //!< elementwise skip-add; the only two-input node
    QConv2d,
    QDepthwiseConv2d,
    QDense,
    LayoutConvert, //!< NCHW<->NCHWc re-tile; inserted by propagateLayout
    Opaque,    //!< any other layer; executes via Layer::forwardInto
};

/**
 * Activation memory layout of a graph edge. NCHW is the default
 * row-major form every layer understands; NCHWc is the
 * channel-blocked tiling (tensor/conv_direct.h, c = 8) that the
 * direct convolution kernels consume. The layout-propagation pass
 * (ModelGraph::propagateLayout) assigns one per node and inserts
 * explicit LayoutConvert nodes where producers and consumers
 * disagree.
 */
enum class Layout
{
    NCHW,
    NCHWc,
};

/**
 * A layer's compile-time-prepared execution state: weights packed once
 * into the micro-kernel's panel layout (the plan's constant-data
 * section) plus a fused epilogue — bias, ReLU, int8 requantize —
 * applied while each output tile is still cache-hot. Built by
 * Layer::prepare() when a CompiledModel constructs a plan; immutable
 * afterwards and shared read-only across all worker threads running
 * that model.
 */
class PreparedKernel
{
  public:
    virtual ~PreparedKernel() = default;

    /**
     * Execute the layer from/into caller buffers, same contract as
     * Layer::forwardInto, except any post-op fused at prepare() time
     * (including a graph-level post-ReLU) is already applied — the
     * executor must not re-run it. Heap-allocation-free in steady
     * state: scratch comes from the thread-local arena, constants
     * from the prepack done at build time.
     */
    virtual void run(const float *input, const tensor::Shape &in_shape,
                     float *out, float *scratch) const = 0;

    /** Bytes of prepacked constant data this kernel owns. */
    virtual int64_t constantBytes() const = 0;

    /**
     * Floats of per-invocation scratch run() needs for @p in_shape.
     * Non-zero means the memory planner carves the scratch out of the
     * plan arena (live only during this step, so the liveness planner
     * overlaps it with dead activations) and passes it to run();
     * kernels returning 0 receive null and must not touch it. Direct
     * NCHWc convolution returns 0 — that is the whole point.
     */
    virtual int64_t scratchFloats(const tensor::Shape &in_shape) const
    {
        (void)in_shape;
        return 0;
    }
};

class Layer
{
  public:
    virtual ~Layer() = default;

    /**
     * How the graph compiler classifies this layer. Opaque layers
     * still compile (the executor falls back to forwardInto) but are
     * invisible to the fusion passes.
     */
    virtual OpKind opKind() const { return OpKind::Opaque; }

    /** Run inference on a batch; input layout is layer specific. */
    virtual tensor::Tensor forward(const tensor::Tensor &input) const = 0;

    /**
     * Run inference from/into caller-provided buffers: @p input holds
     * a tensor of @p in_shape, @p out receives outputShape(in_shape)
     * elements. The compiled-plan executor (nn/plan.h) runs entirely
     * on this entry point with arena-planned buffers; hot layers
     * override it to be allocation-free, and this default keeps any
     * layer correct (eager forward plus a copy) so compilation is
     * total over the zoo.
     */
    virtual void
    forwardInto(const float *input, const tensor::Shape &in_shape,
                float *out) const
    {
        tensor::Tensor x(in_shape);
        std::copy(input, input + x.numel(), x.data());
        const tensor::Tensor y = forward(x);
        std::copy(y.data(), y.data() + y.numel(), out);
    }

    /**
     * Build this layer's prepacked compile-time form, folding
     * @p post_relu (a graph-level fused ReLU on the node) into the
     * epilogue. Returns null when the layer has no prepacked path —
     * the compiled executor then falls back to forwardInto plus a
     * separate post-ReLU pass. Called once per (layer, post_relu)
     * at plan-build time, never on the query path.
     */
    virtual std::unique_ptr<PreparedKernel> prepare(bool post_relu) const
    {
        (void)post_relu;
        return nullptr;
    }

    /**
     * Whether this layer has a direct NCHWc kernel (prepareDirect).
     * The layout-propagation pass only assigns the tiled layout to
     * nodes whose layer says yes.
     */
    virtual bool supportsNchwc() const { return false; }

    /**
     * Build the NCHWc direct-kernel form of this layer: run() then
     * consumes and produces channel-blocked activations (logical
     * shapes stay NCHW — the executor sizes buffers physically).
     * Only called when supportsNchwc() is true.
     */
    virtual std::unique_ptr<PreparedKernel>
    prepareDirect(bool post_relu) const
    {
        (void)post_relu;
        return nullptr;
    }

    /** Shape produced for a given input shape (used for FLOP chains). */
    virtual tensor::Shape
    outputShape(const tensor::Shape &input) const = 0;

    /** Trainable parameter count. */
    virtual uint64_t paramCount() const { return 0; }

    /**
     * Multiply-accumulate-dominated operation count for ONE sample of
     * the given input shape, counting a MAC as 2 ops (the convention
     * behind the paper's GOPS/input column).
     */
    virtual uint64_t flops(const tensor::Shape &input) const
    {
        (void)input;
        return 0;
    }

    virtual std::string name() const = 0;
};

} // namespace nn
} // namespace mlperf

#endif // MLPERF_NN_LAYER_H
