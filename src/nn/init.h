/**
 * @file
 * Deterministic weight initialization.
 *
 * The proxy models are not trained by gradient descent; their "weights"
 * are constructed deterministically from a seed (plus task-specific
 * structure injected by src/models) so every run of the benchmark sees
 * bit-identical models — the property the paper gets from distributing
 * fixed reference weights.
 */

#ifndef MLPERF_NN_INIT_H
#define MLPERF_NN_INIT_H

#include "common/rng.h"
#include "tensor/tensor.h"

namespace mlperf {
namespace nn {

/** He-normal initialization: N(0, sqrt(2 / fan_in)). */
tensor::Tensor heNormal(tensor::Shape shape, int64_t fan_in, Rng &rng);

/** Uniform initialization in [-limit, limit]. */
tensor::Tensor uniformInit(tensor::Shape shape, float limit, Rng &rng);

/** Zero-filled bias vector. */
std::vector<float> zeroBias(int64_t n);

/** Small random bias vector (scale * N(0,1)). */
std::vector<float> randomBias(int64_t n, float scale, Rng &rng);

} // namespace nn
} // namespace mlperf

#endif // MLPERF_NN_INIT_H
