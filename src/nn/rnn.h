/**
 * @file
 * Recurrent primitives for the GNMT proxy model: token embedding and
 * an LSTM cell. The paper includes GNMT specifically so the suite
 * "captures a variety of compute motifs" (RNNs alongside CNNs); these
 * primitives provide that motif in the model zoo.
 */

#ifndef MLPERF_NN_RNN_H
#define MLPERF_NN_RNN_H

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace mlperf {
namespace nn {

/** Token-id -> dense vector lookup table. */
class Embedding
{
  public:
    /** @param table [vocab, dim] */
    explicit Embedding(tensor::Tensor table);

    /** Look up a batch of token ids -> [batch, dim]. */
    tensor::Tensor forward(const std::vector<int64_t> &tokens) const;

    /**
     * Non-allocating lookup of one token into caller storage (@p out
     * holds dim() floats). forward() delegates here, so the two are
     * bit-identical by construction — the invariant the autoregressive
     * decode path relies on.
     */
    void lookupInto(int64_t token, float *out) const;

    int64_t vocabSize() const { return table_.shape().dim(0); }
    int64_t dim() const { return table_.shape().dim(1); }
    uint64_t paramCount() const
    {
        return static_cast<uint64_t>(table_.numel());
    }

  private:
    tensor::Tensor table_;
};

/**
 * Single LSTM cell. Gate layout in the packed weight matrices is
 * [i; f; g; o] (input, forget, cell, output), each of size hidden.
 */
class LSTMCell
{
  public:
    /**
     * @param w_x [4*hidden, input]
     * @param w_h [4*hidden, hidden]
     * @param bias [4*hidden]
     */
    LSTMCell(tensor::Tensor w_x, tensor::Tensor w_h,
             std::vector<float> bias);

    struct State
    {
        tensor::Tensor h;  //!< [batch, hidden]
        tensor::Tensor c;  //!< [batch, hidden]
    };

    /** Zero-initialized state for a batch. */
    State initialState(int64_t batch) const;

    /** One step: consumes x [batch, input], updates state in place. */
    void step(const tensor::Tensor &x, State &state) const;

    /**
     * Raw step over caller-owned buffers — the zero-alloc form used by
     * the streaming decoder's per-sequence state pool. @p x is
     * [batch, input], @p h / @p c are [batch, hidden] and are updated
     * in place; @p gates and @p rec are scratch of [batch, 4*hidden]
     * floats each. step() delegates here, so stepping a sequence
     * through stepInto() is bit-identical to step() no matter how the
     * calls interleave with other sequences' steps.
     */
    void stepInto(const float *x, int64_t batch, float *h, float *c,
                  float *gates, float *rec) const;

    int64_t inputSize() const { return wX_.shape().dim(1); }
    int64_t hiddenSize() const { return wH_.shape().dim(1); }
    uint64_t paramCount() const;

    /** MAC-dominated op count (x2) for one step at batch 1. */
    uint64_t flopsPerStep() const;

  private:
    tensor::Tensor wX_;
    tensor::Tensor wH_;
    std::vector<float> bias_;
};

/**
 * Dot-product attention: scores = decoder_state . encoder_states[t],
 * context = sum_t softmax(scores)_t * encoder_states[t].
 *
 * @param encoder_states [steps, hidden]
 * @param query [1, hidden]
 * @return context [1, hidden]
 */
tensor::Tensor dotAttention(const tensor::Tensor &encoder_states,
                            const tensor::Tensor &query);

/**
 * Non-allocating dotAttention over raw buffers: @p encoder_states is
 * [steps, hidden] row-major, @p query and @p context are [hidden]
 * (context is overwritten), and @p scores_scratch holds @p steps
 * doubles. dotAttention() delegates here; bit-identical results.
 */
void dotAttentionInto(const float *encoder_states, int64_t steps,
                      int64_t hidden, const float *query,
                      float *context, double *scores_scratch);

} // namespace nn
} // namespace mlperf

#endif // MLPERF_NN_RNN_H
