#include "nn/memory_planner.h"

#include <algorithm>
#include <cassert>

namespace mlperf {
namespace nn {

namespace {

struct FreeBlock
{
    int64_t offset;
    int64_t size;
};

/** Insert into the offset-sorted free list, merging neighbors. */
void
release(std::vector<FreeBlock> &free_list, int64_t offset, int64_t size)
{
    auto it = std::lower_bound(
        free_list.begin(), free_list.end(), offset,
        [](const FreeBlock &b, int64_t off) { return b.offset < off; });
    it = free_list.insert(it, FreeBlock{offset, size});
    // Merge with successor.
    const auto next = it + 1;
    if (next != free_list.end() && it->offset + it->size == next->offset) {
        it->size += next->size;
        free_list.erase(next);
    }
    // Merge with predecessor.
    if (it != free_list.begin()) {
        const auto prev = it - 1;
        if (prev->offset + prev->size == it->offset) {
            prev->size += it->size;
            free_list.erase(it);
        }
    }
}

} // namespace

MemoryPlan
planBuffers(const std::vector<BufferRequest> &requests, int64_t alignment)
{
    assert(alignment > 0 && (alignment & (alignment - 1)) == 0);
    MemoryPlan plan;
    plan.offsets.assign(requests.size(), 0);

    const auto alignUp = [alignment](int64_t v) {
        return (v + alignment - 1) & ~(alignment - 1);
    };
    for (const BufferRequest &r : requests) {
        assert(r.lastUse >= r.def);
        plan.naiveBytes += alignUp(r.bytes);
    }

    // Placement order: by definition step; within a step, larger
    // buffers first so the big tensors claim the best-fitting holes.
    std::vector<size_t> order(requests.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        if (requests[a].def != requests[b].def)
            return requests[a].def < requests[b].def;
        if (requests[a].bytes != requests[b].bytes)
            return requests[a].bytes > requests[b].bytes;
        return a < b;
    });

    std::vector<FreeBlock> free_list;  // sorted by offset
    struct Active
    {
        size_t request;
        int64_t offset;
        int64_t size;
    };
    std::vector<Active> active;

    for (const size_t idx : order) {
        const BufferRequest &req = requests[idx];

        // Free every buffer whose last reader ran before this step.
        for (size_t i = 0; i < active.size();) {
            if (requests[active[i].request].lastUse < req.def) {
                release(free_list, active[i].offset, active[i].size);
                active[i] = active.back();
                active.pop_back();
            } else {
                ++i;
            }
        }

        const int64_t need = alignUp(req.bytes);
        if (need == 0)
            continue;

        // Best fit: the smallest free block that still holds `need`.
        auto best = free_list.end();
        for (auto it = free_list.begin(); it != free_list.end(); ++it) {
            if (it->size >= need &&
                (best == free_list.end() || it->size < best->size))
                best = it;
        }

        int64_t offset;
        if (best != free_list.end()) {
            offset = best->offset;
            best->offset += need;
            best->size -= need;
            if (best->size == 0)
                free_list.erase(best);
        } else if (!free_list.empty() &&
                   free_list.back().offset + free_list.back().size ==
                       plan.arenaBytes) {
            // Grow the arena, absorbing the trailing free block so the
            // extension only covers the shortfall.
            offset = free_list.back().offset;
            free_list.pop_back();
            plan.arenaBytes = offset + need;
        } else {
            offset = plan.arenaBytes;
            plan.arenaBytes += need;
        }
        plan.offsets[idx] = offset;
        active.push_back(Active{idx, offset, need});
    }
    return plan;
}

} // namespace nn
} // namespace mlperf
