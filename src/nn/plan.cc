#include "nn/plan.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>

#include "nn/memory_planner.h"

namespace mlperf {
namespace nn {

using tensor::Shape;
using tensor::Tensor;

CompiledModel::CompiledModel(const Sequential &model,
                             Shape sample_shape, CompileOptions options)
    : graph_(ModelGraph::fromSequential(model)),
      sampleShape_(std::move(sample_shape)), options_(options)
{
    if (options.foldBatchNorm)
        graph_.foldBatchNorm();
    if (options.fuseRelu)
        graph_.fuseRelu();
    if (options.eliminateDeadNodes)
        graph_.eliminateDeadNodes();
    graph_.markFusableEpilogues();
}

CompiledModel::CompiledModel(ModelGraph graph, Shape sample_shape,
                             CompileOptions options)
    : graph_(std::move(graph)), sampleShape_(std::move(sample_shape)),
      options_(options)
{
    graph_.markFusableEpilogues();
}

void
CompiledModel::invalidatePlans()
{
    std::unique_lock<std::shared_mutex> lock(mutex_);
    plans_.clear();
    // The packed constants were built from the graph's previous
    // layers; after a mutation (e.g. quantizeGraph swapped fp32 convs
    // for int8 ones) they would execute the old weights. Drop them so
    // the next planFor() re-prepares from the current layers.
    constants_.clear();
    graph_.markFusableEpilogues();
}

const Plan &
CompiledModel::planFor(int64_t batch) const
{
    {
        std::shared_lock<std::shared_mutex> lock(mutex_);
        auto it = plans_.find(batch);
        if (it != plans_.end())
            return *it->second;
    }
    std::unique_lock<std::shared_mutex> lock(mutex_);
    auto it = plans_.find(batch);
    if (it == plans_.end()) {
        auto plan = std::make_unique<Plan>(buildPlan(batch));
        if (options_.prepackConstants)
            attachConstants(*plan);
        it = plans_.emplace(batch, std::move(plan)).first;
    }
    return *it->second;
}

int64_t
CompiledModel::constantBytes() const
{
    std::shared_lock<std::shared_mutex> lock(mutex_);
    int64_t total = 0;
    for (const auto &entry : constants_)
        total += entry.second->constantBytes();
    return total;
}

void
CompiledModel::attachConstants(Plan &plan) const
{
    for (PlanStep &step : plan.steps) {
        // Only nodes the graph pass marked may prepack; the mark is
        // kept current by replaceNodeLayer and invalidatePlans.
        if (step.layer == nullptr || !step.fusableEpilogue)
            continue;
        const auto key = std::make_pair(step.layer, step.postRelu);
        auto it = constants_.find(key);
        if (it == constants_.end()) {
            std::unique_ptr<PreparedKernel> kernel =
                step.layer->prepare(step.postRelu);
            if (kernel == nullptr)
                continue;
            it = constants_.emplace(key, std::move(kernel)).first;
        }
        step.prepared = it->second.get();
    }
    int64_t total = 0;
    for (const auto &entry : constants_)
        total += entry.second->constantBytes();
    plan.constantBytes = total;
}

Plan
CompiledModel::buildPlan(int64_t batch) const
{
    assert(batch > 0);
    assert(graph_.outputNode() >= 0);

    std::vector<int64_t> dims;
    dims.reserve(static_cast<size_t>(sampleShape_.rank()) + 1);
    dims.push_back(batch);
    for (int64_t i = 0; i < sampleShape_.rank(); ++i)
        dims.push_back(sampleShape_.dim(i));
    const Shape input_shape(std::move(dims));

    const std::vector<Shape> shapes = graph_.inferShapes(input_shape);

    // Value slots: one materialized buffer per graph value. Slot 0 is
    // the graph input; Flatten nodes alias their producer's slot (a
    // reshape moves no data), everything else gets its own.
    struct SlotInfo
    {
        int64_t numel;
        int def;
        int lastUse;
    };
    std::vector<SlotInfo> slots;
    slots.push_back(SlotInfo{input_shape.numel(), 0, 0});

    std::vector<int> node_slot(
        static_cast<size_t>(graph_.nodeCount()), -1);
    const auto slotFor = [&](int operand) {
        return operand == kGraphInput
                   ? 0
                   : node_slot[static_cast<size_t>(operand)];
    };
    const auto shapeFor = [&](int operand) -> const Shape & {
        return operand == kGraphInput
                   ? input_shape
                   : shapes[static_cast<size_t>(operand)];
    };

    Plan plan;
    plan.batch = batch;
    plan.inputShape = input_shape;
    plan.inputNumel = input_shape.numel();

    // Step slot ids, resolved to offsets once the planner has run.
    struct StepSlots
    {
        int in0;
        int in1;
        int out;
    };
    std::vector<StepSlots> step_slots;

    for (int id = 0; id < graph_.nodeCount(); ++id) {
        const GraphNode &n = graph_.node(id);
        if (n.kind == OpKind::Flatten) {
            assert(!n.postRelu);
            node_slot[static_cast<size_t>(id)] = slotFor(n.inputs[0]);
            continue;
        }
        const int step_index = static_cast<int>(plan.steps.size()) + 1;

        PlanStep step;
        step.kind = n.kind;
        step.layer = n.layer;
        step.postRelu = n.postRelu;
        step.fusableEpilogue = n.fusableEpilogue;
        step.inShape = shapeFor(n.inputs[0]);
        step.outShape = shapes[static_cast<size_t>(id)];
        step.label = n.label;

        StepSlots ss{slotFor(n.inputs[0]), -1, -1};
        slots[static_cast<size_t>(ss.in0)].lastUse = step_index;
        if (n.kind == OpKind::Add) {
            ss.in1 = slotFor(n.inputs[1]);
            slots[static_cast<size_t>(ss.in1)].lastUse = step_index;
        }
        ss.out = static_cast<int>(slots.size());
        slots.push_back(SlotInfo{step.outShape.numel(), step_index,
                                 step_index});
        node_slot[static_cast<size_t>(id)] = ss.out;

        plan.steps.push_back(std::move(step));
        step_slots.push_back(ss);
    }

    // Pin the output value past the last step so no later op reuses it
    // before the caller has read the result.
    const int out_slot = slotFor(graph_.outputNode());
    slots[static_cast<size_t>(out_slot)].lastUse =
        static_cast<int>(plan.steps.size()) + 1;

    std::vector<BufferRequest> requests;
    requests.reserve(slots.size());
    for (const SlotInfo &s : slots)
        requests.push_back(BufferRequest{s.numel * 4, s.def, s.lastUse});
    const MemoryPlan memory = planBuffers(requests, /*alignment=*/64);

    std::vector<int64_t> slot_offset(slots.size());
    for (size_t i = 0; i < slots.size(); ++i)
        slot_offset[i] = memory.offsets[i] / 4;

    for (size_t i = 0; i < plan.steps.size(); ++i) {
        plan.steps[i].in0 =
            slot_offset[static_cast<size_t>(step_slots[i].in0)];
        plan.steps[i].in1 =
            step_slots[i].in1 < 0
                ? -1
                : slot_offset[static_cast<size_t>(step_slots[i].in1)];
        plan.steps[i].out =
            slot_offset[static_cast<size_t>(step_slots[i].out)];
    }

    plan.arenaFloats = memory.arenaBytes / 4;
    plan.naiveFloats = memory.naiveBytes / 4;
    plan.inputOffset = slot_offset[0];
    plan.outputOffset = slot_offset[static_cast<size_t>(out_slot)];
    plan.outputShape = shapes[static_cast<size_t>(graph_.outputNode())];
    plan.outputNumel = plan.outputShape.numel();
    return plan;
}

// ------------------------------------------------- ExecutionInstance

ExecutionInstance &
ExecutionInstance::thread()
{
    static thread_local ExecutionInstance instance;
    return instance;
}

void
ExecutionInstance::ensureCapacity(int64_t floats)
{
    if (floats <= capacityFloats_)
        return;
    const size_t bytes =
        (static_cast<size_t>(floats) * 4 + 63) / 64 * 64;
    float *raw = static_cast<float *>(std::aligned_alloc(64, bytes));
    assert(raw != nullptr);
    buffer_ = std::unique_ptr<float, void (*)(void *)>(raw, std::free);
    capacityFloats_ = static_cast<int64_t>(bytes / 4);
}

float *
ExecutionInstance::stageInput(const CompiledModel &model, int64_t batch)
{
    const Plan &plan = model.planFor(batch);
    ensureCapacity(plan.arenaFloats);
    return buffer_.get() + plan.inputOffset;
}

const float *
ExecutionInstance::run(const CompiledModel &model, int64_t batch)
{
    const Plan &plan = model.planFor(batch);
    ensureCapacity(plan.arenaFloats);
    float *base = buffer_.get();

    for (const PlanStep &step : plan.steps) {
        const float *in0 = base + step.in0;
        float *out = base + step.out;
        const int64_t out_n = step.outShape.numel();
        if (step.kind == OpKind::Add) {
            const float *in1 = base + step.in1;
            if (step.postRelu) {
                for (int64_t i = 0; i < out_n; ++i) {
                    const float v = in0[i] + in1[i];
                    out[i] = v < 0.0f ? 0.0f : v;
                }
            } else {
                for (int64_t i = 0; i < out_n; ++i)
                    out[i] = in0[i] + in1[i];
            }
            continue;
        }
        if (step.prepared != nullptr) {
            // Prepacked fast path: weights stream from the constant
            // section and the epilogue (bias/postRelu/requantize) is
            // fused into the kernel tail — no separate pass.
            step.prepared->run(in0, step.inShape, out);
            continue;
        }
        step.layer->forwardInto(in0, step.inShape, out);
        if (step.postRelu) {
            for (int64_t i = 0; i < out_n; ++i) {
                if (out[i] < 0.0f)
                    out[i] = 0.0f;
            }
        }
    }
    return base + plan.outputOffset;
}

Tensor
ExecutionInstance::forward(const CompiledModel &model,
                           const Tensor &input)
{
    const int64_t batch = input.shape().dim(0);
    const Plan &plan = model.planFor(batch);
    assert(input.shape() == plan.inputShape);
    float *staged = stageInput(model, batch);
    std::copy(input.data(), input.data() + plan.inputNumel, staged);
    const float *result = run(model, batch);
    Tensor out(plan.outputShape);
    std::copy(result, result + plan.outputNumel, out.data());
    return out;
}

} // namespace nn
} // namespace mlperf
