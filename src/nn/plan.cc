#include "nn/plan.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <sstream>

#include "nn/layers.h"
#include "nn/memory_planner.h"
#include "tensor/conv_direct.h"

namespace mlperf {
namespace nn {

using tensor::Shape;
using tensor::Tensor;

namespace {

/** MLPERF_FORCE_IM2COL set to anything but "" / "0" pins every conv to
 *  the NCHW im2col reference path (differential debugging knob). */
bool
forceIm2col()
{
    const char *env = std::getenv("MLPERF_FORCE_IM2COL");
    return env != nullptr && env[0] != '\0' &&
           !(env[0] == '0' && env[1] == '\0');
}

/** Physical buffer numel for a value of @p shape in @p layout. The
 *  NCHWc form pads the channel dim to a multiple of the block. */
int64_t
physicalNumel(const Shape &shape, Layout layout)
{
    if (layout == Layout::NCHW)
        return shape.numel();
    assert(shape.rank() == 4);
    return tensor::nchwcNumel(shape.dim(0), shape.dim(1), shape.dim(2),
                              shape.dim(3));
}

} // namespace

CompiledModel::CompiledModel(const Sequential &model,
                             Shape sample_shape, CompileOptions options)
    : graph_(ModelGraph::fromSequential(model)),
      sampleShape_(std::move(sample_shape)), options_(options)
{
    if (options.foldBatchNorm)
        graph_.foldBatchNorm();
    if (options.fuseRelu)
        graph_.fuseRelu();
    if (options.eliminateDeadNodes)
        graph_.eliminateDeadNodes();
    // The direct kernels exist only in prepared (prepacked) form, so
    // layout propagation is tied to prepackConstants; the env knob
    // forces the im2col reference path for differential runs.
    options_.propagateLayout = options.propagateLayout &&
                               options.prepackConstants &&
                               !forceIm2col();
    if (options_.propagateLayout)
        graph_.propagateLayout();
    graph_.markFusableEpilogues();
}

CompiledModel::CompiledModel(ModelGraph graph, Shape sample_shape,
                             CompileOptions options)
    : graph_(std::move(graph)), sampleShape_(std::move(sample_shape)),
      options_(options)
{
    options_.propagateLayout = options.propagateLayout &&
                               options.prepackConstants &&
                               !forceIm2col();
    if (options_.propagateLayout)
        graph_.propagateLayout();
    graph_.markFusableEpilogues();
}

void
CompiledModel::invalidatePlans()
{
    std::unique_lock<std::shared_mutex> lock(mutex_);
    plans_.clear();
    // The packed constants were built from the graph's previous
    // layers; after a mutation (e.g. quantizeGraph swapped fp32 convs
    // for int8 ones) they would execute the old weights. Drop them so
    // the next planFor() re-prepares from the current layers.
    constants_.clear();
    // Re-run layout propagation: the mutation may have changed which
    // chains tile (quantizeGraph flips the fp32-conv policy), and the
    // pass is idempotent — it strips its own converts first.
    if (options_.propagateLayout)
        graph_.propagateLayout();
    graph_.markFusableEpilogues();
}

const Plan &
CompiledModel::planFor(int64_t batch) const
{
    {
        std::shared_lock<std::shared_mutex> lock(mutex_);
        auto it = plans_.find(batch);
        if (it != plans_.end())
            return *it->second;
    }
    std::unique_lock<std::shared_mutex> lock(mutex_);
    auto it = plans_.find(batch);
    if (it == plans_.end()) {
        auto plan = std::make_unique<Plan>(buildPlan(batch));
        it = plans_.emplace(batch, std::move(plan)).first;
    }
    return *it->second;
}

int64_t
CompiledModel::constantBytes() const
{
    std::shared_lock<std::shared_mutex> lock(mutex_);
    int64_t total = 0;
    for (const auto &entry : constants_)
        total += entry.second->constantBytes();
    return total;
}

void
CompiledModel::attachConstants(Plan &plan) const
{
    for (PlanStep &step : plan.steps) {
        // Only nodes the graph pass marked may prepack; the mark is
        // kept current by replaceNodeLayer and invalidatePlans.
        if (step.layer == nullptr || !step.fusableEpilogue)
            continue;
        // NCHWc-producing steps run the direct kernel; the layout
        // pass only tiles nodes whose layer supports it.
        const bool direct = step.outLayout == Layout::NCHWc;
        const auto key =
            std::make_tuple(step.layer, step.postRelu, direct);
        auto it = constants_.find(key);
        if (it == constants_.end()) {
            std::unique_ptr<PreparedKernel> kernel =
                direct ? step.layer->prepareDirect(step.postRelu)
                       : step.layer->prepare(step.postRelu);
            if (kernel == nullptr)
                continue;
            it = constants_.emplace(key, std::move(kernel)).first;
        }
        step.prepared = it->second.get();
    }
    int64_t total = 0;
    for (const auto &entry : constants_)
        total += entry.second->constantBytes();
    plan.constantBytes = total;
}

Plan
CompiledModel::buildPlan(int64_t batch) const
{
    assert(batch > 0);
    assert(graph_.outputNode() >= 0);

    std::vector<int64_t> dims;
    dims.reserve(static_cast<size_t>(sampleShape_.rank()) + 1);
    dims.push_back(batch);
    for (int64_t i = 0; i < sampleShape_.rank(); ++i)
        dims.push_back(sampleShape_.dim(i));
    const Shape input_shape(std::move(dims));

    const std::vector<Shape> shapes = graph_.inferShapes(input_shape);

    const auto layoutOf = [&](int operand) {
        return operand == kGraphInput
                   ? Layout::NCHW
                   : graph_.node(operand).layout;
    };

    // Value slots: one materialized buffer per graph value, sized to
    // the PHYSICAL extent of its producer's layout (NCHWc pads the
    // channel dim). Slot 0 is the graph input; Flatten nodes alias
    // their producer's slot (a reshape moves no data), everything
    // else gets its own.
    struct SlotInfo
    {
        int64_t numel;
        int def;
        int lastUse;
    };
    std::vector<SlotInfo> slots;
    slots.push_back(SlotInfo{input_shape.numel(), 0, 0});

    std::vector<int> node_slot(
        static_cast<size_t>(graph_.nodeCount()), -1);
    const auto slotFor = [&](int operand) {
        return operand == kGraphInput
                   ? 0
                   : node_slot[static_cast<size_t>(operand)];
    };
    const auto shapeFor = [&](int operand) -> const Shape & {
        return operand == kGraphInput
                   ? input_shape
                   : shapes[static_cast<size_t>(operand)];
    };

    Plan plan;
    plan.batch = batch;
    plan.inputShape = input_shape;
    plan.inputNumel = input_shape.numel();

    // Step slot ids, resolved to offsets once the planner has run.
    struct StepSlots
    {
        int in0;
        int in1;
        int out;
    };
    std::vector<StepSlots> step_slots;

    for (int id = 0; id < graph_.nodeCount(); ++id) {
        const GraphNode &n = graph_.node(id);
        if (n.kind == OpKind::Flatten) {
            assert(!n.postRelu);
            // Reshape aliasing only works on the dense NCHW form.
            assert(layoutOf(n.inputs[0]) == Layout::NCHW);
            node_slot[static_cast<size_t>(id)] = slotFor(n.inputs[0]);
            continue;
        }
        const int step_index = static_cast<int>(plan.steps.size()) + 1;

        PlanStep step;
        step.kind = n.kind;
        step.layer = n.layer;
        step.postRelu = n.postRelu;
        step.fusableEpilogue = n.fusableEpilogue;
        step.inShape = shapeFor(n.inputs[0]);
        step.outShape = shapes[static_cast<size_t>(id)];
        step.inLayout = layoutOf(n.inputs[0]);
        step.outLayout = n.layout;
        step.label = n.label;

        if (n.kind == OpKind::Add) {
            // The layout pass harmonizes Add operands; the elementwise
            // loop then runs over the shared physical extent.
            assert(layoutOf(n.inputs[1]) == step.inLayout);
        }
        if (step.inLayout == Layout::NCHWc &&
            (n.kind == OpKind::MaxPool || n.kind == OpKind::AvgPool)) {
            // Resolve pool geometry now: the executor's direct NCHWc
            // pool kernels bypass Layer::forwardInto.
            if (const auto *mp =
                    dynamic_cast<const MaxPoolLayer *>(n.layer)) {
                step.poolKernel = mp->kernel();
                step.poolStride = mp->stride();
            } else if (const auto *ap =
                           dynamic_cast<const AvgPoolLayer *>(
                               n.layer)) {
                step.poolKernel = ap->kernel();
                step.poolStride = ap->stride();
            } else {
                assert(false && "NCHWc pool without pool layer");
            }
        }

        StepSlots ss{slotFor(n.inputs[0]), -1, -1};
        slots[static_cast<size_t>(ss.in0)].lastUse = step_index;
        if (n.kind == OpKind::Add) {
            ss.in1 = slotFor(n.inputs[1]);
            slots[static_cast<size_t>(ss.in1)].lastUse = step_index;
        }
        ss.out = static_cast<int>(slots.size());
        slots.push_back(
            SlotInfo{physicalNumel(step.outShape, step.outLayout),
                     step_index, step_index});
        node_slot[static_cast<size_t>(id)] = ss.out;

        plan.steps.push_back(std::move(step));
        step_slots.push_back(ss);
    }

    // Pin the output value past the last step so no later op reuses it
    // before the caller has read the result.
    const int out_slot = slotFor(graph_.outputNode());
    slots[static_cast<size_t>(out_slot)].lastUse =
        static_cast<int>(plan.steps.size()) + 1;

    // Resolve prepared kernels BEFORE planning buffers so each
    // kernel's scratch footprint (im2col patch matrices; zero for the
    // direct path) is liveness-planned into the same arena as the
    // activations.
    if (options_.prepackConstants)
        attachConstants(plan);

    std::vector<BufferRequest> requests;
    requests.reserve(slots.size() + plan.steps.size());
    for (const SlotInfo &s : slots)
        requests.push_back(BufferRequest{s.numel * 4, s.def, s.lastUse});

    // Kernel scratch lives only during its own step, so the planner
    // overlaps it with dead activations.
    std::vector<int> scratch_request(plan.steps.size(), -1);
    for (size_t i = 0; i < plan.steps.size(); ++i) {
        PlanStep &step = plan.steps[i];
        if (step.prepared == nullptr)
            continue;
        step.scratchFloats = step.prepared->scratchFloats(step.inShape);
        if (step.scratchFloats <= 0)
            continue;
        const int step_index = static_cast<int>(i) + 1;
        scratch_request[i] = static_cast<int>(requests.size());
        requests.push_back(BufferRequest{step.scratchFloats * 4,
                                         step_index, step_index});
    }

    const MemoryPlan memory = planBuffers(requests, /*alignment=*/64);

    std::vector<int64_t> slot_offset(slots.size());
    for (size_t i = 0; i < slots.size(); ++i)
        slot_offset[i] = memory.offsets[i] / 4;

    for (size_t i = 0; i < plan.steps.size(); ++i) {
        plan.steps[i].in0 =
            slot_offset[static_cast<size_t>(step_slots[i].in0)];
        plan.steps[i].in1 =
            step_slots[i].in1 < 0
                ? -1
                : slot_offset[static_cast<size_t>(step_slots[i].in1)];
        plan.steps[i].out =
            slot_offset[static_cast<size_t>(step_slots[i].out)];
        if (scratch_request[i] >= 0) {
            plan.steps[i].scratch =
                memory.offsets[static_cast<size_t>(
                    scratch_request[i])] /
                4;
        }
    }

    plan.arenaFloats = memory.arenaBytes / 4;
    plan.naiveFloats = memory.naiveBytes / 4;
    plan.inputOffset = slot_offset[0];
    plan.outputOffset = slot_offset[static_cast<size_t>(out_slot)];
    plan.outputShape = shapes[static_cast<size_t>(graph_.outputNode())];
    plan.outputNumel = plan.outputShape.numel();
    return plan;
}

std::string
planDebugDump(const Plan &plan)
{
    std::ostringstream os;
    os << "plan batch=" << plan.batch
       << " arena_kb=" << plan.arenaFloats * 4 / 1024
       << " naive_kb=" << plan.naiveFloats * 4 / 1024
       << " constants_kb=" << plan.constantBytes / 1024 << "\n";
    for (size_t i = 0; i < plan.steps.size(); ++i) {
        const PlanStep &s = plan.steps[i];
        os << "  #" << i << " " << opKindName(s.kind);
        if (!s.label.empty())
            os << " [" << s.label << "]";
        os << " " << (s.inLayout == Layout::NCHWc ? "nchwc" : "nchw")
           << "->"
           << (s.outLayout == Layout::NCHWc ? "nchwc" : "nchw");
        os << " in0@" << s.in0;
        if (s.in1 >= 0)
            os << " in1@" << s.in1;
        os << " out@" << s.out;
        if (s.kind == OpKind::Conv2d || s.kind == OpKind::QConv2d ||
            s.kind == OpKind::DepthwiseConv2d) {
            // Per-conv scratch footprint: the direct path reports 0,
            // an im2col step its liveness-planned patch matrix.
            os << " scratch_kb=" << s.scratchFloats * 4 / 1024;
        }
        if (s.postRelu)
            os << " +relu";
        if (s.prepared != nullptr)
            os << " prepacked";
        os << "\n";
    }
    return os.str();
}

// ------------------------------------------------- ExecutionInstance

ExecutionInstance &
ExecutionInstance::thread()
{
    static thread_local ExecutionInstance instance;
    return instance;
}

void
ExecutionInstance::ensureCapacity(int64_t floats)
{
    if (floats <= capacityFloats_)
        return;
    const size_t bytes =
        (static_cast<size_t>(floats) * 4 + 63) / 64 * 64;
    float *raw = static_cast<float *>(std::aligned_alloc(64, bytes));
    assert(raw != nullptr);
    buffer_ = std::unique_ptr<float, void (*)(void *)>(raw, std::free);
    capacityFloats_ = static_cast<int64_t>(bytes / 4);
}

float *
ExecutionInstance::stageInput(const CompiledModel &model, int64_t batch)
{
    const Plan &plan = model.planFor(batch);
    ensureCapacity(plan.arenaFloats);
    return buffer_.get() + plan.inputOffset;
}

const float *
ExecutionInstance::run(const CompiledModel &model, int64_t batch)
{
    const Plan &plan = model.planFor(batch);
    ensureCapacity(plan.arenaFloats);
    float *base = buffer_.get();

    for (const PlanStep &step : plan.steps) {
        const float *in0 = base + step.in0;
        float *out = base + step.out;
        // Elementwise loops cover the physical extent; NCHWc tail
        // lanes are zero on both operands, so they stay zero.
        const int64_t out_n =
            physicalNumel(step.outShape, step.outLayout);
        if (step.kind == OpKind::Add) {
            const float *in1 = base + step.in1;
            if (step.postRelu) {
                for (int64_t i = 0; i < out_n; ++i) {
                    const float v = in0[i] + in1[i];
                    out[i] = v < 0.0f ? 0.0f : v;
                }
            } else {
                for (int64_t i = 0; i < out_n; ++i)
                    out[i] = in0[i] + in1[i];
            }
            continue;
        }
        if (step.kind == OpKind::LayoutConvert) {
            const Shape &s = step.inShape;
            if (step.outLayout == Layout::NCHWc)
                tensor::nchwcFromNchw(in0, s.dim(0), s.dim(1),
                                      s.dim(2), s.dim(3), out);
            else
                tensor::nchwFromNchwc(in0, s.dim(0), s.dim(1),
                                      s.dim(2), s.dim(3), out);
            continue;
        }
        if (step.prepared != nullptr) {
            // Prepacked fast path: weights stream from the constant
            // section and the epilogue (bias/postRelu/requantize) is
            // fused into the kernel tail — no separate pass. Scratch,
            // when the kernel wants any, comes liveness-planned from
            // the same arena.
            step.prepared->run(
                in0, step.inShape, out,
                step.scratch >= 0 ? base + step.scratch : nullptr);
            continue;
        }
        if (step.inLayout == Layout::NCHWc) {
            // Layer-less direct kernels for the ops the layout pass
            // lets ride through the tiled form.
            const Shape &s = step.inShape;
            switch (step.kind) {
            case OpKind::MaxPool:
                tensor::maxPool2dNchwcInto(
                    in0, s.dim(0), s.dim(1), s.dim(2), s.dim(3),
                    step.poolKernel, step.poolStride, out);
                break;
            case OpKind::AvgPool:
                tensor::avgPool2dNchwcInto(
                    in0, s.dim(0), s.dim(1), s.dim(2), s.dim(3),
                    step.poolKernel, step.poolStride, out);
                break;
            case OpKind::GlobalAvgPool:
                tensor::globalAvgPoolNchwcInto(in0, s.dim(0), s.dim(1),
                                               s.dim(2), s.dim(3),
                                               out);
                break;
            case OpKind::Relu:
                for (int64_t i = 0; i < out_n; ++i)
                    out[i] = in0[i] < 0.0f ? 0.0f : in0[i];
                break;
            default:
                assert(false && "NCHWc step without a direct kernel");
                break;
            }
            if (step.postRelu) {
                for (int64_t i = 0; i < out_n; ++i) {
                    if (out[i] < 0.0f)
                        out[i] = 0.0f;
                }
            }
            continue;
        }
        step.layer->forwardInto(in0, step.inShape, out);
        if (step.postRelu) {
            for (int64_t i = 0; i < out_n; ++i) {
                if (out[i] < 0.0f)
                    out[i] = 0.0f;
            }
        }
    }
    return base + plan.outputOffset;
}

Tensor
ExecutionInstance::forward(const CompiledModel &model,
                           const Tensor &input)
{
    const int64_t batch = input.shape().dim(0);
    const Plan &plan = model.planFor(batch);
    assert(input.shape() == plan.inputShape);
    float *staged = stageInput(model, batch);
    std::copy(input.data(), input.data() + plan.inputNumel, staged);
    const float *result = run(model, batch);
    Tensor out(plan.outputShape);
    std::copy(result, result + plan.outputNumel, out.data());
    return out;
}

} // namespace nn
} // namespace mlperf
