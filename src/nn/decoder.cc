#include "nn/decoder.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "tensor/gemm.h"

namespace mlperf {
namespace nn {

using tensor::Shape;
using tensor::Tensor;

namespace {

/** Argmax over a raw logits row (first index wins ties, like
    argmaxRows, so the eager and incremental paths agree exactly). */
int64_t
argmaxRow(const float *logits, int64_t n)
{
    int64_t best = 0;
    for (int64_t v = 1; v < n; ++v) {
        if (logits[v] > logits[best])
            best = v;
    }
    return best;
}

} // namespace

DecoderModel::DecoderModel(DecoderArch arch, Tensor embed_table,
                           Tensor pos_enc, LSTMCell encoder_cell,
                           LSTMCell decoder_cell, Tensor proj_w,
                           std::vector<float> proj_bias)
    : arch_(arch), embed_(std::move(embed_table)),
      posEnc_(std::move(pos_enc)),
      encoderCell_(std::move(encoder_cell)),
      decoderCell_(std::move(decoder_cell)), projW_(std::move(proj_w)),
      projBias_(std::move(proj_bias))
{
    assert(embed_.vocabSize() == arch_.vocab);
    assert(embed_.dim() == arch_.embedDim);
    assert(posEnc_.shape().dim(0) >= arch_.maxSrcSteps);
    assert(posEnc_.shape().dim(1) == arch_.embedDim);
    assert(projW_.shape().dim(0) == arch_.vocab);
    assert(projW_.shape().dim(1) == arch_.embedDim);
    assert(static_cast<int64_t>(projBias_.size()) == arch_.vocab);
}

void
DecoderModel::encode(const std::vector<int64_t> &source,
                     DecodeState &state, DecodeScratch &scratch) const
{
    assert(!source.empty());
    const int64_t dim = arch_.embedDim;
    const int64_t steps = std::min(
        static_cast<int64_t>(source.size()), arch_.maxSrcSteps);

    // Encoder: embedding + position + mixed-in LSTM state, exactly
    // the enc_states rows of the eager reference.
    std::fill(scratch.encH_.begin(), scratch.encH_.end(), 0.0f);
    std::fill(scratch.encC_.begin(), scratch.encC_.end(), 0.0f);
    for (int64_t t = 0; t < steps; ++t) {
        embed_.lookupInto(source[static_cast<size_t>(t)],
                          scratch.embed_.data());
        encoderCell_.stepInto(scratch.embed_.data(), 1,
                              scratch.encH_.data(),
                              scratch.encC_.data(),
                              scratch.gates_.data(),
                              scratch.rec_.data());
        float *row = state.encStates_.data() + t * dim;
        for (int64_t d = 0; d < dim; ++d) {
            row[d] = scratch.embed_[static_cast<size_t>(d)] +
                     posEnc_.at(t, d) +
                     arch_.lstmMix * scratch.encH_[static_cast<size_t>(d)];
        }
    }

    state.srcSteps_ = steps;
    std::fill(state.h_.begin(), state.h_.end(), 0.0f);
    std::fill(state.c_.begin(), state.c_.end(), 0.0f);
    state.prevToken_ = arch_.bosToken;
    state.step_ = 0;
    state.output_.clear();
    state.done_ = false;
}

int64_t
DecoderModel::decodeStep(DecodeState &state,
                         DecodeScratch &scratch) const
{
    assert(!state.done_ && state.srcSteps_ > 0);
    const int64_t dim = arch_.embedDim;
    const int64_t t = state.step_;

    embed_.lookupInto(state.prevToken_, scratch.embed_.data());
    decoderCell_.stepInto(scratch.embed_.data(), 1, state.h_.data(),
                          state.c_.data(), scratch.gates_.data(),
                          scratch.rec_.data());
    for (int64_t d = 0; d < dim; ++d) {
        scratch.query_[static_cast<size_t>(d)] =
            arch_.queryGain * posEnc_.at(t, d) +
            arch_.lstmMix * state.h_[static_cast<size_t>(d)];
    }
    dotAttentionInto(state.encStates_.data(), state.srcSteps_, dim,
                     scratch.query_.data(), scratch.context_.data(),
                     scratch.scores_.data());
    tensor::denseForward(projW_.data(), projBias_.data(),
                         scratch.context_.data(),
                         scratch.logits_.data(), 1, dim, arch_.vocab);
    const int64_t token = argmaxRow(scratch.logits_.data(), arch_.vocab);

    state.output_.push_back(token);
    ++state.step_;
    if (token == arch_.eosToken || state.step_ >= state.srcSteps_)
        state.done_ = true;
    else
        state.prevToken_ = token;
    return token;
}

void
DecoderModel::padStep(const DecodeState &state,
                      DecodeScratch &scratch) const
{
    assert(state.srcSteps_ > 0);
    const int64_t dim = arch_.embedDim;
    // Same FLOPs as decodeStep against a frozen copy of the state;
    // the position is pinned to the last valid row.
    const int64_t t = std::min(state.step_, state.srcSteps_ - 1);

    std::memcpy(scratch.padH_.data(), state.h_.data(),
                static_cast<size_t>(dim) * sizeof(float));
    std::memcpy(scratch.padC_.data(), state.c_.data(),
                static_cast<size_t>(dim) * sizeof(float));
    embed_.lookupInto(arch_.eosToken, scratch.embed_.data());
    decoderCell_.stepInto(scratch.embed_.data(), 1,
                          scratch.padH_.data(), scratch.padC_.data(),
                          scratch.gates_.data(), scratch.rec_.data());
    for (int64_t d = 0; d < dim; ++d) {
        scratch.query_[static_cast<size_t>(d)] =
            arch_.queryGain * posEnc_.at(t, d) +
            arch_.lstmMix * scratch.padH_[static_cast<size_t>(d)];
    }
    dotAttentionInto(state.encStates_.data(), state.srcSteps_, dim,
                     scratch.query_.data(), scratch.context_.data(),
                     scratch.scores_.data());
    tensor::denseForward(projW_.data(), projBias_.data(),
                         scratch.context_.data(),
                         scratch.logits_.data(), 1, dim, arch_.vocab);
    // A padded batch computes the argmax on every lane too and masks
    // the result afterwards; skipping it here would make padding
    // cheaper than the equal-work claim. Result discarded.
    volatile int64_t sink =
        argmaxRow(scratch.logits_.data(), arch_.vocab);
    (void)sink;
}

std::vector<int64_t>
DecoderModel::referenceDecode(const std::vector<int64_t> &source) const
{
    assert(!source.empty());
    const int64_t dim = arch_.embedDim;
    const int64_t steps = std::min(
        static_cast<int64_t>(source.size()), arch_.maxSrcSteps);

    Tensor enc_states(Shape{steps, dim});
    auto enc_state = encoderCell_.initialState(1);
    for (int64_t t = 0; t < steps; ++t) {
        const Tensor e =
            embed_.forward({source[static_cast<size_t>(t)]});
        encoderCell_.step(e, enc_state);
        for (int64_t d = 0; d < dim; ++d) {
            enc_states.at(t, d) = e[d] + posEnc_.at(t, d) +
                                  arch_.lstmMix * enc_state.h[d];
        }
    }

    std::vector<int64_t> output;
    auto dec_state = decoderCell_.initialState(1);
    int64_t prev = arch_.bosToken;
    for (int64_t t = 0; t < steps; ++t) {
        const Tensor pe = embed_.forward({prev});
        decoderCell_.step(pe, dec_state);
        Tensor query(Shape{1, dim});
        for (int64_t d = 0; d < dim; ++d) {
            query[d] = arch_.queryGain * posEnc_.at(t, d) +
                       arch_.lstmMix * dec_state.h[d];
        }
        const Tensor ctx = dotAttention(enc_states, query);
        Tensor logits(Shape{1, arch_.vocab});
        tensor::denseForward(projW_.data(), projBias_.data(),
                             ctx.data(), logits.data(), 1, dim,
                             arch_.vocab);
        const int64_t token = argmaxRow(logits.data(), arch_.vocab);
        output.push_back(token);
        if (token == arch_.eosToken)
            break;
        prev = token;
    }
    return output;
}

uint64_t
DecoderModel::flopsPerToken(int64_t src_steps) const
{
    const uint64_t dim = static_cast<uint64_t>(arch_.embedDim);
    const uint64_t attention =
        2 * static_cast<uint64_t>(src_steps) * dim * 2;
    const uint64_t projection =
        2 * static_cast<uint64_t>(arch_.vocab) * dim;
    return decoderCell_.flopsPerStep() + attention + projection;
}

} // namespace nn
} // namespace mlperf
