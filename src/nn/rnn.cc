#include "nn/rnn.h"

#include <cassert>
#include <cmath>
#include <cstring>

#include "tensor/gemm.h"

namespace mlperf {
namespace nn {

using tensor::Shape;
using tensor::Tensor;

Embedding::Embedding(Tensor table) : table_(std::move(table))
{
    assert(table_.shape().rank() == 2);
}

Tensor
Embedding::forward(const std::vector<int64_t> &tokens) const
{
    const int64_t dim = this->dim();
    Tensor out(Shape{static_cast<int64_t>(tokens.size()), dim});
    for (size_t i = 0; i < tokens.size(); ++i) {
        lookupInto(tokens[i],
                   out.data() + static_cast<int64_t>(i) * dim);
    }
    return out;
}

void
Embedding::lookupInto(int64_t token, float *out) const
{
    assert(token >= 0 && token < vocabSize());
    std::memcpy(out, table_.data() + token * dim(),
                static_cast<size_t>(dim()) * sizeof(float));
}

LSTMCell::LSTMCell(Tensor w_x, Tensor w_h, std::vector<float> bias)
    : wX_(std::move(w_x)), wH_(std::move(w_h)), bias_(std::move(bias))
{
    assert(wX_.shape().rank() == 2 && wH_.shape().rank() == 2);
    assert(wX_.shape().dim(0) == wH_.shape().dim(0));
    assert(wX_.shape().dim(0) == 4 * wH_.shape().dim(1));
    assert(static_cast<int64_t>(bias_.size()) == wX_.shape().dim(0));
}

LSTMCell::State
LSTMCell::initialState(int64_t batch) const
{
    return State{Tensor(Shape{batch, hiddenSize()}),
                 Tensor(Shape{batch, hiddenSize()})};
}

void
LSTMCell::step(const Tensor &x, State &state) const
{
    const int64_t batch = x.shape().dim(0);
    assert(x.shape().dim(1) == inputSize());
    assert(state.h.shape().dim(0) == batch);

    Tensor gates(Shape{batch, 4 * hiddenSize()});
    Tensor rec(Shape{batch, 4 * hiddenSize()});
    stepInto(x.data(), batch, state.h.data(), state.c.data(),
             gates.data(), rec.data());
}

void
LSTMCell::stepInto(const float *x, int64_t batch, float *h, float *c,
                   float *gates, float *rec) const
{
    const int64_t hidden = hiddenSize();

    // gates = W_x x + W_h h + b : [batch, 4*hidden]
    tensor::denseForward(wX_.data(), bias_.data(), x, gates, batch,
                         inputSize(), 4 * hidden);
    tensor::denseForward(wH_.data(), nullptr, h, rec, batch, hidden,
                         4 * hidden);
    for (int64_t i = 0; i < batch * 4 * hidden; ++i)
        gates[i] += rec[i];

    auto sigmoid = [](float v) { return 1.0f / (1.0f + std::exp(-v)); };
    for (int64_t b = 0; b < batch; ++b) {
        const float *g = gates + b * 4 * hidden;
        float *hb = h + b * hidden;
        float *cb = c + b * hidden;
        for (int64_t j = 0; j < hidden; ++j) {
            const float i_g = sigmoid(g[j]);
            const float f_g = sigmoid(g[hidden + j]);
            const float g_g = std::tanh(g[2 * hidden + j]);
            const float o_g = sigmoid(g[3 * hidden + j]);
            cb[j] = f_g * cb[j] + i_g * g_g;
            hb[j] = o_g * std::tanh(cb[j]);
        }
    }
}

uint64_t
LSTMCell::paramCount() const
{
    return static_cast<uint64_t>(wX_.numel() + wH_.numel()) +
           bias_.size();
}

uint64_t
LSTMCell::flopsPerStep() const
{
    return 2 * static_cast<uint64_t>(wX_.numel() + wH_.numel());
}

Tensor
dotAttention(const Tensor &encoder_states, const Tensor &query)
{
    assert(encoder_states.shape().rank() == 2);
    assert(query.shape().rank() == 2 && query.shape().dim(0) == 1);
    const int64_t steps = encoder_states.shape().dim(0);
    const int64_t hidden = encoder_states.shape().dim(1);
    assert(query.shape().dim(1) == hidden);

    std::vector<double> scores(static_cast<size_t>(steps));
    Tensor context(Shape{1, hidden});
    dotAttentionInto(encoder_states.data(), steps, hidden,
                     query.data(), context.data(), scores.data());
    return context;
}

void
dotAttentionInto(const float *encoder_states, int64_t steps,
                 int64_t hidden, const float *query, float *context,
                 double *scores_scratch)
{
    // Scores, max-stabilized softmax, and weighted sum.
    double max_score = -1e300;
    for (int64_t t = 0; t < steps; ++t) {
        double s = 0.0;
        const float *enc = encoder_states + t * hidden;
        for (int64_t j = 0; j < hidden; ++j)
            s += static_cast<double>(enc[j]) * query[j];
        scores_scratch[t] = s;
        max_score = std::max(max_score, s);
    }
    double denom = 0.0;
    for (int64_t t = 0; t < steps; ++t) {
        scores_scratch[t] = std::exp(scores_scratch[t] - max_score);
        denom += scores_scratch[t];
    }
    for (int64_t j = 0; j < hidden; ++j)
        context[j] = 0.0f;
    for (int64_t t = 0; t < steps; ++t) {
        const float w = static_cast<float>(scores_scratch[t] / denom);
        const float *enc = encoder_states + t * hidden;
        for (int64_t j = 0; j < hidden; ++j)
            context[j] += w * enc[j];
    }
}

} // namespace nn
} // namespace mlperf
