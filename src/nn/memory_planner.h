/**
 * @file
 * Liveness-based static memory planner for compiled execution plans.
 *
 * Given one buffer request per graph value — its size and the
 * [definition step, last-use step] interval during which it is live —
 * the planner packs all buffers into a single arena, reusing the space
 * of dead buffers via greedy best-fit. The result is a fixed offset
 * per request plus the arena size, so steady-state inference performs
 * zero heap allocations and the peak footprint is known at compile
 * time (reported against the naive sum-of-all-buffers baseline).
 */

#ifndef MLPERF_NN_MEMORY_PLANNER_H
#define MLPERF_NN_MEMORY_PLANNER_H

#include <cstdint>
#include <vector>

namespace mlperf {
namespace nn {

/** One graph value's storage request. */
struct BufferRequest
{
    int64_t bytes = 0;
    /** Step index at which the value is produced. */
    int def = 0;
    /** Last step index that reads the value (>= def). */
    int lastUse = 0;
};

struct MemoryPlan
{
    /** Byte offset per request, same order as the input. */
    std::vector<int64_t> offsets;
    /** Total arena size covering all placements. */
    int64_t arenaBytes = 0;
    /** Sum of all request sizes (the no-reuse baseline). */
    int64_t naiveBytes = 0;
};

/**
 * Pack @p requests into one arena. Requests whose live intervals
 * overlap never share bytes; disjoint intervals may. Each placement
 * is aligned to @p alignment bytes (must be a power of two).
 */
MemoryPlan planBuffers(const std::vector<BufferRequest> &requests,
                       int64_t alignment = 64);

} // namespace nn
} // namespace mlperf

#endif // MLPERF_NN_MEMORY_PLANNER_H
