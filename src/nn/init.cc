#include "nn/init.h"

#include <cmath>

namespace mlperf {
namespace nn {

tensor::Tensor
heNormal(tensor::Shape shape, int64_t fan_in, Rng &rng)
{
    tensor::Tensor t(std::move(shape));
    const float stddev =
        std::sqrt(2.0f / static_cast<float>(fan_in > 0 ? fan_in : 1));
    for (int64_t i = 0; i < t.numel(); ++i)
        t[i] = stddev * static_cast<float>(rng.nextGaussian());
    return t;
}

tensor::Tensor
uniformInit(tensor::Shape shape, float limit, Rng &rng)
{
    tensor::Tensor t(std::move(shape));
    for (int64_t i = 0; i < t.numel(); ++i)
        t[i] = limit * (2.0f * static_cast<float>(rng.nextDouble()) - 1.0f);
    return t;
}

std::vector<float>
zeroBias(int64_t n)
{
    return std::vector<float>(static_cast<size_t>(n), 0.0f);
}

std::vector<float>
randomBias(int64_t n, float scale, Rng &rng)
{
    std::vector<float> b(static_cast<size_t>(n));
    for (auto &v : b)
        v = scale * static_cast<float>(rng.nextGaussian());
    return b;
}

} // namespace nn
} // namespace mlperf
