#include "nn/sequential.h"

#include <cassert>

namespace mlperf {
namespace nn {

Sequential &
Sequential::add(std::unique_ptr<Layer> layer)
{
    layers_.push_back(std::move(layer));
    return *this;
}

tensor::Tensor
Sequential::forward(const tensor::Tensor &input) const
{
    tensor::Tensor x = input;
    for (const auto &layer : layers_)
        x = layer->forward(x);
    return x;
}

tensor::Shape
Sequential::outputShape(const tensor::Shape &input) const
{
    tensor::Shape s = input;
    for (const auto &layer : layers_)
        s = layer->outputShape(s);
    return s;
}

uint64_t
Sequential::paramCount() const
{
    uint64_t n = 0;
    for (const auto &layer : layers_)
        n += layer->paramCount();
    return n;
}

uint64_t
Sequential::flops(const tensor::Shape &input) const
{
    uint64_t n = 0;
    tensor::Shape s = input;
    for (const auto &layer : layers_) {
        n += layer->flops(s);
        s = layer->outputShape(s);
    }
    return n;
}

void
Sequential::replaceLayer(size_t i, std::unique_ptr<Layer> layer)
{
    assert(i < layers_.size());
    layers_[i] = std::move(layer);
}

} // namespace nn
} // namespace mlperf
