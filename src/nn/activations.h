/**
 * @file
 * Activation functions for the inference engine.
 */

#ifndef MLPERF_NN_ACTIVATIONS_H
#define MLPERF_NN_ACTIVATIONS_H

#include "tensor/tensor.h"

namespace mlperf {
namespace nn {

/** max(0, x) elementwise, in place. */
void reluInplace(tensor::Tensor &t);

/** Logistic sigmoid, in place. */
void sigmoidInplace(tensor::Tensor &t);

/** tanh, in place. */
void tanhInplace(tensor::Tensor &t);

/**
 * Row-wise softmax over the last dimension of a rank-2 tensor
 * [batch, classes]; numerically stabilized by max subtraction.
 */
tensor::Tensor softmax(const tensor::Tensor &logits);

/** Index of the maximum element in each row of [batch, classes]. */
std::vector<int64_t> argmaxRows(const tensor::Tensor &t);

/** Raw-buffer overload used by the compiled-plan output path. */
std::vector<int64_t> argmaxRows(const float *data, int64_t rows,
                                int64_t cols);

} // namespace nn
} // namespace mlperf

#endif // MLPERF_NN_ACTIVATIONS_H
