/**
 * @file
 * Minimal leveled logging for the benchmark infrastructure.
 *
 * The real MLPerf LoadGen ships an async trace logger; here we keep a
 * simple synchronous sink that the LoadGen and harness use for run
 * summaries and diagnostics. Tests can swap the sink to capture output.
 */

#ifndef MLPERF_COMMON_LOGGING_H
#define MLPERF_COMMON_LOGGING_H

#include <functional>
#include <sstream>
#include <string>

namespace mlperf {

enum class LogLevel { Debug, Info, Warn, Error };

/**
 * Global logging configuration; process-wide and thread-safe: the
 * sink is swapped and invoked under a mutex and the level is atomic,
 * so SUT worker threads may log while a test harness reconfigures
 * the logger.
 */
class Logger
{
  public:
    using Sink = std::function<void(LogLevel, const std::string &)>;

    /** Replace the sink; returns the previous one. */
    static Sink setSink(Sink sink);

    /** Messages below this level are dropped. */
    static void setLevel(LogLevel level);
    static LogLevel level();

    static void write(LogLevel level, const std::string &msg);
};

namespace detail {

/** Stream-style one-shot message builder used by the LOG macro. */
class LogMessage
{
  public:
    explicit LogMessage(LogLevel level) : level_(level) {}
    ~LogMessage() { Logger::write(level_, stream_.str()); }

    template <typename T>
    LogMessage &
    operator<<(const T &value)
    {
        stream_ << value;
        return *this;
    }

  private:
    LogLevel level_;
    std::ostringstream stream_;
};

} // namespace detail

} // namespace mlperf

#define MLPERF_LOG(level) \
    ::mlperf::detail::LogMessage(::mlperf::LogLevel::level)

#endif // MLPERF_COMMON_LOGGING_H
