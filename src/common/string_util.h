/**
 * @file
 * Small string helpers shared by reporting and logging code.
 */

#ifndef MLPERF_COMMON_STRING_UTIL_H
#define MLPERF_COMMON_STRING_UTIL_H

#include <string>
#include <vector>

namespace mlperf {

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Split on a delimiter; empty fields are preserved. */
std::vector<std::string> split(const std::string &s, char delim);

/** Join with a separator. */
std::string join(const std::vector<std::string> &parts,
                 const std::string &sep);

/** Left/right-pad to a width with spaces (no-op if already wider). */
std::string padLeft(const std::string &s, size_t width);
std::string padRight(const std::string &s, size_t width);

/** Format a sample/query count like the paper: 24576 -> "24,576". */
std::string withThousands(uint64_t value);

/** Format nanoseconds in the most readable unit (ns/us/ms/s). */
std::string formatDuration(uint64_t ns);

} // namespace mlperf

#endif // MLPERF_COMMON_STRING_UTIL_H
