#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace mlperf {

namespace {

// g_mutex guards the sink (swap and invocation); the level is atomic
// so the hot-path filter in write() never takes the lock. Worker
// threads of concurrent SUTs log through here, so every access to
// shared state must be synchronized.
std::mutex g_mutex;
// Libraries default to quiet: applications opt into Info/Debug.
std::atomic<LogLevel> g_level{LogLevel::Warn};

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "DEBUG";
      case LogLevel::Info:  return "INFO";
      case LogLevel::Warn:  return "WARN";
      case LogLevel::Error: return "ERROR";
    }
    return "?";
}

void
defaultSink(LogLevel level, const std::string &msg)
{
    std::fprintf(stderr, "[%s] %s\n", levelName(level), msg.c_str());
}

Logger::Sink &
sinkRef()
{
    static Logger::Sink sink = defaultSink;
    return sink;
}

} // namespace

Logger::Sink
Logger::setSink(Sink sink)
{
    std::lock_guard<std::mutex> lock(g_mutex);
    Sink old = sinkRef();
    sinkRef() = std::move(sink);
    return old;
}

void
Logger::setLevel(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

LogLevel
Logger::level()
{
    return g_level.load(std::memory_order_relaxed);
}

void
Logger::write(LogLevel level, const std::string &msg)
{
    if (static_cast<int>(level) <
        static_cast<int>(g_level.load(std::memory_order_relaxed)))
        return;
    std::lock_guard<std::mutex> lock(g_mutex);
    if (sinkRef())
        sinkRef()(level, msg);
}

} // namespace mlperf
