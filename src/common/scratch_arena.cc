#include "common/scratch_arena.h"

#include <algorithm>
#include <cassert>

namespace mlperf {

namespace {

constexpr size_t kMinBlockBytes = 256 * 1024;

size_t
alignUp(size_t v, size_t a)
{
    return (v + a - 1) & ~(a - 1);
}

} // namespace

ScratchArena &
ScratchArena::thread()
{
    thread_local ScratchArena arena;
    return arena;
}

ScratchArena::Block
ScratchArena::makeBlock(size_t min_bytes)
{
    // Exponential growth bounds the number of blocks ever created;
    // after the first few calls at the high-water shape the arena
    // never allocates again.
    size_t size = std::max(min_bytes, kMinBlockBytes);
    size = std::max(size, capacity());
    Block b;
    b.storage.reset(new char[size + kAlignment]);
    b.base = reinterpret_cast<char *>(
        alignUp(reinterpret_cast<size_t>(b.storage.get()), kAlignment));
    b.size = size;
    ++blockAllocCount_;
    return b;
}

void *
ScratchArena::alloc(size_t bytes)
{
    bytes = alignUp(std::max<size_t>(bytes, 1), kAlignment);
    // Advance through existing blocks (later blocks are empty after a
    // rewind) before growing.
    while (activeBlock_ < blocks_.size()) {
        Block &b = blocks_[activeBlock_];
        if (b.size - activeUsed_ >= bytes) {
            void *p = b.base + activeUsed_;
            activeUsed_ += bytes;
            return p;
        }
        ++activeBlock_;
        activeUsed_ = 0;
    }
    blocks_.push_back(makeBlock(bytes));
    activeBlock_ = blocks_.size() - 1;
    activeUsed_ = bytes;
    return blocks_.back().base;
}

void
ScratchArena::rewind(const Marker &m)
{
    assert(m.block <= activeBlock_);
    activeBlock_ = m.block;
    activeUsed_ = m.used;
}

size_t
ScratchArena::capacity() const
{
    size_t total = 0;
    for (const Block &b : blocks_)
        total += b.size;
    return total;
}

} // namespace mlperf
