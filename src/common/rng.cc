#include "common/rng.h"

#include <cmath>

namespace mlperf {

namespace {

/** splitmix64 step; used only for seed expansion. */
uint64_t
splitmix64(uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &word : s_)
        word = splitmix64(sm);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::nextDouble()
{
    // 53 random bits into [0, 1).
    return (next() >> 11) * 0x1.0p-53;
}

uint64_t
Rng::nextBelow(uint64_t bound)
{
    if (bound <= 1)
        return 0;
    // Rejection sampling over the largest multiple of bound.
    const uint64_t limit = UINT64_MAX - UINT64_MAX % bound;
    uint64_t value;
    do {
        value = next();
    } while (value >= limit);
    return value % bound;
}

int64_t
Rng::nextInRange(int64_t lo, int64_t hi)
{
    return lo + static_cast<int64_t>(
        nextBelow(static_cast<uint64_t>(hi - lo) + 1));
}

double
Rng::nextGaussian()
{
    // Box-Muller; regenerate u1 until nonzero so log() is finite.
    double u1;
    do {
        u1 = nextDouble();
    } while (u1 <= 0.0);
    const double u2 = nextDouble();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * M_PI * u2);
}

double
Rng::nextExponential(double rate)
{
    double u;
    do {
        u = nextDouble();
    } while (u <= 0.0);
    return -std::log(u) / rate;
}

Rng
Rng::fork()
{
    return Rng(next());
}

} // namespace mlperf
