#include "common/parallel.h"

#include <algorithm>
#include <cstdlib>

namespace mlperf {

namespace {

thread_local bool t_in_worker = false;

int
defaultThreadCount()
{
    if (const char *env = std::getenv("MLPERF_INTRAOP_THREADS")) {
        const int n = std::atoi(env);
        if (n > 0)
            return n;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

std::mutex g_pool_mutex;
std::shared_ptr<ThreadPool> g_pool;

} // namespace

/**
 * A fork-join job. Chunks are claimed with an atomic cursor so load
 * imbalance between chunks self-corrects; `completed` releases the
 * workers' writes to the caller, which acquires it while waiting.
 */
struct ThreadPool::Job
{
    std::function<void(int64_t, int64_t)> fn;
    int64_t begin = 0;
    int64_t end = 0;
    int64_t grain = 1;
    int64_t chunkCount = 0;
    std::atomic<int64_t> nextChunk{0};
    std::atomic<int64_t> completed{0};
    std::mutex doneMutex;
    std::condition_variable doneCv;
};

ThreadPool::ThreadPool(int threads)
    : threadCount_(std::max(threads, 1))
{
    threads_.reserve(static_cast<size_t>(threadCount_ - 1));
    for (int i = 0; i < threadCount_ - 1; ++i)
        threads_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

bool
ThreadPool::inWorker()
{
    return t_in_worker;
}

void
ThreadPool::runChunks(const std::shared_ptr<Job> &job)
{
    const bool was_in_worker = t_in_worker;
    t_in_worker = true;
    for (;;) {
        const int64_t chunk =
            job->nextChunk.fetch_add(1, std::memory_order_relaxed);
        if (chunk >= job->chunkCount)
            break;
        const int64_t b = job->begin + chunk * job->grain;
        const int64_t e = std::min(b + job->grain, job->end);
        job->fn(b, e);
        if (job->completed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            job->chunkCount) {
            std::lock_guard<std::mutex> lock(job->doneMutex);
            job->doneCv.notify_all();
        }
    }
    t_in_worker = was_in_worker;
}

void
ThreadPool::workerLoop()
{
    uint64_t seen_epoch = 0;
    for (;;) {
        std::shared_ptr<Job> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [&] {
                return stop_ || epoch_ != seen_epoch;
            });
            if (stop_)
                return;
            seen_epoch = epoch_;
            job = job_;  // may be null if the job already finished
        }
        if (job)
            runChunks(job);
    }
}

void
ThreadPool::parallelFor(int64_t begin, int64_t end, int64_t min_grain,
                        const std::function<void(int64_t, int64_t)> &fn)
{
    if (end <= begin)
        return;
    const int64_t n = end - begin;
    min_grain = std::max<int64_t>(min_grain, 1);
    if (threadCount_ <= 1 || t_in_worker || n <= min_grain) {
        fn(begin, end);
        return;
    }

    // ~4 chunks per thread for load balance, but never below min_grain.
    const int64_t target_chunks =
        static_cast<int64_t>(threadCount_) * 4;
    const int64_t grain =
        std::max(min_grain, (n + target_chunks - 1) / target_chunks);

    auto job = std::make_shared<Job>();
    job->fn = fn;
    job->begin = begin;
    job->end = end;
    job->grain = grain;
    job->chunkCount = (n + grain - 1) / grain;

    std::lock_guard<std::mutex> run_lock(runMutex_);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        job_ = job;
        ++epoch_;
    }
    cv_.notify_all();

    runChunks(job);  // the caller is a worker too

    {
        std::unique_lock<std::mutex> lock(job->doneMutex);
        job->doneCv.wait(lock, [&] {
            return job->completed.load(std::memory_order_acquire) ==
                   job->chunkCount;
        });
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        job_.reset();
    }
}

std::shared_ptr<ThreadPool>
ThreadPool::global()
{
    std::lock_guard<std::mutex> lock(g_pool_mutex);
    if (!g_pool)
        g_pool = std::make_shared<ThreadPool>(defaultThreadCount());
    return g_pool;
}

void
ThreadPool::setGlobalThreads(int threads)
{
    auto pool = std::make_shared<ThreadPool>(threads);
    std::lock_guard<std::mutex> lock(g_pool_mutex);
    g_pool = std::move(pool);
}

} // namespace mlperf
