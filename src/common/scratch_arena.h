/**
 * @file
 * Thread-local, grow-only scratch memory for kernel temporaries.
 *
 * The hot path (im2col columns, GEMM packing panels, quantized
 * activation buffers) needs large short-lived buffers on every call.
 * Allocating them per call dominates small-shape latency and poisons
 * the allocator under concurrency, so each thread owns an arena that
 * grows to the high-water mark once and is bump-allocated thereafter:
 * steady-state inference performs zero heap allocations.
 *
 * Usage is strictly stack-like so nested kernels compose (conv2d
 * takes a frame for its column buffer, the GEMM it calls takes an
 * inner frame for packing panels):
 *
 *     auto &arena = ScratchArena::thread();
 *     ScratchFrame frame(arena);          // rewinds on scope exit
 *     float *col = arena.alloc<float>(n);
 */

#ifndef MLPERF_COMMON_SCRATCH_ARENA_H
#define MLPERF_COMMON_SCRATCH_ARENA_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace mlperf {

/** Bump allocator over a chain of cache-line-aligned blocks. */
class ScratchArena
{
  public:
    ScratchArena() = default;
    ScratchArena(const ScratchArena &) = delete;
    ScratchArena &operator=(const ScratchArena &) = delete;

    /** The calling thread's arena. */
    static ScratchArena &thread();

    /** Aligned raw allocation; valid until the enclosing frame ends. */
    void *alloc(size_t bytes);

    /** Typed allocation of n elements. */
    template <typename T>
    T *
    alloc(int64_t n)
    {
        return static_cast<T *>(
            alloc(static_cast<size_t>(n) * sizeof(T)));
    }

    /** Position marker for stack-like rewind. */
    struct Marker
    {
        size_t block = 0;
        size_t used = 0;
    };

    Marker mark() const { return {activeBlock_, activeUsed_}; }
    void rewind(const Marker &m);

    /** Total bytes owned (high-water capacity across blocks). */
    size_t capacity() const;

    /** Heap allocations performed so far (tests assert it plateaus). */
    uint64_t blockAllocCount() const { return blockAllocCount_; }

    static constexpr size_t kAlignment = 64;

  private:
    struct Block
    {
        std::unique_ptr<char[]> storage; //!< raw, over-allocated
        char *base = nullptr;            //!< aligned start
        size_t size = 0;                 //!< usable bytes from base
    };

    Block makeBlock(size_t min_bytes);

    std::vector<Block> blocks_;
    size_t activeBlock_ = 0;
    size_t activeUsed_ = 0;
    uint64_t blockAllocCount_ = 0;
};

/** RAII frame: rewinds the arena to its construction point. */
class ScratchFrame
{
  public:
    explicit ScratchFrame(ScratchArena &arena)
        : arena_(arena), marker_(arena.mark())
    {
    }
    ~ScratchFrame() { arena_.rewind(marker_); }

    ScratchFrame(const ScratchFrame &) = delete;
    ScratchFrame &operator=(const ScratchFrame &) = delete;

  private:
    ScratchArena &arena_;
    ScratchArena::Marker marker_;
};

} // namespace mlperf

#endif // MLPERF_COMMON_SCRATCH_ARENA_H
