/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * The LoadGen's reproducibility guarantees (Sec. IV-B of the paper) rest
 * on all query traffic being derived from explicit seeds. We use a
 * xoshiro256** generator seeded through splitmix64, which gives
 * high-quality streams, cheap construction, and bit-exact behaviour
 * across platforms (unlike std::mt19937 distributions, whose outputs are
 * not standardized for floating point).
 */

#ifndef MLPERF_COMMON_RNG_H
#define MLPERF_COMMON_RNG_H

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace mlperf {

/**
 * xoshiro256** PRNG with splitmix64 seeding.
 *
 * All randomness in the repository (query sampling, Poisson arrivals,
 * synthetic data generation, simulated-hardware jitter) flows through
 * this class so runs are reproducible from the seeds recorded in the
 * test settings.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed; expands via splitmix64. */
    explicit Rng(uint64_t seed = kDefaultSeed);

    /** Default seed, mirroring the "official seed" of an MLPerf round. */
    static constexpr uint64_t kDefaultSeed = 0x9e3779b97f4a7c15ULL;

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Uniform integer in [0, bound) using rejection to avoid bias. */
    uint64_t nextBelow(uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t nextInRange(int64_t lo, int64_t hi);

    /** Standard normal variate (Box-Muller, no cached spare). */
    double nextGaussian();

    /**
     * Exponential variate with the given rate (events per unit time).
     * Used to generate Poisson-process interarrival gaps for the
     * server scenario.
     */
    double nextExponential(double rate);

    /** Fork a stream that is statistically independent of this one. */
    Rng fork();

  private:
    uint64_t s_[4];
};

/**
 * Fisher-Yates shuffle driven by an Rng.
 *
 * std::shuffle's use of the URBG is implementation-defined; we need a
 * portable, seed-stable shuffle for sample-index permutations.
 */
template <typename T>
void
shuffle(std::vector<T> &v, Rng &rng)
{
    for (size_t i = v.size(); i > 1; --i) {
        size_t j = rng.nextBelow(i);
        std::swap(v[i - 1], v[j]);
    }
}

} // namespace mlperf

#endif // MLPERF_COMMON_RNG_H
