#include "common/string_util.h"

#include <cstdarg>
#include <cstdint>
#include <cstdio>

namespace mlperf {

std::string
strprintf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    const int needed = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    std::string out;
    if (needed > 0) {
        out.resize(static_cast<size_t>(needed));
        std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
    }
    va_end(args_copy);
    return out;
}

std::vector<std::string>
split(const std::string &s, char delim)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (true) {
        const size_t pos = s.find(delim, start);
        if (pos == std::string::npos) {
            out.push_back(s.substr(start));
            break;
        }
        out.push_back(s.substr(start, pos - start));
        start = pos + 1;
    }
    return out;
}

std::string
join(const std::vector<std::string> &parts, const std::string &sep)
{
    std::string out;
    for (size_t i = 0; i < parts.size(); ++i) {
        if (i)
            out += sep;
        out += parts[i];
    }
    return out;
}

std::string
padLeft(const std::string &s, size_t width)
{
    if (s.size() >= width)
        return s;
    return std::string(width - s.size(), ' ') + s;
}

std::string
padRight(const std::string &s, size_t width)
{
    if (s.size() >= width)
        return s;
    return s + std::string(width - s.size(), ' ');
}

std::string
withThousands(uint64_t value)
{
    std::string digits = std::to_string(value);
    std::string out;
    const size_t n = digits.size();
    for (size_t i = 0; i < n; ++i) {
        if (i && (n - i) % 3 == 0)
            out += ',';
        out += digits[i];
    }
    return out;
}

std::string
formatDuration(uint64_t ns)
{
    if (ns < 1000)
        return strprintf("%lu ns", static_cast<unsigned long>(ns));
    if (ns < 1000 * 1000)
        return strprintf("%.2f us", ns / 1e3);
    if (ns < 1000ULL * 1000 * 1000)
        return strprintf("%.2f ms", ns / 1e6);
    return strprintf("%.2f s", ns / 1e9);
}

} // namespace mlperf
