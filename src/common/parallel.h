/**
 * @file
 * Shared intra-op thread pool.
 *
 * One process-wide pool parallelizes the compute kernels: GEMM over
 * M panels, conv2d over the batch dimension, and any future data-
 * parallel loop. The pool is fork-join — parallelFor() blocks until
 * every chunk has run — and re-entrant calls from inside a worker
 * execute inline, so kernels can nest (conv2d parallelizes the batch,
 * the GEMM it calls stays serial on that worker) without
 * oversubscribing cores. The serving runtime's workers get the same
 * behaviour for free: model forwards they run use the pool only when
 * called from a non-pool thread.
 *
 * Pool size comes from MLPERF_INTRAOP_THREADS, defaulting to the
 * hardware concurrency; tests and SUTs may override it with
 * setGlobalThreads().
 */

#ifndef MLPERF_COMMON_PARALLEL_H
#define MLPERF_COMMON_PARALLEL_H

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace mlperf {

/** Fixed-size fork-join pool; one job in flight at a time. */
class ThreadPool
{
  public:
    /** @param threads total worker count including the caller;
     *  a pool of size <= 1 runs everything inline. */
    explicit ThreadPool(int threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Workers plus the participating caller thread. */
    int threadCount() const { return threadCount_; }

    /**
     * Run fn(chunk_begin, chunk_end) over [begin, end) split into
     * contiguous chunks of at least min_grain iterations. Blocks
     * until the whole range is done; the caller participates. Calls
     * from inside a pool worker run the range inline.
     */
    void parallelFor(int64_t begin, int64_t end, int64_t min_grain,
                     const std::function<void(int64_t, int64_t)> &fn);

    /** True on a thread currently executing pool work. */
    static bool inWorker();

    /** Process-wide pool (created on first use). */
    static std::shared_ptr<ThreadPool> global();

    /** Replace the global pool; callers must be quiescent. */
    static void setGlobalThreads(int threads);

  private:
    struct Job;

    void workerLoop();
    static void runChunks(const std::shared_ptr<Job> &job);

    const int threadCount_;
    std::vector<std::thread> threads_;
    std::mutex mutex_;              //!< guards job_/epoch_/stop_
    std::condition_variable cv_;
    std::shared_ptr<Job> job_;
    uint64_t epoch_ = 0;
    bool stop_ = false;
    std::mutex runMutex_;           //!< serializes parallelFor callers
};

/**
 * parallelFor on the global pool. A template so that ranges which run
 * inline (single-thread pool, nested call from a worker, or range no
 * larger than one grain) invoke the callable directly without the
 * std::function type-erasure heap allocation — the compiled-plan
 * executor relies on this for its zero-allocations-per-query
 * steady state.
 */
template <typename Fn>
inline void
parallelFor(int64_t begin, int64_t end, int64_t min_grain, Fn &&fn)
{
    if (end <= begin)
        return;
    const std::shared_ptr<ThreadPool> pool = ThreadPool::global();
    if (pool->threadCount() <= 1 || ThreadPool::inWorker() ||
        end - begin <= std::max<int64_t>(min_grain, 1)) {
        fn(begin, end);
        return;
    }
    pool->parallelFor(
        begin, end, min_grain,
        std::function<void(int64_t, int64_t)>(std::forward<Fn>(fn)));
}

} // namespace mlperf

#endif // MLPERF_COMMON_PARALLEL_H
