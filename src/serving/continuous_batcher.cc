#include "serving/continuous_batcher.h"

#include <cassert>
#include <chrono>

#include "serving/lock_probe.h"

namespace mlperf {
namespace serving {

std::string
batchingModeName(BatchingMode mode)
{
    return mode == BatchingMode::Continuous ? "continuous" : "static";
}

ContinuousBatcher::ContinuousBatcher(SequenceDecoder &decoder,
                                     sim::Executor &executor,
                                     ContinuousBatcherOptions options,
                                     AdmissionController *admission,
                                     ServingStats *stats)
    : decoder_(decoder), executor_(executor), options_(options),
      admission_(admission), stats_(stats),
      ring_(options.ringCapacity), slots_(decoder.slotCount())
{
    assert(!slots_.empty());
    completionBuf_.reserve(1);
    if (options_.startThread)
        worker_ = std::thread([this] { workerLoop(); });
}

ContinuousBatcher::~ContinuousBatcher()
{
    stop_.store(true, std::memory_order_release);
    idleCv_.notify_all();
    if (worker_.joinable())
        worker_.join();
}

std::string
ContinuousBatcher::name() const
{
    return batchingModeName(options_.mode) + std::string("-batcher");
}

void
ContinuousBatcher::issueQuery(
    const std::vector<loadgen::QuerySample> &samples,
    loadgen::ResponseDelegate &delegate)
{
    for (const auto &sample : samples) {
        if (admission_ &&
            !admission_->tryAdmit(1, ring_.approxSize())) {
            shed(sample, delegate, false);
            continue;
        }
        PendingSeq seq{sample, &delegate, executor_.now()};
        if (!ring_.tryPush(seq)) {
            shed(sample, delegate, admission_ != nullptr);
            continue;
        }
        admitted_.fetch_add(1, std::memory_order_relaxed);
        inFlight_.fetch_add(1, std::memory_order_relaxed);
    }
    // Producers never take the idle mutex: a missed notify is bounded
    // by the decode thread's timed park.
    idleCv_.notify_one();
}

void
ContinuousBatcher::flushQueries()
{
    while (!idle()) {
        if (!options_.startThread) {
            pump();
        } else {
            std::this_thread::sleep_for(
                std::chrono::microseconds(options_.idleWaitUs));
        }
    }
}

bool
ContinuousBatcher::idle() const
{
    return inFlight_.load(std::memory_order_acquire) == 0;
}

void
ContinuousBatcher::admitInto(size_t slot, PendingSeq &seq)
{
    Slot &s = slots_[slot];
    assert(!s.occupied);
    decoder_.prefill(slot, seq.sample.index);
    s.occupied = true;
    s.draining = false;
    s.firstTokenSent = false;
    s.sample = seq.sample;
    s.delegate = seq.delegate;
    s.enqueuedAt = seq.enqueuedAt;
    ++occupied_;
}

void
ContinuousBatcher::completeSlot(size_t slot)
{
    Slot &s = slots_[slot];
    completionBuf_.clear();
    loadgen::QuerySampleResponse response;
    response.id = s.sample.id;
    response.data = decoder_.result(slot);
    response.status = loadgen::ResponseStatus::Ok;
    response.tokenCount = decoder_.tokenCount(slot);
    completionBuf_.push_back(std::move(response));
    s.delegate->querySamplesComplete(completionBuf_);
    if (admission_)
        admission_->release(1);
    completed_.fetch_add(1, std::memory_order_relaxed);
    --occupied_;
    if (options_.mode == BatchingMode::Continuous) {
        decoder_.release(slot);
        s.occupied = false;
    } else {
        // The state stays resident: padStep needs it until the whole
        // batch drains.
        s.draining = true;
        ++draining_;
    }
    inFlight_.fetch_sub(1, std::memory_order_release);
}

void
ContinuousBatcher::shed(const loadgen::QuerySample &sample,
                        loadgen::ResponseDelegate &delegate,
                        bool charged)
{
    if (charged && admission_)
        admission_->release(1);
    shed_.fetch_add(1, std::memory_order_relaxed);
    std::vector<loadgen::QuerySampleResponse> responses(1);
    responses[0].id = sample.id;
    responses[0].status = loadgen::ResponseStatus::Shed;
    delegate.querySamplesComplete(responses);
}

uint64_t
ContinuousBatcher::pump()
{
    const uint64_t locksBefore = LockProbe::threadAcquisitions();
    uint64_t work = 0;
    uint64_t stepped = 0;

    // ---- Admission (decode thread only, so slot scans race nothing).
    // Continuous: every free slot is fillable every round. Static:
    // admission reopens only once the previous batch fully drained.
    const bool may_admit =
        options_.mode == BatchingMode::Continuous
            ? occupied_ < slots_.size()
            : occupied_ == 0 && draining_ == 0;
    if (may_admit) {
        for (size_t s = 0; s < slots_.size(); ++s) {
            if (slots_[s].occupied)
                continue;
            PendingSeq seq;
            if (!ring_.tryPop(seq))
                break;
            admitInto(s, seq);
            ++work;
        }
    }

    if (occupied_ == 0 && draining_ == 0) {
        fastPathLocks_.fetch_add(
            LockProbe::threadAcquisitions() - locksBefore,
            std::memory_order_relaxed);
        return work;
    }

    // ---- One decode step per live slot; one pad step per drained
    // slot (static). Per-slot batch-1 compute: a sequence's tokens
    // cannot depend on who shares the round.
    for (size_t s = 0; s < slots_.size(); ++s) {
        Slot &slot = slots_[s];
        if (!slot.occupied)
            continue;
        if (slot.draining) {
            decoder_.padStep(s);
            padSteps_.fetch_add(1, std::memory_order_relaxed);
            ++stepped;
            ++work;
            continue;
        }
        const StepOutcome out = decoder_.step(s);
        tokens_.fetch_add(1, std::memory_order_relaxed);
        ++stepped;
        ++work;
        if (!slot.firstTokenSent) {
            slot.firstTokenSent = true;
            if (options_.ttftSloNs != 0) {
                const sim::Tick now = executor_.now();
                const sim::Tick ttft =
                    now >= slot.enqueuedAt ? now - slot.enqueuedAt : 0;
                const bool miss = ttft > options_.ttftSloNs;
                sloJudged_.fetch_add(1, std::memory_order_relaxed);
                if (miss) {
                    sloViolations_.fetch_add(
                        1, std::memory_order_relaxed);
                }
                if (stats_)
                    stats_->recordSloOutcome(1, miss ? 1 : 0);
            }
            slot.delegate->querySampleFirstToken(slot.sample.id);
        }
        if (out.finished)
            completeSlot(s);
    }

    // Static: once the longest member finishes no further fused step
    // runs, so the drained batch releases as a whole right here.
    if (options_.mode == BatchingMode::Static && occupied_ == 0 &&
        draining_ > 0) {
        for (size_t s = 0; s < slots_.size(); ++s) {
            if (!slots_[s].occupied)
                continue;
            assert(slots_[s].draining);
            decoder_.release(s);
            slots_[s].occupied = false;
            slots_[s].draining = false;
        }
        draining_ = 0;
    }

    if (stepped > 0) {
        decodeRounds_.fetch_add(1, std::memory_order_relaxed);
        slotStepSum_.fetch_add(stepped, std::memory_order_relaxed);
    }
    fastPathLocks_.fetch_add(
        LockProbe::threadAcquisitions() - locksBefore,
        std::memory_order_relaxed);
    return work;
}

void
ContinuousBatcher::workerLoop()
{
    while (!stop_.load(std::memory_order_acquire)) {
        if (pump() != 0)
            continue;
        std::unique_lock<std::mutex> lock(idleMutex_);
        idleCv_.wait_for(
            lock, std::chrono::microseconds(options_.idleWaitUs),
            [this] {
                return stop_.load(std::memory_order_acquire) ||
                       !ring_.empty();
            });
    }
    // Never wedge in-flight sequences on shutdown.
    while (!idle())
        pump();
}

BatcherCounters
ContinuousBatcher::counters() const
{
    BatcherCounters c;
    c.admitted = admitted_.load(std::memory_order_relaxed);
    c.shed = shed_.load(std::memory_order_relaxed);
    c.completed = completed_.load(std::memory_order_relaxed);
    c.tokens = tokens_.load(std::memory_order_relaxed);
    c.padSteps = padSteps_.load(std::memory_order_relaxed);
    c.decodeRounds = decodeRounds_.load(std::memory_order_relaxed);
    c.slotStepSum = slotStepSum_.load(std::memory_order_relaxed);
    c.sloJudged = sloJudged_.load(std::memory_order_relaxed);
    c.sloViolations = sloViolations_.load(std::memory_order_relaxed);
    c.fastPathLockAcquisitions =
        fastPathLocks_.load(std::memory_order_relaxed);
    return c;
}

// ------------------------------------------------- DecodeLaneRouter

namespace {

/** splitmix64: cheap, well-mixed sticky lane assignment. */
uint64_t
mixIndex(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace

DecodeLaneRouter::DecodeLaneRouter(
    std::vector<std::unique_ptr<ContinuousBatcher>> lanes)
    : lanes_(std::move(lanes))
{
    assert(!lanes_.empty());
}

std::string
DecodeLaneRouter::name() const
{
    return lanes_[0]->name() + "-x" + std::to_string(lanes_.size());
}

void
DecodeLaneRouter::issueQuery(
    const std::vector<loadgen::QuerySample> &samples,
    loadgen::ResponseDelegate &delegate)
{
    if (lanes_.size() == 1) {
        lanes_[0]->issueQuery(samples, delegate);
        return;
    }
    // Route per sample; a sequence's slot state lives (and stays) in
    // the lane its index hashes to.
    std::vector<loadgen::QuerySample> one(1);
    for (const auto &sample : samples) {
        one[0] = sample;
        lanes_[mixIndex(sample.index) % lanes_.size()]->issueQuery(
            one, delegate);
    }
}

void
DecodeLaneRouter::flushQueries()
{
    for (auto &lane : lanes_)
        lane->flushQueries();
}

BatcherCounters
DecodeLaneRouter::counters() const
{
    BatcherCounters total;
    for (const auto &lane : lanes_) {
        const BatcherCounters c = lane->counters();
        total.admitted += c.admitted;
        total.shed += c.shed;
        total.completed += c.completed;
        total.tokens += c.tokens;
        total.padSteps += c.padSteps;
        total.decodeRounds += c.decodeRounds;
        total.slotStepSum += c.slotStepSum;
        total.sloJudged += c.sloJudged;
        total.sloViolations += c.sloViolations;
        total.fastPathLockAcquisitions += c.fastPathLockAcquisitions;
    }
    return total;
}

} // namespace serving
} // namespace mlperf
