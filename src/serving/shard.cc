#include "serving/shard.h"

#include <algorithm>
#include <chrono>
#include <exception>

#include "serving/lock_probe.h"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace mlperf {
namespace serving {

namespace {

constexpr auto kRelaxed = std::memory_order_relaxed;

/** How long an idle worker parks on its own queue between steal
 *  sweeps. Short enough that a burst landing on a neighbour shard is
 *  picked up promptly; long enough that an idle pool does not spin. */
constexpr std::chrono::microseconds kIdleParkUs{200};

ShardOptions
sanitized(ShardOptions options)
{
    options.shards = std::max<int64_t>(1, options.shards);
    options.workersPerShard =
        std::max<int64_t>(1, options.workersPerShard);
    options.ringCapacity = std::max<size_t>(2, options.ringCapacity);
    if (options.initialActiveShards <= 0 ||
        options.initialActiveShards > options.shards) {
        options.initialActiveShards = options.shards;
    }
    return options;
}

void
pinToCpu(unsigned cpu)
{
#if defined(__linux__)
    const unsigned cpus = std::max(1u, std::thread::hardware_concurrency());
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(cpu % cpus, &set);
    // Best effort: a restricted affinity mask (cgroups, taskset) can
    // make this fail, and the runtime is correct unpinned.
    pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
    (void)cpu;
#endif
}

} // namespace

ShardedWorkerPool::ShardedWorkerPool(sim::Executor &executor,
                                     BatchInference &inference,
                                     ServingStats &stats,
                                     ShardOptions options)
    : executor_(executor), inference_(inference), stats_(stats),
      options_(sanitized(std::move(options)))
{
    const size_t shards = static_cast<size_t>(options_.shards);
    const size_t active =
        static_cast<size_t>(options_.initialActiveShards);
    shards_.reserve(shards);
    for (size_t i = 0; i < shards; ++i) {
        shards_.push_back(std::make_unique<Shard>(
            options_.queueCapacityBatches, options_.ringCapacity));
        if (i >= active) {
            // Held in reserve for the autoscaler: no workers, and a
            // closed queue so a racing submitTo reroutes instead of
            // queueing work nobody would pick up.
            shards_[i]->accepting.store(false, kRelaxed);
            shards_[i]->queue.close();
        }
    }
    activeShards_.store(active, std::memory_order_release);
    stats_.setWorkers(workerCount());
    stats_.setActiveShards(static_cast<int64_t>(active));

    drainer_ = std::thread([this] { drainerLoop(); });

    for (size_t s = 0; s < active; ++s)
        spawnShardWorkers(s);
}

void
ShardedWorkerPool::spawnShardWorkers(size_t index)
{
    const size_t perShard =
        static_cast<size_t>(options_.workersPerShard);
    Shard &shard = *shards_[index];
    shard.workers.reserve(perShard);
    for (size_t w = 0; w < perShard; ++w) {
        shard.workers.emplace_back([this, index, w, perShard] {
            if (options_.pinThreads)
                pinToCpu(static_cast<unsigned>(index * perShard + w));
            workerLoop(index);
        });
    }
}

ShardedWorkerPool::~ShardedWorkerPool()
{
    shutdown();
}

size_t
ShardedWorkerPool::shardFor(uint64_t key, size_t shards)
{
    if (shards <= 1)
        return 0;
    // splitmix64 finisher: sample ids and tenant routes are dense
    // small integers, and `id % shards` would map a strided issue
    // pattern onto one shard; the mix spreads any key distribution.
    uint64_t z = key + 0x9E3779B97F4A7C15ULL;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    z ^= z >> 31;
    return static_cast<size_t>(z % shards);
}

bool
ShardedWorkerPool::submit(Batch &batch)
{
    const uint64_t first =
        batch.items.empty() ? 0 : batch.items.front().sample.id;
    const uint64_t key =
        (static_cast<uint64_t>(batch.route) << 32) ^ first;
    return submitTo(shardFor(key, activeShardCount()), batch);
}

bool
ShardedWorkerPool::submitTo(size_t shard_index, Batch &batch)
{
    Shard &shard = *shards_[shard_index];
    const uint64_t samples = batch.items.size();
    if (shard.queue.tryPush(batch)) {
        shard.queuedSamples.fetch_add(samples, kRelaxed);
        return true;
    }
    if (!shard.queue.closed())
        return false;  // full: backpressure, the caller sheds
    // The target shard closed under us (a concurrent shrink, or a
    // batcher still aimed at it). Reroute across the other shards —
    // the batch must not be lost to a scaling race; only genuine
    // backpressure (every open queue full) may refuse it.
    const size_t shards = shards_.size();
    for (size_t i = 1; i < shards; ++i) {
        Shard &other = *shards_[(shard_index + i) % shards];
        if (other.queue.tryPush(batch)) {
            other.queuedSamples.fetch_add(samples, kRelaxed);
            return true;
        }
    }
    return false;
}

bool
ShardedWorkerPool::growOneShard()
{
    std::lock_guard<std::mutex> lock(scaleMutex_);
    if (stopped_.load(kRelaxed))
        return false;
    const size_t active = activeShards_.load(kRelaxed);
    if (active >= shards_.size())
        return false;
    Shard &shard = *shards_[active];
    // The previous shrink joined this shard's workers before closing
    // the books, so reopening the queue races with no consumer.
    shard.queue.reopen();
    shard.accepting.store(true, kRelaxed);
    spawnShardWorkers(active);
    activeShards_.store(active + 1, std::memory_order_release);
    stats_.setWorkers(workerCount());
    stats_.setActiveShards(static_cast<int64_t>(active + 1));
    stats_.recordScaleEvent(true);
    if (afterGrow_)
        afterGrow_(active + 1);
    return true;
}

bool
ShardedWorkerPool::shrinkOneShard()
{
    std::lock_guard<std::mutex> lock(scaleMutex_);
    if (stopped_.load(kRelaxed))
        return false;
    const size_t active = activeShards_.load(kRelaxed);
    if (active <= 1)
        return false;
    const size_t victim = active - 1;
    // Unroute first: new submits hash over the smaller set before the
    // victim stops accepting, so the close window only ever sees
    // stragglers — and those reroute in submitTo.
    activeShards_.store(victim, std::memory_order_release);
    if (beforeShrink_)
        beforeShrink_(victim);
    Shard &shard = *shards_[victim];
    shard.accepting.store(false, kRelaxed);
    shard.queue.close();
    // Workers drain everything already queued, then exit: drain-and-
    // join, so a shrink can never lose a completion.
    for (std::thread &worker : shard.workers) {
        if (worker.joinable())
            worker.join();
    }
    shard.workers.clear();
    stats_.setWorkers(workerCount());
    stats_.setActiveShards(static_cast<int64_t>(victim));
    stats_.recordScaleEvent(false);
    return true;
}

void
ShardedWorkerPool::shutdown()
{
    if (stopped_.exchange(true))
        return;
    // The scale lock orders shutdown after any in-flight grow/shrink;
    // later calls see stopped_ and bail.
    std::lock_guard<std::mutex> lock(scaleMutex_);
    for (auto &shard : shards_)
        shard->queue.close();
    for (auto &shard : shards_) {
        for (std::thread &worker : shard->workers) {
            if (worker.joinable())
                worker.join();
        }
        shard->workers.clear();
    }
    // Workers are joined, so every record they will ever publish is
    // already in a ring; the drainer's final sweep cannot miss any.
    {
        std::lock_guard<std::mutex> wake(wakeMutex_);
        drainerStop_ = true;
    }
    wakeCv_.notify_one();
    if (drainer_.joinable())
        drainer_.join();
}

uint64_t
ShardedWorkerPool::queuedSamples() const
{
    uint64_t total = 0;
    for (const auto &shard : shards_)
        total += shard->queuedSamples.load(kRelaxed);
    return total;
}

uint64_t
ShardedWorkerPool::queuedSamplesOn(size_t shard) const
{
    return shards_[shard]->queuedSamples.load(kRelaxed);
}

uint64_t
ShardedWorkerPool::steals() const
{
    uint64_t total = 0;
    for (const auto &shard : shards_)
        total += shard->steals.load(kRelaxed);
    return total;
}

void
ShardedWorkerPool::workerLoop(size_t shard_index)
{
    Shard &own = *shards_[shard_index];
    for (;;) {
        // Own work first: a shard's workers are its dedicated service
        // capacity, and stealing is strictly the idle fallback.
        if (auto batch = own.queue.tryPop()) {
            own.queuedSamples.fetch_sub(batch->items.size(), kRelaxed);
            process(shard_index, std::move(*batch));
            continue;
        }
        // A draining shard's workers do not steal: their job is to
        // empty their own queue and exit so the shrink join returns.
        if (options_.stealWhenIdle && own.accepting.load(kRelaxed)) {
            Batch stolen;
            if (trySteal(shard_index, stolen)) {
                process(shard_index, std::move(stolen));
                continue;
            }
        }
        if (auto batch = own.queue.popFor(kIdleParkUs)) {
            own.queuedSamples.fetch_sub(batch->items.size(), kRelaxed);
            process(shard_index, std::move(*batch));
            continue;
        }
        if (own.queue.drained())
            break;
    }
}

bool
ShardedWorkerPool::trySteal(size_t thief, Batch &out)
{
    const size_t shards = shards_.size();
    for (size_t i = 1; i < shards; ++i) {
        Shard &victim = *shards_[(thief + i) % shards];
        if (auto batch = victim.queue.tryPop()) {
            victim.queuedSamples.fetch_sub(batch->items.size(),
                                           kRelaxed);
            shards_[thief]->steals.fetch_add(1, kRelaxed);
            out = std::move(*batch);
            return true;
        }
    }
    return false;
}

void
ShardedWorkerPool::process(size_t shard_index, Batch &&batch)
{
    Shard &shard = *shards_[shard_index];
    const sim::Tick start = executor_.now();

    Batch expired = splitExpired(batch, start);
    if (!expired.items.empty()) {
        const uint64_t locksBefore = LockProbe::threadAcquisitions();
        CompletionRecord record;
        record.kind = CompletionRecord::Kind::Expired;
        record.responses = errorResponses(
            expired, loadgen::ResponseStatus::Timeout);
        record.batch = std::move(expired);
        record.dispatchedAt = start;
        publish(shard, std::move(record), locksBefore);
    }
    if (batch.items.empty())
        return;

    try {
        auto responses =
            inference_.runBatch(batchSamples(batch), batchMeta(batch));
        const sim::Tick end = executor_.now();
        const uint64_t locksBefore = LockProbe::threadAcquisitions();
        CompletionRecord record;
        record.kind = CompletionRecord::Kind::Done;
        record.responses = std::move(responses);
        record.batch = std::move(batch);
        record.dispatchedAt = start;
        record.busyNs = end >= start ? end - start : 0;
        publish(shard, std::move(record), locksBefore);
    } catch (const InferenceFault &fault) {
        const sim::Tick end = executor_.now();
        const uint64_t locksBefore = LockProbe::threadAcquisitions();
        CompletionRecord record;
        // Same policy as ThreadWorkerPool::handleBatchFault: drop the
        // completion only when a tracker stands by to reap it.
        if (fault.kind() == FaultKind::DropCompletion &&
            options_.trackerActive) {
            record.kind = CompletionRecord::Kind::Dropped;
        } else {
            record.kind = CompletionRecord::Kind::Failed;
            record.responses = errorResponses(
                batch, loadgen::ResponseStatus::Failed);
        }
        record.batch = std::move(batch);
        record.dispatchedAt = start;
        record.busyNs = end >= start ? end - start : 0;
        publish(shard, std::move(record), locksBefore);
    } catch (const std::exception &) {
        const sim::Tick end = executor_.now();
        const uint64_t locksBefore = LockProbe::threadAcquisitions();
        CompletionRecord record;
        record.kind = CompletionRecord::Kind::Failed;
        record.responses =
            errorResponses(batch, loadgen::ResponseStatus::Failed);
        record.batch = std::move(batch);
        record.dispatchedAt = start;
        record.busyNs = end >= start ? end - start : 0;
        publish(shard, std::move(record), locksBefore);
    }
}

void
ShardedWorkerPool::publish(Shard &shard, CompletionRecord &&record,
                           uint64_t locks_before)
{
    if (shard.ring.tryPush(record)) {
        // The zero-mutex contract is measured, not assumed: any
        // instrumented lock taken between the locks_before snapshot
        // (right after runBatch returned) and this point shows up in
        // fastPathLockAcquisitions(), which the shard tests pin to 0.
        const uint64_t delta =
            LockProbe::threadAcquisitions() - locks_before;
        if (delta != 0)
            fastPathLocks_.fetch_add(delta, kRelaxed);
        wakeDrainerIfIdle();
        return;
    }
    // Ring full: the drainer is far behind (or the ring is test-tiny).
    // Complete through the locked slow path rather than block or drop,
    // and make the event visible — a nonzero fallback count at sane
    // ring sizes means the drainer is the bottleneck.
    ringFallbacks_.fetch_add(1, kRelaxed);
    applyRecord(record);
}

void
ShardedWorkerPool::wakeDrainerIfIdle()
{
    // Pairs with the fence in drainerLoop(): either this thread sees
    // drainerIdle_ and rings the bell, or the drainer's post-idle
    // ring recheck sees our push. The bounded wait covers the rest.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (!drainerIdle_.load(kRelaxed))
        return;
    {
        std::lock_guard<std::mutex> lock(wakeMutex_);
    }
    wakeCv_.notify_one();
}

void
ShardedWorkerPool::applyRecord(CompletionRecord &record)
{
    switch (record.kind) {
      case CompletionRecord::Kind::Done:
        stats_.recordDispatch(record.batch, record.dispatchedAt);
        completeBatch(record.batch, record.responses);
        stats_.recordBatchDone(record.batch.items.size(),
                               record.busyNs);
        if (options_.sloTargetNs != 0) {
            // Enqueue-to-completion latency per sample, judged at the
            // drainer so the worker fast path stays untouched.
            const sim::Tick done = record.dispatchedAt + record.busyNs;
            uint64_t violations = 0;
            for (const BatchItem &item : record.batch.items) {
                const sim::Tick latency =
                    done >= item.enqueuedAt ? done - item.enqueuedAt
                                            : 0;
                if (latency > options_.sloTargetNs)
                    ++violations;
            }
            stats_.recordSloOutcome(record.batch.items.size(),
                                    violations);
        }
        break;
      case CompletionRecord::Kind::Failed:
        stats_.recordDispatch(record.batch, record.dispatchedAt);
        stats_.recordBatchFailed(record.batch.items.size(),
                                 record.busyNs);
        completeBatch(record.batch, record.responses);
        if (options_.sloTargetNs != 0) {
            stats_.recordSloOutcome(record.batch.items.size(),
                                    record.batch.items.size());
        }
        break;
      case CompletionRecord::Kind::Expired:
        stats_.recordExpired(record.batch.items.size());
        completeBatch(record.batch, record.responses);
        if (options_.sloTargetNs != 0) {
            stats_.recordSloOutcome(record.batch.items.size(),
                                    record.batch.items.size());
        }
        break;
      case CompletionRecord::Kind::Dropped:
        stats_.recordDispatch(record.batch, record.dispatchedAt);
        stats_.recordDroppedCompletion(record.batch.items.size());
        if (options_.sloTargetNs != 0) {
            stats_.recordSloOutcome(record.batch.items.size(),
                                    record.batch.items.size());
        }
        break;
      case CompletionRecord::Kind::None:
        break;
    }
}

bool
ShardedWorkerPool::drainRingsOnce()
{
    bool any = false;
    CompletionRecord record;
    for (auto &shard : shards_) {
        while (shard->ring.tryPop(record)) {
            applyRecord(record);
            any = true;
        }
    }
    return any;
}

void
ShardedWorkerPool::drainerLoop()
{
    for (;;) {
        if (drainRingsOnce())
            continue;
        std::unique_lock<std::mutex> lock(wakeMutex_);
        if (drainerStop_) {
            lock.unlock();
            // Workers are joined before drainerStop_ is set, so one
            // final sweep observes every published record.
            while (drainRingsOnce()) {
            }
            return;
        }
        drainerIdle_.store(true, kRelaxed);
        std::atomic_thread_fence(std::memory_order_seq_cst);
        bool pending = false;
        for (auto &shard : shards_) {
            if (!shard->ring.empty()) {
                pending = true;
                break;
            }
        }
        if (!pending)
            wakeCv_.wait_for(lock, std::chrono::milliseconds(1));
        drainerIdle_.store(false, kRelaxed);
    }
}

} // namespace serving
} // namespace mlperf
