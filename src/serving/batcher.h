/**
 * @file
 * Dynamic batcher: merges samples from independent queries into
 * batches, flushing on whichever comes first — max batch size or a
 * batching-window deadline.
 *
 * The deadline is scheduled through sim::Executor, so the batcher
 * behaves identically under VirtualExecutor (deterministic virtual
 * time) and RealExecutor (wall clock). This is the SUT-side knob
 * behind Figure 6's server-vs-offline gap: a wider window forms
 * fuller batches (throughput) at the cost of queueing delay
 * (latency) — see bench_serving_batching.
 */

#ifndef MLPERF_SERVING_BATCHER_H
#define MLPERF_SERVING_BATCHER_H

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>

#include "serving/batch.h"
#include "sim/executor.h"

namespace mlperf {
namespace serving {

class DynamicBatcher
{
  public:
    /** Receives each formed batch (called with no locks held). */
    using EmitFn = std::function<void(Batch &&)>;

    /**
     * @param max_batch largest batch formed (>= 1)
     * @param timeout_ns how long a partial batch may wait for more
     *        samples; 0 dispatches on every enqueue (no batching
     *        window)
     */
    DynamicBatcher(sim::Executor &executor, int64_t max_batch,
                   sim::Tick timeout_ns, EmitFn emit);

    /**
     * Add a query's samples; may emit one or more full batches.
     * @p deadline (absolute tick, 0 = none) is stamped on every item
     * so worker pools can shed expired work at dispatch.
     */
    void enqueue(const std::vector<loadgen::QuerySample> &samples,
                 loadgen::ResponseDelegate &delegate,
                 sim::Tick deadline = 0);

    /** Emit everything pending immediately (FlushReason::Drain). */
    void flush();

    /** Samples currently awaiting batch formation. */
    size_t pending() const;

  private:
    /** Pop up to max_batch pending items into a batch (lock held). */
    Batch takeBatch(size_t count, FlushReason reason);
    void emitAll(std::vector<Batch> &batches);
    void armDeadline(sim::Tick now);
    void onDeadline(uint64_t generation);

    sim::Executor &executor_;
    const int64_t maxBatch_;
    const sim::Tick timeoutNs_;
    EmitFn emit_;

    mutable std::mutex mutex_;
    std::deque<BatchItem> pending_;
    bool deadlineArmed_ = false;
    /** Bumped whenever pending_ empties; stale deadlines no-op. */
    uint64_t generation_ = 0;
};

} // namespace serving
} // namespace mlperf

#endif // MLPERF_SERVING_BATCHER_H
