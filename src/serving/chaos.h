/**
 * @file
 * Chaos-injection harness for the serving runtime.
 *
 * Resilience code that is only exercised by real outages is untested
 * code. FaultInjectingInference wraps any BatchInference and injects
 * faults from a seeded deterministic RNG — latency spikes, transient
 * errors, dropped completions, wedged workers — so tests can drive
 * every state transition of the resilience layer (shed, retry,
 * breaker open/half-open/close, degrade, timeout-complete) and assert
 * exact counter values, and benches can measure tail latency under a
 * known fault rate.
 *
 * Determinism under event workers needs care: serviceTimeNs runs at
 * dispatch (executor thread) and runBatch at completion, as separate
 * events. The fault decision for a batch is drawn once in
 * serviceTimeNs, stored keyed by the batch's first sample id, and
 * consumed by runBatch, so both the modeled service time and the
 * fault outcome come from a single draw. Under thread workers
 * (serviceTimeNs never called) runBatch draws inline.
 */

#ifndef MLPERF_SERVING_CHAOS_H
#define MLPERF_SERVING_CHAOS_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "serving/batch_inference.h"
#include "sim/executor.h"

namespace mlperf {
namespace serving {

/** Fault mix injected by FaultInjectingInference. */
struct ChaosOptions
{
    uint64_t seed = Rng::kDefaultSeed;

    /** P(batch takes an extra latencySpikeNs) — a slow worker. */
    double latencySpikeProb = 0.0;
    sim::Tick latencySpikeNs = 20 * sim::kNsPerMs;

    /** P(batch throws FaultKind::Transient) — retryable hiccup. */
    double transientFaultProb = 0.0;

    /** P(batch throws FaultKind::Permanent) — hard failure. */
    double permanentFaultProb = 0.0;

    /** P(batch's completion is silently lost) — crashed completer. */
    double dropCompletionProb = 0.0;

    /** P(batch wedges for wedgeNs) — a stuck worker holding a slot. */
    double wedgeProb = 0.0;
    sim::Tick wedgeNs = 500 * sim::kNsPerMs;
};

/** Counters of faults actually injected (for test assertions). */
struct ChaosCounters
{
    uint64_t latencySpikes = 0;
    uint64_t transientFaults = 0;
    uint64_t permanentFaults = 0;
    uint64_t droppedCompletions = 0;
    uint64_t wedges = 0;

    uint64_t
    total() const
    {
        return latencySpikes + transientFaults + permanentFaults +
               droppedCompletions + wedges;
    }
};

/**
 * BatchInference decorator injecting faults per ChaosOptions.
 * Thread-safe; the RNG is mutex-guarded so thread workers draw from
 * one deterministic stream (outcome totals are seed-stable, the
 * batch-to-fault assignment is only deterministic under event
 * workers, where a single thread draws).
 *
 * Layering: ResilientInference wraps FaultInjectingInference wraps
 * the real engine — faults pass through the retry/breaker machinery
 * exactly like real ones.
 */
class FaultInjectingInference : public BatchInference
{
  public:
    FaultInjectingInference(BatchInference &inner, ChaosOptions options)
        : inner_(inner), options_(options), rng_(options.seed)
    {
    }

    std::string
    name() const override
    {
        return "chaos(" + inner_.name() + ")";
    }

    std::vector<loadgen::QuerySampleResponse> runBatch(
        const std::vector<loadgen::QuerySample> &samples) override;

    sim::Tick serviceTimeNs(
        const std::vector<loadgen::QuerySample> &samples,
        sim::Tick now) override;

    ChaosCounters counters() const;

  private:
    /** What happens to one batch; a single RNG draw decides. */
    enum class FaultAction
    {
        None,
        LatencySpike, // thread mode: real sleep; event mode: extra ticks
        Transient,
        Permanent,
        DropCompletion,
        Wedge,
    };

    FaultAction draw();
    FaultAction takePlanned(loadgen::ResponseId firstId, bool &found);
    std::vector<loadgen::QuerySampleResponse> apply(
        FaultAction action,
        const std::vector<loadgen::QuerySample> &samples, bool modeled);

    BatchInference &inner_;
    const ChaosOptions options_;
    mutable std::mutex mutex_;
    Rng rng_;
    ChaosCounters counters_;
    /** Event-mode fault plan: first sample id -> decided action. */
    std::unordered_map<loadgen::ResponseId, FaultAction> planned_;
};

} // namespace serving
} // namespace mlperf

#endif // MLPERF_SERVING_CHAOS_H
