/**
 * @file
 * DAG pipelines: one query runs a graph of stages — preprocess ->
 * model -> postprocess chains, or fan-out across several models with
 * a join — instead of a single model call (the RedisAI
 * dag_builder/dag_execute idiom named in the roadmap).
 *
 * Structure:
 *
 *  - DagBuilder assembles the graph. Stages reference only
 *    already-declared nodes as dependencies, so the graph is acyclic
 *    by construction; build() additionally validates that the output
 *    is reachable and prunes nothing silently (unreachable stages are
 *    a build error — a pipeline that quietly skips work would
 *    misreport coverage).
 *  - DagPipeline is the immutable compiled form. run() executes the
 *    needed stages in topological order on the calling thread — which
 *    in serving is a shared worker-pool thread, so pipelines ride the
 *    same workers, queues, and backpressure as plain model routes.
 *  - Deadline propagation: the pipeline's absolute deadline is split
 *    across stages proportional to their declared cost weights. Each
 *    stage sees its own absolute sub-deadline in DagContext (model
 *    stages can forward it into nested calls), and a stage that would
 *    start after the whole-pipeline deadline throws
 *    DagDeadlineExceeded — the platform router completes just that
 *    sample with Timeout status.
 *
 * Thread-safety: run() is const and touches only per-run state plus a
 * mutex-guarded stats block, so any number of workers execute one
 * pipeline concurrently. Stage functors must be thread-safe (model
 * stages acquire registry handles, which are).
 */

#ifndef MLPERF_SERVING_TENANCY_DAG_H
#define MLPERF_SERVING_TENANCY_DAG_H

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "loadgen/types.h"
#include "serving/batch_inference.h"
#include "serving/tenancy/model_registry.h"
#include "sim/executor.h"
#include "tensor/tensor.h"

namespace mlperf {
namespace serving {

/** Per-run context a stage executes under. */
struct DagContext
{
    /** QSL index of the sample this run serves (source stages use it
     *  to fetch their input instead of a caller-provided tensor). */
    loadgen::QuerySampleIndex sampleIndex = 0;
    /** Time source for deadline checks; null = no deadline checking. */
    sim::Executor *executor = nullptr;
    /** Whole-pipeline absolute deadline; 0 = none. */
    sim::Tick deadline = 0;
    /**
     * Absolute deadline of the *current* stage: the pipeline budget
     * split by cost weight, set by the runner before each stage.
     * Stages may pass it on to nested calls.
     */
    sim::Tick stageDeadline = 0;
};

/**
 * One stage: consumes its dependencies' outputs (in declaration
 * order) and produces one tensor. Source stages (no dependencies)
 * receive the pipeline input as their only entry when one was
 * provided, else an empty inputs vector.
 */
using DagStageFn = std::function<tensor::Tensor(
    const std::vector<const tensor::Tensor *> &inputs,
    const DagContext &ctx)>;

/** Thrown when a stage would start past the pipeline deadline. */
class DagDeadlineExceeded : public InferenceFault
{
  public:
    explicit DagDeadlineExceeded(const std::string &stage)
        : InferenceFault(FaultKind::Permanent,
                         "dag deadline exceeded before stage '" +
                             stage + "'")
    {
    }
};

/** Cumulative per-stage execution counters (thread-safe snapshot). */
struct DagStageStats
{
    std::string name;
    uint64_t runs = 0;
    uint64_t deadlineAborts = 0;  //!< runs cut short before this stage
    sim::Tick totalNs = 0;        //!< summed wall/virtual stage time
};

class DagPipeline
{
  public:
    const std::string &name() const { return name_; }
    size_t stageCount() const { return nodes_.size(); }

    /**
     * Execute the pipeline for one sample and return the output
     * stage's tensor. @p input feeds input-kind nodes (pass an empty
     * tensor when every source stage fetches via ctx.sampleIndex).
     * Throws DagDeadlineExceeded on deadline violation and propagates
     * stage exceptions unchanged.
     */
    tensor::Tensor run(const tensor::Tensor &input,
                       const DagContext &ctx = {}) const;

    /** Per-stage cumulative counters across all runs so far. */
    std::vector<DagStageStats> stageStats() const;

  private:
    friend class DagBuilder;

    struct Node
    {
        std::string name;
        DagStageFn fn;            //!< null for the input node
        std::vector<int> deps;
        double costWeight = 1.0;
        /** Cumulative weight through this stage / total weight: the
         *  fraction of the deadline budget spent when it finishes. */
        double budgetFraction = 1.0;
    };

    struct StageCounters
    {
        uint64_t runs = 0;
        uint64_t deadlineAborts = 0;
        sim::Tick totalNs = 0;
    };

    /** Mutable run statistics, shared by copies of the pipeline. */
    struct Stats
    {
        std::mutex mutex;
        std::vector<StageCounters> stages;
    };

    std::string name_;
    std::vector<Node> nodes_;
    std::vector<int> order_;  //!< needed nodes, topological order
    int output_ = -1;
    int inputNode_ = -1;
    std::shared_ptr<Stats> stats_;
};

/**
 * Assembles a DagPipeline. Dependencies must name already-declared
 * nodes, so cycles cannot be expressed; malformed graphs (bad dep
 * ids, unreachable stages, empty pipeline) fail build() loudly with
 * std::invalid_argument.
 */
class DagBuilder
{
  public:
    explicit DagBuilder(std::string name) : name_(std::move(name)) {}

    /**
     * Declare the pipeline-input node (at most once). Returns its
     * node id for use as a dependency.
     */
    int input();

    /**
     * Append a stage consuming @p deps (prior node ids; empty = a
     * source stage fetching via ctx). @p cost_weight sets this
     * stage's share of the deadline budget. Returns the node id.
     */
    int stage(std::string name, DagStageFn fn, std::vector<int> deps,
              double cost_weight = 1.0);

    /**
     * Validate and produce the immutable pipeline. @p output is the
     * node whose tensor run() returns; -1 = the last declared stage.
     */
    DagPipeline build(int output = -1) const;

  private:
    std::string name_;
    std::vector<DagPipeline::Node> nodes_;
    int inputNode_ = -1;
};

/**
 * Stage functor running a registry model's tensor entry point —
 * acquired per run, so hot-swaps are visible mid-stream and the
 * handle keeps the model alive for exactly the stage's duration.
 * Throws InferenceFault(Permanent) if the model is not hot or has no
 * tensor form.
 */
DagStageFn registryModelStage(const ModelRegistry &registry,
                              std::string model_name);

} // namespace serving
} // namespace mlperf

#endif // MLPERF_SERVING_TENANCY_DAG_H
