#include "serving/tenancy/model_registry.h"

#include <mutex>
#include <set>
#include <utility>

namespace mlperf {
namespace serving {

uint64_t
ModelRegistry::publish(const std::string &name,
                       std::shared_ptr<ServableModel> model)
{
    model->name = name;
    std::unique_lock<std::shared_mutex> lock(mutex_);
    Entry &entry = entries_[name];
    if (entry.model)
        ++swaps_;
    else
        ++publishes_;
    entry.model = std::move(model);
    entry.generation = ++generationCounter_;
    return entry.generation;
}

ModelHandle
ModelRegistry::acquire(const std::string &name) const
{
    std::shared_lock<std::shared_mutex> lock(mutex_);
    lookups_.fetch_add(1, std::memory_order_relaxed);
    auto it = entries_.find(name);
    if (it == entries_.end()) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        return nullptr;
    }
    return it->second.model;
}

ModelHandle
ModelRegistry::evict(const std::string &name)
{
    std::unique_lock<std::shared_mutex> lock(mutex_);
    auto it = entries_.find(name);
    if (it == entries_.end())
        return nullptr;
    ModelHandle evicted = std::move(it->second.model);
    entries_.erase(it);
    ++evictions_;
    return evicted;
}

uint64_t
ModelRegistry::generation(const std::string &name) const
{
    std::shared_lock<std::shared_mutex> lock(mutex_);
    auto it = entries_.find(name);
    return it == entries_.end() ? 0 : it->second.generation;
}

std::vector<std::string>
ModelRegistry::hotModels() const
{
    std::shared_lock<std::shared_mutex> lock(mutex_);
    std::vector<std::string> names;
    names.reserve(entries_.size());
    for (const auto &[name, entry] : entries_)
        names.push_back(name);
    return names;
}

size_t
ModelRegistry::size() const
{
    std::shared_lock<std::shared_mutex> lock(mutex_);
    return entries_.size();
}

int64_t
ModelRegistry::constantBytes() const
{
    std::shared_lock<std::shared_mutex> lock(mutex_);
    int64_t total = 0;
    std::set<const void *> seen;
    for (const auto &[name, entry] : entries_) {
        const ServableModel &model = *entry.model;
        if (model.constantBytes == 0)
            continue;
        // Aliased entries share one packed constant section; count it
        // once. Entries without an identity are assumed unshared.
        if (model.constantsId != nullptr &&
            !seen.insert(model.constantsId).second) {
            continue;
        }
        total += model.constantBytes;
    }
    return total;
}

RegistrySnapshot
ModelRegistry::snapshot() const
{
    RegistrySnapshot snap;
    snap.constantBytes = constantBytes();
    std::shared_lock<std::shared_mutex> lock(mutex_);
    snap.publishes = publishes_;
    snap.swaps = swaps_;
    snap.evictions = evictions_;
    snap.lookups = lookups_.load(std::memory_order_relaxed);
    snap.misses = misses_.load(std::memory_order_relaxed);
    snap.hotModels = static_cast<int64_t>(entries_.size());
    return snap;
}

} // namespace serving
} // namespace mlperf
