/**
 * @file
 * ModelRegistry: many models hot at once, behind reader-mostly
 * reference-counted lookup.
 *
 * The paper's Sec. IV-B multitenancy extension has "the SUT
 * continuously serve multiple models while maintaining QoS"; the
 * serving runtime from PRs 1-5 serves exactly one compiled model per
 * ServingSut. The registry is the platform piece that lifts that
 * limit: classifier + detector + translator + their quantized
 * variants all stay resident, each addressable by name.
 *
 * Lifetime rules (the part concurrency makes subtle):
 *
 *  - acquire() returns a shared_ptr handle under a shared (reader)
 *    lock — the same shared_mutex idiom as CompiledModel's plan
 *    cache, so steady-state lookups never serialize against each
 *    other.
 *  - publish()/evict() swap the map entry under the exclusive lock,
 *    but never destroy a model that is still referenced: in-flight
 *    batches hold their handle for the duration of runBatch, so a
 *    model can be hot-swapped (same name, new generation) or evicted
 *    while queries are executing on the outgoing instance. The old
 *    instance dies when its last in-flight handle drops.
 *  - generations are monotonic across the registry; a swap is
 *    observable as generation(name) increasing.
 *
 * Prepacked-constant accounting: each ServableModel reports the byte
 * size of its read-only constant section plus an identity token.
 * Entries that share one underlying CompiledModel (e.g. one model
 * published under two aliases, or a DAG stage reusing a serving
 * model) share the packed constants, and constantBytes() dedupes by
 * that identity so the footprint is not double-counted.
 */

#ifndef MLPERF_SERVING_TENANCY_MODEL_REGISTRY_H
#define MLPERF_SERVING_TENANCY_MODEL_REGISTRY_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "serving/batch_inference.h"
#include "tensor/tensor.h"

namespace mlperf {
namespace serving {

/**
 * One servable entry: a batch-level engine for model routes, an
 * optional tensor-level entry point for DAG stages, and the metadata
 * the registry accounts for. Immutable once published (hot-swap
 * replaces the whole entry rather than mutating it).
 */
struct ServableModel
{
    /** Registry key (stamped by publish()). */
    std::string name;
    /** Free-form variant tag, e.g. "fp32" or "int8". */
    std::string version;
    /**
     * Batch entry point for model routes. Must be thread-safe (the
     * shared worker pool calls it concurrently). May be null for
     * models only ever used as DAG stages.
     */
    std::unique_ptr<BatchInference> engine;
    /**
     * Tensor-level entry point for DAG stages ([N,...] in -> out).
     * Null when the model has no tensor form (e.g. analytical cost
     * profiles). Must be thread-safe.
     */
    std::function<tensor::Tensor(const tensor::Tensor &)> forward;
    /** Bytes of prepacked read-only constants this model references. */
    int64_t constantBytes = 0;
    /**
     * Identity of the constant section (typically the CompiledModel
     * address). Entries sharing it are counted once by
     * ModelRegistry::constantBytes(). Null = unshared.
     */
    const void *constantsId = nullptr;
};

/**
 * Reference-counted model handle. Holding one keeps the model (and
 * its engine, forward functor, and packed constants) alive across
 * concurrent swap/evict; copying never allocates, so the per-batch
 * acquire on the serving hot path stays heap-silent.
 */
using ModelHandle = std::shared_ptr<const ServableModel>;

/** Point-in-time registry counters. */
struct RegistrySnapshot
{
    uint64_t publishes = 0;  //!< first-time publications
    uint64_t swaps = 0;      //!< re-publications of a live name
    uint64_t evictions = 0;
    uint64_t lookups = 0;
    uint64_t misses = 0;
    int64_t hotModels = 0;
    /** Deduped prepacked-constant footprint across hot models. */
    int64_t constantBytes = 0;
};

class ModelRegistry
{
  public:
    ModelRegistry() = default;
    ModelRegistry(const ModelRegistry &) = delete;
    ModelRegistry &operator=(const ModelRegistry &) = delete;

    /**
     * Insert @p model under @p name, replacing (hot-swapping) any
     * existing entry. In-flight handles to the outgoing instance stay
     * valid; new acquires see the new one. Returns the entry's new
     * generation (monotonic across the registry, never 0).
     */
    uint64_t publish(const std::string &name,
                     std::shared_ptr<ServableModel> model);

    /**
     * Look up @p name under the shared lock. Returns null if absent
     * (callers fail loudly or shed; the registry never throws here —
     * a miss is an expected race against evict).
     */
    ModelHandle acquire(const std::string &name) const;

    /**
     * Remove @p name. Returns the evicted handle (null if absent) so
     * callers can observe destruction order; the model itself dies
     * when the last in-flight handle drops.
     */
    ModelHandle evict(const std::string &name);

    /** Current generation of @p name; 0 if absent. */
    uint64_t generation(const std::string &name) const;

    /** Names of all hot models, sorted. */
    std::vector<std::string> hotModels() const;

    size_t size() const;

    /** Deduped (by constantsId) prepacked-constant bytes resident. */
    int64_t constantBytes() const;

    RegistrySnapshot snapshot() const;

  private:
    struct Entry
    {
        std::shared_ptr<ServableModel> model;
        uint64_t generation = 0;
    };

    mutable std::shared_mutex mutex_;
    std::map<std::string, Entry> entries_;
    uint64_t generationCounter_ = 0;  //!< under the exclusive lock
    uint64_t publishes_ = 0;
    uint64_t swaps_ = 0;
    uint64_t evictions_ = 0;
    /** Atomics: bumped under the shared lock on the lookup fast path. */
    mutable std::atomic<uint64_t> lookups_{0};
    mutable std::atomic<uint64_t> misses_{0};
};

} // namespace serving
} // namespace mlperf

#endif // MLPERF_SERVING_TENANCY_MODEL_REGISTRY_H
