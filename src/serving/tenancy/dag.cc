#include "serving/tenancy/dag.h"

#include <stdexcept>
#include <utility>

namespace mlperf {
namespace serving {

// ------------------------------------------------------- DagBuilder

int
DagBuilder::input()
{
    if (inputNode_ >= 0) {
        throw std::invalid_argument(
            "dag '" + name_ + "': input() declared twice");
    }
    DagPipeline::Node node;
    node.name = "$input";
    node.costWeight = 0.0;
    inputNode_ = static_cast<int>(nodes_.size());
    nodes_.push_back(std::move(node));
    return inputNode_;
}

int
DagBuilder::stage(std::string name, DagStageFn fn,
                  std::vector<int> deps, double cost_weight)
{
    if (!fn) {
        throw std::invalid_argument(
            "dag '" + name_ + "': stage '" + name + "' has no functor");
    }
    if (cost_weight <= 0.0) {
        throw std::invalid_argument(
            "dag '" + name_ + "': stage '" + name +
            "' needs a positive cost weight");
    }
    const int id = static_cast<int>(nodes_.size());
    for (int dep : deps) {
        if (dep < 0 || dep >= id) {
            throw std::invalid_argument(
                "dag '" + name_ + "': stage '" + name +
                "' references unknown node " + std::to_string(dep));
        }
    }
    DagPipeline::Node node;
    node.name = std::move(name);
    node.fn = std::move(fn);
    node.deps = std::move(deps);
    node.costWeight = cost_weight;
    nodes_.push_back(std::move(node));
    return id;
}

DagPipeline
DagBuilder::build(int output) const
{
    if (nodes_.empty() ||
        (inputNode_ >= 0 && nodes_.size() == 1)) {
        throw std::invalid_argument(
            "dag '" + name_ + "': no stages declared");
    }
    if (output == -1)
        output = static_cast<int>(nodes_.size()) - 1;
    if (output < 0 || output >= static_cast<int>(nodes_.size()) ||
        output == inputNode_) {
        throw std::invalid_argument(
            "dag '" + name_ + "': invalid output node " +
            std::to_string(output));
    }

    // Mark the nodes the output depends on. Dependencies always point
    // at lower ids, so a single reverse sweep finds the closure.
    std::vector<bool> needed(nodes_.size(), false);
    needed[static_cast<size_t>(output)] = true;
    for (int id = output; id >= 0; --id) {
        if (!needed[static_cast<size_t>(id)])
            continue;
        for (int dep : nodes_[static_cast<size_t>(id)].deps)
            needed[static_cast<size_t>(dep)] = true;
    }
    for (size_t id = 0; id < nodes_.size(); ++id) {
        if (!needed[id] && static_cast<int>(id) != inputNode_) {
            throw std::invalid_argument(
                "dag '" + name_ + "': stage '" + nodes_[id].name +
                "' is unreachable from the output");
        }
    }

    DagPipeline pipeline;
    pipeline.name_ = name_;
    pipeline.nodes_ = nodes_;
    pipeline.output_ = output;
    pipeline.inputNode_ = inputNode_;
    // Insertion order is already topological (deps precede users).
    double total_weight = 0.0;
    for (size_t id = 0; id < nodes_.size(); ++id) {
        if (!needed[id])
            continue;
        pipeline.order_.push_back(static_cast<int>(id));
        total_weight += nodes_[id].costWeight;
    }
    double spent = 0.0;
    for (int id : pipeline.order_) {
        spent += nodes_[static_cast<size_t>(id)].costWeight;
        pipeline.nodes_[static_cast<size_t>(id)].budgetFraction =
            total_weight > 0.0 ? spent / total_weight : 1.0;
    }
    pipeline.stats_ = std::make_shared<DagPipeline::Stats>();
    pipeline.stats_->stages.resize(nodes_.size());
    return pipeline;
}

// ------------------------------------------------------ DagPipeline

tensor::Tensor
DagPipeline::run(const tensor::Tensor &input, const DagContext &ctx) const
{
    std::vector<tensor::Tensor> values(nodes_.size());
    std::vector<const tensor::Tensor *> inputs;

    const bool timed = ctx.executor != nullptr;
    const sim::Tick start = timed ? ctx.executor->now() : 0;
    const sim::Tick budget =
        (timed && ctx.deadline > start) ? ctx.deadline - start : 0;

    for (int id : order_) {
        const Node &node = nodes_[static_cast<size_t>(id)];
        if (id == inputNode_) {
            values[static_cast<size_t>(id)] = input;
            continue;
        }
        const sim::Tick now = timed ? ctx.executor->now() : 0;
        if (timed && ctx.deadline != 0 && now >= ctx.deadline) {
            std::lock_guard<std::mutex> lock(stats_->mutex);
            ++stats_->stages[static_cast<size_t>(id)].deadlineAborts;
            throw DagDeadlineExceeded(node.name);
        }

        inputs.clear();
        if (node.deps.empty()) {
            // Source stage: hand it the pipeline input if one exists.
            if (inputNode_ >= 0)
                inputs.push_back(&values[static_cast<size_t>(inputNode_)]);
        } else {
            for (int dep : node.deps)
                inputs.push_back(&values[static_cast<size_t>(dep)]);
        }

        DagContext stage_ctx = ctx;
        // Propagate the stage's share of the remaining budget: a slow
        // upstream stage shrinks every downstream sub-deadline.
        if (budget != 0) {
            stage_ctx.stageDeadline =
                start + static_cast<sim::Tick>(
                            static_cast<double>(budget) *
                            node.budgetFraction);
        }
        values[static_cast<size_t>(id)] = node.fn(inputs, stage_ctx);

        if (timed) {
            const sim::Tick elapsed = ctx.executor->now() - now;
            std::lock_guard<std::mutex> lock(stats_->mutex);
            StageCounters &c = stats_->stages[static_cast<size_t>(id)];
            ++c.runs;
            c.totalNs += elapsed;
        } else {
            std::lock_guard<std::mutex> lock(stats_->mutex);
            ++stats_->stages[static_cast<size_t>(id)].runs;
        }
    }
    return std::move(values[static_cast<size_t>(output_)]);
}

std::vector<DagStageStats>
DagPipeline::stageStats() const
{
    std::vector<DagStageStats> out;
    std::lock_guard<std::mutex> lock(stats_->mutex);
    for (int id : order_) {
        if (id == inputNode_)
            continue;
        const Node &node = nodes_[static_cast<size_t>(id)];
        const StageCounters &c = stats_->stages[static_cast<size_t>(id)];
        DagStageStats s;
        s.name = node.name;
        s.runs = c.runs;
        s.deadlineAborts = c.deadlineAborts;
        s.totalNs = c.totalNs;
        out.push_back(std::move(s));
    }
    return out;
}

// ------------------------------------------------ registryModelStage

DagStageFn
registryModelStage(const ModelRegistry &registry,
                   std::string model_name)
{
    return [&registry, model_name = std::move(model_name)](
               const std::vector<const tensor::Tensor *> &inputs,
               const DagContext &) -> tensor::Tensor {
        if (inputs.size() != 1) {
            throw InferenceFault(
                FaultKind::Permanent,
                "model stage '" + model_name + "' expects 1 input, got " +
                    std::to_string(inputs.size()));
        }
        const ModelHandle handle = registry.acquire(model_name);
        if (!handle) {
            throw InferenceFault(FaultKind::Permanent,
                                 "model '" + model_name +
                                     "' is not hot in the registry");
        }
        if (!handle->forward) {
            throw InferenceFault(FaultKind::Permanent,
                                 "model '" + model_name +
                                     "' has no tensor entry point");
        }
        return handle->forward(*inputs[0]);
    };
}

} // namespace serving
} // namespace mlperf
