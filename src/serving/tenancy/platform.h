/**
 * @file
 * ServingPlatform: the multi-tenant serving subsystem. One shared
 * worker pool serves many models (from a ModelRegistry) and DAG
 * pipelines behind per-tenant SUT frontends, each with its own
 * admission budget, SLO class, deadline, and batcher.
 *
 * Why a platform and not N ServingSuts: tenants must *share*
 * capacity (one pool, one queue — the hardware) while *not* sharing
 * fate (one tenant's burst must shed its own traffic, not starve the
 * others). The isolation mechanism is per-tenant admission budgets:
 * a tenant can hold at most its in-flight budget of samples in the
 * shared queue, so the queueing delay it can impose on everyone else
 * is bounded, and everything beyond the budget is shed at *its* front
 * door with Shed status. bench_multitenant quantifies this: with
 * budgets, a 4x burst from one tenant moves a well-behaved tenant's
 * p99 by <25%; with a shared free-for-all budget the victim's tail
 * degrades without bound.
 *
 * Data path per tenant:
 *
 *   TenantSut::issueQuery -> per-tenant AdmissionController
 *     -> per-tenant CompletionTracker (deadline reaper, per-status
 *        counters into the tenant's own ServingStats)
 *     -> per-tenant DynamicBatcher  (batches are single-tenant, hence
 *        single-route — the batcher IS the router's granularity)
 *     -> shared WorkerPool (batch.route stamped)
 *     -> RoutingInference: registry lookup (model route) or DAG run
 *
 * Teardown: shutdown() flushes every tenant's batcher, drains the
 * shared pool, then drains every tracker — same ordering discipline
 * as ServingSut, extended across tenants.
 */

#ifndef MLPERF_SERVING_TENANCY_PLATFORM_H
#define MLPERF_SERVING_TENANCY_PLATFORM_H

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "loadgen/sut.h"
#include "serving/batcher.h"
#include "serving/completion_tracker.h"
#include "serving/resilience.h"
#include "serving/serving_stats.h"
#include "serving/serving_sut.h"
#include "serving/tenancy/dag.h"
#include "serving/tenancy/model_registry.h"
#include "serving/worker_pool.h"
#include "sim/executor.h"

namespace mlperf {
namespace serving {

/**
 * Service classes a tenant contracts for. Classes only provide
 * *defaults* (deadline + admission budgets scaled to the platform's
 * batch size); explicit TenantPolicy fields always win.
 */
enum class SloClass : uint8_t
{
    /** Tight deadline, small budgets: sheds early, never queues deep. */
    Interactive,
    /** Moderate deadline and budgets. */
    Standard,
    /** No deadline, deep budgets: throughput over latency. */
    Batch,
};

std::string sloClassName(SloClass slo);

struct TenantPolicy
{
    std::string name = "tenant";
    SloClass slo = SloClass::Standard;
    /**
     * Fill unset fields (deadline < 0, zero admission budgets) from
     * the SLO class defaults. Set false to treat zeros literally
     * (e.g. "no admission control" for the shared-budget ablation).
     */
    bool sloDefaults = true;
    /**
     * Per-tenant admission budgets (the isolation mechanism). Zeros +
     * sloDefaults=false = no admission control for this tenant.
     */
    AdmissionOptions admission;
    /** Per-query deadline in ns; <0 = SLO class default, 0 = none. */
    int64_t queryDeadlineNs = -1;
    /** Largest batch for this tenant; 0 = platform default. */
    int64_t maxBatch = 0;
    /** Batching window in ns; <0 = platform default. */
    int64_t batchTimeoutNs = -1;
};

struct PlatformOptions
{
    /** Shared worker pool size. */
    int64_t workers = 4;
    /** Shared worker-queue capacity in batches; 0 = unbounded. */
    size_t queueCapacityBatches = 64;
    /** Default per-tenant batch cap / batching window. */
    int64_t maxBatch = 8;
    sim::Tick batchTimeoutNs = 2 * sim::kNsPerMs;
    WorkerMode mode = WorkerMode::Auto;

    // ---- Sharding of the shared pool (Threads mode only).
    /**
     * Shards for the shared worker pool (see serving/shard.h).
     * Tenant routing composes with shard routing: each tenant's
     * batcher forms single-tenant batches, and the sharded pool then
     * hashes (route, first sample id) so every tenant's batch stream
     * spreads across all shards — shards partition *capacity*, routes
     * partition *models*; the two are orthogonal axes.
     */
    int64_t shards = 1;
    /** Pin each shard's workers to consecutive CPUs (Linux only). */
    bool pinThreads = false;
    /** Let idle workers pull from other shards' queues. */
    bool stealWhenIdle = true;
};

class ServingPlatform;

/**
 * One tenant's SystemUnderTest frontend. Created and owned by the
 * platform; hand it to the LoadGen (startMultiTenantTest) like any
 * SUT. Thread-safe like ServingSut.
 */
class TenantSut : public loadgen::SystemUnderTest
{
  public:
    std::string name() const override;
    void issueQuery(const std::vector<loadgen::QuerySample> &samples,
                    loadgen::ResponseDelegate &delegate) override;
    void flushQueries() override;

    const TenantPolicy &policy() const { return policy_; }
    uint32_t route() const { return route_; }

    /**
     * This tenant's own counters: issued, admission sheds, queue
     * sheds, and per-status completions (completedOk/Shed/Timeout/…)
     * observed by its tracker.
     */
    StatsSnapshot stats() const { return stats_.snapshot(); }

    /** Samples tracked but not yet completed. */
    uint64_t outstanding() const { return tracker_->outstanding(); }

  private:
    friend class ServingPlatform;

    TenantSut(ServingPlatform &platform, TenantPolicy policy,
              uint32_t route);

    ServingPlatform &platform_;
    const TenantPolicy policy_;
    const uint32_t route_;
    ServingStats stats_;
    std::unique_ptr<AdmissionController> admission_;
    std::shared_ptr<CompletionTracker> tracker_;
    std::unique_ptr<DynamicBatcher> batcher_;
    /** Queue-full sheds seen, for rate-limiting the warning log. */
    uint64_t queueShedEvents_ = 0;
};

class ServingPlatform
{
  public:
    /** Encodes a DAG output tensor into QuerySampleResponse::data. */
    using DagEncodeFn = std::function<std::string(const tensor::Tensor &)>;

    /**
     * @param registry model store (not owned; must outlive the
     *        platform). Models may be published, swapped, and evicted
     *        while the platform is serving.
     */
    ServingPlatform(sim::Executor &executor, ModelRegistry &registry,
                    PlatformOptions options = {});
    ~ServingPlatform();

    ServingPlatform(const ServingPlatform &) = delete;
    ServingPlatform &operator=(const ServingPlatform &) = delete;

    /**
     * Register a route serving registry model @p model_name. The name
     * is resolved per batch (hot-swap-aware); a miss fails the batch
     * loudly with Failed status rather than serving stale answers.
     */
    uint32_t addModelRoute(const std::string &model_name);

    /**
     * Register a DAG route. Each sample runs the pipeline (source
     * stages fetch by ctx.sampleIndex); the output tensor is encoded
     * by @p encode — default: the tensor's raw float bytes, which is
     * what the bit-exactness checks compare.
     */
    uint32_t addDagRoute(DagPipeline pipeline, DagEncodeFn encode = {});

    /**
     * Create a tenant frontend bound to @p route. Must happen before
     * traffic starts on that tenant. The reference stays valid for
     * the platform's lifetime.
     */
    TenantSut &addTenant(TenantPolicy policy, uint32_t route);

    /** Flush every tenant, drain the pool, time out stragglers. */
    void shutdown();

    /** Shared-pool counters (batches, service time, utilization). */
    StatsSnapshot stats() const { return stats_.snapshot(); }

    const ModelRegistry &registry() const { return registry_; }
    WorkerMode resolvedMode() const { return mode_; }
    const PlatformOptions &options() const { return options_; }
    size_t tenantCount() const { return tenants_.size(); }
    TenantSut &tenant(size_t i) { return *tenants_[i]; }

    /** Applied SLO-class defaults for inspection/doc tests. */
    static TenantPolicy applySloDefaults(TenantPolicy policy,
                                         const PlatformOptions &options);

  private:
    friend class TenantSut;

    class RoutingInference;

    void onBatchFormed(TenantSut &tenant, Batch &&batch);

    sim::Executor &executor_;
    ModelRegistry &registry_;
    PlatformOptions options_;
    WorkerMode mode_;
    ServingStats stats_;
    std::unique_ptr<RoutingInference> routing_;
    std::unique_ptr<WorkerPool> pool_;
    std::vector<std::unique_ptr<TenantSut>> tenants_;
    bool shutdownDone_ = false;
};

} // namespace serving
} // namespace mlperf

#endif // MLPERF_SERVING_TENANCY_PLATFORM_H
