#include "serving/tenancy/platform.h"

#include <algorithm>
#include <cstring>
#include <shared_mutex>
#include <utility>

#include "common/logging.h"

namespace mlperf {
namespace serving {

std::string
sloClassName(SloClass slo)
{
    switch (slo) {
      case SloClass::Interactive: return "Interactive";
      case SloClass::Standard:    return "Standard";
      case SloClass::Batch:       return "Batch";
    }
    return "?";
}

// ------------------------------------------------- RoutingInference

/**
 * The shared pool's single BatchInference: resolves each batch's
 * route to a registry model (acquired per batch, so swap/evict are
 * safe against in-flight work) or a DAG pipeline (run per sample with
 * the batch deadline propagated into per-stage budgets).
 */
class ServingPlatform::RoutingInference : public BatchInference
{
  public:
    RoutingInference(sim::Executor &executor, ModelRegistry &registry)
        : executor_(executor), registry_(registry)
    {
    }

    uint32_t
    addModelRoute(const std::string &model_name)
    {
        std::unique_lock<std::shared_mutex> lock(mutex_);
        routes_.push_back(Route{false, model_name, nullptr, {}});
        return static_cast<uint32_t>(routes_.size());
    }

    uint32_t
    addDagRoute(DagPipeline pipeline, DagEncodeFn encode)
    {
        std::unique_lock<std::shared_mutex> lock(mutex_);
        routes_.push_back(
            Route{true, pipeline.name(),
                  std::make_unique<DagPipeline>(std::move(pipeline)),
                  std::move(encode)});
        return static_cast<uint32_t>(routes_.size());
    }

    std::string name() const override { return "platform-router"; }

    std::vector<loadgen::QuerySampleResponse>
    runBatch(const std::vector<loadgen::QuerySample> &samples) override
    {
        (void)samples;
        // Batches only reach the pool through TenantSut frontends,
        // which always stamp a route.
        throw InferenceFault(FaultKind::Permanent,
                             "platform-router: unrouted batch");
    }

    std::vector<loadgen::QuerySampleResponse>
    runBatch(const std::vector<loadgen::QuerySample> &samples,
             const BatchMeta &meta) override
    {
        std::shared_lock<std::shared_mutex> lock(mutex_);
        const Route &route = routeAt(meta.route);
        if (!route.isDag) {
            const ModelHandle handle = registry_.acquire(route.model);
            lock.unlock();
            if (!handle || !handle->engine) {
                throw InferenceFault(
                    FaultKind::Permanent,
                    "platform-router: model '" + route.model +
                        "' is not hot in the registry");
            }
            // The handle pins the model for the whole batch; a
            // concurrent swap/evict retires the instance only after
            // this returns.
            return handle->engine->runBatch(samples);
        }

        std::vector<loadgen::QuerySampleResponse> responses;
        responses.reserve(samples.size());
        const tensor::Tensor no_input;
        for (const auto &sample : samples) {
            DagContext ctx;
            ctx.sampleIndex = sample.index;
            ctx.executor = &executor_;
            ctx.deadline = meta.deadline;
            try {
                const tensor::Tensor out =
                    route.dag->run(no_input, ctx);
                responses.push_back(
                    {sample.id,
                     route.encode ? route.encode(out) : rawBytes(out),
                     loadgen::ResponseStatus::Ok});
            } catch (const DagDeadlineExceeded &) {
                // Only this sample ran out of budget; the rest of the
                // batch still gets real answers.
                responses.push_back(
                    {sample.id, "", loadgen::ResponseStatus::Timeout});
            }
        }
        return responses;
    }

    sim::Tick
    serviceTimeNs(const std::vector<loadgen::QuerySample> &samples,
                  sim::Tick now, const BatchMeta &meta) override
    {
        std::shared_lock<std::shared_mutex> lock(mutex_);
        const Route &route = routeAt(meta.route);
        if (route.isDag)
            return 0;  // DAG stages execute real compute in runBatch.
        const ModelHandle handle = registry_.acquire(route.model);
        lock.unlock();
        if (!handle || !handle->engine)
            return 0;  // runBatch will fail the batch loudly.
        return handle->engine->serviceTimeNs(samples, now);
    }

  private:
    struct Route
    {
        bool isDag = false;
        std::string model;  //!< model name, or DAG name for logging
        std::unique_ptr<DagPipeline> dag;
        DagEncodeFn encode;
    };

    /** Caller holds at least the shared lock. */
    const Route &
    routeAt(uint32_t id) const
    {
        if (id == 0 || id > routes_.size()) {
            throw InferenceFault(FaultKind::Permanent,
                                 "platform-router: unknown route " +
                                     std::to_string(id));
        }
        return routes_[id - 1];
    }

    static std::string
    rawBytes(const tensor::Tensor &t)
    {
        return std::string(
            reinterpret_cast<const char *>(t.data()),
            static_cast<size_t>(t.numel()) * sizeof(float));
    }

    sim::Executor &executor_;
    ModelRegistry &registry_;
    mutable std::shared_mutex mutex_;
    std::vector<Route> routes_;
};

// --------------------------------------------------------- TenantSut

TenantSut::TenantSut(ServingPlatform &platform, TenantPolicy policy,
                     uint32_t route)
    : platform_(platform), policy_(std::move(policy)), route_(route)
{
    if (policy_.admission.enabled()) {
        admission_ =
            std::make_unique<AdmissionController>(policy_.admission);
    }
    // Every tenant gets a tracker: it releases the admission budget,
    // reaps deadline stragglers, and feeds the per-tenant per-status
    // completion counters — the "who actually got served" ledger.
    tracker_ = std::make_shared<CompletionTracker>(
        platform_.executor_, stats_, admission_.get());
    batcher_ = std::make_unique<DynamicBatcher>(
        platform_.executor_, policy_.maxBatch, policy_.batchTimeoutNs,
        [this](Batch &&batch) {
            platform_.onBatchFormed(*this, std::move(batch));
        });
}

std::string
TenantSut::name() const
{
    return policy_.name + "+platform";
}

void
TenantSut::issueQuery(const std::vector<loadgen::QuerySample> &samples,
                      loadgen::ResponseDelegate &delegate)
{
    const uint64_t depth = batcher_->pending() +
                           platform_.pool_->queuedSamples() +
                           samples.size();
    stats_.recordIssued(samples.size(), depth);

    if (admission_ &&
        !admission_->tryAdmit(samples.size(), depth - samples.size())) {
        stats_.recordAdmissionShed(samples.size());
        delegate.querySamplesComplete(
            errorResponses(samples, loadgen::ResponseStatus::Shed));
        return;
    }

    sim::Tick deadline = 0;
    if (policy_.queryDeadlineNs > 0) {
        deadline = platform_.executor_.now() +
                   static_cast<sim::Tick>(policy_.queryDeadlineNs);
    }
    tracker_->track(samples, delegate, deadline);
    batcher_->enqueue(samples, *tracker_, deadline);
}

void
TenantSut::flushQueries()
{
    batcher_->flush();
}

// --------------------------------------------------- ServingPlatform

ServingPlatform::ServingPlatform(sim::Executor &executor,
                                 ModelRegistry &registry,
                                 PlatformOptions options)
    : executor_(executor), registry_(registry), options_(options)
{
    mode_ = options_.mode;
    if (mode_ == WorkerMode::Auto) {
        mode_ = executor_.virtualTime() ? WorkerMode::Events
                                        : WorkerMode::Threads;
    }
    routing_ = std::make_unique<RoutingInference>(executor_, registry_);
    int64_t shards = options_.shards;
    if (mode_ != WorkerMode::Threads)
        shards = 1;
    shards = std::max<int64_t>(
        1, std::min<int64_t>(shards,
                             std::max<int64_t>(1, options_.workers)));
    if (shards > 1) {
        ShardOptions sharding;
        sharding.shards = shards;
        sharding.workersPerShard =
            std::max<int64_t>(1, options_.workers / shards);
        sharding.queueCapacityBatches =
            options_.queueCapacityBatches == 0
                ? 0
                : std::max<size_t>(
                      1, options_.queueCapacityBatches /
                             static_cast<size_t>(shards));
        sharding.pinThreads = options_.pinThreads;
        sharding.stealWhenIdle = options_.stealWhenIdle;
        sharding.trackerActive = true;
        pool_ = std::make_unique<ShardedWorkerPool>(
            executor_, *routing_, stats_, sharding);
    } else if (mode_ == WorkerMode::Threads) {
        pool_ = std::make_unique<ThreadWorkerPool>(
            executor_, *routing_, stats_, options_.workers,
            options_.queueCapacityBatches, /*tracker_active=*/true);
    } else {
        pool_ = std::make_unique<EventWorkerPool>(
            executor_, *routing_, stats_, options_.workers,
            options_.queueCapacityBatches, /*tracker_active=*/true);
    }
}

ServingPlatform::~ServingPlatform()
{
    shutdown();
}

uint32_t
ServingPlatform::addModelRoute(const std::string &model_name)
{
    return routing_->addModelRoute(model_name);
}

uint32_t
ServingPlatform::addDagRoute(DagPipeline pipeline, DagEncodeFn encode)
{
    return routing_->addDagRoute(std::move(pipeline), std::move(encode));
}

TenantPolicy
ServingPlatform::applySloDefaults(TenantPolicy policy,
                                  const PlatformOptions &options)
{
    if (policy.maxBatch <= 0)
        policy.maxBatch = options.maxBatch;
    if (policy.batchTimeoutNs < 0)
        policy.batchTimeoutNs = options.batchTimeoutNs;
    if (!policy.sloDefaults) {
        if (policy.queryDeadlineNs < 0)
            policy.queryDeadlineNs = 0;
        return policy;
    }

    const uint64_t batch =
        static_cast<uint64_t>(std::max<int64_t>(1, policy.maxBatch));
    int64_t deadline = 0;
    uint64_t in_flight = 0;
    uint64_t queued = 0;
    switch (policy.slo) {
      case SloClass::Interactive:
        deadline = 50 * sim::kNsPerMs;
        in_flight = 4 * batch;
        queued = 8 * batch;
        break;
      case SloClass::Standard:
        deadline = 250 * sim::kNsPerMs;
        in_flight = 8 * batch;
        queued = 16 * batch;
        break;
      case SloClass::Batch:
        deadline = 0;          // throughput class: never reap
        in_flight = 64 * batch;
        queued = 0;            // bounded by in-flight budget alone
        break;
    }
    if (policy.queryDeadlineNs < 0)
        policy.queryDeadlineNs = deadline;
    if (policy.admission.maxInFlightSamples == 0)
        policy.admission.maxInFlightSamples = in_flight;
    if (policy.admission.maxQueuedSamples == 0)
        policy.admission.maxQueuedSamples = queued;
    return policy;
}

TenantSut &
ServingPlatform::addTenant(TenantPolicy policy, uint32_t route)
{
    TenantPolicy resolved =
        applySloDefaults(std::move(policy), options_);
    tenants_.push_back(std::unique_ptr<TenantSut>(
        new TenantSut(*this, std::move(resolved), route)));
    return *tenants_.back();
}

void
ServingPlatform::onBatchFormed(TenantSut &tenant, Batch &&batch)
{
    batch.route = tenant.route_;
    stats_.recordBatchFormed(batch);
    if (pool_->submit(batch))
        return;
    // Shared-queue backpressure: the shed is charged to the tenant
    // whose batch it was — its items complete Shed through its own
    // tracker, releasing its admission budget.
    tenant.stats_.recordShed(batch.items.size());
    stats_.recordShed(batch.items.size());
    // Under sustained overload every batch sheds; log the first per
    // tenant and then sample, the counters carry the full story.
    if (tenant.queueShedEvents_++ % 1000 == 0)
        MLPERF_LOG(Warn) << tenant.name()
                         << ": shared worker queue full, shedding "
                         << batch.items.size() << " sample(s) ("
                         << tenant.queueShedEvents_
                         << " shed events so far)";
    completeBatch(batch,
                  errorResponses(batch, loadgen::ResponseStatus::Shed));
}

void
ServingPlatform::shutdown()
{
    if (shutdownDone_)
        return;
    shutdownDone_ = true;
    // Same flush-then-drain discipline as ServingSut, across tenants:
    // emit held batches, drain the shared pool, then time out
    // whatever any tracker still holds.
    for (auto &tenant : tenants_)
        tenant->batcher_->flush();
    pool_->shutdown();
    for (auto &tenant : tenants_)
        tenant->tracker_->drain();
}

} // namespace serving
} // namespace mlperf
