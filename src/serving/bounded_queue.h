/**
 * @file
 * Bounded multi-producer/multi-consumer queue with backpressure.
 *
 * The hand-off point between the dynamic batcher and the thread
 * worker pool, mirroring the run-queue/background-worker split of
 * production serving stacks (RedisAI-style). A full queue is the
 * backpressure signal: tryPush() fails instead of growing without
 * bound, and the caller decides whether to shed or stall.
 *
 * The sharded runtime adds two consumer-side needs: popFor() bounds
 * how long an idle worker sleeps before it looks at other shards'
 * queues (work stealing), and drained() is the post-close exit test.
 * Every lock acquisition notes itself with LockProbe so the zero-
 * mutex fast-path assertion of the shard tests can see this queue.
 */

#ifndef MLPERF_SERVING_BOUNDED_QUEUE_H
#define MLPERF_SERVING_BOUNDED_QUEUE_H

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "serving/lock_probe.h"

namespace mlperf {
namespace serving {

template <typename T>
class BoundedQueue
{
  public:
    /** @param capacity maximum queued items; 0 means unbounded. */
    explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

    /**
     * Enqueue without blocking. Returns false — leaving @p value
     * untouched — when the queue is full or closed.
     */
    bool
    tryPush(T &value)
    {
        {
            LockProbe::noteAcquire();
            std::lock_guard<std::mutex> lock(mutex_);
            if (closed_ || full())
                return false;
            items_.push_back(std::move(value));
        }
        consumerCv_.notify_one();
        return true;
    }

    /**
     * Enqueue, blocking while the queue is full. Returns false only
     * if the queue is (or becomes) closed.
     */
    bool
    push(T value)
    {
        {
            LockProbe::noteAcquire();
            std::unique_lock<std::mutex> lock(mutex_);
            producerCv_.wait(lock,
                             [this] { return closed_ || !full(); });
            if (closed_)
                return false;
            items_.push_back(std::move(value));
        }
        consumerCv_.notify_one();
        return true;
    }

    /**
     * Dequeue, blocking while the queue is empty. Returns nullopt
     * once the queue is closed AND drained — the worker shutdown
     * signal.
     */
    std::optional<T>
    pop()
    {
        std::optional<T> out;
        {
            LockProbe::noteAcquire();
            std::unique_lock<std::mutex> lock(mutex_);
            consumerCv_.wait(
                lock, [this] { return closed_ || !items_.empty(); });
            if (items_.empty())
                return std::nullopt;
            out.emplace(std::move(items_.front()));
            items_.pop_front();
        }
        producerCv_.notify_one();
        return out;
    }

    /**
     * Dequeue, blocking up to @p timeout while the queue is empty.
     * Returns nullopt on timeout or once closed and drained — callers
     * distinguish the two with drained().
     */
    std::optional<T>
    popFor(std::chrono::microseconds timeout)
    {
        std::optional<T> out;
        {
            LockProbe::noteAcquire();
            std::unique_lock<std::mutex> lock(mutex_);
            consumerCv_.wait_for(lock, timeout, [this] {
                return closed_ || !items_.empty();
            });
            if (items_.empty())
                return std::nullopt;
            out.emplace(std::move(items_.front()));
            items_.pop_front();
        }
        producerCv_.notify_one();
        return out;
    }

    /** Non-blocking dequeue. */
    std::optional<T>
    tryPop()
    {
        std::optional<T> out;
        {
            LockProbe::noteAcquire();
            std::lock_guard<std::mutex> lock(mutex_);
            if (items_.empty())
                return std::nullopt;
            out.emplace(std::move(items_.front()));
            items_.pop_front();
        }
        producerCv_.notify_one();
        return out;
    }

    /** Reject new work; consumers drain what remains, then stop. */
    void
    close()
    {
        {
            LockProbe::noteAcquire();
            std::lock_guard<std::mutex> lock(mutex_);
            closed_ = true;
        }
        producerCv_.notify_all();
        consumerCv_.notify_all();
    }

    /**
     * Accept work again after close(). The shard autoscaler's grow
     * path: a drained shard's queue is closed while the shard is
     * inactive and reopened before its workers are respawned. Safe
     * only once every consumer that observed the close has exited —
     * the pool's scale lock guarantees that ordering.
     */
    void
    reopen()
    {
        LockProbe::noteAcquire();
        std::lock_guard<std::mutex> lock(mutex_);
        closed_ = false;
    }

    size_t
    size() const
    {
        LockProbe::noteAcquire();
        std::lock_guard<std::mutex> lock(mutex_);
        return items_.size();
    }

    bool
    closed() const
    {
        LockProbe::noteAcquire();
        std::lock_guard<std::mutex> lock(mutex_);
        return closed_;
    }

    /** Closed and empty: nothing left for a consumer to do. */
    bool
    drained() const
    {
        LockProbe::noteAcquire();
        std::lock_guard<std::mutex> lock(mutex_);
        return closed_ && items_.empty();
    }

  private:
    bool full() const { return capacity_ != 0 && items_.size() >= capacity_; }

    const size_t capacity_;
    mutable std::mutex mutex_;
    std::condition_variable producerCv_;
    std::condition_variable consumerCv_;
    std::deque<T> items_;
    bool closed_ = false;
};

} // namespace serving
} // namespace mlperf

#endif // MLPERF_SERVING_BOUNDED_QUEUE_H
