/**
 * @file
 * ServingSut: the concurrent serving runtime packaged as a
 * loadgen::SystemUnderTest.
 *
 * Pipeline:  issueQuery -> DynamicBatcher -> bounded queue ->
 * WorkerPool -> BatchInference -> ResponseDelegate (async).
 *
 * The paper's server scenario measures how a SUT copes with
 * "multiple users submitting concurrent, independent queries"
 * (Sec. III); every inline SUT in this repository answered on the
 * issuing thread, leaving nothing concurrent to measure. ServingSut
 * wraps any per-batch inference functor — the real NN engine or a
 * simulated hardware profile — behind a worker pool plus dynamic
 * batcher, completing responses asynchronously and instrumenting
 * every stage (queue depth, time-in-queue, batch size, utilization,
 * shed queries).
 *
 * Overload policy: when the worker queue is full the whole batch is
 * *shed* — each sample is completed immediately with an empty
 * payload (a fast-fail, like an HTTP 503). Shed samples count as
 * wrong answers in accuracy mode and as suspiciously-fast responses
 * in performance mode, and are surfaced in StatsSnapshot; they never
 * leave the LoadGen waiting on a response that will not come.
 */

#ifndef MLPERF_SERVING_SERVING_SUT_H
#define MLPERF_SERVING_SERVING_SUT_H

#include <memory>
#include <string>

#include "loadgen/sut.h"
#include "serving/batch_inference.h"
#include "serving/batcher.h"
#include "serving/serving_stats.h"
#include "serving/worker_pool.h"
#include "sim/executor.h"

namespace mlperf {
namespace serving {

/** Which worker-pool flavor backs the runtime. */
enum class WorkerMode
{
    /** Events under virtual time, threads under wall-clock time. */
    Auto,
    Threads,
    Events,
};

struct ServingOptions
{
    /** Largest formed batch. */
    int64_t maxBatch = 8;
    /**
     * How long the batcher may hold a partial batch; 0 dispatches
     * on every enqueue.
     */
    sim::Tick batchTimeoutNs = 2 * sim::kNsPerMs;
    /** Worker pool size (threads or logical engines). */
    int64_t workers = 4;
    /**
     * Worker-queue capacity in batches; 0 = unbounded. A full queue
     * sheds (fast-fails) incoming batches — the backpressure signal.
     */
    size_t queueCapacityBatches = 64;
    WorkerMode mode = WorkerMode::Auto;
};

class ServingSut : public loadgen::SystemUnderTest
{
  public:
    ServingSut(sim::Executor &executor, BatchInference &inference,
               ServingOptions options = {});
    ~ServingSut() override;

    std::string name() const override;
    void issueQuery(const std::vector<loadgen::QuerySample> &samples,
                    loadgen::ResponseDelegate &delegate) override;
    void flushQueries() override;

    /**
     * Drain and release the workers (idempotent; the destructor
     * calls it). After shutdown the stats snapshot is final —
     * benches call this before computing utilization.
     */
    void shutdown();

    /** Live (or, after shutdown, final) stage counters. */
    StatsSnapshot stats() const { return stats_.snapshot(); }

    const ServingOptions &options() const { return options_; }

    /** The worker flavor Auto resolved to. */
    WorkerMode resolvedMode() const { return mode_; }

  private:
    void onBatchFormed(Batch &&batch);
    void shedBatch(const Batch &batch);

    sim::Executor &executor_;
    BatchInference &inference_;
    ServingOptions options_;
    WorkerMode mode_;
    ServingStats stats_;
    std::unique_ptr<WorkerPool> pool_;
    std::unique_ptr<DynamicBatcher> batcher_;
};

} // namespace serving
} // namespace mlperf

#endif // MLPERF_SERVING_SERVING_SUT_H
