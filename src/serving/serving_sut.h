/**
 * @file
 * ServingSut: the concurrent serving runtime packaged as a
 * loadgen::SystemUnderTest.
 *
 * Pipeline:  issueQuery -> admission control -> DynamicBatcher ->
 * bounded queue -> WorkerPool -> [ResilientInference ->]
 * BatchInference -> [CompletionTracker ->] ResponseDelegate (async).
 *
 * The paper's server scenario measures how a SUT copes with
 * "multiple users submitting concurrent, independent queries"
 * (Sec. III); every inline SUT in this repository answered on the
 * issuing thread, leaving nothing concurrent to measure. ServingSut
 * wraps any per-batch inference functor — the real NN engine or a
 * simulated hardware profile — behind a worker pool plus dynamic
 * batcher, completing responses asynchronously and instrumenting
 * every stage (queue depth, time-in-queue, batch size, utilization,
 * shed queries).
 *
 * Fault tolerance (all off by default; see ServingOptions):
 *
 *  - admission control sheds queries beyond an in-flight/queue budget
 *    at issueQuery (Shed status) — bounded queueing delay;
 *  - per-query deadlines: expired samples are shed at dispatch, and a
 *    CompletionTracker reaper completes anything still outstanding at
 *    the deadline with Timeout status, so a wedged worker or dropped
 *    completion can never hang the run;
 *  - retries + circuit breaker around the inference functor
 *    (ResilientInference);
 *  - graceful degradation: a fallback engine (e.g. an int8 plan)
 *    serves batches, marked Degraded, while the breaker is open or
 *    the shed-rate monitor is tripped.
 *
 * Overload policy: when the worker queue is full the whole batch is
 * *shed* — each sample is completed immediately with an empty payload
 * and Shed status (a fast-fail, like an HTTP 503). Error-status
 * samples count against their query in validity determination and are
 * surfaced in StatsSnapshot; they never leave the LoadGen waiting on
 * a response that will not come.
 */

#ifndef MLPERF_SERVING_SERVING_SUT_H
#define MLPERF_SERVING_SERVING_SUT_H

#include <atomic>
#include <memory>
#include <string>

#include <vector>

#include "loadgen/sut.h"
#include "serving/autoscaler.h"
#include "serving/batch_inference.h"
#include "serving/batcher.h"
#include "serving/completion_tracker.h"
#include "serving/ewma.h"
#include "serving/resilience.h"
#include "serving/serving_stats.h"
#include "serving/shard.h"
#include "serving/worker_pool.h"
#include "sim/executor.h"

namespace mlperf {
namespace serving {

/** Which worker-pool flavor backs the runtime. */
enum class WorkerMode
{
    /** Events under virtual time, threads under wall-clock time. */
    Auto,
    Threads,
    Events,
};

struct ServingOptions
{
    /** Largest formed batch. */
    int64_t maxBatch = 8;
    /**
     * How long the batcher may hold a partial batch; 0 dispatches
     * on every enqueue.
     */
    sim::Tick batchTimeoutNs = 2 * sim::kNsPerMs;
    /** Worker pool size (threads or logical engines). */
    int64_t workers = 4;
    /**
     * Worker-queue capacity in batches; 0 = unbounded. A full queue
     * sheds (fast-fails) incoming batches — the backpressure signal.
     */
    size_t queueCapacityBatches = 64;
    WorkerMode mode = WorkerMode::Auto;

    // ---- Sharding (Threads mode only; Events resolves to 1 shard —
    //      the event pool is single-threaded, so there is no lock
    //      contention for shards to remove).
    /**
     * Split the runtime into this many independent shards, each with
     * its own batcher, queue, and pinned workers; samples route to a
     * shard by hash of their id and completions flow through lock-free
     * per-shard rings (see serving/shard.h). Clamped to [1, workers];
     * `workers` is divided evenly across shards.
     */
    int64_t shards = 1;
    /** Pin each shard's workers to consecutive CPUs (Linux only). */
    bool pinThreads = false;
    /** Let idle workers pull from other shards' queues. */
    bool stealWhenIdle = true;
    /**
     * SLO-driven elasticity (Threads mode only). When enabled the
     * pool is built with autoscale.maxShards shards, `shards` above
     * becomes the *initial* active count (clamped into [minShards,
     * maxShards]), and a controller thread grows/shrinks the active
     * set against the smoothed SLO error rate. See
     * serving/autoscaler.h for the control law.
     */
    AutoscaleOptions autoscale;

    // ---- Resilience (defaults disable every feature).
    /**
     * Per-query completion deadline relative to issue; 0 = none.
     * Enables the CompletionTracker: expired samples are shed at
     * dispatch, and samples not completed by the deadline (wedged
     * worker, dropped completion) are completed with Timeout status.
     * Wired from TestSettings::serverQueryDeadlineNs by the harness.
     */
    sim::Tick queryDeadlineNs = 0;
    /** In-flight / queue-depth budgets; zeros = no admission control. */
    AdmissionOptions admission;
    /** Retry policy for transient faults; maxAttempts=1 = off. */
    RetryOptions retry;
    /** Circuit breaker; enabled=false = off. */
    BreakerOptions breaker;
    /**
     * Optional degraded-path engine (not owned; must outlive the
     * SUT). Serves batches — marked Degraded — when the breaker is
     * open, after retries are exhausted, or while the shed-rate
     * monitor is tripped.
     */
    BatchInference *fallback = nullptr;
    /**
     * EWMA shed-rate at which degraded mode engages (exit at half of
     * it — hysteresis); 0 disables the monitor. Needs `fallback`.
     */
    double degradeShedRateThreshold = 0.0;
};

class ServingSut : public loadgen::SystemUnderTest
{
  public:
    ServingSut(sim::Executor &executor, BatchInference &inference,
               ServingOptions options = {});
    ~ServingSut() override;

    std::string name() const override;
    void issueQuery(const std::vector<loadgen::QuerySample> &samples,
                    loadgen::ResponseDelegate &delegate) override;
    void flushQueries() override;

    /**
     * Drain and release the workers (idempotent; the destructor
     * calls it). Ordering matters for teardown safety: flush the
     * batcher, join/drain the worker pool, then complete any samples
     * the tracker still holds (Timeout) — after that no late worker
     * or reaper event can reach the LoadGen's delegate. After
     * shutdown the stats snapshot is final.
     */
    void shutdown();

    /** Live (or, after shutdown, final) stage counters. */
    StatsSnapshot stats() const { return stats_.snapshot(); }

    const ServingOptions &options() const { return options_; }

    /** The worker flavor Auto resolved to. */
    WorkerMode resolvedMode() const { return mode_; }

    /** Resilience wrapper, if any feature enabled it (else null). */
    ResilientInference *resilient() { return resilient_.get(); }

    /** Samples registered with the tracker but not yet completed. */
    uint64_t outstandingTracked() const
    {
        return tracker_ ? tracker_->outstanding() : 0;
    }

    /** Shards the runtime resolved to (1 unless Threads mode). When
     *  autoscaled this is the ceiling; see activeShardCount(). */
    size_t shardCount() const { return batchers_.size(); }

    /** Shards currently routed to (== shardCount() when static). */
    size_t
    activeShardCount() const
    {
        return activeBatchers_.load(std::memory_order_acquire);
    }

    /** The sharded pool when shardCount() > 1, else null. */
    ShardedWorkerPool *shardedPool() { return sharded_; }

    /** The SLO autoscaler when options enabled it, else null. */
    ShardAutoscaler *autoscaler() { return autoscaler_.get(); }

  private:
    void onBatchFormed(size_t shard, Batch &&batch);
    void shedBatch(const Batch &batch);
    /** Feed the shed-rate EWMA and flip degraded mode (hysteresis). */
    void noteShedSignal(uint64_t samples, bool shed);

    sim::Executor &executor_;
    BatchInference &inference_;
    ServingOptions options_;
    WorkerMode mode_;
    ServingStats stats_;
    std::unique_ptr<AdmissionController> admission_;
    std::shared_ptr<CompletionTracker> tracker_;
    std::unique_ptr<ResilientInference> resilient_;
    std::unique_ptr<WorkerPool> pool_;
    ShardedWorkerPool *sharded_ = nullptr;  //!< pool_ view when sharded
    /** One batcher per shard (a single one when unsharded), so batch
     *  formation itself never crosses shards. */
    std::vector<std::unique_ptr<DynamicBatcher>> batchers_;
    /** Batchers issueQuery partitions over: the pool's active-shard
     *  prefix. Equal to batchers_.size() unless autoscaled. */
    std::atomic<size_t> activeBatchers_{0};
    /** Declared after pool_ so it is destroyed (controller joined)
     *  before the pool it steers. */
    std::unique_ptr<ShardAutoscaler> autoscaler_;

    std::mutex degradeMutex_;
    Ewma shedEwma_;
    HysteresisLatch degradeLatch_;
    bool shutdownDone_ = false;
};

} // namespace serving
} // namespace mlperf

#endif // MLPERF_SERVING_SERVING_SUT_H
