#include "serving/batcher.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace mlperf {
namespace serving {

DynamicBatcher::DynamicBatcher(sim::Executor &executor,
                               int64_t max_batch, sim::Tick timeout_ns,
                               EmitFn emit)
    : executor_(executor), maxBatch_(std::max<int64_t>(1, max_batch)),
      timeoutNs_(timeout_ns), emit_(std::move(emit))
{
    assert(emit_ && "batcher needs an emit callback");
}

Batch
DynamicBatcher::takeBatch(size_t count, FlushReason reason)
{
    Batch batch;
    batch.formedAt = executor_.now();
    batch.reason = reason;
    batch.items.reserve(count);
    for (size_t i = 0; i < count; ++i) {
        batch.items.push_back(std::move(pending_.front()));
        pending_.pop_front();
    }
    return batch;
}

void
DynamicBatcher::emitAll(std::vector<Batch> &batches)
{
    for (Batch &batch : batches)
        emit_(std::move(batch));
}

void
DynamicBatcher::armDeadline(sim::Tick now)
{
    (void)now;
    deadlineArmed_ = true;
    const uint64_t generation = generation_;
    executor_.scheduleAfter(timeoutNs_, [this, generation] {
        onDeadline(generation);
    });
}

void
DynamicBatcher::enqueue(const std::vector<loadgen::QuerySample> &samples,
                        loadgen::ResponseDelegate &delegate,
                        sim::Tick deadline)
{
    std::vector<Batch> formed;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const sim::Tick now = executor_.now();
        for (const auto &sample : samples)
            pending_.push_back({sample, &delegate, now, deadline});

        while (static_cast<int64_t>(pending_.size()) >= maxBatch_) {
            formed.push_back(takeBatch(
                static_cast<size_t>(maxBatch_), FlushReason::Size));
        }
        if (!pending_.empty()) {
            if (timeoutNs_ == 0) {
                // No batching window: a zero-length deadline expires
                // immediately, so dispatch the remainder in-line.
                formed.push_back(takeBatch(pending_.size(),
                                           FlushReason::Timeout));
            } else if (!deadlineArmed_) {
                armDeadline(now);
            }
        }
        if (pending_.empty()) {
            ++generation_;  // any armed deadline is now stale
            deadlineArmed_ = false;
        }
    }
    emitAll(formed);
}

void
DynamicBatcher::onDeadline(uint64_t generation)
{
    std::vector<Batch> formed;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (generation != generation_)
            return;  // batch already left by size flush or drain
        deadlineArmed_ = false;
        if (!pending_.empty()) {
            formed.push_back(
                takeBatch(pending_.size(), FlushReason::Timeout));
            ++generation_;
        }
    }
    emitAll(formed);
}

void
DynamicBatcher::flush()
{
    std::vector<Batch> formed;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        while (!pending_.empty()) {
            const size_t take = std::min<size_t>(
                pending_.size(), static_cast<size_t>(maxBatch_));
            formed.push_back(takeBatch(take, FlushReason::Drain));
        }
        ++generation_;
        deadlineArmed_ = false;
    }
    emitAll(formed);
}

size_t
DynamicBatcher::pending() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return pending_.size();
}

} // namespace serving
} // namespace mlperf
