/**
 * @file
 * SLO-driven shard autoscaler for the sharded serving runtime.
 *
 * The serving runtime's capacity knob is its active shard count:
 * each shard brings a batcher, a bounded queue, and pinned workers.
 * Fixed provisioning must choose between wasting capacity at the
 * trough of a diurnal load curve and violating the latency SLO at its
 * peak. The autoscaler closes that loop: a controller thread samples
 * ServingStats on a fixed interval, computes the *SLO error rate* of
 * the interval — the fraction of demand that either missed the
 * latency target or was shed outright —
 *
 *     error = (slo violations + sheds) / (judged completions + sheds)
 *
 * smooths it with an EWMA (serving/ewma.h), and steps the pool's
 * active shard prefix: grow one shard when the smoothed error crosses
 * growThreshold, shrink one after the error has stayed at or below
 * shrinkThreshold for shrinkHoldIntervals consecutive intervals. The
 * asymmetry is deliberate — growing is cheap and urgent (SLO burn is
 * user-visible), shrinking is lazy (a premature shrink under a lull
 * of a bursty trace re-triggers the violation it just fixed).
 *
 * Scaling uses ShardedWorkerPool::growOneShard/shrinkOneShard, whose
 * drain-and-join shrink protocol guarantees no completion is lost or
 * duplicated; the worker fast path never sees the controller (it only
 * reads relaxed counters and takes the pool's scale mutex, which is
 * off the sample path by construction).
 *
 * step() is public and the controller thread optional (intervalNs =
 * 0) so tests drive the decision logic deterministically from
 * synthetic snapshots.
 */

#ifndef MLPERF_SERVING_AUTOSCALER_H
#define MLPERF_SERVING_AUTOSCALER_H

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

#include "serving/ewma.h"
#include "serving/serving_stats.h"
#include "serving/shard.h"
#include "sim/executor.h"

namespace mlperf {
namespace serving {

struct AutoscaleOptions
{
    /** Master switch; everything below is inert when false. */
    bool enabled = false;
    /** Active-shard floor (>= 1). */
    int64_t minShards = 1;
    /** Active-shard ceiling; the pool is built with this many. */
    int64_t maxShards = 4;
    /**
     * Per-sample completion-latency SLO judged by the drainer; the
     * violation counts drive the error signal. 0 = only sheds drive
     * scaling.
     */
    sim::Tick sloTargetNs = 0;
    /**
     * Controller sampling interval; 0 disables the thread entirely
     * (tests call step() by hand).
     */
    sim::Tick intervalNs = 50 * sim::kNsPerMs;
    /** EWMA weight per interval observation. */
    double ewmaAlpha = 0.3;
    /** Grow when the smoothed error rate reaches this. */
    double growThreshold = 0.10;
    /** Shrink only while the smoothed error stays at or below this. */
    double shrinkThreshold = 0.02;
    /** Consecutive quiet intervals required before one shrink. */
    int shrinkHoldIntervals = 4;
};

class ShardAutoscaler
{
  public:
    /**
     * @p pool and @p stats must outlive the autoscaler. Spawns the
     * controller thread unless options.intervalNs == 0.
     */
    ShardAutoscaler(ShardedWorkerPool &pool, ServingStats &stats,
                    AutoscaleOptions options);
    ~ShardAutoscaler();

    /** Stop the controller thread (idempotent). */
    void stop();

    /**
     * One control decision from @p snapshot: compute the interval's
     * error rate from the counter deltas since the previous call,
     * fold it into the EWMA, and grow/shrink at most one shard.
     * Thread-safe; the controller thread is just a step() metronome.
     */
    void step(const StatsSnapshot &snapshot);

    /** Smoothed SLO error rate after the last step. */
    double errorEwma() const;

    /** Scale events decided by this controller (grow / shrink). */
    uint64_t scaleUps() const;
    uint64_t scaleDowns() const;

  private:
    void controllerLoop();

    ShardedWorkerPool &pool_;
    ServingStats &stats_;
    const AutoscaleOptions options_;

    mutable std::mutex mutex_;  //!< guards the control state below
    Ewma error_;
    int quietIntervals_ = 0;
    uint64_t lastSloSamples_ = 0;
    uint64_t lastSloViolations_ = 0;
    uint64_t lastSheds_ = 0;
    uint64_t ups_ = 0;
    uint64_t downs_ = 0;

    std::mutex cvMutex_;
    std::condition_variable cv_;
    bool stopRequested_ = false;  //!< guarded by cvMutex_
    std::thread controller_;
};

} // namespace serving
} // namespace mlperf

#endif // MLPERF_SERVING_AUTOSCALER_H
