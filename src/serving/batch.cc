#include "serving/batch.h"

#include <cassert>

namespace mlperf {
namespace serving {

void
completeBatch(const Batch &batch,
              const std::vector<loadgen::QuerySampleResponse> &responses)
{
    assert(batch.items.size() == responses.size() &&
           "runBatch must return one response per sample");
    std::vector<loadgen::QuerySampleResponse> group;
    group.reserve(responses.size());
    loadgen::ResponseDelegate *delegate = nullptr;
    for (size_t i = 0; i < batch.items.size(); ++i) {
        loadgen::ResponseDelegate *owner = batch.items[i].delegate;
        if (delegate && owner != delegate) {
            delegate->querySamplesComplete(group);
            group.clear();
        }
        delegate = owner;
        group.push_back(responses[i]);
    }
    if (delegate && !group.empty())
        delegate->querySamplesComplete(group);
}

std::vector<loadgen::QuerySampleResponse>
errorResponses(const std::vector<loadgen::QuerySample> &samples,
               loadgen::ResponseStatus status)
{
    std::vector<loadgen::QuerySampleResponse> responses;
    responses.reserve(samples.size());
    for (const auto &sample : samples)
        responses.push_back({sample.id, "", status});
    return responses;
}

std::vector<loadgen::QuerySampleResponse>
errorResponses(const Batch &batch, loadgen::ResponseStatus status)
{
    std::vector<loadgen::QuerySampleResponse> responses;
    responses.reserve(batch.items.size());
    for (const BatchItem &item : batch.items)
        responses.push_back({item.sample.id, "", status});
    return responses;
}

} // namespace serving
} // namespace mlperf
