#include "serving/batch.h"

#include <cassert>

namespace mlperf {
namespace serving {

void
completeBatch(const Batch &batch,
              const std::vector<loadgen::QuerySampleResponse> &responses)
{
    assert(batch.items.size() == responses.size() &&
           "runBatch must return one response per sample");
    std::vector<loadgen::QuerySampleResponse> group;
    group.reserve(responses.size());
    loadgen::ResponseDelegate *delegate = nullptr;
    for (size_t i = 0; i < batch.items.size(); ++i) {
        loadgen::ResponseDelegate *owner = batch.items[i].delegate;
        if (delegate && owner != delegate) {
            delegate->querySamplesComplete(group);
            group.clear();
        }
        delegate = owner;
        group.push_back(responses[i]);
    }
    if (delegate && !group.empty())
        delegate->querySamplesComplete(group);
}

std::vector<loadgen::QuerySampleResponse>
errorResponses(const std::vector<loadgen::QuerySample> &samples,
               loadgen::ResponseStatus status)
{
    std::vector<loadgen::QuerySampleResponse> responses;
    responses.reserve(samples.size());
    for (const auto &sample : samples)
        responses.push_back({sample.id, "", status});
    return responses;
}

std::vector<loadgen::QuerySampleResponse>
errorResponses(const Batch &batch, loadgen::ResponseStatus status)
{
    std::vector<loadgen::QuerySampleResponse> responses;
    responses.reserve(batch.items.size());
    for (const BatchItem &item : batch.items)
        responses.push_back({item.sample.id, "", status});
    return responses;
}

std::vector<loadgen::QuerySample>
batchSamples(const Batch &batch)
{
    std::vector<loadgen::QuerySample> samples;
    samples.reserve(batch.items.size());
    for (const BatchItem &item : batch.items)
        samples.push_back(item.sample);
    return samples;
}

BatchMeta
batchMeta(const Batch &batch)
{
    BatchMeta meta;
    meta.route = batch.route;
    for (const BatchItem &item : batch.items) {
        if (item.deadline != 0 &&
            (meta.deadline == 0 || item.deadline < meta.deadline)) {
            meta.deadline = item.deadline;
        }
    }
    return meta;
}

Batch
splitExpired(Batch &batch, sim::Tick now)
{
    Batch expired;
    expired.formedAt = batch.formedAt;
    expired.reason = batch.reason;
    expired.route = batch.route;
    bool anyExpired = false;
    for (const BatchItem &item : batch.items) {
        if (item.deadline != 0 && item.deadline <= now) {
            anyExpired = true;
            break;
        }
    }
    if (!anyExpired)
        return expired;
    std::vector<BatchItem> live;
    live.reserve(batch.items.size());
    for (BatchItem &item : batch.items) {
        if (item.deadline != 0 && item.deadline <= now)
            expired.items.push_back(std::move(item));
        else
            live.push_back(std::move(item));
    }
    batch.items = std::move(live);
    return expired;
}

} // namespace serving
} // namespace mlperf
