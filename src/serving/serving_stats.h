/**
 * @file
 * Instrumentation for every stage of the serving runtime.
 *
 * Queue depth, time-in-queue, batch size, service time, worker busy
 * time, and shed counts — the counters batching ablations need to be
 * first-class experiments (surfaced through src/report). All record
 * methods are thread-safe; thread workers call them concurrently.
 *
 * Concurrency design: every monotonic counter is a relaxed atomic —
 * no invariant spans two fields, and snapshot() tolerates a torn
 * cross-field read (counts may disagree by the handful of events in
 * flight at the instant of the copy; they are exact once the runtime
 * is quiescent, which is when verdicts are read). The counters are
 * grouped by writer into cache-line-aligned blocks so the issue
 * thread, the worker/drainer side, and the resilience layer never
 * false-share a line. Only the histograms stay behind mutexes, one
 * per writer side; in the sharded runtime those are touched by the
 * single drainer thread and the issue thread only, never by workers.
 */

#ifndef MLPERF_SERVING_SERVING_STATS_H
#define MLPERF_SERVING_SERVING_STATS_H

#include <atomic>
#include <cstdint>
#include <mutex>

#include "serving/batch.h"
#include "sim/executor.h"
#include "stats/histogram.h"

namespace mlperf {
namespace serving {

/** Circuit-breaker state, exported as a gauge in StatsSnapshot. */
enum class BreakerState : uint8_t
{
    Closed,    //!< normal operation
    Open,      //!< fast-failing until the cooldown elapses
    HalfOpen,  //!< letting limited probes through
};

/** Point-in-time copy of all serving-runtime counters. */
struct StatsSnapshot
{
    uint64_t samplesIssued = 0;     //!< handed to issueQuery
    uint64_t samplesCompleted = 0;  //!< responded through delegates
    uint64_t samplesShed = 0;       //!< fast-failed by backpressure

    uint64_t batchesFormed = 0;
    uint64_t batchesCompleted = 0;
    uint64_t batchesShed = 0;
    uint64_t sizeFlushes = 0;     //!< batches closed by max size
    uint64_t timeoutFlushes = 0;  //!< batches closed by the deadline
    uint64_t drainFlushes = 0;    //!< batches closed by flush()

    // ---- Resilience counters (0 unless the features are enabled).
    uint64_t admissionShedSamples = 0;  //!< rejected at issueQuery
    uint64_t expiredSamples = 0;    //!< deadline passed before dispatch
    uint64_t timeoutSamples = 0;    //!< completed by the deadline reaper
    uint64_t droppedCompletions = 0;  //!< responses lost by the worker
    uint64_t failedSamples = 0;     //!< completed with Failed status
    uint64_t batchesFailed = 0;     //!< batches ending in a fault

    uint64_t retries = 0;           //!< retry attempts issued
    uint64_t retrySuccesses = 0;    //!< batches saved by a retry
    uint64_t retriesExhausted = 0;  //!< batches failing every attempt

    uint64_t breakerOpens = 0;
    uint64_t breakerHalfOpens = 0;
    uint64_t breakerCloses = 0;
    uint64_t breakerFastFailSamples = 0;
    BreakerState breakerState = BreakerState::Closed;

    uint64_t degradedSamples = 0;   //!< served through the fallback
    uint64_t degradeEntries = 0;    //!< shed-rate monitor engagements
    uint64_t degradeExits = 0;

    // ---- Per-status completions as observed by the CompletionTracker
    //      (deduplicated; 0 when no tracker is active). These are the
    //      per-tenant counters of the multi-tenant platform, where
    //      each tenant owns a tracker recording into its own stats.
    uint64_t completedOk = 0;
    uint64_t completedDegraded = 0;
    uint64_t completedShed = 0;
    uint64_t completedTimeout = 0;
    uint64_t completedFailed = 0;

    int64_t workers = 0;        //!< pool size (for utilization)
    uint64_t workerBusyNs = 0;  //!< busy time summed over workers

    // ---- SLO accounting and autoscaling (sharded runtime only;
    //      zeros when no SLO target / autoscaler is configured).
    uint64_t sloSamples = 0;     //!< completions judged against the SLO
    uint64_t sloViolations = 0;  //!< of those, over target (or errored)
    uint64_t scaleUps = 0;       //!< shards activated by the autoscaler
    uint64_t scaleDowns = 0;     //!< shards drained by the autoscaler
    int64_t activeShards = 0;    //!< live shard gauge (0 = unsharded)

    stats::LogHistogram queueDepth{1, 1 << 20, 64};
    stats::LogHistogram batchSize{1, 1 << 20, 64};
    stats::LogHistogram timeInQueueNs;  //!< enqueue -> worker start
    stats::LogHistogram serviceTimeNs;  //!< worker start -> done

    double
    averageBatchSize() const
    {
        return batchesCompleted == 0
                   ? 0.0
                   : static_cast<double>(samplesCompleted) /
                         static_cast<double>(batchesCompleted);
    }

    /** Busy fraction of the pool over @p elapsed ns of run time. */
    double
    utilization(sim::Tick elapsedNs) const
    {
        if (workers <= 0 || elapsedNs == 0)
            return 0.0;
        return static_cast<double>(workerBusyNs) /
               (static_cast<double>(workers) *
                static_cast<double>(elapsedNs));
    }

    /**
     * Fraction of issued samples rejected without service — by
     * admission control, queue backpressure, or dispatch-time
     * deadline expiry. The overload health signal driving graceful
     * degradation.
     */
    double
    shedRate() const
    {
        if (samplesIssued == 0)
            return 0.0;
        return static_cast<double>(admissionShedSamples + samplesShed +
                                   expiredSamples) /
               static_cast<double>(samplesIssued);
    }

    /** Fraction of SLO-judged completions that missed the target. */
    double
    sloViolationRate() const
    {
        if (sloSamples == 0)
            return 0.0;
        return static_cast<double>(sloViolations) /
               static_cast<double>(sloSamples);
    }
};

class ServingStats
{
  public:
    /** Samples arrived at issueQuery; @p depth = batcher+queue load. */
    void recordIssued(uint64_t samples, uint64_t depth);

    /** The batcher emitted @p batch (before queue admission). */
    void recordBatchFormed(const Batch &batch);

    /**
     * A worker picked @p batch up at @p now. In the sharded runtime
     * the drainer replays this off the ring with the recorded
     * dispatch tick, so the histogram sees identical values.
     */
    void recordDispatch(const Batch &batch, sim::Tick now);

    /** A worker finished a batch of @p samples after @p busyNs. */
    void recordBatchDone(uint64_t samples, sim::Tick busyNs);

    /** Backpressure rejected a whole batch of @p samples. */
    void recordShed(uint64_t samples);

    // ---- Resilience events.
    /** Admission control rejected @p samples at issueQuery. */
    void recordAdmissionShed(uint64_t samples);
    /** @p samples expired in queue; shed at dispatch. */
    void recordExpired(uint64_t samples);
    /** The deadline reaper completed @p samples with Timeout. */
    void recordTimeout(uint64_t samples);
    /** A worker dropped the completion of @p samples (chaos). */
    void recordDroppedCompletion(uint64_t samples);
    /** A batch of @p samples failed after @p busyNs of worker time. */
    void recordBatchFailed(uint64_t samples, sim::Tick busyNs);
    void recordRetry();
    void recordRetrySuccess();
    void recordRetriesExhausted();
    void recordBreakerTransition(BreakerState state);
    void recordBreakerFastFail(uint64_t samples);
    /** @p samples were served through the degraded/fallback path. */
    void recordDegraded(uint64_t samples);
    void recordDegradeMode(bool entered);
    /**
     * The tracker forwarded @p samples completions carrying @p status
     * (after first-completion-wins dedup).
     */
    void recordTrackedCompletion(loadgen::ResponseStatus status,
                                 uint64_t samples);

    void setWorkers(int64_t workers);

    // ---- SLO / autoscaling events (sharded runtime).
    /** @p samples were judged against the SLO; @p violations missed. */
    void recordSloOutcome(uint64_t samples, uint64_t violations);
    /** The autoscaler activated (@p up) or drained a shard. */
    void recordScaleEvent(bool up);
    void setActiveShards(int64_t shards);

    StatsSnapshot snapshot() const;

  private:
    using Counter = std::atomic<uint64_t>;

    /** Written by the issue thread (and batcher emit callbacks). */
    struct alignas(64) IssueCounters
    {
        Counter samplesIssued{0};
        Counter batchesFormed{0};
        Counter sizeFlushes{0};
        Counter timeoutFlushes{0};
        Counter drainFlushes{0};
        Counter admissionShedSamples{0};
        Counter samplesShed{0};
        Counter batchesShed{0};
    };

    /** Written by workers (baseline pools) or the drainer (sharded). */
    struct alignas(64) CompletionCounters
    {
        Counter samplesCompleted{0};
        Counter batchesCompleted{0};
        Counter workerBusyNs{0};
        Counter expiredSamples{0};
        Counter timeoutSamples{0};
        Counter droppedCompletions{0};
        Counter failedSamples{0};
        Counter batchesFailed{0};
    };

    /** Written by the resilience layer (retry/breaker/degrade). */
    struct alignas(64) ResilienceCounters
    {
        Counter retries{0};
        Counter retrySuccesses{0};
        Counter retriesExhausted{0};
        Counter breakerOpens{0};
        Counter breakerHalfOpens{0};
        Counter breakerCloses{0};
        Counter breakerFastFailSamples{0};
        std::atomic<BreakerState> breakerState{BreakerState::Closed};
    };

    /** Written by the tracker (dedup'd per-status completions). */
    struct alignas(64) TrackedCounters
    {
        Counter completedOk{0};
        Counter completedDegraded{0};
        Counter completedShed{0};
        Counter completedTimeout{0};
        Counter completedFailed{0};
        Counter degradedSamples{0};
        Counter degradeEntries{0};
        Counter degradeExits{0};
    };

    /**
     * SLO outcomes (written by the drainer alongside the completion
     * counters) and scale events (written by the autoscaler's
     * controller thread, a few times per second at most — the shared
     * line costs nothing at that rate).
     */
    struct alignas(64) ScaleCounters
    {
        Counter sloSamples{0};
        Counter sloViolations{0};
        Counter scaleUps{0};
        Counter scaleDowns{0};
        std::atomic<int64_t> activeShards{0};
    };

    IssueCounters issue_;
    CompletionCounters done_;
    ResilienceCounters resilience_;
    TrackedCounters tracked_;
    ScaleCounters scale_;
    alignas(64) std::atomic<int64_t> workers_{0};

    // Histograms are the one piece that cannot be a single atomic;
    // each side keeps its own mutex so the issue thread (queue depth,
    // batch size) never contends with the completion side (time in
    // queue, service time).
    mutable std::mutex issueHistMutex_;
    stats::LogHistogram queueDepth_{1, 1 << 20, 64};
    stats::LogHistogram batchSize_{1, 1 << 20, 64};
    mutable std::mutex doneHistMutex_;
    stats::LogHistogram timeInQueueNs_;
    stats::LogHistogram serviceTimeNs_;
};

} // namespace serving
} // namespace mlperf

#endif // MLPERF_SERVING_SERVING_STATS_H
