/**
 * @file
 * Instrumentation for every stage of the serving runtime.
 *
 * Queue depth, time-in-queue, batch size, service time, worker busy
 * time, and shed counts — the counters batching ablations need to be
 * first-class experiments (surfaced through src/report). All record
 * methods are thread-safe; thread workers call them concurrently.
 */

#ifndef MLPERF_SERVING_SERVING_STATS_H
#define MLPERF_SERVING_SERVING_STATS_H

#include <cstdint>
#include <mutex>

#include "serving/batch.h"
#include "sim/executor.h"
#include "stats/histogram.h"

namespace mlperf {
namespace serving {

/** Point-in-time copy of all serving-runtime counters. */
struct StatsSnapshot
{
    uint64_t samplesIssued = 0;     //!< handed to issueQuery
    uint64_t samplesCompleted = 0;  //!< responded through delegates
    uint64_t samplesShed = 0;       //!< fast-failed by backpressure

    uint64_t batchesFormed = 0;
    uint64_t batchesCompleted = 0;
    uint64_t batchesShed = 0;
    uint64_t sizeFlushes = 0;     //!< batches closed by max size
    uint64_t timeoutFlushes = 0;  //!< batches closed by the deadline
    uint64_t drainFlushes = 0;    //!< batches closed by flush()

    int64_t workers = 0;        //!< pool size (for utilization)
    uint64_t workerBusyNs = 0;  //!< busy time summed over workers

    stats::LogHistogram queueDepth{1, 1 << 20, 64};
    stats::LogHistogram batchSize{1, 1 << 20, 64};
    stats::LogHistogram timeInQueueNs;  //!< enqueue -> worker start
    stats::LogHistogram serviceTimeNs;  //!< worker start -> done

    double
    averageBatchSize() const
    {
        return batchesCompleted == 0
                   ? 0.0
                   : static_cast<double>(samplesCompleted) /
                         static_cast<double>(batchesCompleted);
    }

    /** Busy fraction of the pool over @p elapsed ns of run time. */
    double
    utilization(sim::Tick elapsedNs) const
    {
        if (workers <= 0 || elapsedNs == 0)
            return 0.0;
        return static_cast<double>(workerBusyNs) /
               (static_cast<double>(workers) *
                static_cast<double>(elapsedNs));
    }
};

class ServingStats
{
  public:
    /** Samples arrived at issueQuery; @p depth = batcher+queue load. */
    void recordIssued(uint64_t samples, uint64_t depth);

    /** The batcher emitted @p batch (before queue admission). */
    void recordBatchFormed(const Batch &batch);

    /** A worker picked @p batch up at @p now. */
    void recordDispatch(const Batch &batch, sim::Tick now);

    /** A worker finished a batch of @p samples after @p busyNs. */
    void recordBatchDone(uint64_t samples, sim::Tick busyNs);

    /** Backpressure rejected a whole batch of @p samples. */
    void recordShed(uint64_t samples);

    void setWorkers(int64_t workers);

    StatsSnapshot snapshot() const;

  private:
    mutable std::mutex mutex_;
    StatsSnapshot counters_;
};

} // namespace serving
} // namespace mlperf

#endif // MLPERF_SERVING_SERVING_STATS_H
