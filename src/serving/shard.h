/**
 * @file
 * Sharded serving runtime: N independent shards, each with its own
 * bounded queue and pinned worker threads, publishing completions
 * into per-shard lock-free rings drained by one drainer thread.
 *
 * Why: at high core counts the single-shard runtime tops out on
 * shared locks — one batcher, one MPMC queue, and mutex-guarded
 * stats/tracker sit on every sample's hot path (ROADMAP item 2).
 * Sharding splits every shared structure: samples are routed to a
 * shard by hash, live their whole queued life inside it, and the
 * only cross-shard interaction is idle-only work stealing. The
 * completion/stats path is replaced wholesale: a worker finishing a
 * batch publishes one CompletionRecord into its shard's MpscRing —
 * a CAS and a release store, no mutex — and returns to pulling work.
 * The single drainer thread owns everything downstream: per-stage
 * histogram merges, CompletionTracker dedup (it is the only
 * steady-state caller; only the deadline reaper ever contends), and
 * delegate delivery.
 *
 * Steady-state locking contract, checked by LockProbe in the shard
 * tests: a worker's path from runBatch() returning to the record
 * landing in the ring acquires zero mutexes. Two deliberate
 * exceptions, neither on the steady-state path: (1) when a ring is
 * full the worker completes the batch directly through the locked
 * path (counted in ringFallbacks(), never silent); (2) when the
 * drainer has gone idle, the first publisher after the lull takes
 * the wake mutex to signal it — under saturating load the drainer
 * never sleeps, so the fast path never pays it (a 1 ms wait bound
 * on the drainer makes the wake-up race benign).
 *
 * Pinned workers give each shard cache/NUMA locality for free:
 * per-thread ScratchArenas (PR 2) become per-shard arenas, and the
 * prepacked constant section (PR 5) is shared read-only, so shards
 * need no constant replication.
 */

#ifndef MLPERF_SERVING_SHARD_H
#define MLPERF_SERVING_SHARD_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "serving/batch.h"
#include "serving/batch_inference.h"
#include "serving/bounded_queue.h"
#include "serving/mpsc_ring.h"
#include "serving/serving_stats.h"
#include "serving/worker_pool.h"
#include "sim/executor.h"

namespace mlperf {
namespace serving {

struct ShardOptions
{
    /** Independent shards (>= 1). */
    int64_t shards = 2;
    /** Pinned worker threads per shard (>= 1). */
    int64_t workersPerShard = 1;
    /** Per-shard queue capacity in batches; 0 = unbounded. */
    size_t queueCapacityBatches = 32;
    /** Pin each shard's workers to consecutive CPUs (Linux only). */
    bool pinThreads = false;
    /** Let an idle worker (own queue empty) pull from other shards. */
    bool stealWhenIdle = true;
    /** Completion-ring slots per shard (rounded up to a power of 2). */
    size_t ringCapacity = 1024;
    /** See ThreadWorkerPool: tracker swallows DropCompletion faults. */
    bool trackerActive = false;

    // ---- Elastic capacity (the SLO autoscaler, serving/autoscaler.h).
    /**
     * Shards live at construction; 0 = all of them. The remainder sit
     * idle — queue closed, no workers — until growOneShard() activates
     * them, so `shards` is the ceiling the autoscaler can grow into.
     */
    int64_t initialActiveShards = 0;
    /**
     * Per-sample completion-latency SLO (enqueue to completion); when
     * nonzero the drainer judges every completed sample against it and
     * feeds ServingStats::recordSloOutcome — the autoscaler's error
     * signal. 0 disables the accounting.
     */
    sim::Tick sloTargetNs = 0;
};

/**
 * What a worker publishes into its shard's ring when a batch leaves
 * it, for the drainer to turn into stats + delegate completions.
 */
struct CompletionRecord
{
    enum class Kind : uint8_t
    {
        None,     //!< default-constructed ring slot
        Done,     //!< inference succeeded; responses are real answers
        Failed,   //!< batch fault; responses carry Failed status
        Expired,  //!< deadline passed in queue; Timeout responses
        Dropped,  //!< chaos DropCompletion; no responses on purpose
    };

    Kind kind = Kind::None;
    Batch batch;
    std::vector<loadgen::QuerySampleResponse> responses;
    sim::Tick dispatchedAt = 0;  //!< worker pickup time (time-in-queue)
    sim::Tick busyNs = 0;        //!< worker busy time (service time)
};

/**
 * WorkerPool implementation backed by shards + completion rings.
 * submit() routes whole batches by hash (route ^ first sample id) —
 * the entry point of the multi-tenant platform, whose per-tenant
 * batchers already formed single-tenant batches; tenant routing
 * composes with shard routing because the hash spreads each tenant's
 * batch stream across all shards. submitTo() pins a batch to a known
 * shard — the entry point of ServingSut's per-shard batchers, where
 * samples were already hash-routed at issue time.
 */
class ShardedWorkerPool : public WorkerPool
{
  public:
    ShardedWorkerPool(sim::Executor &executor,
                      BatchInference &inference, ServingStats &stats,
                      ShardOptions options);
    ~ShardedWorkerPool() override;

    /** Route by hash of (route, first sample id); false = shard full. */
    bool submit(Batch &batch) override;

    /** Enqueue on a specific shard; false = that shard's queue full. */
    bool submitTo(size_t shard, Batch &batch);

    void shutdown() override;

    /** Workers on the currently active shards. */
    int64_t
    workerCount() const override
    {
        return static_cast<int64_t>(
                   activeShards_.load(std::memory_order_relaxed)) *
               options_.workersPerShard;
    }

    // ---- Elastic capacity. Active shards always form the prefix
    //      [0, activeShardCount()): grow activates the next index,
    //      shrink drains the last. Both serialize on one scale mutex
    //      and are safe against concurrent submit()/submitTo() — a
    //      batch aimed at a shard that closed mid-flight reroutes to
    //      a still-open shard instead of being lost or shed.

    /** Shards currently accepting work. */
    size_t
    activeShardCount() const
    {
        return activeShards_.load(std::memory_order_acquire);
    }

    /**
     * Activate the next inactive shard: reopen its queue, respawn its
     * workers, publish the larger active set. False when already at
     * the ceiling or shutting down.
     */
    bool growOneShard();

    /**
     * Drain the last active shard: unroute it, stop its queue, and
     * join its workers — every batch already queued on it is still
     * processed (workers exit only once the queue is drained), so no
     * completion is lost. False at one shard or when shutting down.
     */
    bool shrinkOneShard();

    /**
     * Hooks into the batcher layer above: @p before_shrink runs while
     * the victim shard still accepts work (the SUT narrows its batcher
     * fan-out and flushes the victim's batcher into the queue);
     * @p after_grow runs once the new shard accepts. Both receive the
     * new active-shard count.
     */
    void
    setScaleHooks(std::function<void(size_t)> before_shrink,
                  std::function<void(size_t)> after_grow)
    {
        beforeShrink_ = std::move(before_shrink);
        afterGrow_ = std::move(after_grow);
    }

    /** Lock-free: per-shard relaxed counters, summed on read. */
    uint64_t queuedSamples() const override;

    size_t shardCount() const { return shards_.size(); }

    /** Samples queued on one shard (relaxed read). */
    uint64_t queuedSamplesOn(size_t shard) const;

    /** Stable shard for @p key: splitmix64 mix, then mod @p shards. */
    static size_t shardFor(uint64_t key, size_t shards);

    // ---- Runtime-contract counters (all relaxed reads).
    /** Batches executed by a worker whose own queue was empty. */
    uint64_t steals() const;
    /** Mutex acquisitions measured on the publish fast path (want 0). */
    uint64_t fastPathLockAcquisitions() const
    {
        return fastPathLocks_.load(std::memory_order_relaxed);
    }
    /** Completions that bypassed a full ring via the locked path. */
    uint64_t ringFallbacks() const
    {
        return ringFallbacks_.load(std::memory_order_relaxed);
    }

  private:
    struct Shard
    {
        Shard(size_t queue_capacity, size_t ring_capacity)
            : queue(queue_capacity), ring(ring_capacity)
        {
        }

        BoundedQueue<Batch> queue;
        MpscRing<CompletionRecord> ring;
        /** Pinned workers; owned per shard so shrink can join them. */
        std::vector<std::thread> workers;
        /** False while the shard is inactive or draining: its own
         *  workers stop stealing so the shrink join stays prompt. */
        std::atomic<bool> accepting{true};
        /** Samples admitted but not yet picked up, on its own line. */
        alignas(64) std::atomic<uint64_t> queuedSamples{0};
        alignas(64) std::atomic<uint64_t> steals{0};
    };

    void workerLoop(size_t shard_index);
    /** Spawn options_.workersPerShard threads into shard @p index. */
    void spawnShardWorkers(size_t index);
    void drainerLoop();
    /** Steal from another shard; called only with own queue empty. */
    bool trySteal(size_t thief, Batch &out);
    void process(size_t shard_index, Batch &&batch);
    /** Publish @p record; full ring falls back to applyRecord. */
    void publish(Shard &shard, CompletionRecord &&record,
                 uint64_t locks_before);
    /** Turn a record into stats + delegate completions (drainer). */
    void applyRecord(CompletionRecord &record);
    /** Drain every shard ring once; true if anything was applied. */
    bool drainRingsOnce();
    void wakeDrainerIfIdle();

    sim::Executor &executor_;
    BatchInference &inference_;
    ServingStats &stats_;
    const ShardOptions options_;
    std::vector<std::unique_ptr<Shard>> shards_;
    std::thread drainer_;
    std::atomic<bool> stopped_{false};

    /** Active shards form the prefix [0, activeShards_). */
    std::atomic<size_t> activeShards_{0};
    /** Serializes grow/shrink/shutdown (never on the sample path). */
    std::mutex scaleMutex_;
    std::function<void(size_t)> beforeShrink_;
    std::function<void(size_t)> afterGrow_;

    alignas(64) std::atomic<uint64_t> fastPathLocks_{0};
    std::atomic<uint64_t> ringFallbacks_{0};

    // Drainer wake protocol: publishers peek drainerIdle_ (relaxed
    // load behind a seq_cst fence) and only touch the mutex when the
    // drainer actually sleeps; the drainer re-checks the rings after
    // raising the flag, and the bounded wait makes any lost wake-up
    // a <=1 ms delay instead of a hang.
    std::mutex wakeMutex_;
    std::condition_variable wakeCv_;
    std::atomic<bool> drainerIdle_{false};
    bool drainerStop_ = false;  //!< guarded by wakeMutex_
};

} // namespace serving
} // namespace mlperf

#endif // MLPERF_SERVING_SHARD_H
