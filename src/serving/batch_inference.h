/**
 * @file
 * The pluggable inner inference functor of the serving runtime.
 *
 * ServingSut owns queueing, batching, and worker scheduling; what a
 * batch *costs* and what it *answers* is delegated to this interface
 * so the same runtime serves both the real NN engine (thread workers,
 * wall-clock time) and the simulated hardware profiles (event
 * workers, virtual time). Adapters live in src/sut/serving_adapters.h.
 */

#ifndef MLPERF_SERVING_BATCH_INFERENCE_H
#define MLPERF_SERVING_BATCH_INFERENCE_H

#include <stdexcept>
#include <string>
#include <vector>

#include "loadgen/types.h"
#include "sim/executor.h"

namespace mlperf {
namespace serving {

/** How an inference fault should be handled by the resilience layer. */
enum class FaultKind
{
    /** Worth retrying: a transient worker hiccup. */
    Transient,
    /** Not worth retrying: fail (or degrade) immediately. */
    Permanent,
    /**
     * Chaos-only: the worker "completes" but the response is lost.
     * The worker pool deliberately does not answer; the deadline
     * reaper must complete the samples. Simulates a crashed completer.
     */
    DropCompletion,
};

/**
 * The error channel of BatchInference::runBatch. Implementations
 * throw this to signal a worker fault; ResilientInference retries
 * Transient faults, trips its circuit breaker on persistent ones,
 * and worker pools convert uncaught faults into error-flagged
 * responses so the LoadGen never hangs.
 */
class InferenceFault : public std::runtime_error
{
  public:
    InferenceFault(FaultKind kind, const std::string &what)
        : std::runtime_error(what), kind_(kind)
    {
    }

    FaultKind kind() const { return kind_; }

  private:
    FaultKind kind_;
};

class BatchInference
{
  public:
    virtual ~BatchInference() = default;

    virtual std::string name() const = 0;

    /**
     * Run inference on one batch and return one response per sample,
     * aligned with @p samples. MUST be thread-safe: thread workers
     * call this concurrently from multiple pool threads. May throw
     * InferenceFault to signal a worker fault; any other exception is
     * treated as FaultKind::Permanent by the worker pools.
     */
    virtual std::vector<loadgen::QuerySampleResponse> runBatch(
        const std::vector<loadgen::QuerySample> &samples) = 0;

    /**
     * Modeled service time of the batch, used by event workers to
     * advance virtual time (runBatch itself is instantaneous in
     * host time there). @p now is the dispatch time, letting models
     * apply time-varying effects (DVFS warm-up). Only ever called
     * from the executor thread, so implementations may keep
     * unsynchronized RNG state for jitter.
     *
     * The default of 0 suits thread workers, where real compute time
     * is measured rather than modeled.
     */
    virtual sim::Tick
    serviceTimeNs(const std::vector<loadgen::QuerySample> &samples,
                  sim::Tick now)
    {
        (void)samples;
        (void)now;
        return 0;
    }
};

} // namespace serving
} // namespace mlperf

#endif // MLPERF_SERVING_BATCH_INFERENCE_H
