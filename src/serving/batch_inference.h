/**
 * @file
 * The pluggable inner inference functor of the serving runtime.
 *
 * ServingSut owns queueing, batching, and worker scheduling; what a
 * batch *costs* and what it *answers* is delegated to this interface
 * so the same runtime serves both the real NN engine (thread workers,
 * wall-clock time) and the simulated hardware profiles (event
 * workers, virtual time). Adapters live in src/sut/serving_adapters.h.
 */

#ifndef MLPERF_SERVING_BATCH_INFERENCE_H
#define MLPERF_SERVING_BATCH_INFERENCE_H

#include <stdexcept>
#include <string>
#include <vector>

#include "loadgen/types.h"
#include "sim/executor.h"

namespace mlperf {
namespace serving {

/** How an inference fault should be handled by the resilience layer. */
enum class FaultKind
{
    /** Worth retrying: a transient worker hiccup. */
    Transient,
    /** Not worth retrying: fail (or degrade) immediately. */
    Permanent,
    /**
     * Chaos-only: the worker "completes" but the response is lost.
     * The worker pool deliberately does not answer; the deadline
     * reaper must complete the samples. Simulates a crashed completer.
     */
    DropCompletion,
};

/**
 * The error channel of BatchInference::runBatch. Implementations
 * throw this to signal a worker fault; ResilientInference retries
 * Transient faults, trips its circuit breaker on persistent ones,
 * and worker pools convert uncaught faults into error-flagged
 * responses so the LoadGen never hangs.
 */
class InferenceFault : public std::runtime_error
{
  public:
    InferenceFault(FaultKind kind, const std::string &what)
        : std::runtime_error(what), kind_(kind)
    {
    }

    FaultKind kind() const { return kind_; }

  private:
    FaultKind kind_;
};

/**
 * Batch-level metadata the worker pools hand to routed inference
 * engines alongside the samples. Single-model engines ignore it;
 * the multi-tenant platform's router uses `route` to pick the model
 * (or DAG pipeline) and `deadline` to propagate per-stage deadline
 * budgets into pipeline execution.
 */
struct BatchMeta
{
    /** Route id stamped on the batch (Batch::route); 0 = unrouted. */
    uint32_t route = 0;
    /**
     * Tightest absolute completion deadline across the batch's items;
     * 0 = none.
     */
    sim::Tick deadline = 0;
};

class BatchInference
{
  public:
    virtual ~BatchInference() = default;

    virtual std::string name() const = 0;

    /**
     * Run inference on one batch and return one response per sample,
     * aligned with @p samples. MUST be thread-safe: thread workers
     * call this concurrently from multiple pool threads. May throw
     * InferenceFault to signal a worker fault; any other exception is
     * treated as FaultKind::Permanent by the worker pools.
     */
    virtual std::vector<loadgen::QuerySampleResponse> runBatch(
        const std::vector<loadgen::QuerySample> &samples) = 0;

    /**
     * Routed entry point the worker pools actually call. The default
     * discards the metadata and forwards to the unrouted overload, so
     * every existing single-model engine is unaffected; multi-model
     * routers override this one instead.
     */
    virtual std::vector<loadgen::QuerySampleResponse>
    runBatch(const std::vector<loadgen::QuerySample> &samples,
             const BatchMeta &meta)
    {
        (void)meta;
        return runBatch(samples);
    }

    /**
     * Modeled service time of the batch, used by event workers to
     * advance virtual time (runBatch itself is instantaneous in
     * host time there). @p now is the dispatch time, letting models
     * apply time-varying effects (DVFS warm-up). Only ever called
     * from the executor thread, so implementations may keep
     * unsynchronized RNG state for jitter.
     *
     * The default of 0 suits thread workers, where real compute time
     * is measured rather than modeled.
     */
    virtual sim::Tick
    serviceTimeNs(const std::vector<loadgen::QuerySample> &samples,
                  sim::Tick now)
    {
        (void)samples;
        (void)now;
        return 0;
    }

    /** Routed variant; see the routed runBatch overload. */
    virtual sim::Tick
    serviceTimeNs(const std::vector<loadgen::QuerySample> &samples,
                  sim::Tick now, const BatchMeta &meta)
    {
        (void)meta;
        return serviceTimeNs(samples, now);
    }
};

} // namespace serving
} // namespace mlperf

#endif // MLPERF_SERVING_BATCH_INFERENCE_H
