/**
 * @file
 * Shared value types of the serving runtime: the unit of work handed
 * from the dynamic batcher to a worker pool.
 *
 * The paper's server scenario exists to stress "multiple users
 * submitting concurrent, independent queries"; this runtime is the
 * SUT-side answer — samples from independent queries are merged into
 * batches, so one Batch may carry samples owned by different
 * ResponseDelegates (e.g. under multitenancy).
 */

#ifndef MLPERF_SERVING_BATCH_H
#define MLPERF_SERVING_BATCH_H

#include <vector>

#include "loadgen/sut.h"
#include "loadgen/types.h"
#include "serving/batch_inference.h"
#include "sim/executor.h"

namespace mlperf {
namespace serving {

/** One sample waiting for (or undergoing) inference. */
struct BatchItem
{
    loadgen::QuerySample sample;
    loadgen::ResponseDelegate *delegate = nullptr;
    sim::Tick enqueuedAt = 0;  //!< when issueQuery handed it over
    /**
     * Absolute completion deadline; 0 = none. Propagated from
     * TestSettings::serverQueryDeadlineNs through the batcher so
     * worker pools can shed already-expired items at dispatch instead
     * of wasting a worker slot on an answer nobody will accept.
     */
    sim::Tick deadline = 0;
};

/** Why the batcher emitted a batch. */
enum class FlushReason
{
    Size,     //!< reached the max batch size
    Timeout,  //!< batching-window deadline expired
    Drain,    //!< explicit flush (flushQueries / end of run)
};

/** A formed batch travelling from batcher to worker. */
struct Batch
{
    std::vector<BatchItem> items;
    sim::Tick formedAt = 0;
    FlushReason reason = FlushReason::Size;
    /**
     * Which route (model or DAG pipeline) the batch is bound for.
     * 0 for the single-model ServingSut; the multi-tenant platform
     * stamps its tenants' route ids here so one shared worker pool
     * can serve many models (see serving/tenancy/platform.h).
     */
    uint32_t route = 0;
};

/**
 * Complete every item of @p batch through its delegate, preserving
 * issue order and grouping consecutive items that share a delegate
 * into one querySamplesComplete call. @p responses must be aligned
 * with batch.items (the contract of BatchInference::runBatch).
 */
void completeBatch(
    const Batch &batch,
    const std::vector<loadgen::QuerySampleResponse> &responses);

/**
 * One empty-payload response per sample, all carrying @p status —
 * the fast-fail payload of the shed/timeout/failure paths.
 */
std::vector<loadgen::QuerySampleResponse> errorResponses(
    const std::vector<loadgen::QuerySample> &samples,
    loadgen::ResponseStatus status);

/** Same, drawn from a formed batch's items. */
std::vector<loadgen::QuerySampleResponse> errorResponses(
    const Batch &batch, loadgen::ResponseStatus status);

/** The batch's samples in issue order (runBatch's input contract). */
std::vector<loadgen::QuerySample> batchSamples(const Batch &batch);

/** Route + tightest item deadline, for the routed inference entry. */
BatchMeta batchMeta(const Batch &batch);

/**
 * Remove the items of @p batch whose deadline passed at @p now and
 * return them as their own batch (empty when none expired). The
 * caller completes the expired batch with Timeout status and counts
 * it; both worker-pool flavors and the sharded runtime share this
 * dispatch-time shed logic.
 */
Batch splitExpired(Batch &batch, sim::Tick now);

} // namespace serving
} // namespace mlperf

#endif // MLPERF_SERVING_BATCH_H
