#include "serving/chaos.h"

#include <chrono>
#include <thread>

namespace mlperf {
namespace serving {

FaultInjectingInference::FaultAction
FaultInjectingInference::draw()
{
    // One uniform draw partitioned by cumulative probability, so the
    // fault mix is exactly the configured rates and adding one fault
    // type does not perturb the stream consumed by the others.
    double u = rng_.nextDouble();
    double edge = options_.latencySpikeProb;
    if (u < edge)
        return FaultAction::LatencySpike;
    edge += options_.transientFaultProb;
    if (u < edge)
        return FaultAction::Transient;
    edge += options_.permanentFaultProb;
    if (u < edge)
        return FaultAction::Permanent;
    edge += options_.dropCompletionProb;
    if (u < edge)
        return FaultAction::DropCompletion;
    edge += options_.wedgeProb;
    if (u < edge)
        return FaultAction::Wedge;
    return FaultAction::None;
}

sim::Tick
FaultInjectingInference::serviceTimeNs(
    const std::vector<loadgen::QuerySample> &samples, sim::Tick now)
{
    sim::Tick base = inner_.serviceTimeNs(samples, now);
    if (samples.empty())
        return base;
    FaultAction action;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        action = draw();
        // runBatch (a later event) must see the same decision; key by
        // the batch's first sample id, unique per in-flight batch.
        planned_[samples.front().id] = action;
    }
    switch (action) {
      case FaultAction::LatencySpike:
        return base + options_.latencySpikeNs;
      case FaultAction::Wedge:
        return base + options_.wedgeNs;
      case FaultAction::Transient:
      case FaultAction::Permanent:
        // The worker burns the service time, then fails.
        return base;
      case FaultAction::DropCompletion:
      case FaultAction::None:
        return base;
    }
    return base;
}

FaultInjectingInference::FaultAction
FaultInjectingInference::takePlanned(loadgen::ResponseId firstId,
                                     bool &found)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = planned_.find(firstId);
    if (it == planned_.end()) {
        found = false;
        // Thread mode: no dispatch-time plan exists; decide here.
        return draw();
    }
    found = true;
    FaultAction action = it->second;
    planned_.erase(it);
    return action;
}

std::vector<loadgen::QuerySampleResponse>
FaultInjectingInference::apply(
    FaultAction action, const std::vector<loadgen::QuerySample> &samples,
    bool modeled)
{
    switch (action) {
      case FaultAction::None:
        break;
      case FaultAction::LatencySpike: {
        std::lock_guard<std::mutex> lock(mutex_);
        ++counters_.latencySpikes;
        break;
      }
      case FaultAction::Transient: {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++counters_.transientFaults;
        }
        throw InferenceFault(FaultKind::Transient,
                             "injected transient fault");
      }
      case FaultAction::Permanent: {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++counters_.permanentFaults;
        }
        throw InferenceFault(FaultKind::Permanent,
                             "injected permanent fault");
      }
      case FaultAction::DropCompletion: {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++counters_.droppedCompletions;
        }
        throw InferenceFault(FaultKind::DropCompletion,
                             "injected dropped completion");
      }
      case FaultAction::Wedge: {
        std::lock_guard<std::mutex> lock(mutex_);
        ++counters_.wedges;
        break;
      }
    }

    if (!modeled) {
        // Thread mode: stalls happen in real time on the worker.
        if (action == FaultAction::LatencySpike) {
            std::this_thread::sleep_for(
                std::chrono::nanoseconds(options_.latencySpikeNs));
        } else if (action == FaultAction::Wedge) {
            std::this_thread::sleep_for(
                std::chrono::nanoseconds(options_.wedgeNs));
        }
    }
    return inner_.runBatch(samples);
}

std::vector<loadgen::QuerySampleResponse>
FaultInjectingInference::runBatch(
    const std::vector<loadgen::QuerySample> &samples)
{
    if (samples.empty())
        return inner_.runBatch(samples);
    bool modeled = false;
    FaultAction action = takePlanned(samples.front().id, modeled);
    return apply(action, samples, modeled);
}

ChaosCounters
FaultInjectingInference::counters() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_;
}

} // namespace serving
} // namespace mlperf
