#include "serving/resilience.h"

#include <chrono>
#include <thread>

namespace mlperf {
namespace serving {

ResilientInference::ResilientInference(sim::Executor &executor,
                                       BatchInference &primary,
                                       BatchInference *fallback,
                                       RetryOptions retry,
                                       BreakerOptions breaker,
                                       ServingStats &stats)
    : executor_(executor), primary_(primary), fallback_(fallback),
      retry_(retry), stats_(stats)
{
    if (breaker.enabled)
        breaker_.emplace(breaker, &stats_);
}

std::string
ResilientInference::name() const
{
    return "resilient(" + primary_.name() + ")";
}

sim::Tick
ResilientInference::serviceTimeNs(
    const std::vector<loadgen::QuerySample> &samples, sim::Tick now)
{
    // While degraded (or fast-failing under an open breaker), event
    // workers should charge the fallback's cheaper cost model, not the
    // primary's. Fast-fails are modeled as free.
    if (degraded_.load(std::memory_order_relaxed) ||
        (breaker_ && breaker_->state() == BreakerState::Open)) {
        return fallback_ ? fallback_->serviceTimeNs(samples, now) : 0;
    }
    return primary_.serviceTimeNs(samples, now);
}

std::vector<loadgen::QuerySampleResponse>
ResilientInference::runFallback(
    const std::vector<loadgen::QuerySample> &samples)
{
    auto responses = fallback_->runBatch(samples);
    for (auto &response : responses)
        response.status = loadgen::ResponseStatus::Degraded;
    stats_.recordDegraded(samples.size());
    return responses;
}

void
ResilientInference::backoff(int attempt)
{
    // Event workers run on the executor thread: sleeping there would
    // stall the discrete-event clock, so virtual-time retries are
    // instantaneous (still counted).
    if (executor_.virtualTime())
        return;
    sim::Tick delay = retry_.backoffBaseNs << (attempt - 1);
    if (delay > retry_.backoffMaxNs || delay < retry_.backoffBaseNs)
        delay = retry_.backoffMaxNs;
    std::this_thread::sleep_for(std::chrono::nanoseconds(delay));
}

std::vector<loadgen::QuerySampleResponse>
ResilientInference::runBatch(
    const std::vector<loadgen::QuerySample> &samples)
{
    if (degraded_.load(std::memory_order_relaxed) && fallback_)
        return runFallback(samples);

    if (breaker_ && !breaker_->allow(executor_.now())) {
        stats_.recordBreakerFastFail(samples.size());
        if (fallback_)
            return runFallback(samples);
        throw InferenceFault(FaultKind::Permanent,
                             "circuit breaker open: " + primary_.name());
    }

    const int attempts = retry_.maxAttempts > 0 ? retry_.maxAttempts : 1;
    std::string reason = "inference failed";
    for (int attempt = 1; attempt <= attempts; ++attempt) {
        try {
            auto responses = primary_.runBatch(samples);
            if (breaker_)
                breaker_->onSuccess(executor_.now());
            if (attempt > 1)
                stats_.recordRetrySuccess();
            return responses;
        } catch (const InferenceFault &fault) {
            if (fault.kind() == FaultKind::DropCompletion)
                throw; // The simulated fault is losing the completion.
            reason = fault.what();
            if (fault.kind() == FaultKind::Transient &&
                attempt < attempts) {
                stats_.recordRetry();
                backoff(attempt);
                continue;
            }
            if (attempt == attempts && retry_.enabled() &&
                fault.kind() == FaultKind::Transient) {
                stats_.recordRetriesExhausted();
            }
        } catch (const std::exception &error) {
            // Unknown exceptions are permanent: fall through to fail.
            reason = error.what();
        }
        break;
    }

    if (breaker_)
        breaker_->onFailure(executor_.now());
    if (fallback_)
        return runFallback(samples);
    throw InferenceFault(FaultKind::Permanent, reason);
}

} // namespace serving
} // namespace mlperf
