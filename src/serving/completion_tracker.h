/**
 * @file
 * Deadline-enforcing completion proxy between ServingSut and the
 * LoadGen's ResponseDelegate.
 *
 * Two fault modes make a plain fire-and-forget pipeline hang the
 * LoadGen: a worker that loses a completion (crash, dropped response)
 * and a query stuck behind a wedged worker past any useful deadline.
 * The tracker closes both holes: every admitted sample is registered
 * with its real delegate and (optionally) a deadline; the first
 * completion wins and later ones are ignored; a reaper event fires at
 * the deadline and completes whatever is still outstanding with
 * Timeout status. The run always finishes, and every lost or late
 * sample is visible in ServingStats instead of as a wedged run.
 */

#ifndef MLPERF_SERVING_COMPLETION_TRACKER_H
#define MLPERF_SERVING_COMPLETION_TRACKER_H

#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "loadgen/sut.h"
#include "serving/resilience.h"
#include "serving/serving_stats.h"
#include "sim/executor.h"

namespace mlperf {
namespace serving {

/**
 * ResponseDelegate proxy with first-completion-wins deduplication and
 * deadline reaping. Thread-safe. Held by shared_ptr: reaper events
 * capture a weak_ptr, so an event firing after ServingSut teardown is
 * a no-op rather than a use-after-free.
 */
class CompletionTracker
    : public loadgen::ResponseDelegate,
      public std::enable_shared_from_this<CompletionTracker>
{
  public:
    CompletionTracker(sim::Executor &executor, ServingStats &stats,
                      AdmissionController *admission)
        : executor_(executor), stats_(stats), admission_(admission)
    {
    }

    /**
     * Register @p samples for completion through @p delegate. If
     * @p deadline is nonzero, a reaper event at that tick completes
     * any still-outstanding sample with Timeout status.
     */
    void track(const std::vector<loadgen::QuerySample> &samples,
               loadgen::ResponseDelegate &delegate, sim::Tick deadline);

    /**
     * Forward completions to each sample's registered delegate,
     * dropping ids already completed (or never tracked). Releases
     * admission budget for every deduplicated completion.
     */
    void querySamplesComplete(
        const std::vector<loadgen::QuerySampleResponse> &responses)
        override;

    /**
     * Complete every outstanding sample with Timeout status. Called
     * at shutdown after the worker pool has drained, so any sample
     * still tracked lost its completion; nothing can race a late
     * worker completion into a destroyed delegate afterwards.
     */
    void drain();

    /** Samples registered but not yet completed. */
    uint64_t outstanding() const;

  private:
    void reap(const std::vector<loadgen::ResponseId> &ids);

    sim::Executor &executor_;
    ServingStats &stats_;
    AdmissionController *admission_;
    mutable std::mutex mutex_;
    std::unordered_map<loadgen::ResponseId, loadgen::ResponseDelegate *>
        pending_;
};

} // namespace serving
} // namespace mlperf

#endif // MLPERF_SERVING_COMPLETION_TRACKER_H
