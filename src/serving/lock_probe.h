/**
 * @file
 * Thread-local mutex-acquisition probe for the serving fast path.
 *
 * The sharded runtime's contract is that a worker's completion fast
 * path — from runBatch returning to the completion record landing in
 * the shard's ring — acquires zero mutexes. Contracts rot unless they
 * are checked: every instrumented lock site in src/serving (bounded
 * queue, serving stats, completion tracker, dynamic batcher) bumps a
 * thread-local counter, shard workers measure the delta across the
 * publish step, and the shard tests assert the accumulated total
 * stays zero. Because the counter is thread-local, the probe adds no
 * shared write to the very paths it watches.
 */

#ifndef MLPERF_SERVING_LOCK_PROBE_H
#define MLPERF_SERVING_LOCK_PROBE_H

#include <cstdint>

namespace mlperf {
namespace serving {

class LockProbe
{
  public:
    /** Called by instrumented serving lock sites on each acquire. */
    static void noteAcquire() { ++acquisitions_; }

    /** Instrumented acquisitions by the calling thread so far. */
    static uint64_t threadAcquisitions() { return acquisitions_; }

  private:
    inline static thread_local uint64_t acquisitions_ = 0;
};

} // namespace serving
} // namespace mlperf

#endif // MLPERF_SERVING_LOCK_PROBE_H
