/**
 * @file
 * The fault-tolerance layer of the serving runtime: admission
 * control, retry with capped exponential backoff, a circuit breaker,
 * and graceful degradation onto a fallback inference engine.
 *
 * The paper's server scenario is defined by tail-latency bounds under
 * Poisson traffic (Tables II/III); production serving work shows that
 * what actually dominates the measured tail is how the system behaves
 * when things go wrong — overload, slow workers, transient faults.
 * This layer gives ServingSut an explicit answer for each failure
 * mode, with every decision counted in ServingStats:
 *
 *   admission      issueQuery-side budget: queries beyond the
 *                  in-flight / queue-depth budget are shed instantly
 *                  (Shed status) instead of growing the queue tail.
 *   retry          transient InferenceFaults are retried up to
 *                  maxAttempts with capped exponential backoff.
 *   breaker        persistent faults trip Closed -> Open; while Open
 *                  every batch fast-fails (or degrades) without
 *                  touching the faulty engine; after a cooldown the
 *                  breaker admits limited Half-Open probes and closes
 *                  again on success.
 *   degrade        when the breaker is open or the shed-rate monitor
 *                  trips, batches are served by a cheaper fallback
 *                  engine (e.g. the int8 compiled plan instead of
 *                  fp32), marked Degraded per response.
 */

#ifndef MLPERF_SERVING_RESILIENCE_H
#define MLPERF_SERVING_RESILIENCE_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "serving/batch_inference.h"
#include "serving/serving_stats.h"
#include "sim/executor.h"

namespace mlperf {
namespace serving {

// ------------------------------------------------- admission control

struct AdmissionOptions
{
    /**
     * Budget of samples admitted but not yet completed; 0 = no
     * budget. Requires the completion tracker (ServingSut wires it)
     * so completions release budget.
     */
    uint64_t maxInFlightSamples = 0;
    /**
     * Load-shedding bound on samples waiting in the batcher + worker
     * queue at admission time; 0 = unbounded.
     */
    uint64_t maxQueuedSamples = 0;

    bool
    enabled() const
    {
        return maxInFlightSamples > 0 || maxQueuedSamples > 0;
    }
};

/**
 * Thread-safe in-flight budget + queue-depth load shedding in front
 * of the batcher/MPMC queue. A rejected query is completed at once
 * with Shed status — the bounded-latency alternative to letting the
 * queue tail grow without limit.
 */
class AdmissionController
{
  public:
    explicit AdmissionController(AdmissionOptions options)
        : options_(options)
    {
    }

    /**
     * Try to admit @p samples given @p queuedSamples already waiting.
     * On success the in-flight budget is charged.
     */
    bool
    tryAdmit(uint64_t samples, uint64_t queuedSamples)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (options_.maxInFlightSamples != 0 &&
            inFlight_ + samples > options_.maxInFlightSamples) {
            return false;
        }
        if (options_.maxQueuedSamples != 0 &&
            queuedSamples + samples > options_.maxQueuedSamples) {
            return false;
        }
        inFlight_ += samples;
        return true;
    }

    /** @p samples completed (any path); release their budget. */
    void
    release(uint64_t samples)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        inFlight_ = inFlight_ >= samples ? inFlight_ - samples : 0;
    }

    uint64_t
    inFlight() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return inFlight_;
    }

  private:
    const AdmissionOptions options_;
    mutable std::mutex mutex_;
    uint64_t inFlight_ = 0;
};

// --------------------------------------------------- circuit breaker

struct BreakerOptions
{
    bool enabled = false;
    /** Consecutive batch failures that trip Closed -> Open. */
    int failureThreshold = 5;
    /** How long the breaker stays Open before probing. */
    sim::Tick cooldownNs = 50 * sim::kNsPerMs;
    /** Probe batches admitted while Half-Open. */
    int halfOpenProbes = 1;
};

/**
 * Classic three-state circuit breaker, thread-safe. Time comes from
 * the caller (Executor ticks) so it works identically under virtual
 * and wall-clock time.
 */
class CircuitBreaker
{
  public:
    explicit CircuitBreaker(BreakerOptions options,
                            ServingStats *stats = nullptr)
        : options_(options), stats_(stats)
    {
    }

    /**
     * May a batch proceed at @p now? Open -> false until the cooldown
     * elapses, then Half-Open with up to halfOpenProbes concurrent
     * probes.
     */
    bool
    allow(sim::Tick now)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        switch (state_) {
          case BreakerState::Closed:
            return true;
          case BreakerState::Open:
            if (now < openUntil_)
                return false;
            transition(BreakerState::HalfOpen);
            probesInFlight_ = 1;
            return true;
          case BreakerState::HalfOpen:
            if (probesInFlight_ >= options_.halfOpenProbes)
                return false;
            ++probesInFlight_;
            return true;
        }
        return true;
    }

    /** A batch (or Half-Open probe) succeeded. */
    void
    onSuccess(sim::Tick now)
    {
        (void)now;
        std::lock_guard<std::mutex> lock(mutex_);
        consecutiveFailures_ = 0;
        if (state_ == BreakerState::HalfOpen) {
            probesInFlight_ = 0;
            transition(BreakerState::Closed);
        }
    }

    /** A batch failed terminally (retries exhausted or permanent). */
    void
    onFailure(sim::Tick now)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (state_ == BreakerState::HalfOpen) {
            // A failed probe re-opens immediately.
            probesInFlight_ = 0;
            openUntil_ = now + options_.cooldownNs;
            transition(BreakerState::Open);
            return;
        }
        if (state_ == BreakerState::Closed &&
            ++consecutiveFailures_ >= options_.failureThreshold) {
            openUntil_ = now + options_.cooldownNs;
            transition(BreakerState::Open);
        }
    }

    BreakerState
    state() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return state_;
    }

  private:
    void
    transition(BreakerState next)
    {
        state_ = next;
        if (state_ == BreakerState::Closed)
            consecutiveFailures_ = 0;
        if (stats_)
            stats_->recordBreakerTransition(next);
    }

    const BreakerOptions options_;
    ServingStats *stats_;
    mutable std::mutex mutex_;
    BreakerState state_ = BreakerState::Closed;
    int consecutiveFailures_ = 0;
    int probesInFlight_ = 0;
    sim::Tick openUntil_ = 0;
};

// --------------------------------------------------------- retries

struct RetryOptions
{
    /** Total attempts per batch (1 = no retries). */
    int maxAttempts = 1;
    /** Backoff before retry k is base * 2^(k-1), capped at max. */
    sim::Tick backoffBaseNs = sim::kNsPerMs;
    sim::Tick backoffMaxNs = 8 * sim::kNsPerMs;

    bool enabled() const { return maxAttempts > 1; }
};

/**
 * BatchInference decorator implementing retry, circuit breaking, and
 * graceful degradation around a primary engine. Thread-safe (worker
 * pools call runBatch concurrently).
 *
 * Failure flow per batch:
 *   degraded mode or breaker open  -> fallback (Degraded) or, without
 *                                     a fallback, a Permanent fault
 *   transient fault, attempts left -> backoff, retry
 *   otherwise                      -> breaker.onFailure; fallback
 *                                     (Degraded) or a Permanent fault
 *
 * Terminal failures without a fallback are rethrown as Permanent
 * InferenceFaults so the worker pool does the error accounting and
 * Failed-status completion in exactly one place.
 *
 * Backoff sleeps wall-clock time only under a real executor; under
 * virtual time a retry is instantaneous (a worker event cannot
 * advance the discrete-event clock mid-callback) but still counted.
 * FaultKind::DropCompletion is rethrown untouched — losing the
 * completion is the fault being simulated, so the pool must see it.
 */
class ResilientInference : public BatchInference
{
  public:
    ResilientInference(sim::Executor &executor, BatchInference &primary,
                       BatchInference *fallback, RetryOptions retry,
                       BreakerOptions breaker, ServingStats &stats);

    std::string name() const override;

    std::vector<loadgen::QuerySampleResponse> runBatch(
        const std::vector<loadgen::QuerySample> &samples) override;

    sim::Tick serviceTimeNs(
        const std::vector<loadgen::QuerySample> &samples,
        sim::Tick now) override;

    /**
     * Force/clear degraded mode (the shed-rate monitor's lever).
     * No-op without a fallback engine.
     */
    void
    setDegraded(bool degraded)
    {
        degraded_.store(degraded, std::memory_order_relaxed);
    }

    bool
    degraded() const
    {
        return degraded_.load(std::memory_order_relaxed);
    }

    CircuitBreaker *breaker() { return breaker_ ? &*breaker_ : nullptr; }

  private:
    std::vector<loadgen::QuerySampleResponse> runFallback(
        const std::vector<loadgen::QuerySample> &samples);
    void backoff(int attempt);

    sim::Executor &executor_;
    BatchInference &primary_;
    BatchInference *fallback_;
    const RetryOptions retry_;
    ServingStats &stats_;
    std::optional<CircuitBreaker> breaker_;
    std::atomic<bool> degraded_{false};
};

} // namespace serving
} // namespace mlperf

#endif // MLPERF_SERVING_RESILIENCE_H
