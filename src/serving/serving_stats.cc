#include "serving/serving_stats.h"

#include "serving/lock_probe.h"

namespace mlperf {
namespace serving {

namespace {

constexpr auto kRelaxed = std::memory_order_relaxed;

} // namespace

void
ServingStats::recordIssued(uint64_t samples, uint64_t depth)
{
    issue_.samplesIssued.fetch_add(samples, kRelaxed);
    LockProbe::noteAcquire();
    std::lock_guard<std::mutex> lock(issueHistMutex_);
    queueDepth_.record(depth);
}

void
ServingStats::recordBatchFormed(const Batch &batch)
{
    issue_.batchesFormed.fetch_add(1, kRelaxed);
    switch (batch.reason) {
      case FlushReason::Size:
        issue_.sizeFlushes.fetch_add(1, kRelaxed);
        break;
      case FlushReason::Timeout:
        issue_.timeoutFlushes.fetch_add(1, kRelaxed);
        break;
      case FlushReason::Drain:
        issue_.drainFlushes.fetch_add(1, kRelaxed);
        break;
    }
    LockProbe::noteAcquire();
    std::lock_guard<std::mutex> lock(issueHistMutex_);
    batchSize_.record(batch.items.size());
}

void
ServingStats::recordDispatch(const Batch &batch, sim::Tick now)
{
    LockProbe::noteAcquire();
    std::lock_guard<std::mutex> lock(doneHistMutex_);
    for (const BatchItem &item : batch.items) {
        timeInQueueNs_.record(
            now >= item.enqueuedAt ? now - item.enqueuedAt : 0);
    }
}

void
ServingStats::recordBatchDone(uint64_t samples, sim::Tick busyNs)
{
    done_.batchesCompleted.fetch_add(1, kRelaxed);
    done_.samplesCompleted.fetch_add(samples, kRelaxed);
    done_.workerBusyNs.fetch_add(busyNs, kRelaxed);
    LockProbe::noteAcquire();
    std::lock_guard<std::mutex> lock(doneHistMutex_);
    serviceTimeNs_.record(busyNs);
}

void
ServingStats::recordShed(uint64_t samples)
{
    issue_.batchesShed.fetch_add(1, kRelaxed);
    issue_.samplesShed.fetch_add(samples, kRelaxed);
}

void
ServingStats::recordAdmissionShed(uint64_t samples)
{
    issue_.admissionShedSamples.fetch_add(samples, kRelaxed);
}

void
ServingStats::recordExpired(uint64_t samples)
{
    done_.expiredSamples.fetch_add(samples, kRelaxed);
}

void
ServingStats::recordTimeout(uint64_t samples)
{
    done_.timeoutSamples.fetch_add(samples, kRelaxed);
}

void
ServingStats::recordDroppedCompletion(uint64_t samples)
{
    done_.droppedCompletions.fetch_add(samples, kRelaxed);
}

void
ServingStats::recordBatchFailed(uint64_t samples, sim::Tick busyNs)
{
    done_.batchesFailed.fetch_add(1, kRelaxed);
    done_.failedSamples.fetch_add(samples, kRelaxed);
    done_.workerBusyNs.fetch_add(busyNs, kRelaxed);
    LockProbe::noteAcquire();
    std::lock_guard<std::mutex> lock(doneHistMutex_);
    serviceTimeNs_.record(busyNs);
}

void
ServingStats::recordRetry()
{
    resilience_.retries.fetch_add(1, kRelaxed);
}

void
ServingStats::recordRetrySuccess()
{
    resilience_.retrySuccesses.fetch_add(1, kRelaxed);
}

void
ServingStats::recordRetriesExhausted()
{
    resilience_.retriesExhausted.fetch_add(1, kRelaxed);
}

void
ServingStats::recordBreakerTransition(BreakerState state)
{
    resilience_.breakerState.store(state, kRelaxed);
    switch (state) {
      case BreakerState::Open:
        resilience_.breakerOpens.fetch_add(1, kRelaxed);
        break;
      case BreakerState::HalfOpen:
        resilience_.breakerHalfOpens.fetch_add(1, kRelaxed);
        break;
      case BreakerState::Closed:
        resilience_.breakerCloses.fetch_add(1, kRelaxed);
        break;
    }
}

void
ServingStats::recordBreakerFastFail(uint64_t samples)
{
    resilience_.breakerFastFailSamples.fetch_add(samples, kRelaxed);
}

void
ServingStats::recordDegraded(uint64_t samples)
{
    tracked_.degradedSamples.fetch_add(samples, kRelaxed);
}

void
ServingStats::recordDegradeMode(bool entered)
{
    if (entered)
        tracked_.degradeEntries.fetch_add(1, kRelaxed);
    else
        tracked_.degradeExits.fetch_add(1, kRelaxed);
}

void
ServingStats::recordTrackedCompletion(loadgen::ResponseStatus status,
                                      uint64_t samples)
{
    switch (status) {
      case loadgen::ResponseStatus::Ok:
        tracked_.completedOk.fetch_add(samples, kRelaxed);
        break;
      case loadgen::ResponseStatus::Degraded:
        tracked_.completedDegraded.fetch_add(samples, kRelaxed);
        break;
      case loadgen::ResponseStatus::Shed:
        tracked_.completedShed.fetch_add(samples, kRelaxed);
        break;
      case loadgen::ResponseStatus::Timeout:
        tracked_.completedTimeout.fetch_add(samples, kRelaxed);
        break;
      case loadgen::ResponseStatus::Failed:
        tracked_.completedFailed.fetch_add(samples, kRelaxed);
        break;
    }
}

void
ServingStats::setWorkers(int64_t workers)
{
    workers_.store(workers, kRelaxed);
}

void
ServingStats::recordSloOutcome(uint64_t samples, uint64_t violations)
{
    scale_.sloSamples.fetch_add(samples, kRelaxed);
    if (violations != 0)
        scale_.sloViolations.fetch_add(violations, kRelaxed);
}

void
ServingStats::recordScaleEvent(bool up)
{
    if (up)
        scale_.scaleUps.fetch_add(1, kRelaxed);
    else
        scale_.scaleDowns.fetch_add(1, kRelaxed);
}

void
ServingStats::setActiveShards(int64_t shards)
{
    scale_.activeShards.store(shards, kRelaxed);
}

StatsSnapshot
ServingStats::snapshot() const
{
    StatsSnapshot s;

    s.samplesIssued = issue_.samplesIssued.load(kRelaxed);
    s.batchesFormed = issue_.batchesFormed.load(kRelaxed);
    s.sizeFlushes = issue_.sizeFlushes.load(kRelaxed);
    s.timeoutFlushes = issue_.timeoutFlushes.load(kRelaxed);
    s.drainFlushes = issue_.drainFlushes.load(kRelaxed);
    s.admissionShedSamples = issue_.admissionShedSamples.load(kRelaxed);
    s.samplesShed = issue_.samplesShed.load(kRelaxed);
    s.batchesShed = issue_.batchesShed.load(kRelaxed);

    s.samplesCompleted = done_.samplesCompleted.load(kRelaxed);
    s.batchesCompleted = done_.batchesCompleted.load(kRelaxed);
    s.workerBusyNs = done_.workerBusyNs.load(kRelaxed);
    s.expiredSamples = done_.expiredSamples.load(kRelaxed);
    s.timeoutSamples = done_.timeoutSamples.load(kRelaxed);
    s.droppedCompletions = done_.droppedCompletions.load(kRelaxed);
    s.failedSamples = done_.failedSamples.load(kRelaxed);
    s.batchesFailed = done_.batchesFailed.load(kRelaxed);

    s.retries = resilience_.retries.load(kRelaxed);
    s.retrySuccesses = resilience_.retrySuccesses.load(kRelaxed);
    s.retriesExhausted = resilience_.retriesExhausted.load(kRelaxed);
    s.breakerOpens = resilience_.breakerOpens.load(kRelaxed);
    s.breakerHalfOpens = resilience_.breakerHalfOpens.load(kRelaxed);
    s.breakerCloses = resilience_.breakerCloses.load(kRelaxed);
    s.breakerFastFailSamples =
        resilience_.breakerFastFailSamples.load(kRelaxed);
    s.breakerState = resilience_.breakerState.load(kRelaxed);

    s.completedOk = tracked_.completedOk.load(kRelaxed);
    s.completedDegraded = tracked_.completedDegraded.load(kRelaxed);
    s.completedShed = tracked_.completedShed.load(kRelaxed);
    s.completedTimeout = tracked_.completedTimeout.load(kRelaxed);
    s.completedFailed = tracked_.completedFailed.load(kRelaxed);
    s.degradedSamples = tracked_.degradedSamples.load(kRelaxed);
    s.degradeEntries = tracked_.degradeEntries.load(kRelaxed);
    s.degradeExits = tracked_.degradeExits.load(kRelaxed);

    s.workers = workers_.load(kRelaxed);

    s.sloSamples = scale_.sloSamples.load(kRelaxed);
    s.sloViolations = scale_.sloViolations.load(kRelaxed);
    s.scaleUps = scale_.scaleUps.load(kRelaxed);
    s.scaleDowns = scale_.scaleDowns.load(kRelaxed);
    s.activeShards = scale_.activeShards.load(kRelaxed);

    {
        LockProbe::noteAcquire();
        std::lock_guard<std::mutex> lock(issueHistMutex_);
        s.queueDepth = queueDepth_;
        s.batchSize = batchSize_;
    }
    {
        LockProbe::noteAcquire();
        std::lock_guard<std::mutex> lock(doneHistMutex_);
        s.timeInQueueNs = timeInQueueNs_;
        s.serviceTimeNs = serviceTimeNs_;
    }
    return s;
}

} // namespace serving
} // namespace mlperf
