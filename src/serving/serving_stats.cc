#include "serving/serving_stats.h"

namespace mlperf {
namespace serving {

void
ServingStats::recordIssued(uint64_t samples, uint64_t depth)
{
    std::lock_guard<std::mutex> lock(mutex_);
    counters_.samplesIssued += samples;
    counters_.queueDepth.record(depth);
}

void
ServingStats::recordBatchFormed(const Batch &batch)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.batchesFormed;
    counters_.batchSize.record(batch.items.size());
    switch (batch.reason) {
      case FlushReason::Size: ++counters_.sizeFlushes; break;
      case FlushReason::Timeout: ++counters_.timeoutFlushes; break;
      case FlushReason::Drain: ++counters_.drainFlushes; break;
    }
}

void
ServingStats::recordDispatch(const Batch &batch, sim::Tick now)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const BatchItem &item : batch.items) {
        counters_.timeInQueueNs.record(
            now >= item.enqueuedAt ? now - item.enqueuedAt : 0);
    }
}

void
ServingStats::recordBatchDone(uint64_t samples, sim::Tick busyNs)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.batchesCompleted;
    counters_.samplesCompleted += samples;
    counters_.workerBusyNs += busyNs;
    counters_.serviceTimeNs.record(busyNs);
}

void
ServingStats::recordShed(uint64_t samples)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.batchesShed;
    counters_.samplesShed += samples;
}

void
ServingStats::recordAdmissionShed(uint64_t samples)
{
    std::lock_guard<std::mutex> lock(mutex_);
    counters_.admissionShedSamples += samples;
}

void
ServingStats::recordExpired(uint64_t samples)
{
    std::lock_guard<std::mutex> lock(mutex_);
    counters_.expiredSamples += samples;
}

void
ServingStats::recordTimeout(uint64_t samples)
{
    std::lock_guard<std::mutex> lock(mutex_);
    counters_.timeoutSamples += samples;
}

void
ServingStats::recordDroppedCompletion(uint64_t samples)
{
    std::lock_guard<std::mutex> lock(mutex_);
    counters_.droppedCompletions += samples;
}

void
ServingStats::recordBatchFailed(uint64_t samples, sim::Tick busyNs)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.batchesFailed;
    counters_.failedSamples += samples;
    counters_.workerBusyNs += busyNs;
    counters_.serviceTimeNs.record(busyNs);
}

void
ServingStats::recordRetry()
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.retries;
}

void
ServingStats::recordRetrySuccess()
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.retrySuccesses;
}

void
ServingStats::recordRetriesExhausted()
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.retriesExhausted;
}

void
ServingStats::recordBreakerTransition(BreakerState state)
{
    std::lock_guard<std::mutex> lock(mutex_);
    counters_.breakerState = state;
    switch (state) {
      case BreakerState::Open:     ++counters_.breakerOpens; break;
      case BreakerState::HalfOpen: ++counters_.breakerHalfOpens; break;
      case BreakerState::Closed:   ++counters_.breakerCloses; break;
    }
}

void
ServingStats::recordBreakerFastFail(uint64_t samples)
{
    std::lock_guard<std::mutex> lock(mutex_);
    counters_.breakerFastFailSamples += samples;
}

void
ServingStats::recordDegraded(uint64_t samples)
{
    std::lock_guard<std::mutex> lock(mutex_);
    counters_.degradedSamples += samples;
}

void
ServingStats::recordDegradeMode(bool entered)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (entered)
        ++counters_.degradeEntries;
    else
        ++counters_.degradeExits;
}

void
ServingStats::recordTrackedCompletion(loadgen::ResponseStatus status,
                                      uint64_t samples)
{
    std::lock_guard<std::mutex> lock(mutex_);
    switch (status) {
      case loadgen::ResponseStatus::Ok:
        counters_.completedOk += samples;
        break;
      case loadgen::ResponseStatus::Degraded:
        counters_.completedDegraded += samples;
        break;
      case loadgen::ResponseStatus::Shed:
        counters_.completedShed += samples;
        break;
      case loadgen::ResponseStatus::Timeout:
        counters_.completedTimeout += samples;
        break;
      case loadgen::ResponseStatus::Failed:
        counters_.completedFailed += samples;
        break;
    }
}

void
ServingStats::setWorkers(int64_t workers)
{
    std::lock_guard<std::mutex> lock(mutex_);
    counters_.workers = workers;
}

StatsSnapshot
ServingStats::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_;
}

} // namespace serving
} // namespace mlperf
