#include "serving/serving_stats.h"

namespace mlperf {
namespace serving {

void
ServingStats::recordIssued(uint64_t samples, uint64_t depth)
{
    std::lock_guard<std::mutex> lock(mutex_);
    counters_.samplesIssued += samples;
    counters_.queueDepth.record(depth);
}

void
ServingStats::recordBatchFormed(const Batch &batch)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.batchesFormed;
    counters_.batchSize.record(batch.items.size());
    switch (batch.reason) {
      case FlushReason::Size: ++counters_.sizeFlushes; break;
      case FlushReason::Timeout: ++counters_.timeoutFlushes; break;
      case FlushReason::Drain: ++counters_.drainFlushes; break;
    }
}

void
ServingStats::recordDispatch(const Batch &batch, sim::Tick now)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const BatchItem &item : batch.items) {
        counters_.timeInQueueNs.record(
            now >= item.enqueuedAt ? now - item.enqueuedAt : 0);
    }
}

void
ServingStats::recordBatchDone(uint64_t samples, sim::Tick busyNs)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.batchesCompleted;
    counters_.samplesCompleted += samples;
    counters_.workerBusyNs += busyNs;
    counters_.serviceTimeNs.record(busyNs);
}

void
ServingStats::recordShed(uint64_t samples)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.batchesShed;
    counters_.samplesShed += samples;
}

void
ServingStats::setWorkers(int64_t workers)
{
    std::lock_guard<std::mutex> lock(mutex_);
    counters_.workers = workers;
}

StatsSnapshot
ServingStats::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_;
}

} // namespace serving
} // namespace mlperf
