#include "serving/completion_tracker.h"

#include "serving/batch.h"

namespace mlperf {
namespace serving {

namespace {

/**
 * Deliver @p responses grouped by owning delegate, preserving order
 * within each group. Called outside the tracker lock.
 */
void
deliverGrouped(
    const std::vector<loadgen::QuerySampleResponse> &responses,
    const std::vector<loadgen::ResponseDelegate *> &owners)
{
    std::vector<loadgen::QuerySampleResponse> group;
    loadgen::ResponseDelegate *delegate = nullptr;
    for (size_t i = 0; i < responses.size(); ++i) {
        if (delegate && owners[i] != delegate) {
            delegate->querySamplesComplete(group);
            group.clear();
        }
        delegate = owners[i];
        group.push_back(responses[i]);
    }
    if (delegate && !group.empty())
        delegate->querySamplesComplete(group);
}

} // namespace

void
CompletionTracker::track(
    const std::vector<loadgen::QuerySample> &samples,
    loadgen::ResponseDelegate &delegate, sim::Tick deadline)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto &sample : samples)
            pending_[sample.id] = &delegate;
    }
    if (deadline == 0)
        return;
    std::vector<loadgen::ResponseId> ids;
    ids.reserve(samples.size());
    for (const auto &sample : samples)
        ids.push_back(sample.id);
    // weak_ptr: the reaper may fire after ServingSut (and with it this
    // tracker) is gone; locking fails then and the event is a no-op.
    std::weak_ptr<CompletionTracker> self = weak_from_this();
    executor_.schedule(deadline, [self, ids = std::move(ids)] {
        if (auto tracker = self.lock())
            tracker->reap(ids);
    });
}

void
CompletionTracker::querySamplesComplete(
    const std::vector<loadgen::QuerySampleResponse> &responses)
{
    std::vector<loadgen::QuerySampleResponse> fresh;
    std::vector<loadgen::ResponseDelegate *> owners;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto &response : responses) {
            auto it = pending_.find(response.id);
            if (it == pending_.end())
                continue; // Already completed (reaped or duplicate).
            fresh.push_back(response);
            owners.push_back(it->second);
            pending_.erase(it);
        }
    }
    if (fresh.empty())
        return;
    for (const auto &response : fresh)
        stats_.recordTrackedCompletion(response.status, 1);
    if (admission_)
        admission_->release(fresh.size());
    deliverGrouped(fresh, owners);
}

void
CompletionTracker::reap(const std::vector<loadgen::ResponseId> &ids)
{
    std::vector<loadgen::QuerySampleResponse> expired;
    std::vector<loadgen::ResponseDelegate *> owners;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (loadgen::ResponseId id : ids) {
            auto it = pending_.find(id);
            if (it == pending_.end())
                continue;
            expired.push_back(
                {id, "", loadgen::ResponseStatus::Timeout});
            owners.push_back(it->second);
            pending_.erase(it);
        }
    }
    if (expired.empty())
        return;
    stats_.recordTimeout(expired.size());
    stats_.recordTrackedCompletion(loadgen::ResponseStatus::Timeout,
                                   expired.size());
    if (admission_)
        admission_->release(expired.size());
    deliverGrouped(expired, owners);
}

void
CompletionTracker::drain()
{
    std::vector<loadgen::QuerySampleResponse> leftovers;
    std::vector<loadgen::ResponseDelegate *> owners;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto &[id, delegate] : pending_) {
            leftovers.push_back(
                {id, "", loadgen::ResponseStatus::Timeout});
            owners.push_back(delegate);
        }
        pending_.clear();
    }
    if (leftovers.empty())
        return;
    stats_.recordTimeout(leftovers.size());
    stats_.recordTrackedCompletion(loadgen::ResponseStatus::Timeout,
                                   leftovers.size());
    if (admission_)
        admission_->release(leftovers.size());
    deliverGrouped(leftovers, owners);
}

uint64_t
CompletionTracker::outstanding() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return pending_.size();
}

} // namespace serving
} // namespace mlperf
