#include "serving/worker_pool.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace mlperf {
namespace serving {

namespace {

std::vector<loadgen::QuerySample>
batchSamples(const Batch &batch)
{
    std::vector<loadgen::QuerySample> samples;
    samples.reserve(batch.items.size());
    for (const BatchItem &item : batch.items)
        samples.push_back(item.sample);
    return samples;
}

} // namespace

// --------------------------------------------------- ThreadWorkerPool

ThreadWorkerPool::ThreadWorkerPool(sim::Executor &executor,
                                   BatchInference &inference,
                                   ServingStats &stats, int64_t workers,
                                   size_t queue_capacity)
    : executor_(executor), inference_(inference), stats_(stats),
      queue_(queue_capacity)
{
    workers = std::max<int64_t>(1, workers);
    stats_.setWorkers(workers);
    threads_.reserve(static_cast<size_t>(workers));
    for (int64_t i = 0; i < workers; ++i)
        threads_.emplace_back([this] { workerLoop(); });
}

ThreadWorkerPool::~ThreadWorkerPool()
{
    shutdown();
}

bool
ThreadWorkerPool::submit(Batch &batch)
{
    const uint64_t samples = batch.items.size();
    if (!queue_.tryPush(batch))
        return false;
    queuedSamples_ += samples;
    return true;
}

void
ThreadWorkerPool::shutdown()
{
    if (stopped_.exchange(true))
        return;
    queue_.close();
    for (std::thread &thread : threads_) {
        if (thread.joinable())
            thread.join();
    }
}

void
ThreadWorkerPool::workerLoop()
{
    while (auto batch = queue_.pop())
        process(std::move(*batch));
}

void
ThreadWorkerPool::process(Batch &&batch)
{
    queuedSamples_ -= batch.items.size();
    const sim::Tick start = executor_.now();
    stats_.recordDispatch(batch, start);
    const auto responses = inference_.runBatch(batchSamples(batch));
    completeBatch(batch, responses);
    const sim::Tick end = executor_.now();
    stats_.recordBatchDone(batch.items.size(),
                           end >= start ? end - start : 0);
}

// ---------------------------------------------------- EventWorkerPool

EventWorkerPool::EventWorkerPool(sim::Executor &executor,
                                 BatchInference &inference,
                                 ServingStats &stats, int64_t workers,
                                 size_t queue_capacity)
    : executor_(executor), inference_(inference), stats_(stats),
      workers_(std::max<int64_t>(1, workers)),
      queueCapacity_(queue_capacity)
{
    stats_.setWorkers(workers_);
}

bool
EventWorkerPool::submit(Batch &batch)
{
    if (queueCapacity_ != 0 && queue_.size() >= queueCapacity_)
        return false;
    queuedSamples_ += batch.items.size();
    queue_.push_back(std::move(batch));
    dispatch();
    return true;
}

void
EventWorkerPool::dispatch()
{
    while (busyWorkers_ < workers_ && !queue_.empty()) {
        Batch batch = std::move(queue_.front());
        queue_.pop_front();
        queuedSamples_ -= batch.items.size();

        const sim::Tick now = executor_.now();
        stats_.recordDispatch(batch, now);
        const sim::Tick service =
            inference_.serviceTimeNs(batchSamples(batch), now);
        ++busyWorkers_;
        executor_.scheduleAfter(
            service, [this, batch = std::move(batch), service] {
                finishBatch(batch, service);
            });
    }
}

void
EventWorkerPool::finishBatch(const Batch &batch, sim::Tick service_ns)
{
    // runBatch is instantaneous in host time; virtual time already
    // advanced by the modeled service time.
    const auto responses = inference_.runBatch(batchSamples(batch));
    completeBatch(batch, responses);
    stats_.recordBatchDone(batch.items.size(), service_ns);
    --busyWorkers_;
    dispatch();
}

} // namespace serving
} // namespace mlperf
