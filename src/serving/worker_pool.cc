#include "serving/worker_pool.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace mlperf {
namespace serving {

namespace {

/**
 * Shed items whose deadline passed while queued: complete them with
 * Timeout status instead of wasting a worker slot on an answer nobody
 * will accept. Mutates @p batch to hold only live items; returns the
 * count shed. (The sharded runtime shares splitExpired but publishes
 * the expired batch through its completion ring instead.)
 */
uint64_t
shedExpired(Batch &batch, sim::Tick now, ServingStats &stats)
{
    Batch expired = splitExpired(batch, now);
    if (expired.items.empty())
        return 0;
    stats.recordExpired(expired.items.size());
    completeBatch(expired, errorResponses(
                               expired, loadgen::ResponseStatus::Timeout));
    return expired.items.size();
}

/**
 * Convert a batch-level fault into completions + accounting. A
 * DropCompletion fault with a tracker in place is the one case where
 * deliberately not answering is correct — the deadline reaper (or the
 * shutdown drain) completes the samples, which is the failure being
 * simulated. Everything else completes with Failed status so the
 * LoadGen never hangs on a faulty SUT.
 */
void
handleBatchFault(FaultKind kind, const Batch &batch, sim::Tick busy_ns,
                 ServingStats &stats, bool tracker_active)
{
    if (kind == FaultKind::DropCompletion && tracker_active) {
        stats.recordDroppedCompletion(batch.items.size());
        return;
    }
    stats.recordBatchFailed(batch.items.size(), busy_ns);
    completeBatch(batch, errorResponses(
                             batch, loadgen::ResponseStatus::Failed));
}

} // namespace

// --------------------------------------------------- ThreadWorkerPool

ThreadWorkerPool::ThreadWorkerPool(sim::Executor &executor,
                                   BatchInference &inference,
                                   ServingStats &stats, int64_t workers,
                                   size_t queue_capacity,
                                   bool tracker_active)
    : executor_(executor), inference_(inference), stats_(stats),
      trackerActive_(tracker_active), queue_(queue_capacity)
{
    workers = std::max<int64_t>(1, workers);
    stats_.setWorkers(workers);
    threads_.reserve(static_cast<size_t>(workers));
    for (int64_t i = 0; i < workers; ++i)
        threads_.emplace_back([this] { workerLoop(); });
}

ThreadWorkerPool::~ThreadWorkerPool()
{
    shutdown();
}

bool
ThreadWorkerPool::submit(Batch &batch)
{
    const uint64_t samples = batch.items.size();
    if (!queue_.tryPush(batch))
        return false;
    queuedSamples_.fetch_add(samples, std::memory_order_relaxed);
    return true;
}

void
ThreadWorkerPool::shutdown()
{
    if (stopped_.exchange(true))
        return;
    queue_.close();
    for (std::thread &thread : threads_) {
        if (thread.joinable())
            thread.join();
    }
}

void
ThreadWorkerPool::workerLoop()
{
    while (auto batch = queue_.pop())
        process(std::move(*batch));
}

void
ThreadWorkerPool::process(Batch &&batch)
{
    queuedSamples_.fetch_sub(batch.items.size(),
                             std::memory_order_relaxed);
    const sim::Tick start = executor_.now();
    shedExpired(batch, start, stats_);
    if (batch.items.empty())
        return;
    stats_.recordDispatch(batch, start);
    try {
        const auto responses =
            inference_.runBatch(batchSamples(batch), batchMeta(batch));
        completeBatch(batch, responses);
        const sim::Tick end = executor_.now();
        stats_.recordBatchDone(batch.items.size(),
                               end >= start ? end - start : 0);
    } catch (const InferenceFault &fault) {
        const sim::Tick end = executor_.now();
        handleBatchFault(fault.kind(), batch,
                         end >= start ? end - start : 0, stats_,
                         trackerActive_);
    } catch (const std::exception &) {
        const sim::Tick end = executor_.now();
        handleBatchFault(FaultKind::Permanent, batch,
                         end >= start ? end - start : 0, stats_,
                         trackerActive_);
    }
}

// ---------------------------------------------------- EventWorkerPool

EventWorkerPool::EventWorkerPool(sim::Executor &executor,
                                 BatchInference &inference,
                                 ServingStats &stats, int64_t workers,
                                 size_t queue_capacity,
                                 bool tracker_active)
    : executor_(executor), inference_(inference), stats_(stats),
      trackerActive_(tracker_active),
      workers_(std::max<int64_t>(1, workers)),
      queueCapacity_(queue_capacity)
{
    stats_.setWorkers(workers_);
}

bool
EventWorkerPool::submit(Batch &batch)
{
    if (queueCapacity_ != 0 && queue_.size() >= queueCapacity_)
        return false;
    queuedSamples_ += batch.items.size();
    queue_.push_back(std::move(batch));
    dispatch();
    return true;
}

void
EventWorkerPool::dispatch()
{
    while (busyWorkers_ < workers_ && !queue_.empty()) {
        Batch batch = std::move(queue_.front());
        queue_.pop_front();
        queuedSamples_ -= batch.items.size();

        const sim::Tick now = executor_.now();
        // Shed before serviceTimeNs so the inference functor (and any
        // chaos plan keyed off the batch) only ever sees live items.
        shedExpired(batch, now, stats_);
        if (batch.items.empty())
            continue;
        stats_.recordDispatch(batch, now);
        const sim::Tick service = inference_.serviceTimeNs(
            batchSamples(batch), now, batchMeta(batch));
        ++busyWorkers_;
        executor_.scheduleAfter(
            service, [this, batch = std::move(batch), service] {
                finishBatch(batch, service);
            });
    }
}

void
EventWorkerPool::finishBatch(const Batch &batch, sim::Tick service_ns)
{
    // runBatch is instantaneous in host time; virtual time already
    // advanced by the modeled service time.
    try {
        const auto responses =
            inference_.runBatch(batchSamples(batch), batchMeta(batch));
        completeBatch(batch, responses);
        stats_.recordBatchDone(batch.items.size(), service_ns);
    } catch (const InferenceFault &fault) {
        handleBatchFault(fault.kind(), batch, service_ns, stats_,
                         trackerActive_);
    } catch (const std::exception &) {
        handleBatchFault(FaultKind::Permanent, batch, service_ns,
                         stats_, trackerActive_);
    }
    --busyWorkers_;
    dispatch();
}

} // namespace serving
} // namespace mlperf
