/**
 * @file
 * Bounded lock-free multi-producer/single-consumer ring.
 *
 * The publication channel of the sharded serving runtime: workers
 * push completion records (lock-free, a CAS on the enqueue cursor
 * plus a release store on the cell sequence), and the single drainer
 * thread pops them with plain loads/stores. The upstream LoadGen
 * names "efficient multi-thread friendly logging" as a design goal;
 * this ring is how the runtime keeps completion/stats publication off
 * every worker's critical path at saturation.
 *
 * Implementation: Dmitry Vyukov's bounded MPMC queue, specialized in
 * usage (one consumer) but not in algorithm — each cell carries a
 * sequence number that encodes whether it is free, full, or being
 * written, so producers never wait on the consumer and vice versa.
 *
 * Memory-order contract (documented in DESIGN.md "Sharded serving &
 * lock-free completion"):
 *  - a producer CASes the enqueue cursor (relaxed; the cursor only
 *    reserves a cell), moves the value in, then publishes with a
 *    release store of the cell sequence;
 *  - the consumer observes the value through an acquire load of the
 *    same sequence, so everything the producer wrote to the record
 *    happens-before the consumer's read;
 *  - a full ring fails tryPush rather than blocking or overwriting —
 *    callers fall back to a direct (locked) completion and count it.
 */

#ifndef MLPERF_SERVING_MPSC_RING_H
#define MLPERF_SERVING_MPSC_RING_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

namespace mlperf {
namespace serving {

template <typename T>
class MpscRing
{
  public:
    /** @param capacity slot count; rounded up to a power of two. */
    explicit MpscRing(size_t capacity)
    {
        size_t cap = 2;
        while (cap < capacity)
            cap <<= 1;
        mask_ = cap - 1;
        cells_ = std::make_unique<Cell[]>(cap);
        for (size_t i = 0; i < cap; ++i)
            cells_[i].seq.store(i, std::memory_order_relaxed);
    }

    MpscRing(const MpscRing &) = delete;
    MpscRing &operator=(const MpscRing &) = delete;

    /**
     * Publish @p value (moved from on success). Lock-free and safe
     * from any number of producer threads. Returns false — leaving
     * @p value intact — when the ring is full.
     */
    bool
    tryPush(T &value)
    {
        uint64_t pos = head_.load(std::memory_order_relaxed);
        for (;;) {
            Cell &cell = cells_[pos & mask_];
            const uint64_t seq =
                cell.seq.load(std::memory_order_acquire);
            const int64_t dif = static_cast<int64_t>(seq) -
                                static_cast<int64_t>(pos);
            if (dif == 0) {
                if (head_.compare_exchange_weak(
                        pos, pos + 1, std::memory_order_relaxed)) {
                    cell.value = std::move(value);
                    cell.seq.store(pos + 1,
                                   std::memory_order_release);
                    return true;
                }
                // CAS failed: pos was reloaded; retry with it.
            } else if (dif < 0) {
                return false;  // full: the consumer is behind
            } else {
                pos = head_.load(std::memory_order_relaxed);
            }
        }
    }

    /**
     * Consume the oldest record into @p out. Single consumer only.
     * Returns false when the ring is empty.
     */
    bool
    tryPop(T &out)
    {
        const uint64_t pos = tail_.load(std::memory_order_relaxed);
        Cell &cell = cells_[pos & mask_];
        const uint64_t seq = cell.seq.load(std::memory_order_acquire);
        const int64_t dif = static_cast<int64_t>(seq) -
                            static_cast<int64_t>(pos + 1);
        if (dif < 0)
            return false;  // empty (or the producer mid-write)
        out = std::move(cell.value);
        // Mark the cell free for the producer one lap ahead.
        cell.seq.store(pos + mask_ + 1, std::memory_order_release);
        tail_.store(pos + 1, std::memory_order_relaxed);
        return true;
    }

    /** Racy size estimate; exact only when producers are quiescent. */
    size_t
    approxSize() const
    {
        const uint64_t head = head_.load(std::memory_order_acquire);
        const uint64_t tail = tail_.load(std::memory_order_acquire);
        return head >= tail ? static_cast<size_t>(head - tail) : 0;
    }

    bool empty() const { return approxSize() == 0; }

    size_t capacity() const { return mask_ + 1; }

  private:
    struct Cell
    {
        std::atomic<uint64_t> seq{0};
        T value{};
    };

    std::unique_ptr<Cell[]> cells_;
    size_t mask_ = 0;
    /** Producer cursor on its own line: producers CAS it constantly. */
    alignas(64) std::atomic<uint64_t> head_{0};
    /** Consumer cursor likewise, so pops never bounce the head line. */
    alignas(64) std::atomic<uint64_t> tail_{0};
};

} // namespace serving
} // namespace mlperf

#endif // MLPERF_SERVING_MPSC_RING_H
