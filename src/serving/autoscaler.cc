#include "serving/autoscaler.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"

namespace mlperf {
namespace serving {

namespace {

AutoscaleOptions
sanitized(AutoscaleOptions options)
{
    options.minShards = std::max<int64_t>(1, options.minShards);
    options.maxShards =
        std::max<int64_t>(options.minShards, options.maxShards);
    options.ewmaAlpha =
        std::min(1.0, std::max(0.01, options.ewmaAlpha));
    options.growThreshold = std::max(0.0, options.growThreshold);
    options.shrinkThreshold = std::min(
        options.growThreshold, std::max(0.0, options.shrinkThreshold));
    options.shrinkHoldIntervals =
        std::max(1, options.shrinkHoldIntervals);
    return options;
}

} // namespace

ShardAutoscaler::ShardAutoscaler(ShardedWorkerPool &pool,
                                 ServingStats &stats,
                                 AutoscaleOptions options)
    : pool_(pool), stats_(stats), options_(sanitized(options)),
      error_(options_.ewmaAlpha)
{
    if (options_.intervalNs != 0)
        controller_ = std::thread([this] { controllerLoop(); });
}

ShardAutoscaler::~ShardAutoscaler()
{
    stop();
}

void
ShardAutoscaler::stop()
{
    {
        std::lock_guard<std::mutex> lock(cvMutex_);
        if (stopRequested_)
            return;
        stopRequested_ = true;
    }
    cv_.notify_one();
    if (controller_.joinable())
        controller_.join();
}

void
ShardAutoscaler::step(const StatsSnapshot &snapshot)
{
    std::lock_guard<std::mutex> lock(mutex_);

    // Interval deltas: the snapshot counters are monotonic, so the
    // difference against the previous step is this interval's traffic.
    const uint64_t sheds = snapshot.admissionShedSamples +
                           snapshot.samplesShed +
                           snapshot.expiredSamples;
    const uint64_t judged = snapshot.sloSamples - lastSloSamples_;
    const uint64_t violated =
        snapshot.sloViolations - lastSloViolations_;
    const uint64_t shed = sheds - lastSheds_;
    lastSloSamples_ = snapshot.sloSamples;
    lastSloViolations_ = snapshot.sloViolations;
    lastSheds_ = sheds;

    // Demand the interval asked the runtime to serve. A shed sample
    // never reaches the SLO judge, so it counts as both demand and
    // error: shedding your way out of violations must not look like
    // health.
    const uint64_t demand = judged + shed;
    const double error =
        demand == 0 ? 0.0
                    : static_cast<double>(violated + shed) /
                          static_cast<double>(demand);
    error_.observe(error);

    const auto active =
        static_cast<int64_t>(pool_.activeShardCount());
    if (error_.value() >= options_.growThreshold &&
        active < options_.maxShards) {
        quietIntervals_ = 0;
        if (pool_.growOneShard()) {
            ++ups_;
            MLPERF_LOG(Info)
                << "autoscaler: error EWMA " << error_.value()
                << " >= " << options_.growThreshold << ", grew to "
                << pool_.activeShardCount() << " shard(s)";
        }
        return;
    }
    if (error_.value() <= options_.shrinkThreshold) {
        if (++quietIntervals_ >= options_.shrinkHoldIntervals &&
            active > options_.minShards) {
            quietIntervals_ = 0;
            if (pool_.shrinkOneShard()) {
                ++downs_;
                MLPERF_LOG(Info)
                    << "autoscaler: error EWMA " << error_.value()
                    << " quiet for " << options_.shrinkHoldIntervals
                    << " interval(s), shrank to "
                    << pool_.activeShardCount() << " shard(s)";
            }
        }
        return;
    }
    // In the dead band between the thresholds: hold steady, and make
    // the shrink clock start over.
    quietIntervals_ = 0;
}

double
ShardAutoscaler::errorEwma() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return error_.value();
}

uint64_t
ShardAutoscaler::scaleUps() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return ups_;
}

uint64_t
ShardAutoscaler::scaleDowns() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return downs_;
}

void
ShardAutoscaler::controllerLoop()
{
    std::unique_lock<std::mutex> lock(cvMutex_);
    for (;;) {
        cv_.wait_for(lock,
                     std::chrono::nanoseconds(options_.intervalNs),
                     [this] { return stopRequested_; });
        if (stopRequested_)
            return;
        lock.unlock();
        step(stats_.snapshot());
        lock.lock();
    }
}

} // namespace serving
} // namespace mlperf
