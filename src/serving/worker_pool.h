/**
 * @file
 * Worker pools that execute formed batches concurrently.
 *
 * Two implementations behind one interface:
 *
 *  - ThreadWorkerPool: N OS threads pull batches from a bounded MPMC
 *    queue and run real inference (RedisAI-style background
 *    workers). Used with RealExecutor, where compute takes wall time.
 *  - EventWorkerPool: N logical workers advance virtual time by the
 *    inference functor's modeled service time. Used with
 *    VirtualExecutor so full-scale server runs stay deterministic
 *    and fast.
 *
 * Both report backpressure by failing submit(), leaving the shed
 * policy to the caller (ServingSut fast-fails the batch and counts
 * it).
 */

#ifndef MLPERF_SERVING_WORKER_POOL_H
#define MLPERF_SERVING_WORKER_POOL_H

#include <atomic>
#include <cstdint>
#include <deque>
#include <thread>
#include <vector>

#include "serving/batch.h"
#include "serving/batch_inference.h"
#include "serving/bounded_queue.h"
#include "serving/serving_stats.h"
#include "sim/executor.h"

namespace mlperf {
namespace serving {

class WorkerPool
{
  public:
    virtual ~WorkerPool() = default;

    /**
     * Admit a batch. On success the batch is consumed (moved from)
     * and true is returned; on backpressure the batch is left intact
     * and false is returned.
     */
    virtual bool submit(Batch &batch) = 0;

    /** Stop accepting work, drain what is queued, release workers. */
    virtual void shutdown() = 0;

    virtual int64_t workerCount() const = 0;

    /** Samples admitted but not yet picked up by a worker. */
    virtual uint64_t queuedSamples() const = 0;
};

/** N threads around a bounded queue; inference takes real time. */
class ThreadWorkerPool : public WorkerPool
{
  public:
    /**
     * @param tracker_active true when a CompletionTracker stands
     *        between the pool and the LoadGen: a DropCompletion fault
     *        may then be swallowed (the reaper completes the samples);
     *        without a tracker it is completed as Failed so the run
     *        never hangs.
     */
    ThreadWorkerPool(sim::Executor &executor,
                     BatchInference &inference, ServingStats &stats,
                     int64_t workers, size_t queue_capacity,
                     bool tracker_active = false);
    ~ThreadWorkerPool() override;

    bool submit(Batch &batch) override;
    void shutdown() override;
    int64_t
    workerCount() const override
    {
        return static_cast<int64_t>(threads_.size());
    }
    uint64_t
    queuedSamples() const override
    {
        return queuedSamples_.load(std::memory_order_relaxed);
    }

  private:
    void workerLoop();
    void process(Batch &&batch);

    sim::Executor &executor_;
    BatchInference &inference_;
    ServingStats &stats_;
    const bool trackerActive_;
    BoundedQueue<Batch> queue_;
    /** Hot counters on their own cache lines: the submit side bumps
     *  queuedSamples_ on every batch while workers decrement it, and
     *  neither should false-share with the queue or thread bookkeeping. */
    alignas(64) std::atomic<uint64_t> queuedSamples_{0};
    alignas(64) std::atomic<bool> stopped_{false};
    std::vector<std::thread> threads_;
};

/**
 * N logical workers driven entirely by executor events; inference
 * cost comes from BatchInference::serviceTimeNs. Runs on the
 * executor thread only (both executors fire events on the thread
 * calling run()), so it needs no locking.
 */
class EventWorkerPool : public WorkerPool
{
  public:
    /** @param tracker_active see ThreadWorkerPool. */
    EventWorkerPool(sim::Executor &executor,
                    BatchInference &inference, ServingStats &stats,
                    int64_t workers, size_t queue_capacity,
                    bool tracker_active = false);

    bool submit(Batch &batch) override;
    void shutdown() override {}
    int64_t workerCount() const override { return workers_; }
    uint64_t queuedSamples() const override { return queuedSamples_; }

  private:
    void dispatch();
    void finishBatch(const Batch &batch, sim::Tick service_ns);

    sim::Executor &executor_;
    BatchInference &inference_;
    ServingStats &stats_;
    const bool trackerActive_;
    const int64_t workers_;
    const size_t queueCapacity_;  //!< batches; 0 = unbounded
    std::deque<Batch> queue_;
    uint64_t queuedSamples_ = 0;
    int64_t busyWorkers_ = 0;
};

} // namespace serving
} // namespace mlperf

#endif // MLPERF_SERVING_WORKER_POOL_H
