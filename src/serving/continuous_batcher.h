/**
 * @file
 * Continuous (in-flight) batching for autoregressive token streaming.
 *
 * A request-batched server holds a decode batch together until every
 * member finishes: short sequences sit as dead padding at the speed
 * of the longest, and arriving requests wait for the whole batch to
 * drain. Continuous batching re-forms the batch every decode round —
 * the moment a sequence emits EOS its slot is released and a queued
 * request is prefilled into it, so sustained tokens/sec tracks the
 * *mean* sequence length instead of the batch max, and TTFT stops
 * paying for strangers' long tails.
 *
 * The ContinuousBatcher is a LoadGen SystemUnderTest for the
 * TokenStream scenario. Structure:
 *
 *   issueQuery (any thread)           decode loop (one thread)
 *   ------------------------          ---------------------------
 *   per-tenant AdmissionController    pump():
 *   charge (optional)                   admit queued seqs into free
 *   lock-free MpscRing push   ----->    slots (prefill)
 *   (full ring => Shed)                 one decodeStep per occupied
 *                                       slot; first token fires
 *                                       querySampleFirstToken
 *                                       EOS => complete + release
 *                                       slot (continuous) / pad until
 *                                       the batch drains (static)
 *
 * Static mode is the honest baseline, not a strawman: finished slots
 * burn a full equal-FLOPs padStep per round (what a padded batch
 * actually costs) and admission reopens only once every slot has
 * drained. Both modes run the same per-slot batch-1 decode, so a
 * sequence's tokens are bit-identical regardless of batch composition
 * — the property that makes mid-batch join/leave safe at all.
 *
 * Fast-path contract: one pump() round acquires zero instrumented
 * serving locks (LockProbe); the delta is accumulated per round and
 * exported as fastPathLockAcquisitions. The idle condvar the decode
 * thread parks on when there is no work is outside the measured
 * region by construction.
 *
 * EOS/admission race rules (see DESIGN.md "Token streaming &
 * continuous batching"): admission runs at the head of each round, so
 * a slot freed by EOS in round R is admissible from round R+1 on; and
 * both admission and release are performed only by the decode thread,
 * so no producer can observe a half-released slot. TTFT SLO outcomes
 * (first token vs. the arrival timestamp carried through the ring)
 * feed ServingStats::recordSloOutcome, the same violation-rate signal
 * the shard autoscaler consumes.
 */

#ifndef MLPERF_SERVING_CONTINUOUS_BATCHER_H
#define MLPERF_SERVING_CONTINUOUS_BATCHER_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "loadgen/sut.h"
#include "loadgen/types.h"
#include "serving/mpsc_ring.h"
#include "serving/resilience.h"
#include "serving/serving_stats.h"
#include "sim/executor.h"

namespace mlperf {
namespace serving {

/** One decode step's outcome for a slot. */
struct StepOutcome
{
    int64_t token = 0;
    bool finished = false;
};

/**
 * What the batcher schedules: a fixed number of sequence slots, each
 * holding persistent decode state between steps. Implementations live
 * above the serving layer (src/sut/decode_adapters.h wraps the nn
 * DecoderModel); the batcher never sees model types. All calls are
 * made from the single decode thread.
 */
class SequenceDecoder
{
  public:
    virtual ~SequenceDecoder() = default;

    /** Concurrent sequence capacity (the decode batch width). */
    virtual size_t slotCount() const = 0;

    /** Prefill @p index's source into @p slot (must be free). */
    virtual void prefill(size_t slot, loadgen::QuerySampleIndex index) = 0;

    /** Advance @p slot by one output token. */
    virtual StepOutcome step(size_t slot) = 0;

    /**
     * Burn one step of equal-FLOPs padding compute against @p slot's
     * frozen state (static mode's drain tax). No state advances.
     */
    virtual void padStep(size_t slot) = 0;

    /** Serialized result for a finished slot (response data). */
    virtual std::string result(size_t slot) const = 0;

    /** Output tokens emitted by @p slot so far. */
    virtual uint64_t tokenCount(size_t slot) const = 0;

    /** Return @p slot's state to the pool; the slot becomes free. */
    virtual void release(size_t slot) = 0;
};

enum class BatchingMode
{
    Continuous,  //!< per-round admission into freed slots
    Static,      //!< pad finished slots; admit only on full drain
};

std::string batchingModeName(BatchingMode mode);

struct ContinuousBatcherOptions
{
    BatchingMode mode = BatchingMode::Continuous;
    /** Admission ring capacity (rounded up to a power of two). */
    size_t ringCapacity = 1024;
    /**
     * TTFT SLO judged per sequence (arrival to first token) and fed
     * to ServingStats::recordSloOutcome — the autoscaler's violation
     * signal. 0 disables the accounting.
     */
    sim::Tick ttftSloNs = 0;
    /**
     * Spawn the decode thread (wall-clock operation). When false the
     * owner drives pump() manually — deterministic single-threaded
     * mode for tests and direct-drive benches.
     */
    bool startThread = true;
    /** Decode-thread park time when idle (off the measured path). */
    uint64_t idleWaitUs = 50;
};

/** Relaxed-atomic counters, readable while the decode thread runs. */
struct BatcherCounters
{
    uint64_t admitted = 0;        //!< sequences accepted into the ring
    uint64_t shed = 0;            //!< rejected (ring full / budget)
    uint64_t completed = 0;       //!< sequences finished
    uint64_t tokens = 0;          //!< output tokens produced
    uint64_t padSteps = 0;        //!< equal-FLOPs padding steps burned
    uint64_t decodeRounds = 0;    //!< pump() rounds that did work
    uint64_t slotStepSum = 0;     //!< occupied slots summed over rounds
    uint64_t sloJudged = 0;       //!< sequences judged against the SLO
    uint64_t sloViolations = 0;   //!< ... of which missed TTFT
    /** Instrumented serving-lock acquisitions inside pump() rounds. */
    uint64_t fastPathLockAcquisitions = 0;
};

class ContinuousBatcher : public loadgen::SystemUnderTest
{
  public:
    /**
     * @param decoder slot engine; the batcher uses it only from the
     *        decode thread (or pump() caller).
     * @param executor timestamp source (RealExecutor for wall-clock
     *        runs, VirtualExecutor in deterministic tests). Must have
     *        a thread-safe now().
     * @param admission optional per-tenant budget; charged per
     *        sequence at issue, released at completion/shed.
     * @param stats optional sink for TTFT SLO outcomes.
     */
    ContinuousBatcher(SequenceDecoder &decoder, sim::Executor &executor,
                      ContinuousBatcherOptions options,
                      AdmissionController *admission = nullptr,
                      ServingStats *stats = nullptr);
    ~ContinuousBatcher() override;

    ContinuousBatcher(const ContinuousBatcher &) = delete;
    ContinuousBatcher &operator=(const ContinuousBatcher &) = delete;

    // ---- loadgen::SystemUnderTest
    std::string name() const override;
    void issueQuery(const std::vector<loadgen::QuerySample> &samples,
                    loadgen::ResponseDelegate &delegate) override;
    /** Blocks until the ring and every slot have drained. */
    void flushQueries() override;

    /**
     * One decode round: admit, step every occupied slot, complete and
     * (continuous) re-admit on EOS. Returns the number of decode plus
     * pad steps performed — 0 means idle. Only for manual-pump use
     * (startThread == false); the worker thread calls it internally
     * otherwise.
     */
    uint64_t pump();

    /** True when no sequence is queued or in a slot. */
    bool idle() const;

    BatcherCounters counters() const;

  private:
    struct PendingSeq
    {
        loadgen::QuerySample sample;
        loadgen::ResponseDelegate *delegate = nullptr;
        sim::Tick enqueuedAt = 0;
    };

    struct Slot
    {
        bool occupied = false;
        bool draining = false;  //!< static mode: finished, padding
        bool firstTokenSent = false;
        loadgen::QuerySample sample;
        loadgen::ResponseDelegate *delegate = nullptr;
        sim::Tick enqueuedAt = 0;
    };

    void admitInto(size_t slot, PendingSeq &seq);
    void completeSlot(size_t slot);
    void shed(const loadgen::QuerySample &sample,
              loadgen::ResponseDelegate &delegate, bool charged);
    void workerLoop();

    SequenceDecoder &decoder_;
    sim::Executor &executor_;
    ContinuousBatcherOptions options_;
    AdmissionController *admission_;
    ServingStats *stats_;

    MpscRing<PendingSeq> ring_;
    std::vector<Slot> slots_;
    size_t occupied_ = 0;   //!< slots holding a live (non-drained) seq
    size_t draining_ = 0;   //!< static mode: finished slots padding
    /** Reused completion buffer: capacity survives across sequences. */
    std::vector<loadgen::QuerySampleResponse> completionBuf_;

    std::atomic<uint64_t> admitted_{0};
    std::atomic<uint64_t> shed_{0};
    std::atomic<uint64_t> completed_{0};
    std::atomic<uint64_t> tokens_{0};
    std::atomic<uint64_t> padSteps_{0};
    std::atomic<uint64_t> decodeRounds_{0};
    std::atomic<uint64_t> slotStepSum_{0};
    std::atomic<uint64_t> sloJudged_{0};
    std::atomic<uint64_t> sloViolations_{0};
    std::atomic<uint64_t> fastPathLocks_{0};
    std::atomic<size_t> inFlight_{0};  //!< queued + slotted sequences

    std::atomic<bool> stop_{false};
    std::mutex idleMutex_;
    std::condition_variable idleCv_;
    std::thread worker_;
};

/**
 * Shard routing for persistent sequences: hashes each sample to one
 * of several ContinuousBatcher lanes. A sequence's recurrent state
 * lives in its lane's decoder from prefill to EOS, so routing must be
 * (and is) sticky by construction — a sequence is never migrated.
 */
class DecodeLaneRouter : public loadgen::SystemUnderTest
{
  public:
    explicit DecodeLaneRouter(
        std::vector<std::unique_ptr<ContinuousBatcher>> lanes);
    ~DecodeLaneRouter() override = default;

    std::string name() const override;
    void issueQuery(const std::vector<loadgen::QuerySample> &samples,
                    loadgen::ResponseDelegate &delegate) override;
    void flushQueries() override;

    size_t laneCount() const { return lanes_.size(); }
    const ContinuousBatcher &lane(size_t i) const { return *lanes_[i]; }

    /** Sum of all lanes' counters. */
    BatcherCounters counters() const;

  private:
    std::vector<std::unique_ptr<ContinuousBatcher>> lanes_;
};

} // namespace serving
} // namespace mlperf

#endif // MLPERF_SERVING_CONTINUOUS_BATCHER_H
