/**
 * @file
 * Control-loop primitives shared by the serving runtime's adaptive
 * machinery: an exponentially weighted moving average and a two-
 * threshold hysteresis latch.
 *
 * Both the graceful-degradation monitor (ServingSut::noteShedSignal)
 * and the SLO shard autoscaler make the same shape of decision: smooth
 * a noisy binary/ratio signal, then flip a mode bit with separated
 * engage/release thresholds so the controller does not flap on noise.
 * Extracted here so the two controllers share one tested
 * implementation instead of two hand-rolled copies.
 *
 * Neither class is thread-safe on its own; callers serialize access
 * (the degrade monitor under its mutex, the autoscaler on its
 * controller thread).
 */

#ifndef MLPERF_SERVING_EWMA_H
#define MLPERF_SERVING_EWMA_H

namespace mlperf {
namespace serving {

/** EWMA with per-observation weight @c alpha. */
class Ewma
{
  public:
    explicit Ewma(double alpha = 0.1, double initial = 0.0)
        : alpha_(alpha), value_(initial)
    {
    }

    /** Fold one observation in; returns the updated average. */
    double
    observe(double sample)
    {
        value_ += alpha_ * (sample - value_);
        return value_;
    }

    double value() const { return value_; }

    void reset(double value = 0.0) { value_ = value; }

  private:
    double alpha_;
    double value_;
};

/**
 * Latch that engages when the signal reaches @c engage and releases
 * only once it falls back to @c release (< engage). The gap between
 * the thresholds is the hysteresis band: a signal hovering at the
 * engage point cannot toggle the mode every observation.
 */
class HysteresisLatch
{
  public:
    HysteresisLatch(double engage = 1.0, double release = 0.5)
        : engage_(engage), release_(release)
    {
    }

    /** Feed the smoothed signal; returns the (possibly new) state. */
    bool
    update(double signal)
    {
        if (!engaged_ && signal >= engage_)
            engaged_ = true;
        else if (engaged_ && signal <= release_)
            engaged_ = false;
        return engaged_;
    }

    bool engaged() const { return engaged_; }

  private:
    double engage_;
    double release_;
    bool engaged_ = false;
};

} // namespace serving
} // namespace mlperf

#endif // MLPERF_SERVING_EWMA_H
