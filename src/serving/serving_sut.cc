#include "serving/serving_sut.h"

#include <utility>

#include "common/logging.h"

namespace mlperf {
namespace serving {

ServingSut::ServingSut(sim::Executor &executor,
                       BatchInference &inference, ServingOptions options)
    : executor_(executor), inference_(inference), options_(options)
{
    mode_ = options_.mode;
    if (mode_ == WorkerMode::Auto) {
        mode_ = executor_.virtualTime() ? WorkerMode::Events
                                        : WorkerMode::Threads;
    }
    if (mode_ == WorkerMode::Threads) {
        pool_ = std::make_unique<ThreadWorkerPool>(
            executor_, inference_, stats_, options_.workers,
            options_.queueCapacityBatches);
    } else {
        pool_ = std::make_unique<EventWorkerPool>(
            executor_, inference_, stats_, options_.workers,
            options_.queueCapacityBatches);
    }
    batcher_ = std::make_unique<DynamicBatcher>(
        executor_, options_.maxBatch, options_.batchTimeoutNs,
        [this](Batch &&batch) { onBatchFormed(std::move(batch)); });
}

ServingSut::~ServingSut()
{
    shutdown();
}

std::string
ServingSut::name() const
{
    return inference_.name() + "+serving";
}

void
ServingSut::issueQuery(const std::vector<loadgen::QuerySample> &samples,
                       loadgen::ResponseDelegate &delegate)
{
    const uint64_t depth = batcher_->pending() +
                           pool_->queuedSamples() + samples.size();
    stats_.recordIssued(samples.size(), depth);
    batcher_->enqueue(samples, delegate);
}

void
ServingSut::flushQueries()
{
    batcher_->flush();
}

void
ServingSut::shutdown()
{
    batcher_->flush();
    pool_->shutdown();
}

void
ServingSut::onBatchFormed(Batch &&batch)
{
    stats_.recordBatchFormed(batch);
    if (!pool_->submit(batch))
        shedBatch(batch);
}

void
ServingSut::shedBatch(const Batch &batch)
{
    stats_.recordShed(batch.items.size());
    MLPERF_LOG(Warn) << name() << ": worker queue full, shedding "
                     << batch.items.size() << " sample(s)";
    std::vector<loadgen::QuerySampleResponse> responses;
    responses.reserve(batch.items.size());
    for (const BatchItem &item : batch.items)
        responses.push_back({item.sample.id, ""});
    completeBatch(batch, responses);
}

} // namespace serving
} // namespace mlperf
