#include "serving/serving_sut.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace mlperf {
namespace serving {

namespace {

/** Per-observation weight of the shed-rate EWMA. */
constexpr double kShedEwmaAlpha = 0.1;

} // namespace

ServingSut::ServingSut(sim::Executor &executor,
                       BatchInference &inference, ServingOptions options)
    : executor_(executor), inference_(inference), options_(options),
      shedEwma_(kShedEwmaAlpha),
      // Engage degraded mode at the threshold, release at half of it.
      degradeLatch_(options.degradeShedRateThreshold,
                    options.degradeShedRateThreshold / 2.0)
{
    mode_ = options_.mode;
    if (mode_ == WorkerMode::Auto) {
        mode_ = executor_.virtualTime() ? WorkerMode::Events
                                        : WorkerMode::Threads;
    }

    if (options_.admission.enabled()) {
        admission_ =
            std::make_unique<AdmissionController>(options_.admission);
    }
    // The tracker is needed whenever completions must be observed:
    // deadlines (reaper) or admission (budget release).
    if (options_.queryDeadlineNs != 0 || admission_) {
        tracker_ = std::make_shared<CompletionTracker>(
            executor_, stats_, admission_.get());
    }

    BatchInference *engine = &inference_;
    if (options_.retry.enabled() || options_.breaker.enabled ||
        options_.fallback != nullptr) {
        resilient_ = std::make_unique<ResilientInference>(
            executor_, inference_, options_.fallback, options_.retry,
            options_.breaker, stats_);
        engine = resilient_.get();
    }

    const bool trackerActive = tracker_ != nullptr;
    const bool autoscaled =
        options_.autoscale.enabled && mode_ == WorkerMode::Threads;
    int64_t shards = options_.shards;
    if (mode_ != WorkerMode::Threads)
        shards = 1;  // the event pool is single-threaded already
    shards = std::max<int64_t>(
        1, std::min<int64_t>(shards,
                             std::max<int64_t>(1, options_.workers)));

    if (autoscaled) {
        // The pool is built at the ceiling; `shards` (clamped into
        // [min, max]) is only how many start active. Workers are
        // provisioned per shard so capacity genuinely scales with the
        // active count.
        const int64_t maxShards =
            std::max<int64_t>(1, options_.autoscale.maxShards);
        const int64_t minShards = std::max<int64_t>(
            1, std::min(options_.autoscale.minShards, maxShards));
        const int64_t initial = std::max(
            minShards, std::min<int64_t>(options_.shards, maxShards));
        ShardOptions sharding;
        sharding.shards = maxShards;
        sharding.initialActiveShards = initial;
        sharding.workersPerShard =
            std::max<int64_t>(1, options_.workers / maxShards);
        sharding.queueCapacityBatches =
            options_.queueCapacityBatches == 0
                ? 0
                : std::max<size_t>(
                      1, options_.queueCapacityBatches /
                             static_cast<size_t>(maxShards));
        sharding.pinThreads = options_.pinThreads;
        sharding.stealWhenIdle = options_.stealWhenIdle;
        sharding.trackerActive = trackerActive;
        sharding.sloTargetNs = options_.autoscale.sloTargetNs;
        auto sharded = std::make_unique<ShardedWorkerPool>(
            executor_, *engine, stats_, sharding);
        sharded_ = sharded.get();
        pool_ = std::move(sharded);
        shards = maxShards;
    } else if (shards > 1) {
        ShardOptions sharding;
        sharding.shards = shards;
        sharding.workersPerShard =
            std::max<int64_t>(1, options_.workers / shards);
        sharding.queueCapacityBatches =
            options_.queueCapacityBatches == 0
                ? 0
                : std::max<size_t>(
                      1, options_.queueCapacityBatches /
                             static_cast<size_t>(shards));
        sharding.pinThreads = options_.pinThreads;
        sharding.stealWhenIdle = options_.stealWhenIdle;
        sharding.trackerActive = trackerActive;
        sharding.sloTargetNs = options_.autoscale.sloTargetNs;
        auto sharded = std::make_unique<ShardedWorkerPool>(
            executor_, *engine, stats_, sharding);
        sharded_ = sharded.get();
        pool_ = std::move(sharded);
    } else if (mode_ == WorkerMode::Threads) {
        pool_ = std::make_unique<ThreadWorkerPool>(
            executor_, *engine, stats_, options_.workers,
            options_.queueCapacityBatches, trackerActive);
    } else {
        pool_ = std::make_unique<EventWorkerPool>(
            executor_, *engine, stats_, options_.workers,
            options_.queueCapacityBatches, trackerActive);
    }

    batchers_.reserve(static_cast<size_t>(shards));
    for (int64_t s = 0; s < shards; ++s) {
        const size_t shard = static_cast<size_t>(s);
        batchers_.push_back(std::make_unique<DynamicBatcher>(
            executor_, options_.maxBatch, options_.batchTimeoutNs,
            [this, shard](Batch &&batch) {
                onBatchFormed(shard, std::move(batch));
            }));
    }
    activeBatchers_.store(
        autoscaled ? sharded_->activeShardCount() : batchers_.size(),
        std::memory_order_release);

    if (autoscaled) {
        // Keep the issue-side batcher fan-out in lockstep with the
        // pool's active prefix. On shrink the victim's batcher is
        // flushed *while its queue still accepts*, so held partial
        // batches land ahead of the close; a straggler emitted later
        // (timeout race) reroutes inside submitTo. Batchers are never
        // destroyed, only un-routed, so no emission can dangle.
        sharded_->setScaleHooks(
            [this](size_t active) {
                activeBatchers_.store(active,
                                      std::memory_order_release);
                batchers_[active]->flush();
            },
            [this](size_t active) {
                activeBatchers_.store(active,
                                      std::memory_order_release);
            });
        autoscaler_ = std::make_unique<ShardAutoscaler>(
            *sharded_, stats_, options_.autoscale);
    }
}

ServingSut::~ServingSut()
{
    shutdown();
}

std::string
ServingSut::name() const
{
    return inference_.name() + "+serving";
}

void
ServingSut::noteShedSignal(uint64_t samples, bool shed)
{
    if (options_.degradeShedRateThreshold <= 0.0 || !resilient_ ||
        options_.fallback == nullptr) {
        return;
    }
    std::lock_guard<std::mutex> lock(degradeMutex_);
    const double target = shed ? 1.0 : 0.0;
    for (uint64_t i = 0; i < samples; ++i)
        shedEwma_.observe(target);
    // The latch is the hysteresis: the gap between its engage and
    // release thresholds keeps the SUT from flapping between fp32 and
    // the fallback on noise.
    const bool was = degradeLatch_.engaged();
    const bool engaged = degradeLatch_.update(shedEwma_.value());
    if (engaged && !was) {
        resilient_->setDegraded(true);
        stats_.recordDegradeMode(true);
        MLPERF_LOG(Warn) << name() << ": shed-rate EWMA "
                         << shedEwma_.value() << " crossed "
                         << options_.degradeShedRateThreshold
                         << ", entering degraded mode";
    } else if (!engaged && was) {
        resilient_->setDegraded(false);
        stats_.recordDegradeMode(false);
        MLPERF_LOG(Info) << name()
                         << ": shed-rate recovered, leaving degraded "
                            "mode";
    }
}

void
ServingSut::issueQuery(const std::vector<loadgen::QuerySample> &samples,
                       loadgen::ResponseDelegate &delegate)
{
    uint64_t depth = pool_->queuedSamples() + samples.size();
    for (const auto &batcher : batchers_)
        depth += batcher->pending();
    stats_.recordIssued(samples.size(), depth);

    if (admission_ &&
        !admission_->tryAdmit(samples.size(), depth - samples.size())) {
        stats_.recordAdmissionShed(samples.size());
        noteShedSignal(samples.size(), true);
        delegate.querySamplesComplete(
            errorResponses(samples, loadgen::ResponseStatus::Shed));
        return;
    }
    noteShedSignal(samples.size(), false);

    sim::Tick deadline = 0;
    if (options_.queryDeadlineNs != 0)
        deadline = executor_.now() + options_.queryDeadlineNs;

    loadgen::ResponseDelegate *target = &delegate;
    if (tracker_) {
        tracker_->track(samples, delegate, deadline);
        target = tracker_.get();
    }
    // Hash-partition the query across the *active* shards: each
    // sample lives its whole queued life (batcher, queue, worker)
    // inside one shard. The active count is the autoscaler's routing
    // surface; static configurations always see batchers_.size().
    const size_t shards =
        std::max<size_t>(1, activeBatchers_.load(
                                std::memory_order_acquire));
    if (shards == 1) {
        batchers_[0]->enqueue(samples, *target, deadline);
        return;
    }
    std::vector<std::vector<loadgen::QuerySample>> parts(shards);
    for (const auto &sample : samples) {
        parts[ShardedWorkerPool::shardFor(sample.id, shards)]
            .push_back(sample);
    }
    for (size_t s = 0; s < shards; ++s) {
        if (!parts[s].empty())
            batchers_[s]->enqueue(parts[s], *target, deadline);
    }
}

void
ServingSut::flushQueries()
{
    for (const auto &batcher : batchers_)
        batcher->flush();
}

void
ServingSut::shutdown()
{
    if (shutdownDone_)
        return;
    shutdownDone_ = true;
    // Stop the controller first so no grow/shrink races the teardown.
    if (autoscaler_)
        autoscaler_->stop();
    // Flush-then-drain: emit held batches, join/drain the workers so
    // no completion is in flight, then time out whatever the tracker
    // still holds (lost completions). After this no code path touches
    // the LoadGen's delegate again.
    for (const auto &batcher : batchers_)
        batcher->flush();
    pool_->shutdown();
    if (tracker_)
        tracker_->drain();
}

void
ServingSut::onBatchFormed(size_t shard, Batch &&batch)
{
    stats_.recordBatchFormed(batch);
    const bool admitted =
        sharded_ ? sharded_->submitTo(shard, batch) : pool_->submit(batch);
    if (!admitted)
        shedBatch(batch);
}

void
ServingSut::shedBatch(const Batch &batch)
{
    stats_.recordShed(batch.items.size());
    noteShedSignal(batch.items.size(), true);
    MLPERF_LOG(Warn) << name() << ": worker queue full, shedding "
                     << batch.items.size() << " sample(s)";
    completeBatch(batch, errorResponses(
                             batch, loadgen::ResponseStatus::Shed));
}

} // namespace serving
} // namespace mlperf
