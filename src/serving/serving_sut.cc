#include "serving/serving_sut.h"

#include <utility>

#include "common/logging.h"

namespace mlperf {
namespace serving {

namespace {

/** Per-observation weight of the shed-rate EWMA. */
constexpr double kShedEwmaAlpha = 0.1;

} // namespace

ServingSut::ServingSut(sim::Executor &executor,
                       BatchInference &inference, ServingOptions options)
    : executor_(executor), inference_(inference), options_(options)
{
    mode_ = options_.mode;
    if (mode_ == WorkerMode::Auto) {
        mode_ = executor_.virtualTime() ? WorkerMode::Events
                                        : WorkerMode::Threads;
    }

    if (options_.admission.enabled()) {
        admission_ =
            std::make_unique<AdmissionController>(options_.admission);
    }
    // The tracker is needed whenever completions must be observed:
    // deadlines (reaper) or admission (budget release).
    if (options_.queryDeadlineNs != 0 || admission_) {
        tracker_ = std::make_shared<CompletionTracker>(
            executor_, stats_, admission_.get());
    }

    BatchInference *engine = &inference_;
    if (options_.retry.enabled() || options_.breaker.enabled ||
        options_.fallback != nullptr) {
        resilient_ = std::make_unique<ResilientInference>(
            executor_, inference_, options_.fallback, options_.retry,
            options_.breaker, stats_);
        engine = resilient_.get();
    }

    const bool trackerActive = tracker_ != nullptr;
    if (mode_ == WorkerMode::Threads) {
        pool_ = std::make_unique<ThreadWorkerPool>(
            executor_, *engine, stats_, options_.workers,
            options_.queueCapacityBatches, trackerActive);
    } else {
        pool_ = std::make_unique<EventWorkerPool>(
            executor_, *engine, stats_, options_.workers,
            options_.queueCapacityBatches, trackerActive);
    }
    batcher_ = std::make_unique<DynamicBatcher>(
        executor_, options_.maxBatch, options_.batchTimeoutNs,
        [this](Batch &&batch) { onBatchFormed(std::move(batch)); });
}

ServingSut::~ServingSut()
{
    shutdown();
}

std::string
ServingSut::name() const
{
    return inference_.name() + "+serving";
}

void
ServingSut::noteShedSignal(uint64_t samples, bool shed)
{
    if (options_.degradeShedRateThreshold <= 0.0 || !resilient_ ||
        options_.fallback == nullptr) {
        return;
    }
    std::lock_guard<std::mutex> lock(degradeMutex_);
    const double target = shed ? 1.0 : 0.0;
    for (uint64_t i = 0; i < samples; ++i)
        shedEwma_ += kShedEwmaAlpha * (target - shedEwma_);
    // Hysteresis: engage at the threshold, release at half of it, so
    // the SUT does not flap between fp32 and the fallback on noise.
    if (!degradeEngaged_ &&
        shedEwma_ >= options_.degradeShedRateThreshold) {
        degradeEngaged_ = true;
        resilient_->setDegraded(true);
        stats_.recordDegradeMode(true);
        MLPERF_LOG(Warn) << name() << ": shed-rate EWMA " << shedEwma_
                         << " crossed "
                         << options_.degradeShedRateThreshold
                         << ", entering degraded mode";
    } else if (degradeEngaged_ &&
               shedEwma_ <= options_.degradeShedRateThreshold / 2.0) {
        degradeEngaged_ = false;
        resilient_->setDegraded(false);
        stats_.recordDegradeMode(false);
        MLPERF_LOG(Info) << name()
                         << ": shed-rate recovered, leaving degraded "
                            "mode";
    }
}

void
ServingSut::issueQuery(const std::vector<loadgen::QuerySample> &samples,
                       loadgen::ResponseDelegate &delegate)
{
    const uint64_t depth = batcher_->pending() +
                           pool_->queuedSamples() + samples.size();
    stats_.recordIssued(samples.size(), depth);

    if (admission_ &&
        !admission_->tryAdmit(samples.size(), depth - samples.size())) {
        stats_.recordAdmissionShed(samples.size());
        noteShedSignal(samples.size(), true);
        delegate.querySamplesComplete(
            errorResponses(samples, loadgen::ResponseStatus::Shed));
        return;
    }
    noteShedSignal(samples.size(), false);

    sim::Tick deadline = 0;
    if (options_.queryDeadlineNs != 0)
        deadline = executor_.now() + options_.queryDeadlineNs;

    loadgen::ResponseDelegate *target = &delegate;
    if (tracker_) {
        tracker_->track(samples, delegate, deadline);
        target = tracker_.get();
    }
    batcher_->enqueue(samples, *target, deadline);
}

void
ServingSut::flushQueries()
{
    batcher_->flush();
}

void
ServingSut::shutdown()
{
    if (shutdownDone_)
        return;
    shutdownDone_ = true;
    // Flush-then-drain: emit held batches, join/drain the workers so
    // no completion is in flight, then time out whatever the tracker
    // still holds (lost completions). After this no code path touches
    // the LoadGen's delegate again.
    batcher_->flush();
    pool_->shutdown();
    if (tracker_)
        tracker_->drain();
}

void
ServingSut::onBatchFormed(Batch &&batch)
{
    stats_.recordBatchFormed(batch);
    if (!pool_->submit(batch))
        shedBatch(batch);
}

void
ServingSut::shedBatch(const Batch &batch)
{
    stats_.recordShed(batch.items.size());
    noteShedSignal(batch.items.size(), true);
    MLPERF_LOG(Warn) << name() << ": worker queue full, shedding "
                     << batch.items.size() << " sample(s)";
    completeBatch(batch, errorResponses(
                             batch, loadgen::ResponseStatus::Shed));
}

} // namespace serving
} // namespace mlperf
