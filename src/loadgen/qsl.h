/**
 * @file
 * QuerySampleLibrary: the LoadGen's window onto the data set.
 *
 * Mirrors the real LoadGen interface: the LoadGen asks the SUT side
 * to stage samples in memory before the timed portion begins (untimed
 * preprocessing, Sec. IV-A), then issues queries that reference
 * samples by index only.
 */

#ifndef MLPERF_LOADGEN_QSL_H
#define MLPERF_LOADGEN_QSL_H

#include <cstdint>
#include <string>
#include <vector>

#include "loadgen/types.h"

namespace mlperf {
namespace loadgen {

class QuerySampleLibrary
{
  public:
    virtual ~QuerySampleLibrary() = default;

    virtual std::string name() const = 0;

    /** Total samples in the data set (accuracy mode sweeps them all). */
    virtual uint64_t totalSampleCount() const = 0;

    /**
     * How many samples fit in memory at once; performance mode draws
     * only from this many staged samples.
     */
    virtual uint64_t performanceSampleCount() const = 0;

    /** Stage the given samples in memory (untimed). */
    virtual void loadSamplesToRam(
        const std::vector<QuerySampleIndex> &indices) = 0;

    /** Release previously staged samples (untimed). */
    virtual void unloadSamplesFromRam(
        const std::vector<QuerySampleIndex> &indices) = 0;
};

} // namespace loadgen
} // namespace mlperf

#endif // MLPERF_LOADGEN_QSL_H
