/**
 * @file
 * Run results, validity determination, and the results summary.
 *
 * The LoadGen "reports statistics, summarizes the results, and
 * determines whether the run was valid" (Sec. IV-B). Validity folds
 * together the run-length floors of Sec. III-D and the scenario's
 * latency constraint of Sec. III-C.
 */

#ifndef MLPERF_LOADGEN_RESULTS_H
#define MLPERF_LOADGEN_RESULTS_H

#include <cstdint>
#include <string>
#include <vector>

#include "loadgen/test_settings.h"
#include "loadgen/types.h"
#include "sim/executor.h"
#include "stats/percentile.h"

namespace mlperf {
namespace loadgen {

/** Issue/completion record for one query (Figure 4 traces). */
struct QueryTiming
{
    sim::Tick scheduled = 0;  //!< when the scenario wanted to issue it
    sim::Tick issued = 0;     //!< when it was actually issued
    sim::Tick completed = 0;  //!< when its last sample completed
};

/** Accuracy-mode log entry: which sample produced which result. */
struct AccuracyRecord
{
    QuerySampleIndex sampleIndex = 0;
    std::string data;
};

struct TestResult
{
    std::string sutName;
    std::string qslName;
    Scenario scenario = Scenario::SingleStream;
    TestMode mode = TestMode::PerformanceOnly;

    uint64_t queryCount = 0;
    uint64_t sampleCount = 0;
    /** Issued queries that never fully completed (must be 0). */
    uint64_t droppedQueries = 0;
    sim::Tick durationNs = 0;       //!< first issue to last completion

    stats::LatencySummary latency;  //!< per-query latency statistics
    uint64_t tailLatencyNs = 0;     //!< latency at settings percentile

    // ---- Measurement-honesty accounting (see src/audit's
    //      coordinated-omission detector). The server scenario's
    //      official latency is measured from the *scheduled* arrival
    //      tick, so a stalled issue path cannot hide queueing delay;
    //      the issued-referenced tail is what an omission-blind
    //      harness would report, and the drift between the two issue
    //      timestamps is the omission signal itself.
    /** Tail of (completed - scheduled) at the settings percentile. */
    uint64_t correctedTailLatencyNs = 0;
    /** Tail of (completed - issued) at the settings percentile. */
    uint64_t issuedTailLatencyNs = 0;
    /** Largest issued - scheduled gap over completed queries. */
    uint64_t maxIssueDriftNs = 0;
    /** Mean issued - scheduled gap over completed queries. */
    uint64_t meanIssueDriftNs = 0;

    // ---- Scenario metrics.
    double completedQps = 0.0;      //!< samples per second completed
    double scheduledQps = 0.0;      //!< server: the Poisson parameter
    uint64_t samplesPerQuery = 1;   //!< multistream N

    // ---- TokenStream scenario (autoregressive streaming).
    //      TTFT is measured from the *scheduled* arrival, like the
    //      server scenario's corrected latency, so queueing delay in
    //      front of the decoder is charged to the SUT. TPOT is the
    //      mean inter-token gap of one response,
    //      (completed - firstToken) / (tokens - 1).
    stats::LatencySummary ttft;     //!< time-to-first-token stats
    stats::LatencySummary tpot;     //!< per-output-token stats
    uint64_t ttftTailNs = 0;        //!< TTFT at settings percentile
    uint64_t tpotTailNs = 0;        //!< TPOT at settings percentile
    uint64_t totalTokens = 0;       //!< output tokens across samples
    double tokensPerSecond = 0.0;   //!< the scenario's headline metric

    // ---- Latency-constraint accounting.
    uint64_t overLatencyCount = 0;
    double overLatencyFraction = 0.0;
    /** Multistream: queries whose processing spilled past >=1 interval. */
    uint64_t queriesWithSkippedIntervals = 0;

    // ---- Fault accounting (ResponseStatus of completed samples).
    // A fault-tolerant SUT completes every sample even when it cannot
    // serve it; these counters make the failure modes visible in the
    // report instead of hiding them as fast empty answers or hanging
    // the run. Queries containing any error-status sample count as
    // over-latency in validity determination.
    uint64_t degradedSamples = 0;  //!< served by a fallback path
    uint64_t shedSamples = 0;      //!< rejected by admission/backpressure
    uint64_t timeoutSamples = 0;   //!< deadline-reaped
    uint64_t failedSamples = 0;    //!< inference faults
    /** Queries with >= 1 error-status sample. */
    uint64_t erroredQueries = 0;

    uint64_t
    errorSamples() const
    {
        return shedSamples + timeoutSamples + failedSamples;
    }

    // ---- Validity determination.
    bool minQueriesMet = false;
    bool minDurationMet = false;
    bool latencyBoundMet = false;
    bool valid = false;

    // ---- Optional artifacts.
    std::vector<QueryTiming> timeline;        //!< when recordTimeline
    std::vector<AccuracyRecord> accuracyLog;  //!< accuracy mode

    /**
     * The scenario's headline metric (Table II): 90th-percentile
     * latency in ns (single-stream), number of streams (multistream),
     * scheduled QPS (server), samples/s throughput (offline), or
     * sustained output tokens/s (token-stream).
     */
    double scenarioMetric() const;

    /** Human-readable metric label matching scenarioMetric(). */
    std::string scenarioMetricLabel() const;

    /** mlperf_log_summary.txt-style report. */
    std::string summary() const;

    /**
     * mlperf_log_detail-style CSV of the recorded timeline (one row
     * per query: index, scheduled, issued, completed, latency in ns).
     * Empty unless the run used recordTimeline.
     */
    std::string timelineCsv() const;
};

/** Compute validity flags from the raw counters (exposed for tests). */
void determineValidity(TestResult &result, const TestSettings &settings);

} // namespace loadgen
} // namespace mlperf

#endif // MLPERF_LOADGEN_RESULTS_H
