/**
 * @file
 * The LoadGen: MLPerf Inference's traffic generator (paper Sec. IV-B).
 *
 * Drives a SystemUnderTest through one of the four scenarios over an
 * abstract Executor, records per-query latencies, enforces the
 * run-length floors and latency constraints, and reports a TestResult
 * with validity determination — the paper's separation of
 * "performance-measurement code outside of submitter code".
 *
 * The same scenario logic runs in virtual time (discrete-event, for
 * the population studies) and wall-clock time (for real NN SUTs);
 * see src/sim.
 */

#ifndef MLPERF_LOADGEN_LOADGEN_H
#define MLPERF_LOADGEN_LOADGEN_H

#include "loadgen/qsl.h"
#include "loadgen/results.h"
#include "loadgen/sut.h"
#include "loadgen/test_settings.h"
#include "sim/executor.h"

namespace mlperf {
namespace loadgen {

class LoadGen
{
  public:
    /**
     * @param executor event/time source shared with the SUT; the
     *        LoadGen never calls std::chrono directly.
     */
    explicit LoadGen(sim::Executor &executor) : executor_(executor) {}

    /**
     * Run one test to completion and return its results. Blocks until
     * the scenario finishes (in virtual time this returns as fast as
     * events can be processed).
     */
    TestResult startTest(SystemUnderTest &sut, QuerySampleLibrary &qsl,
                         const TestSettings &settings);

    /** One tenant of a multi-tenant test. */
    struct Tenant
    {
        SystemUnderTest *sut = nullptr;
        QuerySampleLibrary *qsl = nullptr;
        TestSettings settings;
    };

    /**
     * Multitenancy mode (the LoadGen extension named in Sec. IV-B):
     * run several tests concurrently on this executor — typically
     * different models sharing one physical system — and return one
     * TestResult per tenant. Each tenant's validity is judged
     * independently under its own settings while the others generate
     * background load.
     */
    std::vector<TestResult> startMultiTenantTest(
        const std::vector<Tenant> &tenants);

  private:
    sim::Executor &executor_;
};

} // namespace loadgen
} // namespace mlperf

#endif // MLPERF_LOADGEN_LOADGEN_H
