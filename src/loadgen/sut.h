/**
 * @file
 * SystemUnderTest interface and the completion delegate.
 *
 * The SUT is entirely submitter-owned (paper Sec. IV-A); the LoadGen
 * only issues queries and receives completions. Queries may complete
 * asynchronously from any thread, or synchronously from within
 * issueQuery().
 */

#ifndef MLPERF_LOADGEN_SUT_H
#define MLPERF_LOADGEN_SUT_H

#include <string>
#include <vector>

#include "loadgen/types.h"

namespace mlperf {
namespace loadgen {

/** Sink for completed samples; implemented by the LoadGen. */
class ResponseDelegate
{
  public:
    virtual ~ResponseDelegate() = default;

    /**
     * Report completed samples. Thread-safe; may be called from
     * inside issueQuery() or from SUT worker threads/events.
     */
    virtual void querySamplesComplete(
        const std::vector<QuerySampleResponse> &responses) = 0;

    /**
     * Token-streaming SUTs call this once per sample, the moment its
     * first output token is produced — the TTFT timestamp of the
     * TokenStream scenario. Thread-safe, same as completion. The
     * default ignores it so request/response SUTs need no changes.
     */
    virtual void querySampleFirstToken(ResponseId id) { (void)id; }
};

class SystemUnderTest
{
  public:
    virtual ~SystemUnderTest() = default;

    virtual std::string name() const = 0;

    /**
     * Start inference on a query. Must not block on inference in
     * scenarios with concurrent queries; respond via @p delegate when
     * samples finish.
     */
    virtual void issueQuery(const std::vector<QuerySample> &samples,
                            ResponseDelegate &delegate) = 0;

    /** Hint that no further queries are coming (end of run). */
    virtual void flushQueries() = 0;
};

} // namespace loadgen
} // namespace mlperf

#endif // MLPERF_LOADGEN_SUT_H
