/**
 * @file
 * TestSettings: everything that parameterizes a LoadGen run.
 *
 * Defaults follow the paper: 1,024-query single-stream floor, 24,576-
 * sample offline floor, 60-second minimum duration (Sec. III-D), 99th/
 * 97th tail percentiles and the 1%/3% over-latency allowances
 * (Sec. III-C). A user.conf-style key=value parser mirrors the real
 * LoadGen's "configuration file it reads at the start of the run".
 */

#ifndef MLPERF_LOADGEN_TEST_SETTINGS_H
#define MLPERF_LOADGEN_TEST_SETTINGS_H

#include <cstdint>
#include <string>

#include "loadgen/trace.h"
#include "loadgen/types.h"
#include "sim/executor.h"

namespace mlperf {
namespace loadgen {

struct TestSettings
{
    Scenario scenario = Scenario::SingleStream;
    TestMode mode = TestMode::PerformanceOnly;

    // ---- Server scenario.
    /** Poisson arrival rate; the scenario's reported metric. */
    double serverTargetQps = 100.0;
    /**
     * Burst mode (a scenario extension the paper plans in Sec. I):
     * 1.0 keeps plain Poisson arrivals; values > 1 modulate the rate
     * between burst periods at (factor x qps) and quiet periods, with
     * the long-run mean held at serverTargetQps. Must be < 4 (the
     * burst duty cycle is fixed at 25%).
     */
    double serverBurstFactor = 1.0;
    /**
     * Arrival-trace shape beyond Poisson/burst: diurnal rate ramps,
     * heavy-tailed session bursts, or replay of a recorded arrival
     * file (see loadgen/trace.h). All patterns are seeded by
     * scheduleSeed and pre-scheduled before the first issue, so the
     * load stays strictly open-loop regardless of SUT backpressure.
     */
    TraceSpec serverTrace;

    // ---- MultiStream scenario.
    /** Samples per query (N, the metric under search). */
    uint64_t multiStreamSamplesPerQuery = 4;
    /** Fixed arrival interval (Table III, also the latency bound). */
    uint64_t multiStreamArrivalNs = 50 * sim::kNsPerMs;

    /**
     * Server scenario: per-query completion deadline the SUT is asked
     * to honor (propagated into the serving runtime, which sheds
     * queries that expire in queue and reaps ones a worker never
     * answers). 0 disables deadlines. Distinct from targetLatencyNs:
     * the target bounds what counts as a *good* answer, the deadline
     * bounds how long the SUT may hold a query at all.
     */
    uint64_t serverQueryDeadlineNs = 0;

    // ---- TokenStream scenario (autoregressive decode).
    /**
     * TTFT bound: time from a query's *scheduled* arrival to its
     * first streamed token must stay under this at tailPercentile.
     * The TokenStream validity check and its TEST06-style corrected
     * tails judge TTFT, not completion latency.
     */
    uint64_t ttftTargetNs = 100 * sim::kNsPerMs;
    /**
     * Per-output-token bound: mean inter-token time of a response,
     * (completion - first token) / (tokens - 1), must stay under this
     * at tailPercentile. 0 disables the TPOT check.
     */
    uint64_t tpotTargetNs = 0;

    // ---- Latency constraint (server: Table III QoS bound).
    uint64_t targetLatencyNs = 15 * sim::kNsPerMs;
    /** Tail percentile the bound applies to (0.99 vision, 0.97 NMT). */
    double tailPercentile = 0.99;
    /** Allowed fraction of queries over the bound (0.01 or 0.03). */
    double maxOverLatencyFraction = 0.01;

    // ---- Run-length floors (Sec. III-D).
    uint64_t minQueryCount = 1024;
    uint64_t minDurationNs = 60 * sim::kNsPerSec;
    /** Samples in the single offline query (>= 24,576). */
    uint64_t offlineSampleCount = 24576;
    /** Optional hard cap for fast tests; 0 = no cap. */
    uint64_t maxQueryCount = 0;

    // ---- Reproducibility (Sec. IV-A: traffic is seed-determined).
    uint64_t sampleIndexSeed = 0xA5A5;
    uint64_t scheduleSeed = 0x5A5A;

    // ---- Audit hooks (Sec. V-B).
    /** How performance-mode sample indices are drawn. */
    enum class SampleIndexMode
    {
        RandomWithReplacement,  //!< default LoadGen behaviour
        UniqueSweep,            //!< TEST04-A: no duplicates per sweep
        SameIndex,              //!< TEST04-B: one sample, repeated
    };
    SampleIndexMode sampleIndexMode =
        SampleIndexMode::RandomWithReplacement;
    /**
     * TEST01: fraction of responses logged (with their result data)
     * even in performance mode, for consistency checking against the
     * accuracy run. 0 disables logging (the default: "results ... are
     * not logged ... to allow accurate measurement").
     */
    double accuracyLogFraction = 0.0;
    /** Record per-query issue/completion times (Figure 4 traces). */
    bool recordTimeline = false;

    /**
     * Parse user.conf-style overrides: one "key = value" per line,
     * '#' comments. Unknown keys throw std::invalid_argument. Known
     * keys: scenario, mode, server_target_qps, samples_per_query,
     * multistream_arrival_ms, target_latency_ms, ttft_target_ms,
     * tpot_target_ms,
     * server_query_deadline_ms, tail_percentile,
     * max_over_latency_fraction, min_query_count, min_duration_ms,
     * offline_sample_count, max_query_count, sample_index_seed,
     * schedule_seed, server_burst_factor,
     * arrival_pattern (poisson|bursty|diurnal|sessions|recorded),
     * diurnal_amplitude, diurnal_period_s, session_mean_size,
     * session_pareto_alpha, session_gap_ms, session_gap_sigma,
     * trace_file (path to a recorded arrival file; implies
     * arrival_pattern = recorded),
     * sample_index_mode (random|unique|same),
     * accuracy_log_fraction, record_timeline.
     */
    void applyConfig(const std::string &config);

    /** Scenario defaults per Sec. III-D / Table IV. */
    static TestSettings forScenario(Scenario scenario);
};

} // namespace loadgen
} // namespace mlperf

#endif // MLPERF_LOADGEN_TEST_SETTINGS_H
