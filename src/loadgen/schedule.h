/**
 * @file
 * Deterministic query-traffic generation.
 *
 * All traffic is derived from explicit seeds in the TestSettings
 * (Sec. IV-A: "the traffic pattern is predetermined by the
 * pseudorandom-number-generator seed"), which both enables
 * reproducible runs and powers the alternate-seed audit (TEST05).
 */

#ifndef MLPERF_LOADGEN_SCHEDULE_H
#define MLPERF_LOADGEN_SCHEDULE_H

#include <cstdint>
#include <vector>

#include "loadgen/test_settings.h"
#include "loadgen/types.h"
#include "sim/executor.h"

namespace mlperf {
namespace loadgen {

/**
 * Sample indices for a performance-mode run: @p count draws from
 * [0, population) with replacement (the real LoadGen's behaviour), a
 * repeated shuffled permutation (TEST04-A unique phase), or a single
 * repeated index (TEST04-B duplicate phase).
 */
std::vector<QuerySampleIndex> generateSampleIndices(
    uint64_t count, uint64_t population, uint64_t seed,
    TestSettings::SampleIndexMode mode);

/**
 * Accuracy-mode indices: one sweep over the full library, in order.
 */
std::vector<QuerySampleIndex> accuracySweepIndices(uint64_t total);

/**
 * Poisson-process arrival offsets for the server scenario: @p count
 * exponential interarrival gaps at @p qps, accumulated to absolute
 * ticks starting at 0.
 */
std::vector<sim::Tick> generatePoissonArrivals(uint64_t count,
                                               double qps,
                                               uint64_t seed);

/**
 * Burst-mode arrivals: a Markov-modulated Poisson process that
 * alternates burst phases (rate = burst_factor x qps, 25% of the
 * time) with quiet phases, keeping the long-run mean at @p qps.
 * Phase lengths are exponential with a mean of ~50 interarrival
 * times. Requires 1 < burst_factor < 4.
 */
std::vector<sim::Tick> generateBurstyArrivals(uint64_t count,
                                              double qps,
                                              double burst_factor,
                                              uint64_t seed);

/** Fixed-interval arrivals for the multistream scenario. */
std::vector<sim::Tick> generateFixedArrivals(uint64_t count,
                                             sim::Tick interval);

} // namespace loadgen
} // namespace mlperf

#endif // MLPERF_LOADGEN_SCHEDULE_H
