/**
 * @file
 * Trace-driven arrival generation for the server scenario.
 *
 * The paper's server scenario models "multiple users submitting
 * concurrent, independent queries" with a Poisson process (Sec. III),
 * but production traffic is diurnal, bursty, and session-heavy (the
 * Meta load-testing paper in PAPERS.md). TraceSpec extends the
 * schedule generators with three non-Poisson shapes, all seeded and
 * deterministic like the rest of the traffic machinery (Sec. IV-A):
 *
 *  - Diurnal: a nonhomogeneous Poisson process whose rate follows a
 *    sinusoidal day curve, sampled exactly by Lewis-Shedler thinning.
 *  - SessionBurst: sessions arrive as a Poisson process; each session
 *    fires a Pareto-distributed (heavy-tailed) number of queries with
 *    lognormal think-time gaps — the "one user, many rapid requests"
 *    shape that a mean-rate Poisson model cannot produce.
 *  - Recorded: replay an arrival file captured from a real system,
 *    wrapping deterministically when the run outlives the recording.
 *
 * Every generator returns *scheduled* offsets that the LoadGen turns
 * into pre-planned executor events before the first query is issued;
 * issue timestamps are never derived from completions, so the load
 * stays strictly open-loop and backpressure cannot delay arrivals
 * (the coordinated-omission trap audited by src/audit).
 */

#ifndef MLPERF_LOADGEN_TRACE_H
#define MLPERF_LOADGEN_TRACE_H

#include <cstdint>
#include <string>
#include <vector>

#include "sim/executor.h"

namespace mlperf {
namespace loadgen {

struct TestSettings;

/** Which arrival-schedule shape the server scenario generates. */
enum class ArrivalPattern
{
    Poisson,       //!< homogeneous Poisson (the paper's default)
    Bursty,        //!< MMPP burst/quiet phases (schedule.h)
    Diurnal,       //!< sinusoidal rate ramp (thinned Poisson)
    SessionBurst,  //!< Poisson sessions x Pareto size x lognormal gaps
    Recorded,      //!< replay of a recorded arrival file
};

std::string arrivalPatternName(ArrivalPattern pattern);

/**
 * Everything that parameterizes one arrival trace beyond the mean
 * rate (TestSettings::serverTargetQps) and the schedule seed. Only
 * the fields of the selected pattern are read.
 */
struct TraceSpec
{
    ArrivalPattern pattern = ArrivalPattern::Poisson;

    // ---- Bursty (MMPP): burst rate = burstFactor x qps, 25% duty.
    double burstFactor = 2.0;

    // ---- Diurnal: rate(t) = qps * (1 + amplitude*sin(2*pi*t/period)).
    /** Peak-to-mean rate swing, clamped to [0, 0.95]. */
    double diurnalAmplitude = 0.5;
    /** Length of one full rate cycle. */
    sim::Tick diurnalPeriodNs = 60 * sim::kNsPerSec;

    // ---- SessionBurst. Sessions arrive Poisson at qps/meanSize so
    //      the long-run mean stays at qps.
    /** Mean queries per session (Pareto mean; >= 1). */
    double sessionMeanSize = 8.0;
    /** Pareto tail index; smaller = heavier tail (clamped >= 1.1). */
    double sessionParetoAlpha = 1.5;
    /** Median think-time gap between a session's queries. */
    sim::Tick sessionGapNs = 2 * sim::kNsPerMs;
    /** Lognormal sigma of the gap (log-space spread). */
    double sessionGapSigma = 1.0;

    // ---- Recorded: absolute offsets (ns from trace start), sorted.
    std::vector<sim::Tick> recorded;
};

/**
 * Diurnal arrivals via Lewis-Shedler thinning: draw a homogeneous
 * Poisson stream at the peak rate and accept each point with
 * probability rate(t)/rate_max — an exact sample of the
 * nonhomogeneous process, bit-stable for a given seed.
 */
std::vector<sim::Tick> generateDiurnalArrivals(uint64_t count,
                                               double qps,
                                               double amplitude,
                                               sim::Tick period_ns,
                                               uint64_t seed);

/**
 * Heavy-tailed session bursts: session starts are Poisson at
 * qps/meanSize; each session's query count is Pareto(alpha) with mean
 * sessionMeanSize (capped at 64x the mean so one draw cannot swallow
 * the run), and in-session gaps are lognormal around sessionGapNs.
 * Overlapping sessions are merged into one sorted schedule.
 */
std::vector<sim::Tick> generateSessionArrivals(uint64_t count,
                                               double qps,
                                               const TraceSpec &spec,
                                               uint64_t seed);

/**
 * Replay @p recorded arrivals, wrapping with a constant period offset
 * (recording span + one mean gap) when @p count exceeds the
 * recording. Throws std::invalid_argument when the recording is
 * empty.
 */
std::vector<sim::Tick> replayRecordedArrivals(
    const std::vector<sim::Tick> &recorded, uint64_t count);

/**
 * Parse a recorded arrival file: one arrival offset in nanoseconds
 * per line, '#' comments, blank lines ignored. Strict by design —
 * throws std::invalid_argument with the offending line number for
 * anything that is not a non-negative decimal integer fitting 64
 * bits, and for offsets that go backwards (a capture is a timeline;
 * re-sorting one would fabricate a workload that never ran).
 */
std::vector<sim::Tick> parseRecordedTrace(const std::string &text);

/** Dispatch on @p spec.pattern (seed is ignored for Recorded). */
std::vector<sim::Tick> generateTraceArrivals(const TraceSpec &spec,
                                             uint64_t count, double qps,
                                             uint64_t seed);

/**
 * The server scenario's entry point: apply @p settings (pattern from
 * serverTrace; the legacy serverBurstFactor > 1 knob still selects
 * Bursty when the pattern is Poisson, and overrides the spec's
 * burstFactor whenever it is set).
 */
std::vector<sim::Tick> generateServerArrivals(
    const TestSettings &settings, uint64_t count, uint64_t seed);

} // namespace loadgen
} // namespace mlperf

#endif // MLPERF_LOADGEN_TRACE_H
