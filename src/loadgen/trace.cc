#include "loadgen/trace.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "common/rng.h"
#include "loadgen/schedule.h"
#include "loadgen/test_settings.h"

namespace mlperf {
namespace loadgen {

namespace {

constexpr double kPi = 3.14159265358979323846;

double
clampDouble(double v, double lo, double hi)
{
    return std::min(hi, std::max(lo, v));
}

} // namespace

std::string
arrivalPatternName(ArrivalPattern pattern)
{
    switch (pattern) {
      case ArrivalPattern::Poisson:      return "poisson";
      case ArrivalPattern::Bursty:       return "bursty";
      case ArrivalPattern::Diurnal:      return "diurnal";
      case ArrivalPattern::SessionBurst: return "sessions";
      case ArrivalPattern::Recorded:     return "recorded";
    }
    return "?";
}

std::vector<sim::Tick>
generateDiurnalArrivals(uint64_t count, double qps, double amplitude,
                        sim::Tick period_ns, uint64_t seed)
{
    assert(qps > 0.0);
    amplitude = clampDouble(amplitude, 0.0, 0.95);
    const double period_s =
        static_cast<double>(std::max<sim::Tick>(period_ns, sim::kNsPerMs)) /
        static_cast<double>(sim::kNsPerSec);
    const double rate_max = qps * (1.0 + amplitude);

    std::vector<sim::Tick> out;
    out.reserve(count);
    Rng rng(seed);
    double t = 0.0;
    while (out.size() < count) {
        // Candidate stream at the peak rate; thin to the instantaneous
        // rate. Acceptance uses a draw independent of the gap draw so
        // the thinning is exact.
        t += rng.nextExponential(rate_max);
        const double rate =
            qps * (1.0 + amplitude * std::sin(2.0 * kPi * t / period_s));
        if (rng.nextDouble() * rate_max <= rate) {
            out.push_back(static_cast<sim::Tick>(
                t * static_cast<double>(sim::kNsPerSec)));
        }
    }
    return out;
}

std::vector<sim::Tick>
generateSessionArrivals(uint64_t count, double qps,
                        const TraceSpec &spec, uint64_t seed)
{
    assert(qps > 0.0);
    const double mean_size = std::max(1.0, spec.sessionMeanSize);
    const double alpha = std::max(1.1, spec.sessionParetoAlpha);
    const double session_rate = qps / mean_size;
    // Pareto scale chosen so the mean lands on mean_size:
    // E[X] = alpha*xm/(alpha-1).
    const double xm = mean_size * (alpha - 1.0) / alpha;
    const double gap_median_ns = static_cast<double>(
        std::max<sim::Tick>(spec.sessionGapNs, 1));
    const uint64_t size_cap = static_cast<uint64_t>(
        std::max(1.0, 64.0 * mean_size));

    std::vector<double> times_s;
    times_s.reserve(count + count / 4);
    Rng rng(seed);
    double session_start = 0.0;
    while (times_s.size() < count) {
        session_start += rng.nextExponential(session_rate);
        const double u = 1.0 - rng.nextDouble();  // (0, 1]
        const uint64_t size = std::min<uint64_t>(
            size_cap,
            std::max<uint64_t>(
                1, static_cast<uint64_t>(
                       std::llround(xm / std::pow(u, 1.0 / alpha)))));
        double at = session_start;
        times_s.push_back(at);
        for (uint64_t i = 1; i < size; ++i) {
            // Lognormal think time with median gap_median_ns.
            const double gap_ns =
                gap_median_ns *
                std::exp(spec.sessionGapSigma * rng.nextGaussian());
            at += gap_ns / static_cast<double>(sim::kNsPerSec);
            times_s.push_back(at);
        }
    }
    // Long sessions overlap later session starts; the schedule is the
    // merged order.
    std::sort(times_s.begin(), times_s.end());
    times_s.resize(count);

    std::vector<sim::Tick> out;
    out.reserve(count);
    for (double t : times_s) {
        out.push_back(static_cast<sim::Tick>(
            t * static_cast<double>(sim::kNsPerSec)));
    }
    return out;
}

std::vector<sim::Tick>
replayRecordedArrivals(const std::vector<sim::Tick> &recorded,
                       uint64_t count)
{
    if (recorded.empty()) {
        throw std::invalid_argument(
            "recorded arrival trace is empty");
    }
    const size_t n = recorded.size();
    const sim::Tick span = recorded.back();
    // Wrap period: the recording span plus one mean interarrival gap,
    // so back-to-back replays do not stack two arrivals on one tick.
    const sim::Tick gap =
        n > 1 ? std::max<sim::Tick>(1, span / (n - 1)) : sim::kNsPerSec;
    const sim::Tick period = span + gap;

    std::vector<sim::Tick> out;
    out.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
        const uint64_t pass = i / n;
        out.push_back(pass * period + recorded[i % n]);
    }
    return out;
}

std::vector<sim::Tick>
parseRecordedTrace(const std::string &text)
{
    std::vector<sim::Tick> out;
    std::istringstream stream(text);
    std::string line;
    uint64_t line_no = 0;
    while (std::getline(stream, line)) {
        ++line_no;
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        const auto first = line.find_first_not_of(" \t\r");
        if (first == std::string::npos)
            continue;
        const auto last = line.find_last_not_of(" \t\r");
        const std::string token = line.substr(first, last - first + 1);
        // Hand-rolled digit parse instead of std::stoull: a capture
        // with "12x34", "-5", "1e9" or an offset past 2^64 must fail
        // with a line-numbered message, not be half-consumed or wrap.
        uint64_t value = 0;
        bool ok = !token.empty();
        for (const char c : token) {
            if (c < '0' || c > '9') {
                ok = false;
                break;
            }
            const uint64_t digit = static_cast<uint64_t>(c - '0');
            if (value > (UINT64_MAX - digit) / 10) {
                throw std::invalid_argument(
                    "trace line " + std::to_string(line_no) +
                    ": offset out of range: " + token);
            }
            value = value * 10 + digit;
        }
        if (!ok) {
            throw std::invalid_argument(
                "trace line " + std::to_string(line_no) +
                ": malformed (want a non-negative integer ns "
                "offset): " + token);
        }
        if (!out.empty() && value < out.back()) {
            // A recording is a timeline; silently re-sorting one with
            // interleaved or clock-skewed offsets would fabricate a
            // different workload than was captured.
            throw std::invalid_argument(
                "trace line " + std::to_string(line_no) +
                ": offsets must be non-decreasing (" + token +
                " after " + std::to_string(out.back()) + ")");
        }
        out.push_back(static_cast<sim::Tick>(value));
    }
    return out;
}

std::vector<sim::Tick>
generateTraceArrivals(const TraceSpec &spec, uint64_t count, double qps,
                      uint64_t seed)
{
    switch (spec.pattern) {
      case ArrivalPattern::Poisson:
        return generatePoissonArrivals(count, qps, seed);
      case ArrivalPattern::Bursty:
        return generateBurstyArrivals(
            count, qps, clampDouble(spec.burstFactor, 1.01, 3.99),
            seed);
      case ArrivalPattern::Diurnal:
        return generateDiurnalArrivals(count, qps,
                                       spec.diurnalAmplitude,
                                       spec.diurnalPeriodNs, seed);
      case ArrivalPattern::SessionBurst:
        return generateSessionArrivals(count, qps, spec, seed);
      case ArrivalPattern::Recorded:
        return replayRecordedArrivals(spec.recorded, count);
    }
    return generatePoissonArrivals(count, qps, seed);
}

std::vector<sim::Tick>
generateServerArrivals(const TestSettings &settings, uint64_t count,
                       uint64_t seed)
{
    TraceSpec spec = settings.serverTrace;
    if (settings.serverBurstFactor > 1.0) {
        // Legacy knob: burst factor alone turns a Poisson schedule
        // into the MMPP, and always parameterizes an explicit Bursty
        // pattern.
        if (spec.pattern == ArrivalPattern::Poisson)
            spec.pattern = ArrivalPattern::Bursty;
        spec.burstFactor = settings.serverBurstFactor;
    }
    return generateTraceArrivals(spec, count, settings.serverTargetQps,
                                 seed);
}

} // namespace loadgen
} // namespace mlperf
