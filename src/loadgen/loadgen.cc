#include "loadgen/loadgen.h"

#include <algorithm>
#include <cassert>
#include <atomic>
#include <memory>
#include <mutex>

#include "common/logging.h"
#include "loadgen/schedule.h"
#include "loadgen/trace.h"

namespace mlperf {
namespace loadgen {

namespace {

/**
 * One in-flight test. Implements the ResponseDelegate the SUT calls
 * into; all scenario progression happens on the executor so the logic
 * is single-threaded even when SUT completions arrive from worker
 * threads.
 */
class Run : public ResponseDelegate
{
  public:
    Run(sim::Executor &executor, SystemUnderTest &sut,
        QuerySampleLibrary &qsl, const TestSettings &settings)
        : executor_(executor), sut_(sut), qsl_(qsl),
          settings_(settings)
    {
    }

    TestResult
    execute()
    {
        begin();
        executor_.run();
        return finalize();
    }

    /**
     * Start issuing without owning the executor loop — used by
     * multi-tenant tests where several Runs share one executor.
     * @p on_finish fires (on the executor) when this Run completes,
     * instead of stopping the executor.
     */
    void
    begin(std::function<void()> on_finish = nullptr)
    {
        onFinish_ = std::move(on_finish);
        // Anchor every schedule at the current executor time so that
        // several tests can run back-to-back on one executor (wall
        // clocks never restart; virtual ones need not either).
        runStart_ = executor_.now();
        prepareSamples();
        start();
    }

    // ---- ResponseDelegate (thread-safe).
    void
    querySamplesComplete(
        const std::vector<QuerySampleResponse> &responses) override
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const sim::Tick now = executor_.now();
        for (const auto &response : responses) {
            assert(response.id < responseQuery_.size());
            const uint64_t q = responseQuery_[response.id];
            QueryState &query = queries_[q];
            assert(query.remaining > 0);
            switch (response.status) {
              case ResponseStatus::Ok: break;
              case ResponseStatus::Degraded: ++degradedSamples_; break;
              case ResponseStatus::Shed:     ++shedSamples_; break;
              case ResponseStatus::Timeout:  ++timeoutSamples_; break;
              case ResponseStatus::Failed:   ++failedSamples_; break;
            }
            if (responseIsError(response.status))
                query.errored = true;
            query.tokens += response.tokenCount;
            if (shouldLogResponse(response.id)) {
                accuracyLog_.push_back(
                    {responseIndex_[response.id], response.data});
            }
            if (--query.remaining == 0) {
                query.completed = now;
                --outstandingQueries_;
                executor_.schedule(now,
                                   [this, q] { onQueryComplete(q); });
            }
        }
        completedSamples_ += responses.size();
    }

    void
    querySampleFirstToken(ResponseId id) override
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const sim::Tick now = executor_.now();
        assert(id < responseQuery_.size());
        QueryState &query = queries_[responseQuery_[id]];
        // A query's TTFT is stamped by whichever of its samples
        // streams first; later first-token events don't move it.
        // 0 means "never streamed", so a virtual-time token at tick 0
        // is nudged to 1 ns rather than vanish.
        if (query.firstToken == 0)
            query.firstToken = std::max<sim::Tick>(now, 1);
    }

  private:
    struct QueryState
    {
        sim::Tick scheduled = 0;
        sim::Tick issued = 0;
        sim::Tick completed = 0;
        sim::Tick firstToken = 0;   //!< token-streaming: TTFT stamp
        uint64_t tokens = 0;        //!< output tokens streamed
        uint64_t remaining = 0;     //!< samples not yet completed
        uint64_t sampleCount = 0;
        bool causedSkip = false;    //!< multistream interval spill
        bool errored = false;       //!< any sample completed with error
    };

    /**
     * TEST01 sampling: log a deterministic pseudo-random fraction of
     * performance-mode responses (Sec. V-B accuracy verification).
     */
    bool
    shouldLogResponse(ResponseId id) const
    {
        if (settings_.mode == TestMode::AccuracyOnly)
            return true;
        if (settings_.accuracyLogFraction <= 0.0)
            return false;
        uint64_t z = id + 0x9e3779b97f4a7c15ULL *
                              (settings_.sampleIndexSeed + 1);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        z ^= z >> 31;
        return (z >> 11) * 0x1.0p-53 < settings_.accuracyLogFraction;
    }

    // ------------------------------------------------------- set-up

    uint64_t
    targetQueryCount() const
    {
        if (settings_.mode == TestMode::AccuracyOnly) {
            const uint64_t total = qsl_.totalSampleCount();
            const uint64_t per = samplesPerQuery();
            return (total + per - 1) / per;
        }
        uint64_t target = settings_.minQueryCount;
        if (settings_.maxQueryCount != 0)
            target = std::min(target, settings_.maxQueryCount);
        if (settings_.scenario == Scenario::Offline)
            target = 1;
        return target;
    }

    uint64_t
    samplesPerQuery() const
    {
        switch (settings_.scenario) {
          case Scenario::MultiStream:
            return settings_.multiStreamSamplesPerQuery;
          case Scenario::Offline:
            if (settings_.mode == TestMode::AccuracyOnly)
                return qsl_.totalSampleCount();
            return settings_.offlineSampleCount;
          default:
            return 1;
        }
    }

    void
    prepareSamples()
    {
        if (settings_.mode == TestMode::AccuracyOnly) {
            sampleIndices_ =
                accuracySweepIndices(qsl_.totalSampleCount());
            staged_ = sampleIndices_;
            qsl_.loadSamplesToRam(staged_);
            return;
        }
        const uint64_t population = std::min(
            qsl_.performanceSampleCount(), qsl_.totalSampleCount());
        staged_.resize(population);
        for (uint64_t i = 0; i < population; ++i)
            staged_[i] = i;
        qsl_.loadSamplesToRam(staged_);
        sampleIndices_ = generateSampleIndices(
            targetQueryCount() * samplesPerQuery(), population,
            settings_.sampleIndexSeed, settings_.sampleIndexMode);
    }

    /** Draw the next @p count sample indices (extending if needed). */
    std::vector<QuerySampleIndex>
    nextSampleIndices(uint64_t count)
    {
        while (nextSample_ + count > sampleIndices_.size()) {
            // Performance-mode runs can outlive the pregenerated
            // indices (min-duration extension); extend the stream
            // deterministically.
            const uint64_t population = std::min(
                qsl_.performanceSampleCount(), qsl_.totalSampleCount());
            auto more = generateSampleIndices(
                targetQueryCount() * samplesPerQuery(), population,
                settings_.sampleIndexSeed + ++extensions_,
                settings_.sampleIndexMode);
            sampleIndices_.insert(sampleIndices_.end(), more.begin(),
                                  more.end());
        }
        std::vector<QuerySampleIndex> out(
            sampleIndices_.begin() +
                static_cast<int64_t>(nextSample_),
            sampleIndices_.begin() +
                static_cast<int64_t>(nextSample_ + count));
        nextSample_ += count;
        return out;
    }

    // ------------------------------------------------- query issue

    /** Create a query of @p count samples scheduled at @p scheduled. */
    uint64_t
    createQuery(sim::Tick scheduled, uint64_t count)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        QueryState query;
        query.scheduled = scheduled;
        query.remaining = count;
        query.sampleCount = count;
        queries_.push_back(query);
        return queries_.size() - 1;
    }

    void
    issueQuery(uint64_t q)
    {
        std::vector<QuerySample> samples;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            QueryState &query = queries_[q];
            query.issued = executor_.now();
            const auto indices =
                nextSampleIndices(query.sampleCount);
            samples.reserve(indices.size());
            for (QuerySampleIndex index : indices) {
                const ResponseId id = responseQuery_.size();
                responseQuery_.push_back(q);
                responseIndex_.push_back(index);
                samples.push_back({id, index});
            }
            ++issuedQueries_;
            ++outstandingQueries_;
        }
        sut_.issueQuery(samples, *this);
    }

    // --------------------------------------------------- scenarios

    void
    start()
    {
        switch (settings_.scenario) {
          case Scenario::SingleStream:
            issueQuery(createQuery(executor_.now(), 1));
            break;
          case Scenario::Server:
          case Scenario::TokenStream:
            // TokenStream shares the server's open-loop arrival
            // machinery; only the latency bookkeeping differs.
            scheduleServerArrivals(targetQueryCount(), runStart_);
            break;
          case Scenario::MultiStream:
            scheduleNextIntervalTick();
            break;
          case Scenario::Offline: {
            const uint64_t q =
                createQuery(executor_.now(), samplesPerQuery());
            issueQuery(q);
            break;
          }
        }
    }

    void
    scheduleServerArrivals(uint64_t count, sim::Tick base)
    {
        // All arrivals are planned here, before any of them issues:
        // the schedule is a pure function of the settings and seed,
        // so SUT backpressure can delay *completions* but never an
        // issue timestamp (open-loop load; see loadgen/trace.h).
        // Min-duration extensions re-enter with a bumped seed, and a
        // recorded trace restarts from its beginning at the new base.
        const auto offsets = generateServerArrivals(
            settings_, count,
            settings_.scheduleSeed + arrivalBatches_++);
        for (sim::Tick offset : offsets) {
            const sim::Tick when = base + offset;
            ++pendingArrivals_;
            lastArrival_ = std::max(lastArrival_, when);
            executor_.schedule(when, [this, when] {
                --pendingArrivals_;
                issueQuery(createQuery(when, 1));
            });
        }
    }

    void
    scheduleNextIntervalTick()
    {
        const sim::Tick when =
            runStart_ +
            multistreamTick_ * settings_.multiStreamArrivalNs;
        ++multistreamTick_;
        executor_.schedule(when, [this, when] { onIntervalTick(when); });
    }

    void
    onIntervalTick(sim::Tick when)
    {
        bool busy;
        uint64_t current;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            busy = outstandingQueries_ > 0;
            current = queries_.empty() ? 0 : queries_.size() - 1;
        }
        if (busy) {
            // "If it is still processing the prior query in an
            // interval, it skips that interval and delays the
            // remaining queries by one interval."
            ++skippedIntervals_;
            std::lock_guard<std::mutex> lock(mutex_);
            queries_[current].causedSkip = true;
        } else if (issuedQueries_ < multistreamTarget()) {
            uint64_t count = settings_.multiStreamSamplesPerQuery;
            if (settings_.mode == TestMode::AccuracyOnly) {
                // The final accuracy-sweep query may be partial.
                count = std::min<uint64_t>(
                    count, sampleIndices_.size() - nextSample_);
            }
            issueQuery(createQuery(when, count));
        }
        if (issuedQueries_ < multistreamTarget() ||
            outstandingQueries_ > 0) {
            if (issuedQueries_ < multistreamTarget())
                scheduleNextIntervalTick();
            // else: wait for completions; onQueryComplete finishes.
        }
    }

    uint64_t
    multistreamTarget() const
    {
        uint64_t target = targetQueryCount();
        if (settings_.mode == TestMode::PerformanceOnly &&
            settings_.maxQueryCount == 0) {
            // Enough intervals to satisfy the minimum duration even
            // with zero skips.
            const uint64_t duration_queries =
                settings_.minDurationNs /
                    settings_.multiStreamArrivalNs +
                1;
            target = std::max(target, duration_queries);
        }
        return target;
    }

    // ------------------------------------------------- completion

    void
    onQueryComplete(uint64_t q)
    {
        (void)q;
        // Asynchronous SUTs deliver querySamplesComplete from worker
        // threads; the one that completed the final sample may still
        // be inside its critical section when this event runs. The
        // counters must be read under the mutex — both for coherence
        // and so the finish path below (which can unwind into ~Run)
        // cannot start until every completer has left the delegate.
        bool idle;
        uint64_t issued;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            idle = outstandingQueries_ == 0;
            issued = issuedQueries_;
        }
        switch (settings_.scenario) {
          case Scenario::SingleStream: {
            if (singleStreamDone()) {
                finish();
            } else {
                issueQuery(createQuery(executor_.now(), 1));
            }
            break;
          }
          case Scenario::Server:
          case Scenario::TokenStream: {
            if (pendingArrivals_ == 0 && idle) {
                if (serverFloorsMet()) {
                    finish();
                } else {
                    // Extend the run until the floors are satisfied;
                    // size the batch from the remaining duration so
                    // restart gaps stay negligible.
                    const sim::Tick now = executor_.now();
                    const sim::Tick elapsed = now - runStart_;
                    uint64_t remaining_queries = 64;
                    if (elapsed < settings_.minDurationNs) {
                        const double remaining_s =
                            static_cast<double>(
                                settings_.minDurationNs - elapsed) /
                            static_cast<double>(sim::kNsPerSec);
                        remaining_queries = std::max<uint64_t>(
                            remaining_queries,
                            static_cast<uint64_t>(
                                remaining_s *
                                settings_.serverTargetQps * 1.02) +
                                1);
                    }
                    scheduleServerArrivals(
                        remaining_queries,
                        std::max(now, lastArrival_));
                }
            }
            break;
          }
          case Scenario::MultiStream: {
            if (issued >= multistreamTarget() && idle) {
                finish();
            }
            break;
          }
          case Scenario::Offline: {
            if (idle)
                finish();
            break;
          }
        }
    }

    bool
    singleStreamDone() const
    {
        if (settings_.mode == TestMode::AccuracyOnly)
            return issuedQueries_ >= targetQueryCount();
        if (settings_.maxQueryCount != 0 &&
            issuedQueries_ >= settings_.maxQueryCount) {
            return true;
        }
        return issuedQueries_ >= settings_.minQueryCount &&
               executor_.now() - runStart_ >= settings_.minDurationNs;
    }

    bool
    serverFloorsMet() const
    {
        if (settings_.mode == TestMode::AccuracyOnly)
            return true;
        if (settings_.maxQueryCount != 0)
            return true;
        return issuedQueries_ >= settings_.minQueryCount &&
               executor_.now() - runStart_ >= settings_.minDurationNs;
    }

    void
    finish()
    {
        if (finished_)
            return;
        finished_ = true;
        sut_.flushQueries();
        if (onFinish_)
            onFinish_();
        else
            executor_.stop();
    }

    // --------------------------------------------------- reporting

  public:
    TestResult
    finalize()
    {
        TestResult result;
        result.sutName = sut_.name();
        result.qslName = qsl_.name();
        result.scenario = settings_.scenario;
        result.mode = settings_.mode;
        result.queryCount = issuedQueries_;
        result.sampleCount = completedSamples_;
        result.samplesPerQuery = samplesPerQuery();
        result.degradedSamples = degradedSamples_;
        result.shedSamples = shedSamples_;
        result.timeoutSamples = timeoutSamples_;
        result.failedSamples = failedSamples_;
        result.scheduledQps = settings_.serverTargetQps;
        result.queriesWithSkippedIntervals = 0;

        std::vector<uint64_t> latencies;
        latencies.reserve(queries_.size());
        std::vector<uint64_t> scheduledLatencies;
        scheduledLatencies.reserve(queries_.size());
        std::vector<uint64_t> issuedLatencies;
        issuedLatencies.reserve(queries_.size());
        std::vector<bool> erroredByLatency;
        erroredByLatency.reserve(queries_.size());
        const bool token_stream =
            settings_.scenario == Scenario::TokenStream;
        std::vector<uint64_t> ttfts;        //!< scheduled-referenced
        std::vector<uint64_t> issuedTtfts;  //!< issued-referenced
        std::vector<uint64_t> tpots;
        // Per-completed-query constraint values, aligned with the
        // latencies vector (entry 0 when the query never streamed).
        std::vector<uint64_t> ttftByQuery;
        std::vector<uint64_t> tpotByQuery;
        sim::Tick first_issue = 0, last_completion = 0;
        uint64_t driftSum = 0;
        bool any = false;
        for (const auto &query : queries_) {
            if (query.remaining != 0) {
                ++result.droppedQueries;
                continue;
            }
            const sim::Tick reference =
                settings_.scenario == Scenario::Server || token_stream
                    ? query.scheduled
                    : query.issued;
            latencies.push_back(query.completed - reference);
            scheduledLatencies.push_back(query.completed -
                                         query.scheduled);
            issuedLatencies.push_back(query.completed - query.issued);
            if (token_stream) {
                result.totalTokens += query.tokens;
                uint64_t ttft = 0, tpot = 0;
                if (query.firstToken != 0) {
                    ttft = query.firstToken - query.scheduled;
                    ttfts.push_back(ttft);
                    issuedTtfts.push_back(
                        query.firstToken >= query.issued
                            ? query.firstToken - query.issued
                            : 0);
                    if (query.tokens > 1) {
                        tpot = (query.completed - query.firstToken) /
                               (query.tokens - 1);
                        tpots.push_back(tpot);
                    }
                }
                ttftByQuery.push_back(ttft);
                tpotByQuery.push_back(tpot);
            }
            const uint64_t drift =
                query.issued >= query.scheduled
                    ? query.issued - query.scheduled
                    : 0;
            driftSum += drift;
            result.maxIssueDriftNs =
                std::max(result.maxIssueDriftNs, drift);
            erroredByLatency.push_back(query.errored);
            if (query.errored)
                ++result.erroredQueries;
            if (!any || query.issued < first_issue)
                first_issue = query.issued;
            last_completion =
                std::max(last_completion, query.completed);
            any = true;
            if (query.causedSkip)
                ++result.queriesWithSkippedIntervals;
        }
        result.durationNs = any ? last_completion - first_issue : 0;
        result.latency = stats::LatencySummary::from(latencies);
        if (!latencies.empty()) {
            result.tailLatencyNs = stats::percentile(
                latencies, settings_.tailPercentile);
            result.correctedTailLatencyNs = stats::percentile(
                scheduledLatencies, settings_.tailPercentile);
            result.issuedTailLatencyNs = stats::percentile(
                issuedLatencies, settings_.tailPercentile);
            result.meanIssueDriftNs =
                driftSum / latencies.size();
        }
        if (token_stream) {
            result.ttft = stats::LatencySummary::from(ttfts);
            result.tpot = stats::LatencySummary::from(tpots);
            if (!ttfts.empty()) {
                result.ttftTailNs = stats::percentile(
                    ttfts, settings_.tailPercentile);
                // The scenario's official latency *is* the TTFT, so
                // the coordinated-omission pair (corrected vs issued
                // tail, audited by TEST06) is computed on the
                // first-token series here.
                result.correctedTailLatencyNs = result.ttftTailNs;
                result.issuedTailLatencyNs = stats::percentile(
                    issuedTtfts, settings_.tailPercentile);
            }
            if (!tpots.empty()) {
                result.tpotTailNs = stats::percentile(
                    tpots, settings_.tailPercentile);
            }
            result.tokensPerSecond =
                result.durationNs > 0
                    ? static_cast<double>(result.totalTokens) *
                          static_cast<double>(sim::kNsPerSec) /
                          static_cast<double>(result.durationNs)
                    : 0.0;
        }
        result.completedQps =
            result.durationNs > 0
                ? static_cast<double>(completedSamples_) *
                      static_cast<double>(sim::kNsPerSec) /
                      static_cast<double>(result.durationNs)
                : 0.0;

        // A query completed with an error status (shed, timed out,
        // failed) did not produce a timely answer no matter how fast
        // the error response arrived; count it against the latency
        // bound so fault handling cannot game validity.
        uint64_t over = 0;
        for (size_t i = 0; i < latencies.size(); ++i) {
            if (token_stream) {
                // The streaming constraint: first token on time and
                // (optionally) sustained token cadence. A query that
                // never streamed a token has no TTFT; unless it was
                // completed as an explicit error, that is a dropped
                // stream and counts over-latency too.
                const bool no_stream = ttftByQuery[i] == 0;
                if (erroredByLatency[i] || no_stream ||
                    ttftByQuery[i] > settings_.ttftTargetNs ||
                    (settings_.tpotTargetNs != 0 &&
                     tpotByQuery[i] > settings_.tpotTargetNs)) {
                    ++over;
                }
            } else if (latencies[i] > settings_.targetLatencyNs ||
                       erroredByLatency[i]) {
                ++over;
            }
        }
        result.overLatencyCount = over;
        result.overLatencyFraction =
            latencies.empty() ? 0.0
                              : static_cast<double>(over) /
                                    static_cast<double>(
                                        latencies.size());

        if (settings_.recordTimeline) {
            result.timeline.reserve(queries_.size());
            for (const auto &query : queries_) {
                result.timeline.push_back({query.scheduled,
                                           query.issued,
                                           query.completed});
            }
        }
        // Release the staged samples (finalize runs exactly once per
        // Run, in both the single- and multi-tenant paths).
        qsl_.unloadSamplesFromRam(staged_);

        result.accuracyLog = std::move(accuracyLog_);
        if (settings_.mode == TestMode::AccuracyOnly) {
            result.minQueriesMet = true;
            result.minDurationMet = true;
            result.latencyBoundMet = true;
            result.valid = true;
        } else {
            determineValidity(result, settings_);
        }
        return result;
    }

    sim::Executor &executor_;
    SystemUnderTest &sut_;
    QuerySampleLibrary &qsl_;
    TestSettings settings_;

    std::mutex mutex_;
    std::vector<QueryState> queries_;
    std::vector<uint64_t> responseQuery_;       //!< ResponseId -> query
    std::vector<QuerySampleIndex> responseIndex_;
    std::vector<QuerySampleIndex> sampleIndices_;
    std::vector<QuerySampleIndex> staged_;  //!< samples in RAM
    uint64_t nextSample_ = 0;
    uint64_t extensions_ = 0;
    std::atomic<uint64_t> issuedQueries_{0};
    std::atomic<uint64_t> outstandingQueries_{0};
    std::atomic<uint64_t> completedSamples_{0};
    // Fault accounting (guarded by mutex_ like queries_).
    uint64_t degradedSamples_ = 0;
    uint64_t shedSamples_ = 0;
    uint64_t timeoutSamples_ = 0;
    uint64_t failedSamples_ = 0;
    uint64_t pendingArrivals_ = 0;
    uint64_t arrivalBatches_ = 0;
    sim::Tick lastArrival_ = 0;
    uint64_t multistreamTick_ = 0;
    sim::Tick runStart_ = 0;
    uint64_t skippedIntervals_ = 0;
    std::vector<AccuracyRecord> accuracyLog_;
    std::function<void()> onFinish_;
    bool finished_ = false;
};

} // namespace

TestResult
LoadGen::startTest(SystemUnderTest &sut, QuerySampleLibrary &qsl,
                   const TestSettings &settings)
{
    MLPERF_LOG(Info) << "LoadGen: starting "
                     << scenarioName(settings.scenario) << " ("
                     << testModeName(settings.mode) << ") against "
                     << sut.name();
    Run run(executor_, sut, qsl, settings);
    TestResult result = run.execute();
    MLPERF_LOG(Info) << "LoadGen: " << scenarioName(settings.scenario)
                     << " finished: "
                     << (result.valid ? "VALID" : "INVALID") << ", "
                     << result.queryCount << " queries, "
                     << result.scenarioMetricLabel() << " = "
                     << result.scenarioMetric();
    return result;
}

std::vector<TestResult>
LoadGen::startMultiTenantTest(const std::vector<Tenant> &tenants)
{
    std::vector<std::unique_ptr<Run>> runs;
    runs.reserve(tenants.size());
    for (const auto &tenant : tenants) {
        runs.push_back(std::make_unique<Run>(
            executor_, *tenant.sut, *tenant.qsl, tenant.settings));
    }
    // The executor stops when the last tenant finishes, so slow
    // tenants keep receiving background load from fast ones for most
    // of their run — the "continuously serve multiple models while
    // maintaining QoS" condition of Sec. IV-B.
    size_t remaining = runs.size();
    for (auto &run : runs) {
        run->begin([this, &remaining] {
            if (--remaining == 0)
                executor_.stop();
        });
    }
    executor_.run();
    std::vector<TestResult> results;
    results.reserve(runs.size());
    for (auto &run : runs)
        results.push_back(run->finalize());
    return results;
}

} // namespace loadgen
} // namespace mlperf
