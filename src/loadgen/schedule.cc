#include "loadgen/schedule.h"

#include <cassert>
#include <numeric>

#include "common/rng.h"

namespace mlperf {
namespace loadgen {

std::vector<QuerySampleIndex>
generateSampleIndices(uint64_t count, uint64_t population,
                      uint64_t seed, TestSettings::SampleIndexMode mode)
{
    assert(population > 0);
    std::vector<QuerySampleIndex> out;
    out.reserve(count);
    Rng rng(seed);
    if (mode == TestSettings::SampleIndexMode::SameIndex) {
        // TEST04-B: every query references the same sample; a caching
        // SUT would short-circuit these.
        const QuerySampleIndex idx = rng.nextBelow(population);
        out.assign(count, idx);
    } else if (mode == TestSettings::SampleIndexMode::UniqueSweep) {
        // Repeated shuffled sweeps: every index is unique within a
        // sweep; duplicates only recur across sweeps.
        std::vector<QuerySampleIndex> perm(population);
        std::iota(perm.begin(), perm.end(), 0);
        while (out.size() < count) {
            shuffle(perm, rng);
            for (QuerySampleIndex idx : perm) {
                if (out.size() == count)
                    break;
                out.push_back(idx);
            }
        }
    } else {
        for (uint64_t i = 0; i < count; ++i)
            out.push_back(rng.nextBelow(population));
    }
    return out;
}

std::vector<QuerySampleIndex>
accuracySweepIndices(uint64_t total)
{
    std::vector<QuerySampleIndex> out(total);
    std::iota(out.begin(), out.end(), 0);
    return out;
}

std::vector<sim::Tick>
generatePoissonArrivals(uint64_t count, double qps, uint64_t seed)
{
    assert(qps > 0.0);
    std::vector<sim::Tick> out;
    out.reserve(count);
    Rng rng(seed);
    double t = 0.0;
    for (uint64_t i = 0; i < count; ++i) {
        t += rng.nextExponential(qps) *
             static_cast<double>(sim::kNsPerSec);
        out.push_back(static_cast<sim::Tick>(t));
    }
    return out;
}

std::vector<sim::Tick>
generateBurstyArrivals(uint64_t count, double qps, double burst_factor,
                       uint64_t seed)
{
    assert(qps > 0.0);
    assert(burst_factor > 1.0 && burst_factor < 4.0);
    constexpr double kDuty = 0.25;  // fraction of time in a burst
    const double rate_on = burst_factor * qps;
    // Solve duty*rate_on + (1-duty)*rate_off == qps.
    const double rate_off =
        qps * (1.0 - kDuty * burst_factor) / (1.0 - kDuty);
    const double mean_phase_s = 50.0 / qps;

    std::vector<sim::Tick> out;
    out.reserve(count);
    Rng rng(seed);
    double t = 0.0;
    bool in_burst = false;
    double phase_end = rng.nextExponential(1.0 / mean_phase_s);
    while (out.size() < count) {
        const double rate = in_burst ? rate_on : rate_off;
        const double gap = rng.nextExponential(rate);
        if (t + gap > phase_end) {
            // Cross into the next phase; restart the draw there (the
            // exponential's memorylessness makes this exact).
            t = phase_end;
            in_burst = !in_burst;
            const double mean =
                in_burst ? mean_phase_s * kDuty / (1.0 - kDuty)
                         : mean_phase_s;
            phase_end = t + rng.nextExponential(1.0 / mean);
            continue;
        }
        t += gap;
        out.push_back(static_cast<sim::Tick>(
            t * static_cast<double>(sim::kNsPerSec)));
    }
    return out;
}

std::vector<sim::Tick>
generateFixedArrivals(uint64_t count, sim::Tick interval)
{
    std::vector<sim::Tick> out;
    out.reserve(count);
    for (uint64_t i = 0; i < count; ++i)
        out.push_back(i * interval);
    return out;
}

} // namespace loadgen
} // namespace mlperf
