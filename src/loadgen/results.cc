#include "loadgen/results.h"

#include "common/string_util.h"

namespace mlperf {
namespace loadgen {

double
TestResult::scenarioMetric() const
{
    switch (scenario) {
      case Scenario::SingleStream:
        return static_cast<double>(latency.p90);
      case Scenario::MultiStream:
        return static_cast<double>(samplesPerQuery);
      case Scenario::Server:
        return scheduledQps;
      case Scenario::Offline:
        return completedQps;
      case Scenario::TokenStream:
        return tokensPerSecond;
    }
    return 0.0;
}

std::string
TestResult::scenarioMetricLabel() const
{
    switch (scenario) {
      case Scenario::SingleStream:
        return "90th percentile latency (ns)";
      case Scenario::MultiStream:
        return "Samples per query";
      case Scenario::Server:
        return "Scheduled samples per second";
      case Scenario::Offline:
        return "Samples per second";
      case Scenario::TokenStream:
        return "Output tokens per second";
    }
    return "?";
}

std::string
TestResult::summary() const
{
    std::string out;
    out += "================================================\n";
    out += "MLPerf Results Summary\n";
    out += "================================================\n";
    out += "SUT name : " + sutName + "\n";
    out += "QSL name : " + qslName + "\n";
    out += "Scenario : " + scenarioName(scenario) + "\n";
    out += "Mode     : " + testModeName(mode) + "\n";
    out += strprintf("%s : %.2f\n", scenarioMetricLabel().c_str(),
                     scenarioMetric());
    out += strprintf("Result is : %s\n", valid ? "VALID" : "INVALID");
    if (droppedQueries > 0) {
        out += strprintf("  * %s queries never completed\n",
                         withThousands(droppedQueries).c_str());
    }
    if (!minDurationMet)
        out += "  * Min duration requirement NOT met\n";
    if (!minQueriesMet)
        out += "  * Min queries requirement NOT met\n";
    if (!latencyBoundMet)
        out += "  * Latency constraint NOT met\n";
    out += "\n";
    out += "================================================\n";
    out += "Additional Stats\n";
    out += "================================================\n";
    out += strprintf("Queries issued    : %s\n",
                     withThousands(queryCount).c_str());
    out += strprintf("Samples completed : %s\n",
                     withThousands(sampleCount).c_str());
    out += strprintf("Run duration      : %s\n",
                     formatDuration(durationNs).c_str());
    out += strprintf("Completed samples per second : %.2f\n",
                     completedQps);
    if (latency.count > 0) {
        out += strprintf("Min latency    : %s\n",
                         formatDuration(latency.minNs).c_str());
        out += strprintf("Mean latency   : %s\n",
                         formatDuration(static_cast<uint64_t>(
                             latency.meanNs)).c_str());
        out += strprintf("50.00 pct lat. : %s\n",
                         formatDuration(latency.p50).c_str());
        out += strprintf("90.00 pct lat. : %s\n",
                         formatDuration(latency.p90).c_str());
        out += strprintf("95.00 pct lat. : %s\n",
                         formatDuration(latency.p95).c_str());
        out += strprintf("97.00 pct lat. : %s\n",
                         formatDuration(latency.p97).c_str());
        out += strprintf("99.00 pct lat. : %s\n",
                         formatDuration(latency.p99).c_str());
        out += strprintf("Max latency    : %s\n",
                         formatDuration(latency.maxNs).c_str());
    }
    if (scenario == Scenario::MultiStream) {
        out += strprintf("Queries with skipped intervals : %s\n",
                         withThousands(queriesWithSkippedIntervals)
                             .c_str());
    }
    if (scenario == Scenario::Server ||
        scenario == Scenario::MultiStream ||
        scenario == Scenario::TokenStream) {
        out += strprintf("Over-latency fraction : %.4f\n",
                         overLatencyFraction);
    }
    if (scenario == Scenario::TokenStream) {
        out += strprintf("Output tokens : %s\n",
                         withThousands(totalTokens).c_str());
        if (ttft.count > 0) {
            out += strprintf("TTFT mean      : %s\n",
                             formatDuration(static_cast<uint64_t>(
                                 ttft.meanNs)).c_str());
            out += strprintf("TTFT 50.00 pct : %s\n",
                             formatDuration(ttft.p50).c_str());
            out += strprintf("TTFT 99.00 pct : %s\n",
                             formatDuration(ttft.p99).c_str());
            out += strprintf("TTFT tail      : %s\n",
                             formatDuration(ttftTailNs).c_str());
        }
        if (tpot.count > 0) {
            out += strprintf("TPOT mean      : %s\n",
                             formatDuration(static_cast<uint64_t>(
                                 tpot.meanNs)).c_str());
            out += strprintf("TPOT 99.00 pct : %s\n",
                             formatDuration(tpot.p99).c_str());
        }
    }
    if ((scenario == Scenario::Server ||
         scenario == Scenario::TokenStream) &&
        latency.count > 0) {
        out += strprintf(
            "Corrected tail latency (sched-ref) : %s\n",
            formatDuration(correctedTailLatencyNs).c_str());
        out += strprintf(
            "Issued-referenced tail latency     : %s\n",
            formatDuration(issuedTailLatencyNs).c_str());
        out += strprintf(
            "Issue drift (mean/max) : %s / %s\n",
            formatDuration(meanIssueDriftNs).c_str(),
            formatDuration(maxIssueDriftNs).c_str());
    }
    if (errorSamples() > 0 || degradedSamples > 0) {
        out += "Fault accounting\n";
        if (shedSamples > 0)
            out += strprintf("  Shed samples     : %s\n",
                             withThousands(shedSamples).c_str());
        if (timeoutSamples > 0)
            out += strprintf("  Timed-out samples: %s\n",
                             withThousands(timeoutSamples).c_str());
        if (failedSamples > 0)
            out += strprintf("  Failed samples   : %s\n",
                             withThousands(failedSamples).c_str());
        if (degradedSamples > 0)
            out += strprintf("  Degraded serves  : %s\n",
                             withThousands(degradedSamples).c_str());
        out += strprintf("  Errored queries  : %s\n",
                         withThousands(erroredQueries).c_str());
    }
    return out;
}

std::string
TestResult::timelineCsv() const
{
    std::string out = "query,scheduled_ns,issued_ns,completed_ns,"
                      "latency_ns\n";
    const bool from_scheduled = scenario == Scenario::Server ||
                                scenario == Scenario::TokenStream;
    for (size_t i = 0; i < timeline.size(); ++i) {
        const auto &q = timeline[i];
        const sim::Tick reference =
            from_scheduled ? q.scheduled : q.issued;
        out += strprintf(
            "%zu,%llu,%llu,%llu,%llu\n", i,
            static_cast<unsigned long long>(q.scheduled),
            static_cast<unsigned long long>(q.issued),
            static_cast<unsigned long long>(q.completed),
            static_cast<unsigned long long>(q.completed - reference));
    }
    return out;
}

void
determineValidity(TestResult &result, const TestSettings &settings)
{
    result.minQueriesMet = result.queryCount >= settings.minQueryCount;
    // A capped run (maxQueryCount) is exempt from the floors: caps
    // exist for experimentation, and results are flagged by the cap
    // itself in the settings used.
    if (settings.maxQueryCount != 0 &&
        settings.maxQueryCount < settings.minQueryCount) {
        result.minQueriesMet =
            result.queryCount >= settings.maxQueryCount;
    }
    result.minDurationMet =
        result.durationNs >= settings.minDurationNs ||
        (settings.maxQueryCount != 0 &&
         result.queryCount >= settings.maxQueryCount);
    if (settings.scenario == Scenario::Offline) {
        // The offline floor is on samples, not duration.
        result.minDurationMet = true;
        result.minQueriesMet =
            result.sampleCount >= settings.offlineSampleCount ||
            (settings.maxQueryCount != 0 && result.queryCount >= 1);
    }

    switch (settings.scenario) {
      case Scenario::SingleStream:
      case Scenario::Offline:
        // No latency constraint.
        result.latencyBoundMet = true;
        break;
      case Scenario::Server:
      case Scenario::TokenStream:
        // TokenStream counts a query over-latency when its TTFT (or
        // TPOT, if bounded) exceeds the target; the allowance math is
        // the server scenario's.
        result.latencyBoundMet =
            result.overLatencyFraction <=
            settings.maxOverLatencyFraction;
        break;
      case Scenario::MultiStream:
        // "No more than 1% of the queries may produce one or more
        // skipped intervals."
        result.latencyBoundMet =
            result.queryCount == 0 ||
            static_cast<double>(result.queriesWithSkippedIntervals) /
                    static_cast<double>(result.queryCount) <=
                settings.maxOverLatencyFraction;
        break;
    }

    // Every issued query must have completed: a SUT that drops
    // responses cannot produce a valid result.
    result.valid = result.minQueriesMet && result.minDurationMet &&
                   result.latencyBoundMet &&
                   result.droppedQueries == 0;
}

} // namespace loadgen
} // namespace mlperf
