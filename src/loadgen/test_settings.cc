#include "loadgen/test_settings.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "stats/sample_size.h"

namespace mlperf {
namespace loadgen {

std::string
scenarioName(Scenario scenario)
{
    switch (scenario) {
      case Scenario::SingleStream: return "SingleStream";
      case Scenario::MultiStream:  return "MultiStream";
      case Scenario::Server:       return "Server";
      case Scenario::Offline:      return "Offline";
      case Scenario::TokenStream:  return "TokenStream";
    }
    return "?";
}

std::string
testModeName(TestMode mode)
{
    return mode == TestMode::PerformanceOnly ? "PerformanceOnly"
                                             : "AccuracyOnly";
}

std::string
responseStatusName(ResponseStatus status)
{
    switch (status) {
      case ResponseStatus::Ok:       return "Ok";
      case ResponseStatus::Degraded: return "Degraded";
      case ResponseStatus::Shed:     return "Shed";
      case ResponseStatus::Timeout:  return "Timeout";
      case ResponseStatus::Failed:   return "Failed";
    }
    return "?";
}

TestSettings
TestSettings::forScenario(Scenario scenario)
{
    TestSettings s;
    s.scenario = scenario;
    switch (scenario) {
      case Scenario::SingleStream:
        // 1,024 queries, 90th-percentile latency metric.
        s.minQueryCount = stats::kSingleStreamMinQueries;
        s.tailPercentile = 0.90;
        break;
      case Scenario::MultiStream:
      case Scenario::Server:
        // 99th-percentile tail at 99% confidence -> 270,336 queries
        // (Table IV); translation tasks override to 97th/90K.
        s.minQueryCount =
            stats::queryRequirement(0.99).roundedQueries;
        s.tailPercentile = 0.99;
        break;
      case Scenario::TokenStream:
        // Open-loop like Server, but the tail constraint moves to the
        // first token; generation workloads use the NMT-style 97th
        // percentile with a 3% over-latency allowance.
        s.minQueryCount =
            stats::queryRequirement(0.97).roundedQueries;
        s.tailPercentile = 0.97;
        s.maxOverLatencyFraction = 0.03;
        break;
      case Scenario::Offline:
        s.minQueryCount = 1;
        s.offlineSampleCount = stats::kOfflineMinSamples;
        break;
    }
    return s;
}

namespace {

std::string
trim(const std::string &s)
{
    const auto first = s.find_first_not_of(" \t\r");
    if (first == std::string::npos)
        return "";
    const auto last = s.find_last_not_of(" \t\r");
    return s.substr(first, last - first + 1);
}

Scenario
parseScenario(const std::string &value)
{
    if (value == "SingleStream")
        return Scenario::SingleStream;
    if (value == "MultiStream")
        return Scenario::MultiStream;
    if (value == "Server")
        return Scenario::Server;
    if (value == "Offline")
        return Scenario::Offline;
    if (value == "TokenStream")
        return Scenario::TokenStream;
    throw std::invalid_argument("unknown scenario: " + value);
}

ArrivalPattern
parseArrivalPattern(const std::string &value)
{
    if (value == "poisson")
        return ArrivalPattern::Poisson;
    if (value == "bursty")
        return ArrivalPattern::Bursty;
    if (value == "diurnal")
        return ArrivalPattern::Diurnal;
    if (value == "sessions")
        return ArrivalPattern::SessionBurst;
    if (value == "recorded")
        return ArrivalPattern::Recorded;
    throw std::invalid_argument("unknown arrival_pattern: " + value);
}

} // namespace

void
TestSettings::applyConfig(const std::string &config)
{
    std::istringstream stream(config);
    std::string line;
    while (std::getline(stream, line)) {
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        line = trim(line);
        if (line.empty())
            continue;
        const auto eq = line.find('=');
        if (eq == std::string::npos)
            throw std::invalid_argument("malformed config line: " + line);
        const std::string key = trim(line.substr(0, eq));
        const std::string value = trim(line.substr(eq + 1));

        if (key == "scenario") {
            scenario = parseScenario(value);
        } else if (key == "mode") {
            if (value == "PerformanceOnly")
                mode = TestMode::PerformanceOnly;
            else if (value == "AccuracyOnly")
                mode = TestMode::AccuracyOnly;
            else
                throw std::invalid_argument("unknown mode: " + value);
        } else if (key == "server_target_qps") {
            serverTargetQps = std::stod(value);
        } else if (key == "server_burst_factor") {
            serverBurstFactor = std::stod(value);
        } else if (key == "arrival_pattern") {
            serverTrace.pattern = parseArrivalPattern(value);
        } else if (key == "diurnal_amplitude") {
            serverTrace.diurnalAmplitude = std::stod(value);
        } else if (key == "diurnal_period_s") {
            serverTrace.diurnalPeriodNs = static_cast<sim::Tick>(
                std::stod(value) * static_cast<double>(sim::kNsPerSec));
        } else if (key == "session_mean_size") {
            serverTrace.sessionMeanSize = std::stod(value);
        } else if (key == "session_pareto_alpha") {
            serverTrace.sessionParetoAlpha = std::stod(value);
        } else if (key == "session_gap_ms") {
            serverTrace.sessionGapNs = static_cast<sim::Tick>(
                std::stod(value) * static_cast<double>(sim::kNsPerMs));
        } else if (key == "session_gap_sigma") {
            serverTrace.sessionGapSigma = std::stod(value);
        } else if (key == "trace_file") {
            std::ifstream file(value);
            if (!file) {
                throw std::invalid_argument(
                    "trace_file not readable: " + value);
            }
            std::ostringstream contents;
            contents << file.rdbuf();
            serverTrace.recorded = parseRecordedTrace(contents.str());
            serverTrace.pattern = ArrivalPattern::Recorded;
        } else if (key == "samples_per_query") {
            multiStreamSamplesPerQuery = std::stoull(value);
        } else if (key == "multistream_arrival_ms") {
            multiStreamArrivalNs = static_cast<uint64_t>(
                std::stod(value) * static_cast<double>(sim::kNsPerMs));
        } else if (key == "target_latency_ms") {
            targetLatencyNs = static_cast<uint64_t>(
                std::stod(value) * static_cast<double>(sim::kNsPerMs));
        } else if (key == "ttft_target_ms") {
            ttftTargetNs = static_cast<uint64_t>(
                std::stod(value) * static_cast<double>(sim::kNsPerMs));
        } else if (key == "tpot_target_ms") {
            tpotTargetNs = static_cast<uint64_t>(
                std::stod(value) * static_cast<double>(sim::kNsPerMs));
        } else if (key == "server_query_deadline_ms") {
            serverQueryDeadlineNs = static_cast<uint64_t>(
                std::stod(value) * static_cast<double>(sim::kNsPerMs));
        } else if (key == "tail_percentile") {
            tailPercentile = std::stod(value);
        } else if (key == "max_over_latency_fraction") {
            maxOverLatencyFraction = std::stod(value);
        } else if (key == "min_query_count") {
            minQueryCount = std::stoull(value);
        } else if (key == "min_duration_ms") {
            minDurationNs = static_cast<uint64_t>(
                std::stod(value) * static_cast<double>(sim::kNsPerMs));
        } else if (key == "offline_sample_count") {
            offlineSampleCount = std::stoull(value);
        } else if (key == "max_query_count") {
            maxQueryCount = std::stoull(value);
        } else if (key == "sample_index_seed") {
            sampleIndexSeed = std::stoull(value);
        } else if (key == "schedule_seed") {
            scheduleSeed = std::stoull(value);
        } else if (key == "sample_index_mode") {
            if (value == "random")
                sampleIndexMode = SampleIndexMode::RandomWithReplacement;
            else if (value == "unique")
                sampleIndexMode = SampleIndexMode::UniqueSweep;
            else if (value == "same")
                sampleIndexMode = SampleIndexMode::SameIndex;
            else
                throw std::invalid_argument(
                    "unknown sample_index_mode: " + value);
        } else if (key == "accuracy_log_fraction") {
            accuracyLogFraction = std::stod(value);
        } else if (key == "record_timeline") {
            recordTimeline = (value == "1" || value == "true");
        } else {
            throw std::invalid_argument("unknown config key: " + key);
        }
    }
}

} // namespace loadgen
} // namespace mlperf
