/**
 * @file
 * Core LoadGen types (paper Sec. IV).
 *
 * A *sample* is one unit of inference work (an image, a sentence); a
 * *query* is a request for inference on one or more samples. The
 * LoadGen issues queries to the System Under Test (SUT) according to
 * the active scenario and records per-query completion latencies.
 */

#ifndef MLPERF_LOADGEN_TYPES_H
#define MLPERF_LOADGEN_TYPES_H

#include <cstdint>
#include <string>
#include <vector>

namespace mlperf {
namespace loadgen {

/**
 * The four evaluation scenarios (paper Table II), plus TokenStream —
 * the autoregressive token-streaming scenario MLPerf added after the
 * paper: server-style open-loop arrivals, but each query's answer is
 * a token stream and the latency constraint applies to the time to
 * first token (TTFT) rather than whole-query completion.
 */
enum class Scenario
{
    SingleStream,
    MultiStream,
    Server,
    Offline,
    TokenStream,
};

/** Scenario name, e.g. "Server". */
std::string scenarioName(Scenario scenario);

/** LoadGen operating modes (Sec. IV-B). */
enum class TestMode
{
    PerformanceOnly,
    AccuracyOnly,
};

std::string testModeName(TestMode mode);

/** Index of a sample within the QuerySampleLibrary. */
using QuerySampleIndex = uint64_t;

/** Opaque id identifying one in-flight sample issue. */
using ResponseId = uint64_t;

/** One sample of a query as handed to the SUT. */
struct QuerySample
{
    ResponseId id = 0;
    QuerySampleIndex index = 0;
};

/**
 * How a sample completed. Fault-tolerant SUTs never leave the LoadGen
 * hanging: a sample that cannot be served is still completed, carrying
 * one of the error statuses so the run finishes and the failure is
 * visible in the result counters instead of as a wedged run.
 */
enum class ResponseStatus : uint8_t
{
    Ok,        //!< served normally
    Degraded,  //!< served by a degraded/fallback path (still an answer)
    Shed,      //!< rejected by admission control / backpressure
    Timeout,   //!< missed its deadline; completed by the reaper
    Failed,    //!< inference fault (after retries / breaker fast-fail)
};

/** True for statuses that carry no usable answer. */
inline bool
responseIsError(ResponseStatus status)
{
    return status == ResponseStatus::Shed ||
           status == ResponseStatus::Timeout ||
           status == ResponseStatus::Failed;
}

/** Status name, e.g. "Timeout". */
std::string responseStatusName(ResponseStatus status);

/**
 * Completion record the SUT returns. @c data carries the inference
 * result opaquely; it is logged in accuracy mode and handed to the
 * accuracy script, never interpreted by the LoadGen itself (the
 * benchmark/metric decoupling of Sec. IV-B). @c status reports how
 * the sample was served; error statuses count against the query in
 * validity determination.
 */
struct QuerySampleResponse
{
    ResponseId id = 0;
    std::string data;
    ResponseStatus status = ResponseStatus::Ok;
    /**
     * Output tokens this sample's answer streamed (token-streaming
     * SUTs only; 0 elsewhere). Feeds the TokenStream scenario's
     * tokens/sec metric and its per-output-token latencies.
     */
    uint64_t tokenCount = 0;
};

} // namespace loadgen
} // namespace mlperf

#endif // MLPERF_LOADGEN_TYPES_H
