/**
 * @file
 * Core LoadGen types (paper Sec. IV).
 *
 * A *sample* is one unit of inference work (an image, a sentence); a
 * *query* is a request for inference on one or more samples. The
 * LoadGen issues queries to the System Under Test (SUT) according to
 * the active scenario and records per-query completion latencies.
 */

#ifndef MLPERF_LOADGEN_TYPES_H
#define MLPERF_LOADGEN_TYPES_H

#include <cstdint>
#include <string>
#include <vector>

namespace mlperf {
namespace loadgen {

/** The four evaluation scenarios (paper Table II). */
enum class Scenario
{
    SingleStream,
    MultiStream,
    Server,
    Offline,
};

/** Scenario name, e.g. "Server". */
std::string scenarioName(Scenario scenario);

/** LoadGen operating modes (Sec. IV-B). */
enum class TestMode
{
    PerformanceOnly,
    AccuracyOnly,
};

std::string testModeName(TestMode mode);

/** Index of a sample within the QuerySampleLibrary. */
using QuerySampleIndex = uint64_t;

/** Opaque id identifying one in-flight sample issue. */
using ResponseId = uint64_t;

/** One sample of a query as handed to the SUT. */
struct QuerySample
{
    ResponseId id = 0;
    QuerySampleIndex index = 0;
};

/**
 * Completion record the SUT returns. @c data carries the inference
 * result opaquely; it is logged in accuracy mode and handed to the
 * accuracy script, never interpreted by the LoadGen itself (the
 * benchmark/metric decoupling of Sec. IV-B).
 */
struct QuerySampleResponse
{
    ResponseId id = 0;
    std::string data;
};

} // namespace loadgen
} // namespace mlperf

#endif // MLPERF_LOADGEN_TYPES_H
