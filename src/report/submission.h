/**
 * @file
 * Result submission records and the results-page renderer
 * (paper Sec. V-A / V-C).
 *
 * A submission carries a system description ("accelerator count, CPU
 * count, software release"), a division (closed/open), an
 * availability category, and per-benchmark results. Rendering follows
 * the paper's reporting rules: results grouped by division, open
 * entries list their deviations, and there is deliberately NO summary
 * score ("MLPerf Inference provides no 'summary score'").
 */

#ifndef MLPERF_REPORT_SUBMISSION_H
#define MLPERF_REPORT_SUBMISSION_H

#include <cstdint>
#include <string>
#include <vector>

namespace mlperf {
namespace report {

enum class Division { Closed, Open };

std::string divisionName(Division division);

/** The system-description file of a submission (Sec. V-A). */
struct SystemDescription
{
    std::string systemName;
    std::string submitter = "anonymous";
    std::string processor;        //!< e.g. "GPU"
    int64_t acceleratorCount = 1;
    std::string framework;        //!< software release
    std::string category;         //!< available / preview / rdo
};

/** One benchmark result within a submission. */
struct SubmissionResult
{
    SystemDescription system;
    Division division = Division::Closed;
    std::string benchmark;        //!< model name
    std::string scenario;         //!< SingleStream / ...
    double metric = 0.0;
    std::string metricLabel;
    bool valid = false;
    /** Open division: required documentation of deviations. */
    std::string openDeviations;
};

/**
 * Render the results page: closed division first, then open; invalid
 * results are listed but marked (the paper released only valid ones —
 * the caller filters if desired). Throws std::invalid_argument if an
 * open-division entry lacks its deviation documentation.
 */
std::string renderResultsPage(
    const std::vector<SubmissionResult> &results);

} // namespace report
} // namespace mlperf

#endif // MLPERF_REPORT_SUBMISSION_H
