#include "report/table.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace mlperf {
namespace report {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    cells.resize(headers_.size());
    rows_.push_back(std::move(cells));
}

void
Table::addRule()
{
    rows_.emplace_back();
}

std::string
Table::str() const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto renderRow = [&](const std::vector<std::string> &cells) {
        std::string line;
        for (size_t c = 0; c < headers_.size(); ++c) {
            if (c)
                line += "  ";
            line += padRight(c < cells.size() ? cells[c] : "",
                             widths[c]);
        }
        // Trim trailing spaces.
        while (!line.empty() && line.back() == ' ')
            line.pop_back();
        return line + "\n";
    };

    std::string rule;
    for (size_t c = 0; c < headers_.size(); ++c) {
        if (c)
            rule += "  ";
        rule += std::string(widths[c], '-');
    }
    rule += "\n";

    std::string out = renderRow(headers_);
    out += rule;
    for (const auto &row : rows_) {
        if (row.empty())
            out += rule;
        else
            out += renderRow(row);
    }
    return out;
}

std::string
banner(const std::string &title)
{
    const std::string line(64, '=');
    return line + "\n" + title + "\n" + line + "\n";
}

std::string
fmt(double value, int precision)
{
    return strprintf("%.*f", precision, value);
}

std::string
fmtCompact(double value)
{
    const double mag = std::abs(value);
    if (mag >= 1e6 || (mag > 0 && mag < 1e-2))
        return strprintf("%.3g", value);
    if (mag >= 1000)
        return strprintf("%.0f", value);
    return strprintf("%.2f", value);
}

std::string
bar(double value, double max_value, int width)
{
    if (max_value <= 0.0)
        return "";
    const int n = static_cast<int>(
        std::round(value / max_value * width));
    return std::string(static_cast<size_t>(std::clamp(n, 0, width)),
                       '#');
}

std::string
logBar(double value, double max_value, int width)
{
    if (value <= 0.0 || max_value <= 0.0)
        return "";
    // Map [1, max] logarithmically onto [1, width].
    const double log_max = std::log10(max_value);
    if (log_max <= 0.0)
        return "#";
    const double t = std::log10(std::max(1.0, value)) / log_max;
    const int n =
        1 + static_cast<int>(std::round(t * (width - 1)));
    return std::string(static_cast<size_t>(std::clamp(n, 1, width)),
                       '#');
}

} // namespace report
} // namespace mlperf
