/**
 * @file
 * Fixed-width table and ASCII-chart emitters used by the benches to
 * print paper tables and figures.
 */

#ifndef MLPERF_REPORT_TABLE_H
#define MLPERF_REPORT_TABLE_H

#include <string>
#include <vector>

namespace mlperf {
namespace report {

/** Column-aligned text table with a header rule. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);
    /** A horizontal rule row (printed as dashes). */
    void addRule();

    /** Render with columns sized to the widest cell. */
    std::string str() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;  //!< empty = rule
};

/** Title banner matching the benches' output style. */
std::string banner(const std::string &title);

/** Format a double with the given precision, trimming wide values. */
std::string fmt(double value, int precision = 2);

/** Scientific-style compact formatting for wide-range values. */
std::string fmtCompact(double value);

/**
 * Horizontal ASCII bar scaled so @p max_value fills @p width
 * characters (for figure-style output).
 */
std::string bar(double value, double max_value, int width = 40);

/**
 * Log-scale ASCII bar for values spanning orders of magnitude
 * (Figure 8 style); both values must be positive.
 */
std::string logBar(double value, double max_value, int width = 40);

} // namespace report
} // namespace mlperf

#endif // MLPERF_REPORT_TABLE_H
