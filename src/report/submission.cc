#include "report/submission.h"

#include <stdexcept>

#include "report/table.h"

namespace mlperf {
namespace report {

std::string
divisionName(Division division)
{
    return division == Division::Closed ? "closed" : "open";
}

std::string
renderResultsPage(const std::vector<SubmissionResult> &results)
{
    for (const auto &result : results) {
        if (result.division == Division::Open &&
            result.openDeviations.empty()) {
            throw std::invalid_argument(
                "open-division submission for " +
                result.system.systemName +
                " must document its deviations");
        }
    }

    std::string out;
    for (Division division : {Division::Closed, Division::Open}) {
        bool any = false;
        Table table(division == Division::Closed
                        ? std::vector<std::string>{
                              "System", "Submitter", "Processor",
                              "Accel.", "Framework", "Category",
                              "Benchmark", "Scenario", "Metric",
                              "Result"}
                        : std::vector<std::string>{
                              "System", "Submitter", "Benchmark",
                              "Scenario", "Metric", "Result",
                              "Deviations"});
        for (const auto &r : results) {
            if (r.division != division)
                continue;
            any = true;
            if (division == Division::Closed) {
                table.addRow({r.system.systemName,
                              r.system.submitter,
                              r.system.processor,
                              std::to_string(
                                  r.system.acceleratorCount),
                              r.system.framework, r.system.category,
                              r.benchmark, r.scenario,
                              fmtCompact(r.metric) + " " +
                                  r.metricLabel,
                              r.valid ? "VALID" : "INVALID"});
            } else {
                table.addRow({r.system.systemName,
                              r.system.submitter, r.benchmark,
                              r.scenario,
                              fmtCompact(r.metric) + " " +
                                  r.metricLabel,
                              r.valid ? "VALID" : "INVALID",
                              r.openDeviations});
            }
        }
        if (!any)
            continue;
        out += banner("MLPerf Inference results - " +
                      divisionName(division) + " division");
        out += table.str();
        out += "\n";
    }
    out += "No summary score is provided: weighting tasks is a "
           "customer-specific judgement\n(Sec. V-C).\n";
    return out;
}

} // namespace report
} // namespace mlperf
