#include "report/serving_report.h"

#include "common/string_util.h"
#include "report/table.h"

namespace mlperf {
namespace report {

namespace {

/** One histogram row: count, mean, p50/p90/p99, max. */
std::vector<std::string>
histogramRow(const std::string &label,
             const stats::LogHistogram &histogram, bool duration)
{
    auto value = [duration](uint64_t v) {
        return duration ? formatDuration(v) : withThousands(v);
    };
    return {label,
            withThousands(histogram.count()),
            duration ? formatDuration(
                           static_cast<uint64_t>(histogram.mean()))
                     : fmt(histogram.mean(), 2),
            histogram.count() ? value(histogram.percentile(0.50)) : "-",
            histogram.count() ? value(histogram.percentile(0.90)) : "-",
            histogram.count() ? value(histogram.percentile(0.99)) : "-",
            histogram.count() ? value(histogram.max()) : "-"};
}

const char *
breakerStateName(serving::BreakerState state)
{
    switch (state) {
      case serving::BreakerState::Closed: return "closed";
      case serving::BreakerState::Open: return "open";
      case serving::BreakerState::HalfOpen: return "half-open";
    }
    return "closed";
}

/** Any resilience machinery fired during the run? */
bool
hasResilienceActivity(const serving::StatsSnapshot &snapshot)
{
    return snapshot.admissionShedSamples != 0 ||
           snapshot.expiredSamples != 0 ||
           snapshot.timeoutSamples != 0 ||
           snapshot.droppedCompletions != 0 ||
           snapshot.failedSamples != 0 || snapshot.retries != 0 ||
           snapshot.breakerOpens != 0 ||
           snapshot.breakerFastFailSamples != 0 ||
           snapshot.degradedSamples != 0;
}

std::string
histogramJson(const stats::LogHistogram &histogram)
{
    if (histogram.count() == 0)
        return "{\"count\":0}";
    return strprintf(
        "{\"count\":%llu,\"mean\":%.2f,\"p50\":%llu,\"p90\":%llu,"
        "\"p99\":%llu,\"max\":%llu}",
        static_cast<unsigned long long>(histogram.count()),
        histogram.mean(),
        static_cast<unsigned long long>(histogram.percentile(0.50)),
        static_cast<unsigned long long>(histogram.percentile(0.90)),
        static_cast<unsigned long long>(histogram.percentile(0.99)),
        static_cast<unsigned long long>(histogram.max()));
}

} // namespace

std::string
renderServingSummary(const serving::StatsSnapshot &snapshot,
                     sim::Tick elapsed_ns)
{
    std::string out;
    out += "Serving runtime statistics\n";
    out += strprintf(
        "  samples: issued %s, completed %s, shed %s\n",
        withThousands(snapshot.samplesIssued).c_str(),
        withThousands(snapshot.samplesCompleted).c_str(),
        withThousands(snapshot.samplesShed).c_str());
    out += strprintf(
        "  batches: %s formed (%s size / %s timeout / %s drain), "
        "%s shed, avg size %.2f\n",
        withThousands(snapshot.batchesFormed).c_str(),
        withThousands(snapshot.sizeFlushes).c_str(),
        withThousands(snapshot.timeoutFlushes).c_str(),
        withThousands(snapshot.drainFlushes).c_str(),
        withThousands(snapshot.batchesShed).c_str(),
        snapshot.averageBatchSize());
    out += strprintf(
        "  workers: %lld, utilization %.1f%% over %s\n",
        static_cast<long long>(snapshot.workers),
        100.0 * snapshot.utilization(elapsed_ns),
        formatDuration(elapsed_ns).c_str());
    if (hasResilienceActivity(snapshot)) {
        out += strprintf(
            "  resilience: shed-rate %.2f%% (admission %s, "
            "backpressure %s, expired %s)\n",
            100.0 * snapshot.shedRate(),
            withThousands(snapshot.admissionShedSamples).c_str(),
            withThousands(snapshot.samplesShed).c_str(),
            withThousands(snapshot.expiredSamples).c_str());
        out += strprintf(
            "    timed out %s, dropped completions %s, failed %s "
            "(%s batches)\n",
            withThousands(snapshot.timeoutSamples).c_str(),
            withThousands(snapshot.droppedCompletions).c_str(),
            withThousands(snapshot.failedSamples).c_str(),
            withThousands(snapshot.batchesFailed).c_str());
        out += strprintf(
            "    retries %s (saved %s, exhausted %s); breaker %s "
            "(opens %s, fast-failed %s samples)\n",
            withThousands(snapshot.retries).c_str(),
            withThousands(snapshot.retrySuccesses).c_str(),
            withThousands(snapshot.retriesExhausted).c_str(),
            breakerStateName(snapshot.breakerState),
            withThousands(snapshot.breakerOpens).c_str(),
            withThousands(snapshot.breakerFastFailSamples).c_str());
        out += strprintf(
            "    degraded serves %s (mode entered %s, exited %s)\n",
            withThousands(snapshot.degradedSamples).c_str(),
            withThousands(snapshot.degradeEntries).c_str(),
            withThousands(snapshot.degradeExits).c_str());
    }

    Table table({"Stage", "Count", "Mean", "p50", "p90", "p99", "Max"});
    table.addRow(histogramRow("Queue depth (samples)",
                              snapshot.queueDepth, false));
    table.addRow(histogramRow("Batch size", snapshot.batchSize, false));
    table.addRow(histogramRow("Time in queue", snapshot.timeInQueueNs,
                              true));
    table.addRow(histogramRow("Service time", snapshot.serviceTimeNs,
                              true));
    out += table.str();
    return out;
}

std::string
servingSnapshotJson(const serving::StatsSnapshot &snapshot,
                    sim::Tick elapsed_ns)
{
    std::string out = "{";
    out += strprintf(
        "\"samples_issued\":%llu,\"samples_completed\":%llu,"
        "\"samples_shed\":%llu,\"batches_formed\":%llu,"
        "\"batches_shed\":%llu,\"size_flushes\":%llu,"
        "\"timeout_flushes\":%llu,\"drain_flushes\":%llu,"
        "\"avg_batch_size\":%.3f,\"workers\":%lld,"
        "\"utilization\":%.4f,\"elapsed_ns\":%llu,",
        static_cast<unsigned long long>(snapshot.samplesIssued),
        static_cast<unsigned long long>(snapshot.samplesCompleted),
        static_cast<unsigned long long>(snapshot.samplesShed),
        static_cast<unsigned long long>(snapshot.batchesFormed),
        static_cast<unsigned long long>(snapshot.batchesShed),
        static_cast<unsigned long long>(snapshot.sizeFlushes),
        static_cast<unsigned long long>(snapshot.timeoutFlushes),
        static_cast<unsigned long long>(snapshot.drainFlushes),
        snapshot.averageBatchSize(),
        static_cast<long long>(snapshot.workers),
        snapshot.utilization(elapsed_ns),
        static_cast<unsigned long long>(elapsed_ns));
    out += strprintf(
        "\"shed_rate\":%.5f,\"admission_shed\":%llu,"
        "\"expired\":%llu,\"timed_out\":%llu,"
        "\"dropped_completions\":%llu,\"failed\":%llu,"
        "\"batches_failed\":%llu,\"retries\":%llu,"
        "\"retry_successes\":%llu,\"retries_exhausted\":%llu,"
        "\"breaker_state\":\"%s\",\"breaker_opens\":%llu,"
        "\"breaker_fast_fail\":%llu,\"degraded\":%llu,"
        "\"degrade_entries\":%llu,\"degrade_exits\":%llu,",
        snapshot.shedRate(),
        static_cast<unsigned long long>(snapshot.admissionShedSamples),
        static_cast<unsigned long long>(snapshot.expiredSamples),
        static_cast<unsigned long long>(snapshot.timeoutSamples),
        static_cast<unsigned long long>(snapshot.droppedCompletions),
        static_cast<unsigned long long>(snapshot.failedSamples),
        static_cast<unsigned long long>(snapshot.batchesFailed),
        static_cast<unsigned long long>(snapshot.retries),
        static_cast<unsigned long long>(snapshot.retrySuccesses),
        static_cast<unsigned long long>(snapshot.retriesExhausted),
        breakerStateName(snapshot.breakerState),
        static_cast<unsigned long long>(snapshot.breakerOpens),
        static_cast<unsigned long long>(
            snapshot.breakerFastFailSamples),
        static_cast<unsigned long long>(snapshot.degradedSamples),
        static_cast<unsigned long long>(snapshot.degradeEntries),
        static_cast<unsigned long long>(snapshot.degradeExits));
    out += "\"queue_depth\":" + histogramJson(snapshot.queueDepth);
    out += ",\"batch_size\":" + histogramJson(snapshot.batchSize);
    out += ",\"time_in_queue_ns\":" +
           histogramJson(snapshot.timeInQueueNs);
    out += ",\"service_time_ns\":" +
           histogramJson(snapshot.serviceTimeNs);
    out += "}";
    return out;
}

} // namespace report
} // namespace mlperf
