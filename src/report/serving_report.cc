#include "report/serving_report.h"

#include "common/string_util.h"
#include "report/table.h"

namespace mlperf {
namespace report {

namespace {

/** One histogram row: count, mean, p50/p90/p99, max. */
std::vector<std::string>
histogramRow(const std::string &label,
             const stats::LogHistogram &histogram, bool duration)
{
    auto value = [duration](uint64_t v) {
        return duration ? formatDuration(v) : withThousands(v);
    };
    return {label,
            withThousands(histogram.count()),
            duration ? formatDuration(
                           static_cast<uint64_t>(histogram.mean()))
                     : fmt(histogram.mean(), 2),
            histogram.count() ? value(histogram.percentile(0.50)) : "-",
            histogram.count() ? value(histogram.percentile(0.90)) : "-",
            histogram.count() ? value(histogram.percentile(0.99)) : "-",
            histogram.count() ? value(histogram.max()) : "-"};
}

const char *
breakerStateName(serving::BreakerState state)
{
    switch (state) {
      case serving::BreakerState::Closed: return "closed";
      case serving::BreakerState::Open: return "open";
      case serving::BreakerState::HalfOpen: return "half-open";
    }
    return "closed";
}

/** Any resilience machinery fired during the run? */
bool
hasResilienceActivity(const serving::StatsSnapshot &snapshot)
{
    return snapshot.admissionShedSamples != 0 ||
           snapshot.expiredSamples != 0 ||
           snapshot.timeoutSamples != 0 ||
           snapshot.droppedCompletions != 0 ||
           snapshot.failedSamples != 0 || snapshot.retries != 0 ||
           snapshot.breakerOpens != 0 ||
           snapshot.breakerFastFailSamples != 0 ||
           snapshot.degradedSamples != 0;
}

std::string
histogramJson(const stats::LogHistogram &histogram)
{
    if (histogram.count() == 0)
        return "{\"count\":0}";
    return strprintf(
        "{\"count\":%llu,\"mean\":%.2f,\"p50\":%llu,\"p90\":%llu,"
        "\"p99\":%llu,\"max\":%llu}",
        static_cast<unsigned long long>(histogram.count()),
        histogram.mean(),
        static_cast<unsigned long long>(histogram.percentile(0.50)),
        static_cast<unsigned long long>(histogram.percentile(0.90)),
        static_cast<unsigned long long>(histogram.percentile(0.99)),
        static_cast<unsigned long long>(histogram.max()));
}

} // namespace

std::string
renderServingSummary(const serving::StatsSnapshot &snapshot,
                     sim::Tick elapsed_ns,
                     const loadgen::TestResult *result)
{
    std::string out;
    out += "Serving runtime statistics\n";
    out += strprintf(
        "  samples: issued %s, completed %s, shed %s\n",
        withThousands(snapshot.samplesIssued).c_str(),
        withThousands(snapshot.samplesCompleted).c_str(),
        withThousands(snapshot.samplesShed).c_str());
    out += strprintf(
        "  batches: %s formed (%s size / %s timeout / %s drain), "
        "%s shed, avg size %.2f\n",
        withThousands(snapshot.batchesFormed).c_str(),
        withThousands(snapshot.sizeFlushes).c_str(),
        withThousands(snapshot.timeoutFlushes).c_str(),
        withThousands(snapshot.drainFlushes).c_str(),
        withThousands(snapshot.batchesShed).c_str(),
        snapshot.averageBatchSize());
    out += strprintf(
        "  workers: %lld, utilization %.1f%% over %s\n",
        static_cast<long long>(snapshot.workers),
        100.0 * snapshot.utilization(elapsed_ns),
        formatDuration(elapsed_ns).c_str());
    if (hasResilienceActivity(snapshot)) {
        out += strprintf(
            "  resilience: shed-rate %.2f%% (admission %s, "
            "backpressure %s, expired %s)\n",
            100.0 * snapshot.shedRate(),
            withThousands(snapshot.admissionShedSamples).c_str(),
            withThousands(snapshot.samplesShed).c_str(),
            withThousands(snapshot.expiredSamples).c_str());
        out += strprintf(
            "    timed out %s, dropped completions %s, failed %s "
            "(%s batches)\n",
            withThousands(snapshot.timeoutSamples).c_str(),
            withThousands(snapshot.droppedCompletions).c_str(),
            withThousands(snapshot.failedSamples).c_str(),
            withThousands(snapshot.batchesFailed).c_str());
        out += strprintf(
            "    retries %s (saved %s, exhausted %s); breaker %s "
            "(opens %s, fast-failed %s samples)\n",
            withThousands(snapshot.retries).c_str(),
            withThousands(snapshot.retrySuccesses).c_str(),
            withThousands(snapshot.retriesExhausted).c_str(),
            breakerStateName(snapshot.breakerState),
            withThousands(snapshot.breakerOpens).c_str(),
            withThousands(snapshot.breakerFastFailSamples).c_str());
        out += strprintf(
            "    degraded serves %s (mode entered %s, exited %s)\n",
            withThousands(snapshot.degradedSamples).c_str(),
            withThousands(snapshot.degradeEntries).c_str(),
            withThousands(snapshot.degradeExits).c_str());
    }
    if (snapshot.activeShards != 0 || snapshot.scaleUps != 0 ||
        snapshot.scaleDowns != 0 || snapshot.sloSamples != 0) {
        out += strprintf(
            "  autoscaler: %lld shard(s) active, scaled up %s / "
            "down %s; SLO violations %s of %s judged (%.2f%%)\n",
            static_cast<long long>(snapshot.activeShards),
            withThousands(snapshot.scaleUps).c_str(),
            withThousands(snapshot.scaleDowns).c_str(),
            withThousands(snapshot.sloViolations).c_str(),
            withThousands(snapshot.sloSamples).c_str(),
            100.0 * snapshot.sloViolationRate());
    }
    if (result != nullptr &&
        result->scenario == loadgen::Scenario::Server &&
        result->latency.count > 0) {
        out += strprintf(
            "  latency audit: corrected tail %s (sched-ref) vs "
            "issued-ref %s; issue drift mean %s / max %s\n",
            formatDuration(result->correctedTailLatencyNs).c_str(),
            formatDuration(result->issuedTailLatencyNs).c_str(),
            formatDuration(result->meanIssueDriftNs).c_str(),
            formatDuration(result->maxIssueDriftNs).c_str());
    }
    const uint64_t tracked =
        snapshot.completedOk + snapshot.completedDegraded +
        snapshot.completedShed + snapshot.completedTimeout +
        snapshot.completedFailed;
    if (tracked != 0) {
        out += strprintf(
            "  tracked completions: ok %s, degraded %s, shed %s, "
            "timed out %s, failed %s\n",
            withThousands(snapshot.completedOk).c_str(),
            withThousands(snapshot.completedDegraded).c_str(),
            withThousands(snapshot.completedShed).c_str(),
            withThousands(snapshot.completedTimeout).c_str(),
            withThousands(snapshot.completedFailed).c_str());
    }

    Table table({"Stage", "Count", "Mean", "p50", "p90", "p99", "Max"});
    table.addRow(histogramRow("Queue depth (samples)",
                              snapshot.queueDepth, false));
    table.addRow(histogramRow("Batch size", snapshot.batchSize, false));
    table.addRow(histogramRow("Time in queue", snapshot.timeInQueueNs,
                              true));
    table.addRow(histogramRow("Service time", snapshot.serviceTimeNs,
                              true));
    out += table.str();
    return out;
}

std::string
servingSnapshotJson(const serving::StatsSnapshot &snapshot,
                    sim::Tick elapsed_ns,
                    const loadgen::TestResult *result)
{
    std::string out = "{";
    out += strprintf(
        "\"samples_issued\":%llu,\"samples_completed\":%llu,"
        "\"samples_shed\":%llu,\"batches_formed\":%llu,"
        "\"batches_shed\":%llu,\"size_flushes\":%llu,"
        "\"timeout_flushes\":%llu,\"drain_flushes\":%llu,"
        "\"avg_batch_size\":%.3f,\"workers\":%lld,"
        "\"utilization\":%.4f,\"elapsed_ns\":%llu,",
        static_cast<unsigned long long>(snapshot.samplesIssued),
        static_cast<unsigned long long>(snapshot.samplesCompleted),
        static_cast<unsigned long long>(snapshot.samplesShed),
        static_cast<unsigned long long>(snapshot.batchesFormed),
        static_cast<unsigned long long>(snapshot.batchesShed),
        static_cast<unsigned long long>(snapshot.sizeFlushes),
        static_cast<unsigned long long>(snapshot.timeoutFlushes),
        static_cast<unsigned long long>(snapshot.drainFlushes),
        snapshot.averageBatchSize(),
        static_cast<long long>(snapshot.workers),
        snapshot.utilization(elapsed_ns),
        static_cast<unsigned long long>(elapsed_ns));
    out += strprintf(
        "\"shed_rate\":%.5f,\"admission_shed\":%llu,"
        "\"expired\":%llu,\"timed_out\":%llu,"
        "\"dropped_completions\":%llu,\"failed\":%llu,"
        "\"batches_failed\":%llu,\"retries\":%llu,"
        "\"retry_successes\":%llu,\"retries_exhausted\":%llu,"
        "\"breaker_state\":\"%s\",\"breaker_opens\":%llu,"
        "\"breaker_fast_fail\":%llu,\"degraded\":%llu,"
        "\"degrade_entries\":%llu,\"degrade_exits\":%llu,",
        snapshot.shedRate(),
        static_cast<unsigned long long>(snapshot.admissionShedSamples),
        static_cast<unsigned long long>(snapshot.expiredSamples),
        static_cast<unsigned long long>(snapshot.timeoutSamples),
        static_cast<unsigned long long>(snapshot.droppedCompletions),
        static_cast<unsigned long long>(snapshot.failedSamples),
        static_cast<unsigned long long>(snapshot.batchesFailed),
        static_cast<unsigned long long>(snapshot.retries),
        static_cast<unsigned long long>(snapshot.retrySuccesses),
        static_cast<unsigned long long>(snapshot.retriesExhausted),
        breakerStateName(snapshot.breakerState),
        static_cast<unsigned long long>(snapshot.breakerOpens),
        static_cast<unsigned long long>(
            snapshot.breakerFastFailSamples),
        static_cast<unsigned long long>(snapshot.degradedSamples),
        static_cast<unsigned long long>(snapshot.degradeEntries),
        static_cast<unsigned long long>(snapshot.degradeExits));
    out += strprintf(
        "\"completed_ok\":%llu,\"completed_degraded\":%llu,"
        "\"completed_shed\":%llu,\"completed_timeout\":%llu,"
        "\"completed_failed\":%llu,",
        static_cast<unsigned long long>(snapshot.completedOk),
        static_cast<unsigned long long>(snapshot.completedDegraded),
        static_cast<unsigned long long>(snapshot.completedShed),
        static_cast<unsigned long long>(snapshot.completedTimeout),
        static_cast<unsigned long long>(snapshot.completedFailed));
    out += strprintf(
        "\"active_shards\":%lld,\"scale_ups\":%llu,"
        "\"scale_downs\":%llu,\"slo_samples\":%llu,"
        "\"slo_violations\":%llu,\"slo_violation_rate\":%.5f,",
        static_cast<long long>(snapshot.activeShards),
        static_cast<unsigned long long>(snapshot.scaleUps),
        static_cast<unsigned long long>(snapshot.scaleDowns),
        static_cast<unsigned long long>(snapshot.sloSamples),
        static_cast<unsigned long long>(snapshot.sloViolations),
        snapshot.sloViolationRate());
    if (result != nullptr) {
        out += strprintf(
            "\"latency_audit\":{\"corrected_tail_ns\":%llu,"
            "\"issued_tail_ns\":%llu,\"mean_issue_drift_ns\":%llu,"
            "\"max_issue_drift_ns\":%llu},",
            static_cast<unsigned long long>(
                result->correctedTailLatencyNs),
            static_cast<unsigned long long>(
                result->issuedTailLatencyNs),
            static_cast<unsigned long long>(result->meanIssueDriftNs),
            static_cast<unsigned long long>(result->maxIssueDriftNs));
    }
    out += "\"queue_depth\":" + histogramJson(snapshot.queueDepth);
    out += ",\"batch_size\":" + histogramJson(snapshot.batchSize);
    out += ",\"time_in_queue_ns\":" +
           histogramJson(snapshot.timeInQueueNs);
    out += ",\"service_time_ns\":" +
           histogramJson(snapshot.serviceTimeNs);
    out += "}";
    return out;
}

std::string
renderMultiTenantSummary(const std::vector<TenantReportRow> &tenants,
                         const serving::StatsSnapshot &platform,
                         const serving::RegistrySnapshot &registry,
                         sim::Tick elapsed_ns)
{
    std::string out;
    out += "Multi-tenant platform statistics\n";
    out += strprintf(
        "  registry: %lld models hot (%s publishes, %s swaps, "
        "%s evictions), %s lookups (%s misses), constants %s bytes\n",
        static_cast<long long>(registry.hotModels),
        withThousands(registry.publishes).c_str(),
        withThousands(registry.swaps).c_str(),
        withThousands(registry.evictions).c_str(),
        withThousands(registry.lookups).c_str(),
        withThousands(registry.misses).c_str(),
        withThousands(static_cast<uint64_t>(registry.constantBytes))
            .c_str());
    out += strprintf(
        "  shared pool: %lld workers, utilization %.1f%%, "
        "%s batches, avg size %.2f\n",
        static_cast<long long>(platform.workers),
        100.0 * platform.utilization(elapsed_ns),
        withThousands(platform.batchesCompleted).c_str(),
        platform.averageBatchSize());

    Table table({"Tenant", "SLO", "Model", "Issued", "Ok", "Shed",
                 "Timeout", "Shed rate", "p99 (ms)", "Valid"});
    for (const TenantReportRow &tenant : tenants) {
        // Queue sheds (samplesShed) also appear as tracked Shed
        // completions; admission sheds bypass the tracker. Sum the
        // disjoint pair.
        const uint64_t shed = tenant.stats.admissionShedSamples +
                              tenant.stats.samplesShed;
        table.addRow(
            {tenant.name, tenant.slo, tenant.model,
             withThousands(tenant.stats.samplesIssued),
             withThousands(tenant.stats.completedOk),
             withThousands(shed),
             withThousands(tenant.stats.completedTimeout),
             strprintf("%.2f%%", 100.0 * tenant.stats.shedRate()),
             fmt(tenant.p99Ms, 3), tenant.valid ? "yes" : "NO"});
    }
    out += table.str();
    return out;
}

std::string
tenantSnapshotJson(const TenantReportRow &tenant, sim::Tick elapsed_ns)
{
    std::string out = "{";
    out += strprintf(
        "\"tenant\":\"%s\",\"slo\":\"%s\",\"model\":\"%s\","
        "\"p99_ms\":%.4f,\"valid\":%s,\"stats\":",
        tenant.name.c_str(), tenant.slo.c_str(),
        tenant.model.c_str(), tenant.p99Ms,
        tenant.valid ? "true" : "false");
    out += servingSnapshotJson(tenant.stats, elapsed_ns);
    out += "}";
    return out;
}

} // namespace report
} // namespace mlperf
