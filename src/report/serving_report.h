/**
 * @file
 * Run-summary rendering for the serving runtime's stage counters.
 *
 * Makes batching ablations first-class experiments: every
 * ServingSut run can print (or emit as JSON) its queue-depth,
 * time-in-queue, batch-size, utilization, and shed statistics next
 * to the LoadGen's TestResult summary.
 */

#ifndef MLPERF_REPORT_SERVING_REPORT_H
#define MLPERF_REPORT_SERVING_REPORT_H

#include <string>
#include <vector>

#include "loadgen/results.h"
#include "serving/serving_stats.h"
#include "serving/tenancy/model_registry.h"
#include "sim/executor.h"

namespace mlperf {
namespace report {

/**
 * mlperf_log_summary-style block of the serving counters.
 * @param elapsed_ns run duration used for worker utilization.
 * @param result optional LoadGen result for the same run; when given
 *        (and it carries a Server-scenario timeline) the summary adds
 *        the measurement-honesty line — corrected vs issued-referenced
 *        tail latency and the issue-drift that separates them.
 * Autoscaler activity (active shards, scale events, SLO outcomes) is
 * rendered whenever the snapshot carries it.
 */
std::string renderServingSummary(
    const serving::StatsSnapshot &snapshot, sim::Tick elapsed_ns,
    const loadgen::TestResult *result = nullptr);

/**
 * The same counters as a single JSON object (machine-readable bench
 * output). Histograms are reduced to mean/p50/p90/p99/max. When
 * @p result is given, a "latency_audit" object (corrected/issued tail,
 * drift) is embedded alongside the counters.
 */
std::string servingSnapshotJson(
    const serving::StatsSnapshot &snapshot, sim::Tick elapsed_ns,
    const loadgen::TestResult *result = nullptr);

/**
 * One tenant's row of a multi-tenant platform report. Latency fields
 * come from the tenant's LoadGen TestResult (the platform does not
 * measure per-query latency itself).
 */
struct TenantReportRow
{
    std::string name;
    std::string slo;    //!< serving::sloClassName of the SLO class
    std::string model;  //!< registry model the tenant routes to
    serving::StatsSnapshot stats;
    double p99Ms = 0.0;
    bool valid = false;
};

/**
 * Per-tenant table (issued / ok / shed / timed-out / shed-rate / p99)
 * plus the shared-pool and registry counters — the multi-tenant
 * counterpart of renderServingSummary.
 */
std::string renderMultiTenantSummary(
    const std::vector<TenantReportRow> &tenants,
    const serving::StatsSnapshot &platform,
    const serving::RegistrySnapshot &registry, sim::Tick elapsed_ns);

/** One tenant row as JSON (embeds the full stats snapshot). */
std::string tenantSnapshotJson(const TenantReportRow &tenant,
                               sim::Tick elapsed_ns);

} // namespace report
} // namespace mlperf

#endif // MLPERF_REPORT_SERVING_REPORT_H
