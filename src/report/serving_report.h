/**
 * @file
 * Run-summary rendering for the serving runtime's stage counters.
 *
 * Makes batching ablations first-class experiments: every
 * ServingSut run can print (or emit as JSON) its queue-depth,
 * time-in-queue, batch-size, utilization, and shed statistics next
 * to the LoadGen's TestResult summary.
 */

#ifndef MLPERF_REPORT_SERVING_REPORT_H
#define MLPERF_REPORT_SERVING_REPORT_H

#include <string>

#include "serving/serving_stats.h"
#include "sim/executor.h"

namespace mlperf {
namespace report {

/**
 * mlperf_log_summary-style block of the serving counters.
 * @param elapsed_ns run duration used for worker utilization.
 */
std::string renderServingSummary(
    const serving::StatsSnapshot &snapshot, sim::Tick elapsed_ns);

/**
 * The same counters as a single JSON object (machine-readable bench
 * output). Histograms are reduced to mean/p50/p90/p99/max.
 */
std::string servingSnapshotJson(
    const serving::StatsSnapshot &snapshot, sim::Tick elapsed_ns);

} // namespace report
} // namespace mlperf

#endif // MLPERF_REPORT_SERVING_REPORT_H
