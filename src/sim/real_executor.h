/**
 * @file
 * Wall-clock executor backed by a timer thread.
 */

#ifndef MLPERF_SIM_REAL_EXECUTOR_H
#define MLPERF_SIM_REAL_EXECUTOR_H

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <queue>
#include <vector>

#include "sim/executor.h"

namespace mlperf {
namespace sim {

/**
 * Executor whose tick counter is wall-clock nanoseconds since run()
 * started. Events fire on the thread that called run(); schedule() may
 * be called from any thread (e.g. SUT inference workers completing
 * queries).
 *
 * Unlike VirtualExecutor, run() does not return when the queue drains —
 * a wall-clock scenario is still in flight while queries are pending —
 * it returns only on stop().
 */
class RealExecutor : public Executor
{
  public:
    Tick now() const override;
    void schedule(Tick when, Task task) override;
    void run() override;
    void stop() override;

  private:
    using Clock = std::chrono::steady_clock;

    struct Event
    {
        Tick when;
        uint64_t seq;
        Task task;
    };
    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    Clock::time_point epoch_ = Clock::now();
    std::priority_queue<Event, std::vector<Event>, Later> queue_;
    mutable std::mutex mutex_;
    std::condition_variable cv_;
    uint64_t nextSeq_ = 0;
    bool stopped_ = false;
};

} // namespace sim
} // namespace mlperf

#endif // MLPERF_SIM_REAL_EXECUTOR_H
