/**
 * @file
 * Deterministic single-threaded discrete-event executor.
 */

#ifndef MLPERF_SIM_VIRTUAL_EXECUTOR_H
#define MLPERF_SIM_VIRTUAL_EXECUTOR_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <queue>
#include <vector>

#include "sim/executor.h"

namespace mlperf {
namespace sim {

/**
 * Discrete-event simulator: run() pops events in (time, insertion)
 * order and advances virtual time instantaneously. Equal-time events
 * run in FIFO order, which makes whole LoadGen runs bit-reproducible.
 *
 * schedule() is thread-safe so code written for RealExecutor works
 * unchanged, but in practice all virtual-mode work happens on the
 * single thread calling run().
 */
class VirtualExecutor : public Executor
{
  public:
    Tick now() const override { return now_.load(std::memory_order_acquire); }
    bool virtualTime() const override { return true; }
    void schedule(Tick when, Task task) override;
    void run() override;
    void stop() override { stopped_.store(true, std::memory_order_release); }

    /** Number of events executed so far (for tests/diagnostics). */
    uint64_t eventsProcessed() const { return eventsProcessed_; }

  private:
    struct Event
    {
        Tick when;
        uint64_t seq;
        Task task;
    };
    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> queue_;
    std::mutex mutex_;
    // now_/stopped_ are atomic so foreign threads (SUT workers) may
    // call now() and stop() without racing the event loop, matching
    // the Executor contract.
    std::atomic<Tick> now_{0};
    uint64_t nextSeq_ = 0;
    uint64_t eventsProcessed_ = 0;
    std::atomic<bool> stopped_{false};
};

} // namespace sim
} // namespace mlperf

#endif // MLPERF_SIM_VIRTUAL_EXECUTOR_H
