#include "sim/executor.h"

namespace mlperf {
namespace sim {

void
Executor::scheduleAfter(Tick delay, Task task)
{
    schedule(now() + delay, std::move(task));
}

} // namespace sim
} // namespace mlperf
