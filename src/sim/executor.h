/**
 * @file
 * Time and event-scheduling abstraction shared by the LoadGen, the
 * simulated-hardware SUTs, and the harness.
 *
 * The paper's LoadGen measures wall-clock time. Reproducing its
 * population studies (270,336-query server runs over a 30-system zoo)
 * in wall-clock time would take days, so every timing-sensitive
 * component in this repository is written against this Executor
 * interface instead of std::chrono directly:
 *
 *  - VirtualExecutor: a deterministic discrete-event simulator; whole
 *    runs complete in milliseconds of host time.
 *  - RealExecutor: a wall-clock timer thread; used when the SUT is the
 *    real NN inference engine.
 *
 * The LoadGen's scenario logic is identical under both, which is itself
 * tested (tests/sim and the virtual-vs-real ablation bench).
 */

#ifndef MLPERF_SIM_EXECUTOR_H
#define MLPERF_SIM_EXECUTOR_H

#include <cstdint>
#include <functional>

namespace mlperf {
namespace sim {

/** Simulation time in nanoseconds. */
using Tick = uint64_t;

constexpr Tick kNsPerUs = 1000;
constexpr Tick kNsPerMs = 1000 * 1000;
constexpr Tick kNsPerSec = 1000ULL * 1000 * 1000;

/**
 * Event scheduler interface.
 *
 * Implementations must allow schedule() to be called both from within
 * event callbacks and from foreign threads (SUT workers).
 */
class Executor
{
  public:
    using Task = std::function<void()>;

    virtual ~Executor() = default;

    /** Current time in ticks (ns since run start). */
    virtual Tick now() const = 0;

    /**
     * True when ticks are simulated rather than wall-clock. Lets
     * time-agnostic components pick an execution strategy — e.g. the
     * serving runtime uses event-driven workers under virtual time
     * (real threads cannot advance a discrete-event clock) and OS
     * threads under wall-clock time.
     */
    virtual bool virtualTime() const { return false; }

    /**
     * Schedule @p task to run at absolute time @p when. Tasks scheduled
     * in the past (or at now()) run as soon as possible, in FIFO order
     * among equal times.
     */
    virtual void schedule(Tick when, Task task) = 0;

    /** Convenience: schedule after a relative delay. */
    void scheduleAfter(Tick delay, Task task);

    /**
     * Process events until stop() is called or, for the virtual
     * executor, the event queue drains.
     */
    virtual void run() = 0;

    /** Request run() to return; safe to call from any thread/callback. */
    virtual void stop() = 0;
};

} // namespace sim
} // namespace mlperf

#endif // MLPERF_SIM_EXECUTOR_H
