#include "sim/virtual_executor.h"

#include <cassert>

namespace mlperf {
namespace sim {

void
VirtualExecutor::schedule(Tick when, Task task)
{
    std::lock_guard<std::mutex> lock(mutex_);
    // Events "in the past" run now; virtual time never goes backwards.
    if (when < now_)
        when = now_;
    queue_.push(Event{when, nextSeq_++, std::move(task)});
}

void
VirtualExecutor::run()
{
    stopped_ = false;
    while (!stopped_) {
        Task task;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (queue_.empty())
                break;
            // priority_queue::top() is const; the task must be moved
            // out, so we copy the POD fields and const_cast the task.
            const Event &top = queue_.top();
            now_ = top.when;
            task = std::move(const_cast<Event &>(top).task);
            queue_.pop();
        }
        ++eventsProcessed_;
        task();
    }
}

} // namespace sim
} // namespace mlperf
