#include "sim/virtual_executor.h"

#include <cassert>

namespace mlperf {
namespace sim {

void
VirtualExecutor::schedule(Tick when, Task task)
{
    std::lock_guard<std::mutex> lock(mutex_);
    // Events "in the past" run now; virtual time never goes backwards.
    const Tick current = now_.load(std::memory_order_relaxed);
    if (when < current)
        when = current;
    queue_.push(Event{when, nextSeq_++, std::move(task)});
}

void
VirtualExecutor::run()
{
    stopped_.store(false, std::memory_order_release);
    while (!stopped_.load(std::memory_order_acquire)) {
        Task task;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (queue_.empty())
                break;
            // priority_queue::top() is const; the task must be moved
            // out, so we copy the POD fields and const_cast the task.
            const Event &top = queue_.top();
            now_.store(top.when, std::memory_order_release);
            task = std::move(const_cast<Event &>(top).task);
            queue_.pop();
        }
        ++eventsProcessed_;
        task();
    }
}

} // namespace sim
} // namespace mlperf
