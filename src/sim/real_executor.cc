#include "sim/real_executor.h"

namespace mlperf {
namespace sim {

Tick
RealExecutor::now() const
{
    return static_cast<Tick>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            Clock::now() - epoch_).count());
}

void
RealExecutor::schedule(Tick when, Task task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push(Event{when, nextSeq_++, std::move(task)});
    }
    cv_.notify_one();
}

void
RealExecutor::run()
{
    std::unique_lock<std::mutex> lock(mutex_);
    stopped_ = false;
    while (!stopped_) {
        if (queue_.empty()) {
            cv_.wait(lock);
            continue;
        }
        const Tick due = queue_.top().when;
        const Tick current = now();
        if (due > current) {
            // Sleep until the event is due or a new earlier event /
            // stop request arrives.
            cv_.wait_for(lock, std::chrono::nanoseconds(due - current));
            continue;
        }
        Task task = std::move(const_cast<Event &>(queue_.top()).task);
        queue_.pop();
        lock.unlock();
        task();
        lock.lock();
    }
}

void
RealExecutor::stop()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopped_ = true;
    }
    cv_.notify_all();
}

} // namespace sim
} // namespace mlperf
