/**
 * @file
 * Log-scale latency histogram for streaming percentile estimates.
 *
 * The full LoadGen keeps every latency sample (needed for exact
 * validity checks), but simulated population sweeps over the system
 * zoo generate hundreds of millions of samples; this histogram gives
 * bounded-memory percentile estimates with <1% relative error by using
 * logarithmically spaced buckets (HdrHistogram-style).
 */

#ifndef MLPERF_STATS_HISTOGRAM_H
#define MLPERF_STATS_HISTOGRAM_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mlperf {
namespace stats {

class LogHistogram
{
  public:
    /**
     * @param min_value smallest distinguishable value (ns)
     * @param max_value largest recordable value (ns); larger values clamp
     * @param buckets_per_decade resolution (default ~1% relative error)
     */
    LogHistogram(uint64_t min_value = 100,
                 uint64_t max_value = 3600ULL * 1000 * 1000 * 1000,
                 int buckets_per_decade = 256);

    void record(uint64_t value);
    void merge(const LogHistogram &other);

    uint64_t count() const { return count_; }
    uint64_t min() const { return count_ ? observedMin_ : 0; }
    uint64_t max() const { return count_ ? observedMax_ : 0; }
    double mean() const;

    /** Estimated nearest-rank percentile, p in (0, 1]. */
    uint64_t percentile(double p) const;

  private:
    size_t bucketFor(uint64_t value) const;
    uint64_t bucketUpperBound(size_t idx) const;

    uint64_t minValue_;
    uint64_t maxValue_;
    double logMin_;
    double scale_;               //!< buckets per log-unit
    std::vector<uint64_t> buckets_;
    uint64_t count_ = 0;
    uint64_t observedMin_ = 0;
    uint64_t observedMax_ = 0;
    double sum_ = 0.0;
};

} // namespace stats
} // namespace mlperf

#endif // MLPERF_STATS_HISTOGRAM_H
