#include "stats/histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace mlperf {
namespace stats {

LogHistogram::LogHistogram(uint64_t min_value, uint64_t max_value,
                           int buckets_per_decade)
    : minValue_(std::max<uint64_t>(1, min_value)), maxValue_(max_value)
{
    assert(maxValue_ > minValue_);
    logMin_ = std::log10(static_cast<double>(minValue_));
    const double log_max = std::log10(static_cast<double>(maxValue_));
    scale_ = buckets_per_decade;
    const size_t n = static_cast<size_t>(
        std::ceil((log_max - logMin_) * scale_)) + 2;
    buckets_.assign(n, 0);
}

size_t
LogHistogram::bucketFor(uint64_t value) const
{
    if (value <= minValue_)
        return 0;
    if (value >= maxValue_)
        return buckets_.size() - 1;
    const double log_v = std::log10(static_cast<double>(value));
    size_t idx = static_cast<size_t>((log_v - logMin_) * scale_) + 1;
    return std::min(idx, buckets_.size() - 1);
}

uint64_t
LogHistogram::bucketUpperBound(size_t idx) const
{
    if (idx == 0)
        return minValue_;
    const double log_v = logMin_ + static_cast<double>(idx) / scale_;
    return static_cast<uint64_t>(std::pow(10.0, log_v));
}

void
LogHistogram::record(uint64_t value)
{
    buckets_[bucketFor(value)]++;
    if (count_ == 0) {
        observedMin_ = observedMax_ = value;
    } else {
        observedMin_ = std::min(observedMin_, value);
        observedMax_ = std::max(observedMax_, value);
    }
    ++count_;
    sum_ += static_cast<double>(value);
}

void
LogHistogram::merge(const LogHistogram &other)
{
    assert(buckets_.size() == other.buckets_.size());
    for (size_t i = 0; i < buckets_.size(); ++i)
        buckets_[i] += other.buckets_[i];
    if (other.count_) {
        if (count_ == 0) {
            observedMin_ = other.observedMin_;
            observedMax_ = other.observedMax_;
        } else {
            observedMin_ = std::min(observedMin_, other.observedMin_);
            observedMax_ = std::max(observedMax_, other.observedMax_);
        }
    }
    count_ += other.count_;
    sum_ += other.sum_;
}

double
LogHistogram::mean() const
{
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

uint64_t
LogHistogram::percentile(double p) const
{
    assert(p > 0.0 && p <= 1.0);
    if (count_ == 0)
        return 0;
    const uint64_t rank = static_cast<uint64_t>(
        std::ceil(p * static_cast<double>(count_)));
    uint64_t seen = 0;
    for (size_t i = 0; i < buckets_.size(); ++i) {
        seen += buckets_[i];
        if (seen >= rank) {
            // Clamp to the observed range so tails stay honest.
            return std::min(std::max(bucketUpperBound(i), observedMin_),
                            observedMax_);
        }
    }
    return observedMax_;
}

} // namespace stats
} // namespace mlperf
