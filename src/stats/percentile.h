/**
 * @file
 * Percentile and summary statistics over latency samples.
 *
 * The LoadGen reports 50/90/95/97/99/99.9th percentile latencies and the
 * scenario validity checks compare the observed tail against the QoS
 * bound, so percentile semantics must be precise: we use the
 * nearest-rank definition on the sorted sample (the real LoadGen does
 * the same), which is conservative for small samples.
 */

#ifndef MLPERF_STATS_PERCENTILE_H
#define MLPERF_STATS_PERCENTILE_H

#include <cstdint>
#include <vector>

namespace mlperf {
namespace stats {

/**
 * Nearest-rank percentile: the smallest value such that at least
 * p fraction of samples are <= it. @p p in (0, 1].
 * The input vector is copied and sorted; for repeated queries over the
 * same data use LatencySummary instead.
 */
uint64_t percentile(const std::vector<uint64_t> &samples, double p);

/** As above but on a pre-sorted ascending vector, no copy. */
uint64_t percentileSorted(const std::vector<uint64_t> &sorted, double p);

/** One-pass summary of a latency population. */
struct LatencySummary
{
    uint64_t count = 0;
    uint64_t minNs = 0;
    uint64_t maxNs = 0;
    double meanNs = 0.0;
    uint64_t p50 = 0;
    uint64_t p90 = 0;
    uint64_t p95 = 0;
    uint64_t p97 = 0;
    uint64_t p99 = 0;
    uint64_t p999 = 0;

    /** Build from raw samples (sorts a copy). */
    static LatencySummary from(const std::vector<uint64_t> &samples);
};

/** Fraction of samples strictly greater than @p bound. */
double fractionOver(const std::vector<uint64_t> &samples, uint64_t bound);

} // namespace stats
} // namespace mlperf

#endif // MLPERF_STATS_PERCENTILE_H
