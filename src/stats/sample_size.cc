#include "stats/sample_size.h"

#include <cmath>

#include "stats/normal.h"

namespace mlperf {
namespace stats {

double
marginForTail(double tail_latency)
{
    return (1.0 - tail_latency) / 20.0;
}

double
numQueries(double tail_latency, double confidence, double margin)
{
    // Two-sided z value: NormsInv((1 - confidence) / 2). The square
    // removes the sign, matching the paper's Eq. 2 exactly.
    const double z = normalQuantile((1.0 - confidence) / 2.0);
    return z * z * tail_latency * (1.0 - tail_latency) / (margin * margin);
}

uint64_t
roundUpTo8k(uint64_t queries)
{
    constexpr uint64_t kChunk = 1ULL << 13;
    return (queries + kChunk - 1) / kChunk * kChunk;
}

double
marginAt(double tail_latency, double confidence, uint64_t queries)
{
    const double z = normalQuantile((1.0 - confidence) / 2.0);
    return std::sqrt(z * z * tail_latency * (1.0 - tail_latency) /
                     static_cast<double>(queries));
}

QueryRequirement
queryRequirement(double tail_latency, double confidence)
{
    QueryRequirement req;
    req.tailLatency = tail_latency;
    req.confidence = confidence;
    req.margin = marginForTail(tail_latency);
    // The paper reports round-to-nearest values (e.g. 50425.2 -> 50,425);
    // the subsequent round-up-to-2^13 provides the safety slack.
    req.exactQueries = static_cast<uint64_t>(
        std::llround(numQueries(tail_latency, confidence, req.margin)));
    req.roundedQueries = roundUpTo8k(req.exactQueries);
    req.multipleOf8k = req.roundedQueries >> 13;
    return req;
}

} // namespace stats
} // namespace mlperf
