/**
 * @file
 * Statistically-confident query-count requirements (paper Sec. III-D).
 *
 * Implements Equations 1 and 2 and the rounding rule ("rounded up to the
 * nearest multiple of 2^13") that together produce Table IV, and the
 * per-task per-scenario query matrix of Table V.
 */

#ifndef MLPERF_STATS_SAMPLE_SIZE_H
#define MLPERF_STATS_SAMPLE_SIZE_H

#include <cstdint>

namespace mlperf {
namespace stats {

/** Result of the Table IV computation for one tail-latency percentile. */
struct QueryRequirement
{
    double tailLatency;        //!< e.g. 0.90, 0.95, 0.99
    double confidence;         //!< e.g. 0.99
    double margin;             //!< Eq. 1: (1 - tail) / 20
    uint64_t exactQueries;     //!< Eq. 2, rounded up to an integer
    uint64_t roundedQueries;   //!< rounded up to a multiple of 2^13
    uint64_t multipleOf8k;     //!< roundedQueries / 2^13
};

/** Eq. 1: margin is one-twentieth of the distance from the tail to 1. */
double marginForTail(double tail_latency);

/**
 * Eq. 2: queries needed so that, with probability @p confidence, the
 * measured tail is within @p margin of the true tail. Identical to the
 * electoral-poll sample-size formula.
 */
double numQueries(double tail_latency, double confidence, double margin);

/**
 * Full Table IV row for a tail percentile at the paper's fixed 99%
 * confidence and Eq. 1 margin.
 */
QueryRequirement queryRequirement(double tail_latency,
                                  double confidence = 0.99);

/** Round up to the nearest multiple of 2^13 = 8,192. */
uint64_t roundUpTo8k(uint64_t queries);

/**
 * Inverse of Eq. 2: the error margin on a measured tail-latency
 * percentile given @p queries samples at @p confidence — how much a
 * reported result could move on a re-run. Used to sanity-check that
 * scaled-down experiments still resolve the tail they bound.
 */
double marginAt(double tail_latency, double confidence,
                uint64_t queries);

/** Paper constants shared by the LoadGen defaults. */
constexpr uint64_t kSingleStreamMinQueries = 1024;
constexpr uint64_t kOfflineMinSamples = 24576;       // 3 * 2^13
constexpr uint64_t kMinDurationNs = 60ULL * 1000 * 1000 * 1000;

} // namespace stats
} // namespace mlperf

#endif // MLPERF_STATS_SAMPLE_SIZE_H
