#include "stats/percentile.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace mlperf {
namespace stats {

uint64_t
percentileSorted(const std::vector<uint64_t> &sorted, double p)
{
    assert(!sorted.empty());
    assert(p > 0.0 && p <= 1.0);
    // Nearest-rank: index ceil(p * N) in 1-based terms.
    const size_t rank = static_cast<size_t>(
        std::ceil(p * static_cast<double>(sorted.size())));
    const size_t idx = (rank == 0 ? 0 : rank - 1);
    return sorted[std::min(idx, sorted.size() - 1)];
}

uint64_t
percentile(const std::vector<uint64_t> &samples, double p)
{
    std::vector<uint64_t> sorted(samples);
    std::sort(sorted.begin(), sorted.end());
    return percentileSorted(sorted, p);
}

LatencySummary
LatencySummary::from(const std::vector<uint64_t> &samples)
{
    LatencySummary s;
    if (samples.empty())
        return s;
    std::vector<uint64_t> sorted(samples);
    std::sort(sorted.begin(), sorted.end());
    s.count = sorted.size();
    s.minNs = sorted.front();
    s.maxNs = sorted.back();
    double sum = 0.0;
    for (uint64_t v : sorted)
        sum += static_cast<double>(v);
    s.meanNs = sum / static_cast<double>(sorted.size());
    s.p50 = percentileSorted(sorted, 0.50);
    s.p90 = percentileSorted(sorted, 0.90);
    s.p95 = percentileSorted(sorted, 0.95);
    s.p97 = percentileSorted(sorted, 0.97);
    s.p99 = percentileSorted(sorted, 0.99);
    s.p999 = percentileSorted(sorted, 0.999);
    return s;
}

double
fractionOver(const std::vector<uint64_t> &samples, uint64_t bound)
{
    if (samples.empty())
        return 0.0;
    size_t over = 0;
    for (uint64_t v : samples) {
        if (v > bound)
            ++over;
    }
    return static_cast<double>(over) / static_cast<double>(samples.size());
}

} // namespace stats
} // namespace mlperf
