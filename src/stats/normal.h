/**
 * @file
 * Standard normal distribution functions.
 *
 * The paper's query-count requirement (Sec. III-D, Eq. 2) is
 *
 *   NumQueries = NormsInv((1 - Confidence) / 2)^2
 *                * TailLatency * (1 - TailLatency) / Margin^2
 *
 * so we need a high-accuracy inverse normal CDF. We implement Acklam's
 * rational approximation refined with one Halley step against the
 * complementary error function, which is accurate to ~1e-15 over the
 * full open interval (0, 1).
 */

#ifndef MLPERF_STATS_NORMAL_H
#define MLPERF_STATS_NORMAL_H

namespace mlperf {
namespace stats {

/** Standard normal cumulative distribution function. */
double normalCdf(double x);

/**
 * Inverse of the standard normal CDF (quantile function).
 *
 * @param p probability in the open interval (0, 1).
 * @return x such that normalCdf(x) == p.
 */
double normalQuantile(double p);

} // namespace stats
} // namespace mlperf

#endif // MLPERF_STATS_NORMAL_H
