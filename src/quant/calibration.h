/**
 * @file
 * Activation-range calibration.
 *
 * MLPerf provides "a small, fixed data set that can be used to calibrate
 * a quantized network" (Sec. IV-A). Calibration here runs that set
 * through the FP32 model and tracks per-layer input ranges. Two
 * observers are provided: exact min/max, and an averaged min/max that
 * discounts outliers (as production calibrators do); their accuracy
 * difference is measured by the quantization bench.
 */

#ifndef MLPERF_QUANT_CALIBRATION_H
#define MLPERF_QUANT_CALIBRATION_H

#include <cstdint>

#include "tensor/tensor.h"

namespace mlperf {
namespace quant {

/** How activation ranges are reduced to a quantization interval. */
enum class CalibrationMethod
{
    MinMax,          //!< exact observed min/max over all batches
    AveragedMinMax,  //!< mean of per-batch min/max; robust to outliers
};

/** Streaming range tracker for one tensor position in the network. */
class RangeTracker
{
  public:
    explicit RangeTracker(CalibrationMethod method =
                              CalibrationMethod::MinMax)
        : method_(method)
    {
    }

    /** Fold one batch's values into the tracked range. */
    void observe(const tensor::Tensor &t);

    /** Calibrated [min, max] after all observations. */
    float calibratedMin() const;
    float calibratedMax() const;
    bool hasObservations() const { return batches_ > 0; }

  private:
    CalibrationMethod method_;
    float min_ = 0.0f;
    float max_ = 0.0f;
    double minSum_ = 0.0;   //!< sum of per-batch minima
    double maxSum_ = 0.0;   //!< sum of per-batch maxima
    uint64_t batches_ = 0;
};

} // namespace quant
} // namespace mlperf

#endif // MLPERF_QUANT_CALIBRATION_H
